// Ablation — §4 "DWDM layer management":
//
//   "The connection establishment times we have demonstrated are far
//    slower than any fundamental limitations on the DWDM layer. To reduce
//    the connection establishment time will place additional requirements
//    on both the physical hardware and software control."
//
// Two independent levers are ablated:
//  * controller orchestration: sequential EMS dialogues (the 2011 testbed)
//    vs pipelined issue of independent commands;
//  * element speed: the calibrated 2011 latency profile vs a speed-
//    optimized "fast hardware" profile (fast-tunable lasers, transient-
//    tolerant amplifiers, pipelined EMS database work).
#include <iostream>

#include "bench_util.hpp"
#include "core/scenario.hpp"

using namespace griphon;

namespace {

bench::Summary measure(core::ExecMode mode, bool fast_hw, int runs) {
  std::vector<double> xs;
  for (int i = 0; i < runs; ++i) {
    core::NetworkModel::Config cfg;
    cfg.with_otn = false;
    if (fast_hw) cfg.ems_profile = ems::EmsLatencyProfile::fast_hardware();
    core::GriphonController::Params params;
    params.exec_mode = mode;
    core::TestbedScenario s(11000 + static_cast<std::uint64_t>(i), cfg,
                            params);
    // 3-hop path: the configuration with the most parallelizable work.
    s.model->fail_link(s.topo.i_iv);
    s.model->fail_link(s.topo.i_iii);
    s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                      core::ProtectionMode::kRestorable,
                      [&](Result<ConnectionId> r) {
                        if (r.ok())
                          xs.push_back(to_seconds(
                              s.controller->connection(r.value())
                                  .setup_duration));
                      });
    s.engine.run();
  }
  return bench::summarize(xs);
}

}  // namespace

int main() {
  bench::banner(
      "Ablation: what it takes to make DWDM-layer setup fast "
      "(3-hop path, 10 runs per cell)");
  constexpr int kRuns = 10;

  bench::Table table({"EMS orchestration", "2011 hardware",
                      "speed-optimized hardware"});
  const auto seq_slow = measure(core::ExecMode::kSequential, false, kRuns);
  const auto seq_fast = measure(core::ExecMode::kSequential, true, kRuns);
  const auto dag_slow = measure(core::ExecMode::kDag, false, kRuns);
  const auto dag_fast = measure(core::ExecMode::kDag, true, kRuns);
  const auto par_slow = measure(core::ExecMode::kPipelined, false, kRuns);
  const auto par_fast = measure(core::ExecMode::kPipelined, true, kRuns);
  table.row({"sequential (testbed)",
             bench::fmt(seq_slow.mean, 1) + " s",
             bench::fmt(seq_fast.mean, 1) + " s"});
  table.row({"dependency DAG (default)", bench::fmt(dag_slow.mean, 1) + " s",
             bench::fmt(dag_fast.mean, 1) + " s"});
  table.row({"pipelined (no ordering)", bench::fmt(par_slow.mean, 1) + " s",
             bench::fmt(par_fast.mean, 1) + " s"});
  table.print();

  std::cout << "\nshape check: software alone (pipelining) buys ~"
            << bench::fmt(seq_slow.mean / par_slow.mean, 1)
            << "x; hardware alone ~"
            << bench::fmt(seq_slow.mean / seq_fast.mean, 1)
            << "x; together ~"
            << bench::fmt(seq_slow.mean / par_fast.mean, 1)
            << "x — supporting the paper's claim that the 60-70 s reflects "
               "'a lack of current carrier requirements for speed', not "
               "physics\n";
  return 0;
}
