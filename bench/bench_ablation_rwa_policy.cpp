// Ablation — wavelength-assignment policy (a DESIGN.md design choice):
//
// First-fit packs the spectrum from the lowest channel; most-used reuses
// the network-wide hottest wavelengths first. Most-used classically lowers
// blocking on meshes because it preserves whole idle wavelengths for long
// continuity-constrained paths. Measured: blocking probability under
// Poisson wavelength demand on the US backbone at several loads.
#include <iostream>

#include "bench_util.hpp"
#include "core/scenario.hpp"
#include "workload/arrivals.hpp"

using namespace griphon;

namespace {

double blocking(std::uint64_t seed, double arrivals_per_hour,
                core::WavelengthPolicy policy) {
  core::BackboneScenario::Options opt;
  opt.customers = 1;
  opt.sites_per_customer = 6;
  opt.quota = DataRate::gbps(100000);
  opt.config.with_otn = false;
  // Equipment is plentiful and the grid is tiny, so *spectrum* (and thus
  // the assignment policy) is what admission control exhausts.
  opt.config.channels = 4;
  opt.config.ots_per_node = 40;
  opt.config.regens_per_node = 20;
  opt.config.fxc_ports_per_node = 256;
  opt.params.rwa.policy = policy;
  core::BackboneScenario s(seed, opt);

  workload::PoissonConnectionLoad::Params p;
  p.arrivals_per_hour = arrivals_per_hour;
  p.mean_holding = hours(3);
  p.rate = rates::k10G;
  for (std::size_t i = 0; i < s.sites.size(); ++i)
    for (std::size_t j = i + 1; j < s.sites.size(); ++j)
      p.pairs.emplace_back(s.sites[i], s.sites[j]);
  workload::PoissonConnectionLoad load(&s.engine, s.portals[0].get(), p);
  load.run_until(hours(24 * 4));
  s.engine.run();
  return load.stats().blocking_probability();
}

}  // namespace

int main() {
  bench::banner(
      "Ablation: wavelength-assignment policy, US backbone, 4-channel "
      "grid, 4 days of Poisson 10G demand, spectrum-limited");

  bench::Table table({"offered load", "first-fit", "most-used",
                      "least-used (spread)"});
  for (const double load : {2.0, 4.0, 8.0, 12.0}) {
    const double ff = blocking(12000 + static_cast<std::uint64_t>(load),
                               load, core::WavelengthPolicy::kFirstFit);
    const double mu = blocking(12000 + static_cast<std::uint64_t>(load),
                               load, core::WavelengthPolicy::kMostUsed);
    const double lu = blocking(12000 + static_cast<std::uint64_t>(load),
                               load, core::WavelengthPolicy::kLeastUsed);
    table.row({bench::fmt(load * 3, 0) + " Erl",
               bench::fmt(ff * 100, 1) + "%",
               bench::fmt(mu * 100, 1) + "%",
               bench::fmt(lu * 100, 1) + "%"});
  }
  table.print();
  std::cout << "\nshape check: packing policies (first-fit / most-used, "
               "which coincide on a cold network) beat spreading: "
               "least-used fragments the grid and blocks continuity-"
               "constrained multi-hop paths earlier\n";
  return 0;
}
