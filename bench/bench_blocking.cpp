// Experiment E7 — §4 "Network resource planning":
//
//   "the carrier must plan ahead, where and when to deploy the spare
//    resources (especially OTs). ... they need to forecast demand and
//    carefully manage the pool of GRIPhoN resources. ... the number of
//    users is smaller and the cost of a line is far greater, making
//    accurate planning far more critical."
//
// Erlang-style engineering study: Poisson wavelength demand on the paper's
// testbed, blocking probability as a function of offered load and of the
// per-site OT pool size. Each PoP hosts three customer access pipes so the
// carrier-side OT pool — not the access — is the engineered resource.
#include <iostream>

#include "bench_util.hpp"
#include "core/planner.hpp"
#include "core/scenario.hpp"
#include "emit_json.hpp"
#include "workload/arrivals.hpp"

using namespace griphon;

namespace {

double blocking(std::uint64_t seed, double arrivals_per_hour,
                std::size_t ots_per_node) {
  sim::Engine engine(seed);
  auto topo = topology::paper_testbed();
  core::NetworkModel::Config cfg;
  cfg.ots_per_node = ots_per_node;
  cfg.with_otn = false;
  cfg.fxc_ports_per_node = 128;
  core::NetworkModel model(&engine, topo.graph, cfg);
  // A week of Poisson demand emits a huge trace; keep only a ring of it.
  model.trace().set_capacity(4096);
  // Six access pipes per PoP (24 x 10G of access) so the OT pool and
  // spectrum — not the 4-port NTEs — are what admission control exhausts.
  const CustomerId csp{1};
  std::vector<MuxponderId> at_i, at_iii, at_iv;
  for (int k = 0; k < 6; ++k) {
    at_i.push_back(model.add_customer_site(csp, "I-" + std::to_string(k),
                                           topo.i).nte);
    at_iii.push_back(model.add_customer_site(csp, "III-" + std::to_string(k),
                                             topo.iii).nte);
    at_iv.push_back(model.add_customer_site(csp, "IV-" + std::to_string(k),
                                            topo.iv).nte);
  }
  core::GriphonController controller(&model, core::GriphonController::Params{});
  core::CustomerPortal portal(&controller, csp, DataRate::gbps(1000000));

  workload::PoissonConnectionLoad::Params p;
  p.arrivals_per_hour = arrivals_per_hour;
  p.mean_holding = hours(2);
  p.rate = rates::k10G;
  for (int k = 0; k < 6; ++k) {
    p.pairs.emplace_back(at_i[static_cast<std::size_t>(k)],
                         at_iv[static_cast<std::size_t>(k)]);
    p.pairs.emplace_back(at_i[static_cast<std::size_t>(k)],
                         at_iii[static_cast<std::size_t>(k)]);
    p.pairs.emplace_back(at_iii[static_cast<std::size_t>(k)],
                         at_iv[static_cast<std::size_t>(k)]);
  }
  workload::PoissonConnectionLoad load(&engine, &portal, p);
  load.run_until(hours(24 * 7));
  engine.run();
  return load.stats().blocking_probability();
}

}  // namespace

int main() {
  bench::banner(
      "Blocking probability vs offered load and OT pool size (1 week of "
      "Poisson 10G demand, mean holding 2 h, 3 access pipes per PoP)");

  const double loads[] = {0.5, 1, 2, 3, 5};      // arrivals/hour
  const std::size_t pools[] = {2, 4, 6, 8, 10};  // OTs per site

  bench::Table table({"offered load", "OTs=2", "OTs=4", "OTs=6", "OTs=8",
                      "OTs=10"},
                     16);
  bench::JsonEmitter json("blocking");
  for (const double load : loads) {
    std::vector<std::string> row{bench::fmt(load * 2, 1) + " Erl"};
    for (const std::size_t pool : pools) {
      const double b = blocking(
          7000 + static_cast<std::uint64_t>(load * 10 + pool), load, pool);
      row.push_back(bench::fmt(b * 100, 1) + "%");
      json.row("blocking_erl" + bench::fmt(load * 2, 1) + "_ots" +
                   std::to_string(pool),
               b * 100, "%");
    }
    table.row(row);
  }
  table.print();

  std::cout << "\nshape check: blocking rises with offered load and falls "
               "as the OT pool grows — the classic Erlang trade-off the "
               "carrier must engineer, but with pools of a handful of "
               "costly OTs rather than thousands of POTS trunks\n";

  // Close the loop with the §4 planner: size pools analytically for a 1%
  // target, then validate against the simulator.
  bench::banner("Planner validation: Erlang-B sizing vs simulated blocking");
  const auto topo = topology::paper_testbed();
  bench::Table t2({"offered load", "planned OTs/site",
                   "predicted blocking", "simulated blocking"}, 22);
  for (const double load : {1.0, 2.0, 3.0}) {
    const double erl = load * 2;  // 2 h holding
    // Three symmetric relations; node I terminates two of them.
    const std::vector<core::DemandForecast> demand = {
        {topo.i, topo.iv, erl / 3}, {topo.i, topo.iii, erl / 3},
        {topo.iii, topo.iv, erl / 3}};
    const auto plan =
        core::ResourcePlanner::plan_ot_pools(topo.graph, demand, 0.01);
    int pool = 0;
    double worst_node = 0;
    for (const auto& r : plan) {
      pool = std::max(pool, r.ots_needed);
      worst_node = std::max(worst_node, r.predicted_blocking);
    }
    // A call needs a free OT at BOTH endpoints.
    const double predicted = 1.0 - (1.0 - worst_node) * (1.0 - worst_node);
    const double simulated =
        blocking(7700 + static_cast<std::uint64_t>(load * 10), load,
                 static_cast<std::size_t>(pool));
    t2.row({bench::fmt(erl, 1) + " Erl", std::to_string(pool),
            bench::fmt(predicted * 100, 2) + "%",
            bench::fmt(simulated * 100, 2) + "%"});
    json.row("planner_erl" + bench::fmt(erl, 1) + "_pool",
             static_cast<double>(pool), "OTs");
    json.row("planner_erl" + bench::fmt(erl, 1) + "_predicted",
             predicted * 100, "%");
    json.row("planner_erl" + bench::fmt(erl, 1) + "_simulated",
             simulated * 100, "%");
  }
  t2.print();
  json.write("BENCH_blocking.json");
  std::cout << "\nshape check: the analytically sized pool keeps simulated "
               "blocking near the 1% engineering target\n"
               "wrote BENCH_blocking.json\n";
  return 0;
}
