// Experiment E9 — the paper's §1 motivation: bulk inter-DC replication
// ("several terabytes ... to petabytes").
//
// Completion time of a bulk transfer between two data centers under three
// regimes:
//  * GRIPhoN BoD: buy a composite circuit for the duration, release after;
//  * static private line that must first be provisioned (weeks of lead
//    time) — the "new route" worst case the paper contrasts against;
//  * store-and-forward over the *existing* static pipe's leftover capacity
//    (NetStitcher-style, no new capacity bought).
//
// Also reports circuit-hours consumed — the carrier-side resource cost.
#include <iostream>

#include "baseline/static_provisioning.hpp"
#include "baseline/store_forward.hpp"
#include "bench_util.hpp"
#include "core/scenario.hpp"
#include "workload/bulk_transfer.hpp"

using namespace griphon;

namespace {

double bod_completion_hours(std::int64_t bytes, DataRate rate,
                            std::uint64_t seed) {
  core::TestbedScenario s(seed);
  workload::BulkScheduler sched(&s.engine, s.portal.get());
  double out = -1;
  sched.submit(s.site_i, s.site_iv, bytes, rate,
               [&](const workload::BulkJob& j) {
                 if (!j.failed)
                   out = to_seconds(j.completion_time()) / 3600.0;
               });
  s.engine.run();
  return out;
}

}  // namespace

int main() {
  bench::banner(
      "Bulk replication completion time: BoD vs static vs store-and-forward");

  Rng rng(99);
  baseline::StaticProvisioningModel manual;
  // The pre-existing static pipe carries interactive traffic with a
  // diurnal swing; SF rides its leftovers.
  const baseline::StoreForwardPlanner::Leg existing_pipe{
      rates::k10G,
      workload::DiurnalProfile(DataRate::gbps(8), DataRate::gbps(2), 20)};

  bench::Table table({"transfer size", "GRIPhoN BoD 12G",
                      "new static 10G line",
                      "store-fwd on leftovers", "BoD circuit-hours"});
  const double tb[] = {1, 10, 50};
  for (const double size_tb : tb) {
    const auto bytes =
        static_cast<std::int64_t>(size_tb * 1e12);
    const double bod = bod_completion_hours(
        bytes, DataRate::gbps(12), 9100 + static_cast<std::uint64_t>(size_tb));
    const double cold_static =
        to_seconds(manual.transfer_cold(bytes, rates::k10G, rng)) / 3600.0;
    const double sf =
        to_seconds(baseline::StoreForwardPlanner::direct_completion(
            bytes, existing_pipe, hours(18))) /
        3600.0;
    // BoD holds ~12G of circuits for the transfer duration only.
    const double circuit_hours = bod * (1 + 2);  // 1 wave + 2 ODU circuits
    table.row({bench::fmt(size_tb, 0) + " TB",
               bench::fmt(bod, 2) + " h",
               bench::fmt(cold_static / 24.0, 1) + " days",
               bench::fmt(sf, 2) + " h",
               bench::fmt(circuit_hours, 1)});
  }
  table.print();

  std::cout
      << "\nshape check: BoD completes at full purchased rate and releases "
         "capacity afterwards; a NEW static line is dominated by weeks of "
         "lead time; store-and-forward needs no new capacity but runs at "
         "the leftover rate (slower, and it grows worse as the interactive "
         "load grows). A pre-existing static line matches BoD's transfer "
         "time but bills 24/7 whether used or not.\n";
  return 0;
}
