// BoD service-layer acceptance bench: deadline-driven bulk transfers on a
// contended continental backbone.
//
// Scenario: a 50-node synthetic mesh (topology::builders random_mesh, the
// ROADMAP scale target) with 12 data-center sites spread over three cloud
// customers. A day of Poisson bulk-transfer arrivals (0.5-8 TB each, with
// deadlines 1.4-5x the ideal 10G transfer time) is submitted to the
// TransferScheduler, which buys composable bandwidth on demand through the
// reservation calendar and the customer portals. The same accepted
// request set is replayed against the NetStitcher-flavored
// store-and-forward baseline (a static 10G pipe per DC pair carrying a
// diurnal interactive load, bulk rides the leftover, one relay option).
//
// Acceptance gates (exit code is non-zero when any fails):
//   * the scheduler meets >= 95% of the deadlines it accepted as feasible;
//   * the store-and-forward baseline meets strictly fewer of those same
//     deadlines;
//   * AdmissionController::admit sustains >= 100k decisions/s.
//
// Results go to stdout as tables and to BENCH_calendar.json as
// {bench, metric, value, unit} rows for the perf trajectory.
#include <chrono>
#include <cstdlib>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "baseline/store_forward.hpp"
#include "bench_util.hpp"
#include "bod/admission.hpp"
#include "bod/reservation_calendar.hpp"
#include "bod/transfer_scheduler.hpp"
#include "common/rng.hpp"
#include "core/controller.hpp"
#include "core/network_model.hpp"
#include "core/portal.hpp"
#include "emit_json.hpp"
#include "telemetry/telemetry.hpp"
#include "topology/builders.hpp"

using namespace griphon;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::int64_t kTB = std::int64_t{1} << 40;

/// A random subset of nodes acting as the data-center sites.
std::vector<NodeId> pick_sites(const topology::Graph& g, std::size_t count,
                               Rng& rng) {
  std::vector<NodeId> sites;
  for (const auto& node : g.nodes()) sites.push_back(node.id);
  for (std::size_t i = 0; i < count && i + 1 < sites.size(); ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i),
        static_cast<std::int64_t>(sites.size()) - 1));
    std::swap(sites[i], sites[j]);
  }
  sites.resize(std::min(count, sites.size()));
  return sites;
}

/// One offered bulk request, with enough detail to replay against the
/// store-and-forward baseline afterwards.
struct Offered {
  SimTime at{};
  CustomerId customer;
  std::size_t src = 0;  ///< index into the customer's site list
  std::size_t dst = 0;
  std::int64_t bytes = 0;
  SimTime deadline{};
  bool accepted = false;
};

/// Deterministic diurnal profile for a DC pair: peak 6-9G, trough 1-3G,
/// peak hour anywhere in the day. Derived from the pair indices so the
/// baseline sees the same interactive load on every run.
baseline::StoreForwardPlanner::Leg leg_for(std::size_t a, std::size_t b,
                                           double shift_hours) {
  Rng rng(1000003 * a + 7919 * b + 17);
  const DataRate peak = DataRate::mbps(
      static_cast<std::int64_t>(rng.uniform(6000.0, 9000.0)));
  const DataRate trough = DataRate::mbps(
      static_cast<std::int64_t>(rng.uniform(1000.0, 3000.0)));
  const double peak_hour =
      std::fmod(rng.uniform(0.0, 24.0) + shift_hours, 24.0);
  return {rates::k10G,
          workload::DiurnalProfile(peak, trough, peak_hour)};
}

/// Admission decision throughput: a tight wall-clock loop over admit()
/// with a registered 3-customer policy set. The acceptance floor is
/// 100k decisions/s; the in-memory implementation should clear it by
/// orders of magnitude.
double admission_decisions_per_sec() {
  sim::Engine engine(7);
  bod::AdmissionController admission(&engine);
  bod::AdmissionController::CustomerPolicy policy;
  policy.bandwidth_quota = DataRate::gbps(400);
  policy.requests_per_second = 1e9;  // measure decisions, not the limiter
  policy.burst = 1e9;
  for (std::uint64_t c = 1; c <= 3; ++c)
    admission.set_policy(CustomerId{c}, policy);

  constexpr std::size_t kCalls = 2'000'000;
  const auto t0 = Clock::now();
  std::uint64_t admitted = 0;
  for (std::size_t i = 0; i < kCalls; ++i) {
    const bod::AdmissionController::Request req{
        CustomerId{1 + (i % 3)}, DataRate::gbps(1),
        static_cast<bod::Priority>(i % 3)};
    if (admission.admit(req).ok()) ++admitted;
  }
  const auto t1 = Clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  if (admitted != kCalls)
    std::cout << "note: " << (kCalls - admitted)
              << " admission calls unexpectedly rejected\n";
  return secs > 0 ? static_cast<double>(kCalls) / secs : 0;
}

}  // namespace

int main() {
  bench::banner(
      "BoD service layer: deadline-driven bulk transfers on a contended "
      "50-node / 12-DC backbone");

  // --- deployment --------------------------------------------------------
  Rng mesh_rng(4242);
  const auto backbone = topology::random_mesh(50, 3.2, mesh_rng);

  sim::Engine engine(7);
  core::NetworkModel::Config cfg;
  cfg.with_otn = false;  // pure-wavelength ladder keeps the bench fast
  cfg.ots_per_node = 64;
  cfg.regens_per_node = 32;
  cfg.fxc_ports_per_node = 128;
  core::NetworkModel model(&engine, backbone, cfg);
  telemetry::Telemetry sink(&engine);
  model.attach_telemetry(&sink);
  core::GriphonController controller(&model, {});

  Rng site_rng(977);
  const auto dc_pops = pick_sites(backbone, 12, site_rng);
  constexpr std::size_t kCustomers = 3;
  const std::size_t sites_per_customer = dc_pops.size() / kCustomers;

  bod::ReservationCalendar::Params cal_params;
  cal_params.default_link_capacity = rates::k40G;  // contended: 4 waves/span
  bod::ReservationCalendar calendar(cal_params);
  bod::AdmissionController admission(&engine);
  bod::TransferScheduler::Params sched_params;
  // No OTN layer in this deployment: offer only rates that decompose into
  // whole 10G waves.
  sched_params.rate_ladder = {rates::k40G, DataRate::gbps(20), rates::k10G};
  bod::TransferScheduler scheduler(&controller, &calendar, &admission,
                                   sched_params);

  std::vector<std::unique_ptr<core::CustomerPortal>> portals;
  std::vector<std::vector<MuxponderId>> sites(kCustomers);
  for (std::size_t c = 0; c < kCustomers; ++c) {
    const CustomerId customer{c + 1};
    portals.push_back(std::make_unique<core::CustomerPortal>(
        &controller, customer, DataRate::gbps(400)));
    scheduler.register_portal(portals.back().get());
    bod::AdmissionController::CustomerPolicy policy;
    policy.bandwidth_quota = DataRate::gbps(500);
    policy.requests_per_second = 1000;
    for (std::size_t s = 0; s < sites_per_customer; ++s) {
      const NodeId pop = dc_pops[c * sites_per_customer + s];
      sites[c].push_back(model
                             .add_customer_site(
                                 customer,
                                 "DC-" + std::to_string(c) + "-" +
                                     std::to_string(s),
                                 pop)
                             .nte);
    }
    admission.set_policy(customer, policy);
  }

  // --- offered load: a day of Poisson bulk arrivals ----------------------
  Rng wl_rng(99);
  constexpr double kArrivalsPerHour = 15.0;
  constexpr double kDays = 1.0;
  std::vector<Offered> offered;
  double t_sec = 0;
  while (true) {
    t_sec += wl_rng.exponential(3600.0 / kArrivalsPerHour);
    if (t_sec >= kDays * 24 * 3600) break;
    Offered o;
    o.at = from_seconds(t_sec);
    const auto c = static_cast<std::size_t>(
        wl_rng.uniform_int(0, kCustomers - 1));
    o.customer = CustomerId{c + 1};
    o.src = static_cast<std::size_t>(wl_rng.uniform_int(
        0, static_cast<std::int64_t>(sites_per_customer) - 1));
    o.dst = o.src;
    while (o.dst == o.src)
      o.dst = static_cast<std::size_t>(wl_rng.uniform_int(
          0, static_cast<std::int64_t>(sites_per_customer) - 1));
    // Log-uniform 0.5-8 TB.
    o.bytes = static_cast<std::int64_t>(
        std::exp(wl_rng.uniform(std::log(0.5 * static_cast<double>(kTB)),
                                std::log(8.0 * static_cast<double>(kTB)))));
    const SimTime ideal = transfer_time(o.bytes, rates::k10G);
    o.deadline = o.at + from_seconds(wl_rng.uniform(1.4, 5.0) *
                                     to_seconds(ideal));
    offered.push_back(o);
  }

  for (std::size_t i = 0; i < offered.size(); ++i) {
    engine.schedule_at(offered[i].at, [&, i] {
      const Offered& o = offered[i];
      const auto c = o.customer.value() - 1;
      const bod::TransferScheduler::TransferRequest req{
          o.customer, sites[c][o.src], sites[c][o.dst], o.bytes, o.deadline,
          bod::Priority::kBestEffortBulk};
      auto result = scheduler.submit(req);
      offered[i].accepted = result.ok();
    });
  }

  const auto w0 = Clock::now();
  engine.run_until(hours(24 * 3));  // drain: longest deadline < 2 days
  const auto w1 = Clock::now();
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded bench main
  // reading its own environment once; no concurrent setenv exists here.
  if (std::getenv("BENCH_CALENDAR_DUMP_METRICS"))
    std::cout << sink.metrics().to_prometheus() << '\n';

  const auto& st = scheduler.stats();
  const double met_pct =
      st.accepted > 0
          ? 100.0 * static_cast<double>(st.deadline_met) /
                static_cast<double>(st.accepted)
          : 0;

  // --- store-and-forward baseline on the same accepted set ---------------
  // Each DC pair has a static 10G pipe with its own diurnal interactive
  // load; a relay option staggers the peak by 8h on each leg (the
  // time-zone stitching the baseline exists to exploit).
  std::uint64_t baseline_met = 0;
  std::uint64_t scheduler_met_accepted = st.deadline_met;
  for (const Offered& o : offered) {
    if (!o.accepted) continue;
    const auto a = static_cast<std::size_t>(o.customer.value()) * 100 + o.src;
    const auto b = static_cast<std::size_t>(o.customer.value()) * 100 + o.dst;
    const auto direct = leg_for(a, b, 0.0);
    const std::vector<std::pair<baseline::StoreForwardPlanner::Leg,
                                baseline::StoreForwardPlanner::Leg>>
        relays = {{leg_for(a, a + b, 8.0), leg_for(a + b, b, 16.0)}};
    const auto plan =
        baseline::StoreForwardPlanner::best(o.bytes, direct, relays, o.at);
    // plan.completion is a duration from the start of the transfer.
    if (o.at + plan.completion <= o.deadline) ++baseline_met;
  }

  // --- admission throughput ---------------------------------------------
  const double admit_per_sec = admission_decisions_per_sec();

  // --- report ------------------------------------------------------------
  bench::Table table({"metric", "value"}, 40);
  table.row({"offered transfers", std::to_string(offered.size())});
  table.row({"accepted (feasible)", std::to_string(st.accepted)});
  table.row({"rejected", std::to_string(st.rejected)});
  table.row({"deadlines met (scheduler)",
             std::to_string(st.deadline_met) + " (" +
                 bench::fmt(met_pct, 1) + "%)"});
  table.row({"deadlines met (store-and-forward)",
             std::to_string(baseline_met)});
  table.row({"splits / reschedules / setup retries",
             std::to_string(st.splits) + " / " +
                 std::to_string(st.reschedules) + " / " +
                 std::to_string(st.setup_retries)});
  const auto& adm_st = admission.stats();
  table.row({"admission quota / rate-limit rejects",
             std::to_string(adm_st.rejected_quota) + " / " +
                 std::to_string(adm_st.rejected_rate_limit)});
  table.row({"admission decisions/s", bench::fmt(admit_per_sec, 0)});
  table.row({"sim wall time",
             bench::fmt(std::chrono::duration<double>(w1 - w0).count(), 2) +
                 " s"});
  table.print();

  bench::JsonEmitter json("calendar");
  json.row("offered_transfers", static_cast<double>(offered.size()), "count");
  json.row("accepted_transfers", static_cast<double>(st.accepted), "count");
  json.row("rejected_transfers", static_cast<double>(st.rejected), "count");
  json.row("deadline_met_pct", met_pct, "%");
  json.row("baseline_deadline_met", static_cast<double>(baseline_met),
           "count");
  json.row("scheduler_deadline_met",
           static_cast<double>(scheduler_met_accepted), "count");
  json.row("transfer_splits", static_cast<double>(st.splits), "count");
  json.row("piece_reschedules", static_cast<double>(st.reschedules), "count");
  json.row("admission_decisions_per_sec", admit_per_sec, "decisions/s");
  json.write("BENCH_calendar.json");
  std::cout << "\nwrote BENCH_calendar.json\n";

  // --- acceptance gates --------------------------------------------------
  bool ok = true;
  if (met_pct < 95.0) {
    std::cout << "FAIL: scheduler met " << bench::fmt(met_pct, 1)
              << "% of feasible deadlines (< 95%)\n";
    ok = false;
  }
  if (baseline_met >= scheduler_met_accepted) {
    std::cout << "FAIL: store-and-forward baseline met " << baseline_met
              << " deadlines, scheduler met " << scheduler_met_accepted
              << " (baseline must meet strictly fewer)\n";
    ok = false;
  }
  if (admit_per_sec < 100000.0) {
    std::cout << "FAIL: admission sustained " << bench::fmt(admit_per_sec, 0)
              << " decisions/s (< 100k)\n";
    ok = false;
  }
  if (ok) std::cout << "all acceptance gates passed\n";
  return ok ? 0 : 1;
}
