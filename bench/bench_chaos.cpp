// Chaos experiment — service quality under escalating fault intensity.
//
// The robustness claim behind the chaos subsystem: with bounded retry,
// per-EMS circuit breakers and restart resync, the controller keeps
// provisioning and restoring while the plant misbehaves, degrading
// gracefully as faults intensify. This bench quantifies that by sweeping
// FaultPlan::combined() through several intensities (0 = injector disarmed,
// the production fast path) and measuring, per intensity:
//
//   * setup success rate  — fraction of portal connect attempts that land;
//   * restoration time    — outage of a restorable connection after a
//                           fiber cut, while the faults keep firing.
//
// Results go to stdout as a table, to BENCH_chaos.json for bench_diff.py,
// and the fault schedule of one representative trial per intensity goes to
// chaos_fault_plan.log (uploaded by the chaos-soak CI lane).
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "chaos/fault_injector.hpp"
#include "chaos/fault_plan.hpp"
#include "core/observability.hpp"
#include "core/scenario.hpp"
#include "emit_json.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace_export.hpp"

using namespace griphon;

namespace {

struct Trial {
  int attempts = 0;
  int successes = 0;
  double restoration_s = -1;  // < 0: connection never came back
  bool restore_tried = false;
  std::uint64_t faults = 0;
  std::string fault_log;
};

Trial one_trial(std::uint64_t seed, const chaos::FaultPlan& plan, bool arm) {
  Trial t;
  core::TestbedScenario s(seed);
  chaos::FaultInjector injector(s.model.get(), plan, seed * 7919 + 17);
  if (arm) injector.arm();

  const MuxponderId sites[3] = {s.site_i, s.site_iii, s.site_iv};
  std::vector<ConnectionId> live;
  // Light enough that the fault-free testbed admits every attempt: at
  // intensity 0 the success rate reads 1.0, so any degradation at higher
  // intensities is attributable to injected faults, not capacity blocking.
  constexpr int kSetups = 6;
  for (int i = 0; i < kSetups; ++i) {
    ++t.attempts;
    s.portal->connect(sites[static_cast<std::size_t>(i % 3)],
                      sites[static_cast<std::size_t>((i + 1) % 3)],
                      i == 0 ? rates::k10G : rates::k1G,
                      core::ProtectionMode::kRestorable,
                      [&](Result<ConnectionId> r) {
                        if (r.ok()) {
                          ++t.successes;
                          live.push_back(r.value());
                        }
                      });
    s.engine.run_until(s.engine.now() + minutes(2));
  }
  // Let deferred setups, breaker cooldowns and EMS restarts play out.
  s.engine.run_until(s.engine.now() + minutes(10));

  if (!live.empty()) {
    t.restore_tried = true;
    const ConnectionId victim = live.front();
    const SimTime outage_before =
        s.controller->connection(victim).total_outage;
    const LinkId cut =
        s.controller->connection(victim).plan.path.links.front();
    s.model->fail_link(cut);
    s.engine.run_until(s.engine.now() + minutes(30));
    const auto& after = s.controller->connection(victim);
    if (after.state == core::ConnectionState::kActive)
      t.restoration_s = to_seconds(after.total_outage - outage_before);
    s.model->repair_link(cut);
  }

  t.faults = injector.stats().nacks_injected +
             injector.stats().slow_commands + injector.stats().ems_crashes +
             injector.stats().frames_dropped +
             injector.stats().frames_duplicated +
             injector.stats().frames_delayed + injector.stats().ot_faults +
             injector.stats().fxc_sticks;
  t.fault_log = injector.render_log();
  injector.disarm();
  injector.heal_all();
  s.engine.run();
  return t;
}

/// One fully instrumented trial at a representative intensity: telemetry
/// attached (spans + event log + chaos counters), gauge sampler running on
/// the sim clock. Exports a Perfetto-loadable Chrome trace — injected
/// faults appear as instant events between the setup/restore span trees —
/// plus the sampler rollups, for the chaos-soak CI lane and
/// tools/validate_trace.py.
void instrumented_trial(const chaos::FaultPlan& plan) {
  core::TestbedScenario s(7100);
  telemetry::Telemetry tel(&s.engine);
  s.model->attach_telemetry(&tel);
  chaos::FaultInjector injector(s.model.get(), plan, 7100 * 7919 + 17);
  injector.set_telemetry(&tel);
  injector.arm();
  telemetry::GaugeSampler sampler(&s.engine, &tel);
  core::install_standard_probes(sampler, *s.controller, *s.model);
  sampler.start(from_seconds(10));

  const MuxponderId sites[3] = {s.site_i, s.site_iii, s.site_iv};
  std::vector<ConnectionId> live;
  for (int i = 0; i < 6; ++i) {
    s.portal->connect(sites[static_cast<std::size_t>(i % 3)],
                      sites[static_cast<std::size_t>((i + 1) % 3)],
                      i == 0 ? rates::k10G : rates::k1G,
                      core::ProtectionMode::kRestorable,
                      [&](Result<ConnectionId> r) {
                        if (r.ok()) live.push_back(r.value());
                      });
    s.engine.run_until(s.engine.now() + minutes(2));
  }
  s.engine.run_until(s.engine.now() + minutes(10));
  if (!live.empty()) {
    const LinkId cut =
        s.controller->connection(live.front()).plan.path.links.front();
    s.model->fail_link(cut);
    s.engine.run_until(s.engine.now() + minutes(30));
    s.model->repair_link(cut);
  }
  injector.disarm();
  injector.heal_all();
  s.engine.run_until(s.engine.now() + minutes(5));
  sampler.stop();

  if (std::ofstream f("trace_chaos.json"); f)
    f << telemetry::TraceExporter().to_json(tel) << "\n";
  if (std::ofstream f("SERIES_chaos.json"); f) f << sampler.rollups_json();
  std::cout << "\ninstrumented trial (intensity 1.0): " << live.size()
            << "/6 setups landed, " << tel.events().size()
            << " events logged; wrote trace_chaos.json and "
               "SERIES_chaos.json\n";
}

}  // namespace

int main() {
  bench::banner(
      "Chaos: setup success and restoration under fault injection");
  const chaos::FaultPlan base = chaos::FaultPlan::combined();
  constexpr double kIntensities[] = {0.0, 0.5, 1.0, 2.0};
  constexpr int kTrials = 8;

  bench::JsonEmitter json("chaos");
  bench::Table table({"intensity", "setup success", "restored",
                      "mean restore (s)", "p95 restore (s)", "faults"});
  std::ofstream plan_log("chaos_fault_plan.log");

  for (const double intensity : kIntensities) {
    const chaos::FaultPlan plan = base.scaled(intensity);
    int attempts = 0;
    int successes = 0;
    int restore_tried = 0;
    std::vector<double> restorations;
    std::uint64_t faults = 0;
    for (int i = 0; i < kTrials; ++i) {
      const Trial t =
          one_trial(7000 + static_cast<std::uint64_t>(i), plan,
                    intensity > 0);
      attempts += t.attempts;
      successes += t.successes;
      if (t.restore_tried) ++restore_tried;
      if (t.restoration_s >= 0) restorations.push_back(t.restoration_s);
      faults += t.faults;
      if (i == 0 && plan_log) {
        plan_log << "=== intensity " << bench::fmt(intensity, 1)
                 << " ===\n"
                 << plan.render() << "--- fault log (seed 7000) ---\n"
                 << t.fault_log << '\n';
      }
    }
    const double setup_rate =
        attempts > 0 ? static_cast<double>(successes) / attempts : 0.0;
    const double restore_rate =
        restore_tried > 0
            ? static_cast<double>(restorations.size()) / restore_tried
            : 0.0;
    const auto rest = bench::summarize(restorations);

    const std::string tag = "_i" + bench::fmt(intensity, 1);
    json.row("setup_success_rate" + tag, setup_rate, "fraction");
    json.row("restoration_success_rate" + tag, restore_rate, "fraction");
    json.row("restoration_mean" + tag, rest.mean, "s");
    json.row("restoration_p95" + tag, rest.p95, "s");

    table.row({bench::fmt(intensity, 1),
               std::to_string(successes) + "/" + std::to_string(attempts),
               std::to_string(restorations.size()) + "/" +
                   std::to_string(restore_tried),
               bench::fmt(rest.mean, 1), bench::fmt(rest.p95, 1),
               std::to_string(faults)});
  }
  table.print();

  std::cout << "\nshape check: intensity 0 (injector disarmed) is the "
               "production fast path — setup always lands and restoration "
               "is chaos-free; success degrades gracefully (not to zero) "
               "as intensity climbs, because retries, breakers and resync "
               "absorb the faults\n";

  instrumented_trial(base.scaled(1.0));

  json.write("BENCH_chaos.json");
  std::cout << "wrote BENCH_chaos.json and chaos_fault_plan.log\n";
  return 0;
}
