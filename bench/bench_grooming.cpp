// Experiment — §2.1's OTN packing claim:
//
//   "Compared to using muxponders in the DWDM layer to provide
//    sub-wavelength connections, the OTN layer with its switching
//    capability can achieve more efficient packing of wavelengths in the
//    transport network."
//
// Sub-wavelength demands are spread over the testbed's three relations.
// GRIPhoN starts with NO OTU carriers and grooms wavelengths on demand;
// the muxponder baseline must dedicate point-to-point wavelengths per
// relation (no intermediate switching, no sharing across relations).
// Metric: wavelengths consumed vs offered sub-wavelength load.
#include <iostream>

#include "bench_util.hpp"
#include "core/scenario.hpp"
#include "emit_json.hpp"

using namespace griphon;

namespace {

struct Outcome {
  int wavelengths = 0;
  int circuits = 0;
};

/// GRIPhoN: controller grooms OTU carriers as needed.
Outcome griphon_run(int circuits_per_relation) {
  sim::Engine engine(14000 + static_cast<std::uint64_t>(circuits_per_relation));
  auto topo = topology::paper_testbed();
  core::NetworkModel::Config cfg;
  cfg.otn_client_ports = 64;
  cfg.fxc_ports_per_node = 256;
  core::NetworkModel model(&engine, topo.graph, cfg);
  const CustomerId csp{1};
  // Enough access pipes for all circuits (4 ports each).
  std::vector<MuxponderId> at_i, at_iii, at_iv;
  const int pipes = (circuits_per_relation * 2 + 3) / 4 + 1;
  for (int k = 0; k < pipes; ++k) {
    at_i.push_back(model.add_customer_site(csp, "i", topo.i).nte);
    at_iii.push_back(model.add_customer_site(csp, "iii", topo.iii).nte);
    at_iv.push_back(model.add_customer_site(csp, "iv", topo.iv).nte);
  }
  core::GriphonController controller(&model,
                                     core::GriphonController::Params{});
  core::CustomerPortal portal(&controller, csp, DataRate::gbps(100000));

  Outcome out;
  auto issue = [&](MuxponderId a, MuxponderId b) {
    portal.connect(a, b, rates::k1G, core::ProtectionMode::kUnprotected,
                   [&](Result<ConnectionId> r) {
                     if (r.ok()) ++out.circuits;
                   });
    engine.run();
  };
  for (int c = 0; c < circuits_per_relation; ++c) {
    const auto k = static_cast<std::size_t>(c / 2);
    issue(at_i[k], at_iv[k]);
    issue(at_i[k], at_iii[k]);
    issue(at_iii[k], at_iv[k]);
  }
  out.wavelengths = static_cast<int>(controller.carriers_groomed());
  return out;
}

/// Muxponder baseline: each relation gets dedicated 10G waves, each able
/// to mux 8 x 1G clients, but NOT shareable across relations or groomable
/// mid-network.
int muxponder_waves(int circuits_per_relation) {
  const int per_relation = (circuits_per_relation + 7) / 8;
  return 3 * std::max(per_relation, circuits_per_relation > 0 ? 1 : 0);
}

}  // namespace

int main() {
  bench::banner(
      "OTN grooming vs muxponder point-to-point: wavelengths consumed by "
      "1G demand over three relations (I-IV, I-III, III-IV)");

  bench::Table table({"1G circuits per relation", "total 1G circuits",
                      "muxponder waves", "GRIPhoN groomed waves",
                      "saving"});
  bench::JsonEmitter json("grooming");
  for (const int n : {1, 2, 4, 8, 12}) {
    const Outcome g = griphon_run(n);
    const int mux = muxponder_waves(n);
    const double saving = (1.0 - static_cast<double>(g.wavelengths) /
                                     static_cast<double>(mux)) *
                          100;
    table.row({std::to_string(n), std::to_string(g.circuits),
               std::to_string(mux), std::to_string(g.wavelengths),
               bench::fmt(saving, 0) + "%"});
    const std::string key = "n" + std::to_string(n);
    json.row(key + "_muxponder_waves", mux, "waves");
    json.row(key + "_griphon_waves", g.wavelengths, "waves");
    json.row(key + "_saving", saving, "%");
  }
  table.print();
  json.write("BENCH_grooming.json");
  std::cout << "wrote BENCH_grooming.json\n";
  std::cout << "\nshape check: at low fill — the regime sub-wavelength "
               "services live in — OTN switching carries three relations on "
               "two wavelengths where muxponders strand one per relation "
               "(33% saving), which is the paper's 'more efficient packing' "
               "claim. As relations approach full wavelengths the advantage "
               "disappears (transit circuits burn slots on two carriers), "
               "which is precisely when the customer should buy a whole "
               "wavelength instead — the portal's decomposition policy "
               "does exactly that at >=8G.\n";
  return 0;
}
