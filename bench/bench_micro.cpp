// Micro-benchmarks (google-benchmark) for the computational hot paths of
// the GRIPhoN controller and its substrates: the simulation engine, path
// computation, RWA planning and protocol codecs. These bound how fast a
// production controller could make decisions, independent of EMS latency.
#include <benchmark/benchmark.h>

#include "core/inventory.hpp"
#include "core/network_model.hpp"
#include "core/rwa.hpp"
#include "proto/messages.hpp"
#include "sim/engine.hpp"
#include "topology/builders.hpp"

using namespace griphon;

namespace {

void BM_EngineScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i)
      engine.schedule(microseconds(i), []() {});
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleFire);

void BM_DijkstraBackbone(benchmark::State& state) {
  const auto g = topology::us_backbone();
  for (auto _ : state) {
    auto p = topology::shortest_path(g, NodeId{0}, NodeId{13},
                                     topology::distance_weight());
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_DijkstraBackbone);

void BM_YenKShortest(benchmark::State& state) {
  const auto g = topology::us_backbone();
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto paths = topology::k_shortest_paths(g, NodeId{0}, NodeId{13}, k,
                                            topology::distance_weight());
    benchmark::DoNotOptimize(paths);
  }
}
BENCHMARK(BM_YenKShortest)->Arg(2)->Arg(4)->Arg(8);

void BM_BhandariDisjointPair(benchmark::State& state) {
  const auto g = topology::us_backbone();
  for (auto _ : state) {
    auto pair = topology::disjoint_pair(g, NodeId{0}, NodeId{13},
                                        topology::distance_weight());
    benchmark::DoNotOptimize(pair);
  }
}
BENCHMARK(BM_BhandariDisjointPair);

void BM_RwaPlanBackbone(benchmark::State& state) {
  sim::Engine engine(1);
  core::NetworkModel::Config cfg;
  cfg.with_otn = false;
  cfg.regens_per_node = 4;
  core::NetworkModel model(&engine, topology::us_backbone(), cfg);
  core::Inventory inv(&model);
  core::RwaEngine rwa(&model, &inv, core::RwaEngine::Params{});
  for (auto _ : state) {
    auto plan = rwa.plan(NodeId{0}, NodeId{13}, rates::k10G);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_RwaPlanBackbone);

void BM_FrameEncode(benchmark::State& state) {
  const proto::Message m =
      proto::RoadmAddDrop{RoadmId{1}, PortId{6}, 1, 33, true};
  for (auto _ : state) {
    auto bytes = proto::encode_frame(12345, m);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_FrameEncode);

void BM_FrameDecode(benchmark::State& state) {
  const proto::Bytes bytes = proto::encode_frame(
      12345,
      proto::Message{proto::RoadmAddDrop{RoadmId{1}, PortId{6}, 1, 33, true}});
  for (auto _ : state) {
    auto frame = proto::decode_frame(bytes);
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_FrameDecode);

void BM_ChannelSetIntersect(benchmark::State& state) {
  dwdm::ChannelSet a = dwdm::ChannelSet::all(80);
  dwdm::ChannelSet b;
  for (int ch = 0; ch < 80; ch += 3) b.add(ch);
  for (auto _ : state) {
    dwdm::ChannelSet c = a & b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ChannelSetIntersect);

}  // namespace

BENCHMARK_MAIN();
