// Experiment E10 — §2.2's case for the client-side FXC:
//
//   "A client-side switch allows for dynamic sharing of transponders,
//    which is useful in keeping costs low."
//
// Compares two equipment models under identical bursty demand from three
// data-center customers at one PoP:
//  * shared pool: all OTs sit behind the FXC, any customer uses any OT
//    (GRIPhoN, colorless/steerable ports);
//  * dedicated: the same total number of OTs is statically split between
//    customers (no FXC), so one tenant's idle OTs cannot serve another.
//
// Metric: blocking probability at equal pool size — equivalently, how many
// fewer OTs the shared design needs for the same service level.
#include <iostream>

#include "bench_util.hpp"
#include "core/scenario.hpp"
#include "workload/arrivals.hpp"

using namespace griphon;

namespace {

struct Demand {
  std::size_t customer;
  SimTime at;
  SimTime holding;
};

/// Deterministic bursty demand: three customers, each with its own busy
/// period (like replication windows in different time zones).
std::vector<Demand> make_demand(Rng& rng, int per_customer) {
  std::vector<Demand> out;
  for (std::size_t c = 0; c < 3; ++c) {
    for (int i = 0; i < per_customer; ++i) {
      // Busy window of customer c centered at hour 2 + 8c.
      const double center_h = 2.0 + 8.0 * static_cast<double>(c);
      const double at_h = center_h + rng.uniform(-1.5, 1.5);
      out.push_back(Demand{c, from_seconds(at_h * 3600),
                           from_seconds(rng.uniform(0.5, 3.0) * 3600)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Demand& a, const Demand& b) { return a.at < b.at; });
  return out;
}

/// Simulate OT occupancy directly (each connection consumes one OT at the
/// shared PoP). Returns blocked fraction.
double simulate(const std::vector<Demand>& demand, int total_ots,
                bool shared) {
  // Partition: dedicated splits the pool evenly.
  const int per_customer = total_ots / 3;
  struct Active {
    SimTime until;
    std::size_t customer;
  };
  std::vector<Active> active;
  int blocked = 0;
  for (const Demand& d : demand) {
    std::erase_if(active,
                  [&](const Active& a) { return a.until <= d.at; });
    int in_use_total = static_cast<int>(active.size());
    int in_use_mine = static_cast<int>(
        std::count_if(active.begin(), active.end(), [&](const Active& a) {
          return a.customer == d.customer;
        }));
    const bool ok = shared ? in_use_total < total_ots
                           : in_use_mine < per_customer;
    if (!ok) {
      ++blocked;
      continue;
    }
    active.push_back(Active{d.at + d.holding, d.customer});
  }
  return static_cast<double>(blocked) / static_cast<double>(demand.size());
}

}  // namespace

int main() {
  bench::banner(
      "Transponder sharing via client-side FXC: shared pool vs dedicated");

  Rng rng(123);
  const auto demand = make_demand(rng, 12);  // 36 requests over a day

  bench::Table table({"OTs at the PoP", "dedicated (no FXC) blocking",
                      "shared pool (FXC) blocking"});
  for (const int pool : {3, 6, 9, 12, 15}) {
    table.row({std::to_string(pool),
               bench::fmt(simulate(demand, pool, false) * 100, 1) + "%",
               bench::fmt(simulate(demand, pool, true) * 100, 1) + "%"});
  }
  table.print();

  // OTs needed for (near-)zero blocking under each design.
  auto ots_needed = [&](bool shared) {
    for (int pool = 3; pool <= 36; pool += 3)
      if (simulate(demand, pool, shared) == 0.0) return pool;
    return 36;
  };
  const int shared_need = ots_needed(true);
  const int dedicated_need = ots_needed(false);
  std::cout << "\nOTs for zero blocking: shared pool " << shared_need
            << " vs dedicated " << dedicated_need << " ("
            << bench::fmt(
                   (1.0 - static_cast<double>(shared_need) /
                              static_cast<double>(dedicated_need)) *
                       100,
                   0)
            << "% fewer transponders)\n"
            << "\nshape check: staggered busy periods let the FXC-shared "
               "pool reuse idle transponders across customers — the cost "
               "argument for the client-side FXC\n";
  return 0;
}
