// Experiment E8 — §4 "Network re-grooming":
//
//   "As the GRIPhoN network grows, additional routes between nodes will be
//    added. This will make paths that were previously unavailable more
//    appropriate for some connections ... The process of re-provisioning
//    connections to achieve an improved network configuration is called
//    re-grooming. In order to perform re-grooming with minimal impact to
//    the CSP, the GRIPhoN bridge-and-roll can be used."
//
// Connections are provisioned while a direct span is out of service (the
// "before the new route existed" world); the span then enters service and
// the controller re-grooms. Reported: per-connection path-km before and
// after, and the service impact of the move.
#include <iostream>

#include "bench_util.hpp"
#include "core/scenario.hpp"

using namespace griphon;

int main() {
  bench::banner("Re-grooming after topology growth (bridge-and-roll)");

  core::NetworkModel::Config cfg;
  cfg.with_otn = false;
  core::TestbedScenario s(8001, cfg);
  // The direct I-IV fiber "does not exist yet".
  s.model->fail_link(s.topo.i_iv);

  std::vector<ConnectionId> ids;
  for (int i = 0; i < 3; ++i) {
    s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                      core::ProtectionMode::kUnprotected,
                      [&](Result<ConnectionId> r) {
                        if (r.ok()) ids.push_back(r.value());
                      });
    s.engine.run();
  }

  std::vector<double> before_km;
  for (const auto id : ids)
    before_km.push_back(
        s.controller->connection(id).plan.path.length(s.model->graph())
            .in_km());

  // The new fiber route enters service.
  s.model->repair_link(s.topo.i_iv);
  s.engine.run();

  int rolled = 0;
  for (const auto id : ids) {
    s.controller->regroom(id, [&](Status st) {
      if (st.ok()) ++rolled;
    });
    s.engine.run();
  }

  bench::Table table({"connection", "path before (km)", "path after (km)",
                      "improvement", "rolls", "outage from re-groom"});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& c = s.controller->connection(ids[i]);
    const double after = c.plan.path.length(s.model->graph()).in_km();
    table.row({std::to_string(ids[i].value()),
               bench::fmt(before_km[i], 0), bench::fmt(after, 0),
               bench::fmt((1 - after / before_km[i]) * 100, 0) + "%",
               std::to_string(c.rolls),
               bench::fmt(to_seconds(c.total_outage) * 1000, 0) + " ms"});
  }
  table.print();

  std::cout << "\nshape check: every connection moves to the shorter new "
               "route (lower latency, old spans off-loaded) with zero "
               "recorded outage — re-grooming 'with minimal impact to the "
               "CSP' via bridge-and-roll\n";
  return 0;
}
