// Re-optimization headline — ROADMAP "global re-optimization" item:
//
// Greedy first-fit provisioning fragments the wavelength plane as churn
// punches holes into the spectrum; on a continental backbone the stranded
// capacity shows up directly as blocked demand. This bench runs the same
// Poisson churn twice on a 50-node synthetic backbone (12 DC sites):
//
//   greedy        first-fit RWA only (the PR-6 baseline behaviour)
//   greedy+reopt  the same, plus the ReoptService compacting the plane
//                 with hitless bridge-and-roll campaigns every hour
//
// Gates (process exit code, consumed by CI):
//   1. blocking with reopt is strictly lower than greedy,
//   2. final mean fragmentation with reopt is lower than greedy,
//   3. campaigns never abort and no move fails,
//   4. re-optimization is service-invisible: zero restorations and zero
//      accumulated outage on the controller,
//   5. a full resync after the run finds no leaked device state.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/network_model.hpp"
#include "core/portal.hpp"
#include "emit_json.hpp"
#include "reopt/service.hpp"
#include "topology/builders.hpp"
#include "workload/arrivals.hpp"

using namespace griphon;

namespace {

/// A random subset of nodes acting as the data-center sites.
std::vector<NodeId> pick_sites(const topology::Graph& g, std::size_t count,
                               Rng& rng) {
  std::vector<NodeId> sites;
  for (const auto& node : g.nodes()) sites.push_back(node.id);
  for (std::size_t i = 0; i < count && i + 1 < sites.size(); ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i),
        static_cast<std::int64_t>(sites.size()) - 1));
    std::swap(sites[i], sites[j]);
  }
  sites.resize(std::min(count, sites.size()));
  return sites;
}

struct ArmResult {
  workload::PoissonConnectionLoad::Stats load;
  core::GriphonController::Stats controller;
  reopt::ReoptService::Stats reopt;
  double frag_mean = 0;
  double frag_max = 0;
  std::size_t resync_leaks = 0;
  std::size_t resync_drift = 0;
  std::size_t resync_passes = 0;
  bool resync_done = false;
};

ArmResult run_arm(const topology::Graph& graph,
                  const std::vector<NodeId>& dc_sites, std::uint64_t seed,
                  bool with_reopt) {
  sim::Engine engine(seed);
  core::NetworkModel::Config cfg;
  cfg.channels = 8;        // tight spectrum: fragmentation must hurt
  cfg.ots_per_node = 24;   // optics are not the bottleneck here
  cfg.regens_per_node = 8;
  cfg.fxc_ports_per_node = 128;
  cfg.with_otn = false;
  core::NetworkModel model(&engine, graph, cfg);
  model.trace().set_capacity(4096);

  const CustomerId csp{1};
  std::vector<MuxponderId> ntes;
  for (std::size_t k = 0; k < dc_sites.size(); ++k)
    ntes.push_back(
        model.add_customer_site(csp, "DC-" + std::to_string(k), dc_sites[k])
            .nte);
  core::GriphonController controller(&model,
                                     core::GriphonController::Params{});
  core::CustomerPortal portal(&controller, csp, DataRate::gbps(1000000));

  workload::PoissonConnectionLoad::Params lp;
  lp.arrivals_per_hour = 14.0;
  lp.mean_holding = hours(2);
  lp.rate = rates::k10G;
  for (std::size_t a = 0; a < ntes.size(); ++a)
    for (std::size_t b = a + 1; b < ntes.size(); ++b)
      lp.pairs.emplace_back(ntes[a], ntes[b]);
  workload::PoissonConnectionLoad load(&engine, &portal, lp);

  reopt::ReoptService::Params rp;
  rp.period = hours(1);
  rp.trip_threshold = 0.02;  // mean over ~80 links, most idle: trip early
  rp.min_moves = 1;
  rp.max_moves_per_campaign = 32;
  for (std::size_t a = 0; a < dc_sites.size(); ++a)
    for (std::size_t b = a + 1; b < dc_sites.size(); ++b)
      rp.pairs.emplace_back(dc_sites[a], dc_sites[b]);
  reopt::ReoptService service(&controller, rp);

  const SimTime horizon = hours(72);
  load.run_until(horizon);
  if (with_reopt) service.start();
  engine.run_until(horizon);

  ArmResult out;
  // Score the plane while it is still loaded — after the drain below the
  // held connections expire and an empty network scores 0 in both arms.
  const reopt::FragmentationReport& report = service.analyze();
  out.frag_mean = report.mean_score;
  out.frag_max = report.max_score;
  if (with_reopt) service.stop();
  engine.run();  // drain teardowns / the tail of the last campaign

  out.load = load.stats();
  out.controller = controller.stats();
  out.reopt = service.stats();
  // Teardown leaves OTs tuned for fast reuse; the first resync pass
  // repairs those, so sweep until the plant audits clean (bounded).
  for (int pass = 0; pass < 4; ++pass) {
    out.resync_done = false;
    controller.resync(
        [&out](Result<core::GriphonController::ResyncReport> r) {
          if (!r.ok()) return;
          out.resync_leaks = r.value().total_leaks();
          out.resync_drift = r.value().drifted_connections;
          out.resync_done = true;
          ++out.resync_passes;
        });
    engine.run();
    if (out.resync_done && out.resync_leaks == 0 && out.resync_drift == 0)
      break;
  }
  return out;
}

}  // namespace

int main() {
  bench::banner(
      "Batch defragmentation on a 50-node backbone: 72 h of Poisson churn "
      "(12 DC sites, 8-channel links), greedy first-fit vs greedy + hourly "
      "re-optimization campaigns");

  Rng mesh_rng(4242);
  const auto backbone = topology::random_mesh(50, 3.2, mesh_rng);
  Rng site_rng(977);
  const auto dc_sites = pick_sites(backbone, 12, site_rng);

  const std::uint64_t seed = 20110804;
  const ArmResult greedy = run_arm(backbone, dc_sites, seed, false);
  const ArmResult reopt = run_arm(backbone, dc_sites, seed, true);

  bench::Table table({"arm", "offered", "blocked", "blocking", "frag mean",
                      "frag max", "rolls ok"},
                     14);
  const auto row = [&](const char* name, const ArmResult& r) {
    table.row({name, std::to_string(r.load.offered),
               std::to_string(r.load.blocked),
               bench::fmt(r.load.blocking_probability() * 100, 2) + "%",
               bench::fmt(r.frag_mean, 4), bench::fmt(r.frag_max, 3),
               std::to_string(r.controller.rolls_ok)});
  };
  row("greedy", greedy);
  row("greedy+reopt", reopt);
  table.print();

  std::cout << "\nreopt campaigns: " << reopt.reopt.campaigns_completed
            << " completed, " << reopt.reopt.campaigns_aborted << " aborted; "
            << reopt.reopt.moves_rolled << " moves rolled, "
            << reopt.reopt.moves_skipped << " skipped, "
            << reopt.reopt.moves_failed << " failed, "
            << reopt.reopt.cycle_breaks << " cycle breaks\n";

  bench::JsonEmitter json("reopt");
  json.row("greedy_blocking", greedy.load.blocking_probability() * 100, "%");
  json.row("reopt_blocking", reopt.load.blocking_probability() * 100, "%");
  json.row("greedy_frag_mean", greedy.frag_mean, "score");
  json.row("reopt_frag_mean", reopt.frag_mean, "score");
  json.row("reopt_moves_rolled",
           static_cast<double>(reopt.reopt.moves_rolled), "moves");
  json.row("reopt_campaigns_completed",
           static_cast<double>(reopt.reopt.campaigns_completed), "campaigns");
  json.row("reopt_cycle_breaks",
           static_cast<double>(reopt.reopt.cycle_breaks), "breaks");
  json.row("reopt_rolls_ok", static_cast<double>(reopt.controller.rolls_ok),
           "rolls");
  json.write("BENCH_reopt.json");
  std::cout << "wrote BENCH_reopt.json\n\n";

  // --- gates --------------------------------------------------------------
  int failures = 0;
  const auto gate = [&](bool ok, const std::string& what) {
    std::cout << (ok ? "PASS  " : "FAIL  ") << what << "\n";
    if (!ok) ++failures;
  };
  // The arms draw different RNG tails (campaign think times share the
  // engine RNG), so offered counts differ slightly: compare probabilities.
  gate(reopt.load.blocking_probability() <
           greedy.load.blocking_probability(),
       "blocking probability strictly lower with re-optimization (" +
           bench::fmt(reopt.load.blocking_probability() * 100, 2) + "% < " +
           bench::fmt(greedy.load.blocking_probability() * 100, 2) + "%)");
  gate(reopt.frag_mean < greedy.frag_mean,
       "final fragmentation lower with re-optimization (" +
           bench::fmt(reopt.frag_mean, 4) + " < " +
           bench::fmt(greedy.frag_mean, 4) + ")");
  gate(reopt.reopt.campaigns_aborted == 0 && reopt.reopt.moves_failed == 0 &&
           reopt.controller.rolls_failed == 0,
       "no campaign aborted, no move failed, no roll failed");
  gate(reopt.controller.restorations_ok == 0 &&
           reopt.controller.restorations_failed == 0,
       "re-optimization triggered zero restorations (service-invisible)");
  // Every controller roll in this scenario is a reopt move (plus one
  // extra roll per cycle break's scratch hop): nothing unaccounted.
  gate(reopt.controller.rolls_ok ==
           reopt.reopt.moves_rolled + reopt.reopt.cycle_breaks,
       "every completed roll accounted to a campaign move (" +
           std::to_string(reopt.controller.rolls_ok) + " rolls = " +
           std::to_string(reopt.reopt.moves_rolled) + " moves + " +
           std::to_string(reopt.reopt.cycle_breaks) + " scratch hops)");
  gate(reopt.resync_done && reopt.resync_leaks == 0 &&
           reopt.resync_drift == 0,
       "post-run resync sweeps clean (" +
           std::to_string(reopt.resync_leaks) + " leaks, " +
           std::to_string(reopt.resync_drift) + " drifted after " +
           std::to_string(reopt.resync_passes) + " pass(es))");
  if (failures != 0) {
    std::cout << "\n" << failures << " gate(s) FAILED\n";
    return 1;
  }
  std::cout << "\nall gates passed\n";
  return 0;
}
