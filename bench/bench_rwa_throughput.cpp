// RWA provisioning hot-path throughput.
//
// The paper's headline is ~60 s automated wavelength setup vs. weeks of
// manual provisioning; the simulator's headline cost is how fast
// RwaEngine::plan() itself runs, because the week-long Poisson studies
// (bench_blocking, bench_ot_sharing) call it for every arrival. This bench
// measures raw plans/sec and plan-latency percentiles on
//   * the paper's 4-node lab testbed, and
//   * a 50-node synthetic continental backbone (topology::builders
//     random_mesh), the scale target of the ROADMAP north star, in two
//     pair distributions: `dc12` draws requests among 12 data-center
//     sites (the paper's inter-DC workload — heavy pair reuse, which the
//     per-pair route cache serves), and `cold` draws 2000 all-distinct
//     ordered pairs (no reuse, so every call pays the full Yen's cost),
// under a churning reservation overlay (every successful plan reserves its
// resources; a random older plan is released), which is what the inventory
// indexes exist for. Results go to stdout as a table and to BENCH_rwa.json
// as {bench, metric, value, unit} rows for the perf trajectory.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/network_model.hpp"
#include "core/rwa.hpp"
#include "emit_json.hpp"
#include "telemetry/telemetry.hpp"
#include "topology/builders.hpp"

using namespace griphon;

namespace {

using Clock = std::chrono::steady_clock;

struct Measurement {
  double plans_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::size_t planned = 0;  ///< plans that produced a wavelength plan
  std::size_t calls = 0;
};

double percentile(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const double idx = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1 - frac) + xs[hi] * frac;
}

/// A reserved plan we may later release (simulating teardown).
struct Held {
  core::WavelengthPlan plan;
};

void reserve(core::Inventory& inv, const core::WavelengthPlan& plan) {
  for (const auto& seg : plan.segments)
    for (std::size_t i = seg.first_link; i <= seg.last_link; ++i)
      inv.reserve_channel(plan.path.links[i], seg.channel);
  inv.reserve_ot(plan.src_ot);
  inv.reserve_ot(plan.dst_ot);
  for (const RegenId r : plan.regens) inv.reserve_regen(r);
}

void release(core::Inventory& inv, const core::WavelengthPlan& plan) {
  for (const auto& seg : plan.segments)
    for (std::size_t i = seg.first_link; i <= seg.last_link; ++i)
      inv.release_channel(plan.path.links[i], seg.channel);
  inv.release_ot(plan.src_ot);
  inv.release_ot(plan.dst_ot);
  for (const RegenId r : plan.regens) inv.release_regen(r);
}

/// Uniform ordered pairs of distinct sites, pre-generated so the timed
/// loop only measures planning + churn.
std::vector<std::pair<NodeId, NodeId>> random_pairs(
    const std::vector<NodeId>& sites, std::size_t count, Rng& rng) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(count);
  const auto n = static_cast<std::int64_t>(sites.size());
  for (std::size_t i = 0; i < count; ++i) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    auto b = a;
    while (b == a) b = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    pairs.emplace_back(sites[a], sites[b]);
  }
  return pairs;
}

/// All ordered pairs of distinct nodes, shuffled, truncated to `count`:
/// every call hits a pair the engine has never planned before.
std::vector<std::pair<NodeId, NodeId>> distinct_pairs(
    const topology::Graph& g, std::size_t count, Rng& rng) {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const auto& a : g.nodes())
    for (const auto& b : g.nodes())
      if (a.id != b.id) pairs.emplace_back(a.id, b.id);
  for (std::size_t i = pairs.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(pairs[i - 1], pairs[j]);
  }
  if (pairs.size() > count) pairs.resize(count);
  return pairs;
}

/// A random subset of nodes acting as the data-center sites.
std::vector<NodeId> pick_sites(const topology::Graph& g, std::size_t count,
                               Rng& rng) {
  std::vector<NodeId> sites;
  for (const auto& node : g.nodes()) sites.push_back(node.id);
  for (std::size_t i = 0; i < count && i + 1 < sites.size(); ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i),
        static_cast<std::int64_t>(sites.size()) - 1));
    std::swap(sites[i], sites[j]);
  }
  sites.resize(std::min(count, sites.size()));
  return sites;
}

Measurement run(const topology::Graph& graph,
                const std::vector<std::pair<NodeId, NodeId>>& pairs,
                core::WavelengthPolicy policy, std::uint64_t seed,
                bool with_telemetry = false) {
  sim::Engine engine(seed);
  core::NetworkModel::Config cfg;
  cfg.with_otn = false;          // the photonic hot path is what we measure
  cfg.ots_per_node = 8;
  cfg.regens_per_node = 4;
  core::NetworkModel model(&engine, graph, cfg);
  telemetry::Telemetry sink(&engine);
  if (with_telemetry) model.attach_telemetry(&sink);
  core::Inventory inventory(&model);
  core::RwaEngine::Params params;
  params.policy = policy;
  params.route_candidates = 4;
  core::RwaEngine rwa(&model, &inventory, params);

  Rng rng(seed);
  std::vector<Held> held;
  std::vector<double> latencies_us;
  latencies_us.reserve(pairs.size());

  Measurement m;
  m.calls = pairs.size();
  const auto t0 = Clock::now();
  for (const auto& [src, dst] : pairs) {
    const auto c0 = Clock::now();
    auto result = rwa.plan(src, dst, rates::k10G);
    const auto c1 = Clock::now();
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(c1 - c0).count());

    if (result.ok()) {
      ++m.planned;
      reserve(inventory, result.value());
      held.push_back(Held{std::move(result.value())});
    }
    // Churn: hold roughly 2/3 of successful plans, release the rest so
    // the overlay stays populated but the network never wedges.
    if (!held.empty() && rng.chance(0.33)) {
      const auto victim = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(held.size()) - 1));
      release(inventory, held[victim].plan);
      held[victim] = std::move(held.back());
      held.pop_back();
    }
  }
  const auto t1 = Clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  m.plans_per_sec =
      secs > 0 ? static_cast<double>(pairs.size()) / secs : 0;
  m.p50_us = percentile(latencies_us, 0.50);
  m.p99_us = percentile(latencies_us, 0.99);
  return m;
}

}  // namespace

int main() {
  bench::banner(
      "RWA provisioning throughput: plans/sec and plan latency under a "
      "churning reservation overlay");

  auto testbed = topology::paper_testbed();
  Rng mesh_rng(4242);
  const auto backbone = topology::random_mesh(50, 3.2, mesh_rng);

  std::vector<NodeId> testbed_sites;
  for (const auto& node : testbed.graph.nodes())
    testbed_sites.push_back(node.id);
  Rng pair_rng(977);
  const auto testbed_pairs = random_pairs(testbed_sites, 20000, pair_rng);
  const auto dc_sites = pick_sites(backbone, 12, pair_rng);
  const auto dc_pairs = random_pairs(dc_sites, 20000, pair_rng);
  const auto cold_pairs = distinct_pairs(backbone, 2000, pair_rng);

  struct Case {
    std::string name;
    const topology::Graph* graph;
    const std::vector<std::pair<NodeId, NodeId>>* pairs;
    core::WavelengthPolicy policy;
  };
  const Case cases[] = {
      {"testbed_first_fit", &testbed.graph, &testbed_pairs,
       core::WavelengthPolicy::kFirstFit},
      {"testbed_most_used", &testbed.graph, &testbed_pairs,
       core::WavelengthPolicy::kMostUsed},
      {"backbone50_dc12_first_fit", &backbone, &dc_pairs,
       core::WavelengthPolicy::kFirstFit},
      {"backbone50_dc12_most_used", &backbone, &dc_pairs,
       core::WavelengthPolicy::kMostUsed},
      {"backbone50_cold_first_fit", &backbone, &cold_pairs,
       core::WavelengthPolicy::kFirstFit},
      {"backbone50_cold_most_used", &backbone, &cold_pairs,
       core::WavelengthPolicy::kMostUsed},
  };

  bench::Table table(
      {"scenario", "plans/sec", "p50 us", "p99 us", "planned/calls"}, 26);
  bench::JsonEmitter json("rwa_throughput");
  for (const Case& c : cases) {
    const Measurement m = run(*c.graph, *c.pairs, c.policy, 1234);
    table.row({c.name, bench::fmt(m.plans_per_sec, 0), bench::fmt(m.p50_us, 1),
               bench::fmt(m.p99_us, 1),
               std::to_string(m.planned) + "/" + std::to_string(m.calls)});
    json.row(c.name + "_plans_per_sec", m.plans_per_sec, "plans/s");
    json.row(c.name + "_p50_latency", m.p50_us, "us");
    json.row(c.name + "_p99_latency", m.p99_us, "us");
  }
  table.print();

  // Telemetry overhead: the instrumentation is compiled in everywhere, so
  // its cost with no sink attached must be a pointer test, and with a sink
  // a couple of counter bumps per plan. Interleaved best-of-3 pairs on the
  // testbed first-fit case (the fastest per-plan path, i.e. the worst case
  // for relative overhead); budget: < 5%.
  bench::banner("Telemetry overhead on testbed first-fit (best of 3 pairs)");
  double best_off = 0;
  double best_on = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const Measurement off = run(testbed.graph, testbed_pairs,
                                core::WavelengthPolicy::kFirstFit, 1234);
    const Measurement on =
        run(testbed.graph, testbed_pairs, core::WavelengthPolicy::kFirstFit,
            1234, /*with_telemetry=*/true);
    best_off = std::max(best_off, off.plans_per_sec);
    best_on = std::max(best_on, on.plans_per_sec);
  }
  const double overhead_pct =
      best_on > 0 ? (best_off / best_on - 1.0) * 100 : 0;
  bench::Table ot({"config", "plans/sec"}, 26);
  ot.row({"telemetry off", bench::fmt(best_off, 0)});
  ot.row({"telemetry on", bench::fmt(best_on, 0)});
  ot.print();
  std::cout << "overhead: " << bench::fmt(overhead_pct, 2) << "% ("
            << (overhead_pct < 5.0 ? "within" : "EXCEEDS")
            << " the 5% budget)\n";
  json.row("telemetry_off_plans_per_sec", best_off, "plans/s");
  json.row("telemetry_on_plans_per_sec", best_on, "plans/s");
  json.row("telemetry_overhead", overhead_pct, "%");

  json.write("BENCH_rwa.json");
  std::cout << "\nwrote BENCH_rwa.json\n";
  return 0;
}
