// Experiment E2 — the paper's in-text timing claims (§3):
//
//   "The establishment of a wavelength connection ranges from 60 to 70
//    seconds ... Tearing down a wavelength connection takes around 10
//    seconds."
//
// Distribution over 50 independent runs of a direct (1-hop) wavelength
// setup and teardown on the testbed, plus the same workflow at a
// sub-wavelength rate for contrast (electronic, no optical tasks).
#include <iostream>

#include "bench_util.hpp"
#include "core/scenario.hpp"
#include "emit_json.hpp"

using namespace griphon;

namespace {

struct Times {
  std::vector<double> setup;
  std::vector<double> teardown;
};

Times run_many(DataRate rate, int runs,
               core::ExecMode mode = core::ExecMode::kSequential) {
  Times t;
  for (int i = 0; i < runs; ++i) {
    core::GriphonController::Params params;
    params.exec_mode = mode;
    core::TestbedScenario s(9000 + static_cast<std::uint64_t>(i),
                            core::NetworkModel::Config{}, params);
    std::optional<ConnectionId> id;
    s.portal->connect(s.site_i, s.site_iv, rate,
                      core::ProtectionMode::kRestorable,
                      [&](Result<ConnectionId> r) {
                        if (r.ok()) id = r.value();
                      });
    s.engine.run();
    if (!id) continue;
    t.setup.push_back(
        to_seconds(s.controller->connection(*id).setup_duration));
    const SimTime start = s.engine.now();
    s.portal->disconnect(*id, [](Status) {});
    s.engine.run();
    t.teardown.push_back(to_seconds(s.engine.now() - start));
  }
  return t;
}

void report(const char* label, const std::vector<double>& xs,
            const char* paper, bench::JsonEmitter& json,
            const std::string& key) {
  const auto s = bench::summarize(xs);
  bench::Table table({"metric", "paper", "mean (s)", "p50 (s)", "p95 (s)",
                      "min-max (s)"});
  table.row({label, paper, bench::fmt(s.mean), bench::fmt(s.p50),
             bench::fmt(s.p95),
             bench::fmt(s.min) + " - " + bench::fmt(s.max)});
  table.print();
  json.row(key + "_mean", s.mean, "s");
  json.row(key + "_p50", s.p50, "s");
  json.row(key + "_p95", s.p95, "s");
}

}  // namespace

int main() {
  constexpr int kRuns = 50;
  bench::banner(
      "Setup / teardown time distributions (50 runs, 1-hop path, "
      "sequential executor as in the 2011 testbed)");

  bench::JsonEmitter json("setup_teardown");
  const Times wave = run_many(rates::k10G, kRuns);
  report("10G wavelength setup", wave.setup, "60-70 s", json, "wave_setup");
  report("10G wavelength teardown", wave.teardown, "~10 s", json,
         "wave_teardown");

  const Times odu = run_many(rates::k1G, kRuns);
  report("1G sub-wavelength setup (OTN)", odu.setup, "(not measured)", json,
         "odu_setup");
  report("1G sub-wavelength teardown", odu.teardown, "(not measured)", json,
         "odu_teardown");

  bench::banner(
      "Same workflow under the dependency-DAG executor (controller default)");
  const Times fast = run_many(rates::k10G, kRuns, core::ExecMode::kDag);
  report("10G wavelength setup (DAG)", fast.setup, "(beats Table 2)", json,
         "dag_wave_setup");
  report("10G wavelength teardown (DAG)", fast.teardown, "(beats ~10 s)",
         json, "dag_wave_teardown");
  json.write("BENCH_setup.json");

  std::cout << "\nshape check: sequential wavelength setup sits in the "
               "60-70 s band and teardown near 10 s; the electronic "
               "sub-wavelength path avoids laser tuning / WSS steering and "
               "is several times faster; the DAG executor overlaps "
               "independent dialogues and cuts the optical setup well below "
               "the paper band\nwrote BENCH_setup.json\n";
  return 0;
}
