// Restoration storm headline — ISSUE 10 / DESIGN.md §17:
//
// A backhoe cutting a conduit takes down every SRLG sibling fiber at once,
// failing a whole corridor of connections in one correlated event. The 2011
// controller restored them one at a time; the storm pipeline drains the
// tier-ordered queue with configurable parallelism. This bench stages the
// same conduit cut twice on a 50-node synthetic backbone (12 DC sites):
//
//   serial      max_concurrent=1 (the 2011 one-at-a-time pump)
//   concurrent  max_concurrent=8, per-domain admission window 8
//
// A discovery pass (no SRLGs, same seed — SRLGs do not affect initial
// routing) finds the three links carrying the most restorable connections;
// those become the shared conduit, and both measured arms cut it in one
// instant so the FailureManager collapses the sibling alarms into a single
// storm event.
//
// Gates (process exit code, consumed by CI):
//   1. the concurrent arm restores strictly more affected connections
//      within the 60 s window than the serial arm,
//   2. both arms collapse the simultaneous sibling cuts into exactly one
//      correlated storm event,
//   3. zero gold connections stranded once capacity exists: none after the
//      pre-repair drain in the concurrent arm (the mesh has spare
//      channels), and none in either arm after the conduit is spliced —
//      with the retry backlog empty and the storm flag clear,
//   4. a full resync after the run finds no leaked device state.
#include <algorithm>
#include <iostream>
#include <map>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/network_model.hpp"
#include "core/portal.hpp"
#include "emit_json.hpp"
#include "topology/builders.hpp"

using namespace griphon;

namespace {

constexpr std::size_t kConduitSize = 3;
constexpr std::size_t kConnections = 24;

/// A random subset of nodes acting as the data-center sites.
std::vector<NodeId> pick_sites(const topology::Graph& g, std::size_t count,
                               Rng& rng) {
  std::vector<NodeId> sites;
  for (const auto& node : g.nodes()) sites.push_back(node.id);
  for (std::size_t i = 0; i < count && i + 1 < sites.size(); ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i),
        static_cast<std::int64_t>(sites.size()) - 1));
    std::swap(sites[i], sites[j]);
  }
  sites.resize(std::min(count, sites.size()));
  return sites;
}

/// Deterministic demand set: site pairs drawn by seeded shuffle, tiers
/// assigned round-robin so the cut hits every class of service.
struct Demand {
  std::size_t src;
  std::size_t dst;
  core::ServiceTier tier;
};

std::vector<Demand> build_demands(std::size_t sites, std::size_t count,
                                  Rng& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t a = 0; a < sites; ++a)
    for (std::size_t b = a + 1; b < sites; ++b) pairs.emplace_back(a, b);
  for (std::size_t i = 0; i + 1 < pairs.size(); ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i),
        static_cast<std::int64_t>(pairs.size()) - 1));
    std::swap(pairs[i], pairs[j]);
  }
  pairs.resize(std::min(count, pairs.size()));
  static constexpr core::ServiceTier kTiers[] = {core::ServiceTier::kGold,
                                                 core::ServiceTier::kSilver,
                                                 core::ServiceTier::kBronze};
  std::vector<Demand> demands;
  for (std::size_t i = 0; i < pairs.size(); ++i)
    demands.push_back(
        {pairs[i].first, pairs[i].second, kTiers[i % 3]});
  return demands;
}

struct Testbed {
  sim::Engine engine;
  core::NetworkModel model;
  core::GriphonController controller;
  core::CustomerPortal portal;
  std::vector<MuxponderId> ntes;

  Testbed(const topology::Graph& graph, const std::vector<NodeId>& dc_sites,
          std::uint64_t seed, const core::GriphonController::Params& params)
      : engine(seed),
        model(&engine, graph,
              [] {
                core::NetworkModel::Config cfg;
                cfg.channels = 8;
                cfg.ots_per_node = 24;
                cfg.regens_per_node = 8;
                cfg.fxc_ports_per_node = 128;
                cfg.with_otn = false;
                return cfg;
              }()),
        controller(&model, params),
        portal(&controller, CustomerId{1}, DataRate::gbps(1000000)) {
    model.trace().set_capacity(4096);
    for (std::size_t k = 0; k < dc_sites.size(); ++k)
      ntes.push_back(
          model.add_customer_site(CustomerId{1}, "DC-" + std::to_string(k),
                                  dc_sites[k])
              .nte);
  }

  /// Establish the demand set; returns the ids that came up.
  std::vector<ConnectionId> establish(const std::vector<Demand>& demands) {
    std::vector<ConnectionId> ids;
    for (const Demand& d : demands) {
      std::optional<ConnectionId> id;
      portal.connect(
          ntes[d.src], ntes[d.dst], rates::k10G,
          core::ProtectionMode::kRestorable,
          [&](Result<ConnectionId> r) {
            if (r.ok()) id = r.value();
          },
          d.tier);
      engine.run();
      if (id) ids.push_back(*id);
    }
    return ids;
  }
};

/// Discovery pass: establish the demand set on the bare mesh and return the
/// links carrying the most restorable connections — the conduit to cut.
std::vector<LinkId> find_conduit(const topology::Graph& graph,
                                 const std::vector<NodeId>& dc_sites,
                                 std::uint64_t seed,
                                 const std::vector<Demand>& demands) {
  Testbed bed(graph, dc_sites, seed, core::GriphonController::Params{});
  const auto ids = bed.establish(demands);
  std::map<LinkId, std::size_t> usage;
  for (const ConnectionId id : ids)
    for (const LinkId l : bed.controller.connection(id).plan.path.links)
      ++usage[l];
  std::vector<std::pair<LinkId, std::size_t>> ranked(usage.begin(),
                                                     usage.end());
  // Busiest first; ties broken by link id so the pick is deterministic.
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first.value() < y.first.value();
  });
  std::vector<LinkId> conduit;
  for (std::size_t i = 0; i < ranked.size() && conduit.size() < kConduitSize;
       ++i)
    conduit.push_back(ranked[i].first);
  return conduit;
}

struct ArmResult {
  std::size_t established = 0;
  std::size_t affected = 0;
  std::size_t restored_60 = 0;
  std::size_t gold_affected = 0;
  std::size_t gold_stranded_after_drain = 0;
  std::size_t gold_stranded_final = 0;
  std::size_t stranded_final = 0;
  std::size_t backlog_final = 0;
  std::size_t storms = 0;
  bool storm_clear = false;
  core::GriphonController::Stats controller;
  std::size_t resync_leaks = 0;
  std::size_t resync_drift = 0;
  bool resync_done = false;

  [[nodiscard]] double restored_60_pct() const {
    return affected == 0
               ? 0.0
               : 100.0 * static_cast<double>(restored_60) /
                     static_cast<double>(affected);
  }
};

ArmResult run_arm(const topology::Graph& graph,
                  const std::vector<NodeId>& dc_sites, std::uint64_t seed,
                  const std::vector<Demand>& demands,
                  const std::vector<LinkId>& conduit,
                  std::size_t max_concurrent) {
  core::GriphonController::Params params;
  params.restoration.max_concurrent = max_concurrent;
  params.restoration.per_domain_inflight = std::max<std::size_t>(
      max_concurrent, params.restoration.per_domain_inflight);
  Testbed bed(graph, dc_sites, seed, params);
  const auto ids = bed.establish(demands);

  ArmResult out;
  out.established = ids.size();
  const auto uses_conduit = [&](ConnectionId id) {
    const auto& path = bed.controller.connection(id).plan.path;
    return std::any_of(conduit.begin(), conduit.end(),
                       [&](LinkId l) { return path.uses_link(l); });
  };
  std::vector<ConnectionId> affected;
  for (const ConnectionId id : ids)
    if (uses_conduit(id)) {
      affected.push_back(id);
      if (bed.controller.connection(id).tier == core::ServiceTier::kGold)
        ++out.gold_affected;
    }
  out.affected = affected.size();

  // The backhoe: every fiber in the conduit at the same instant.
  for (const LinkId l : conduit) bed.model.fail_link(l);
  bed.engine.run_until(bed.engine.now() + seconds(60));
  for (const ConnectionId id : affected)
    if (bed.controller.connection(id).is_up()) ++out.restored_60;

  // Drain: timed retries run their course, the rest goes dormant.
  bed.engine.run();
  for (const ConnectionId id : affected) {
    const auto& c = bed.controller.connection(id);
    if (!c.is_up() && c.tier == core::ServiceTier::kGold)
      ++out.gold_stranded_after_drain;
  }

  // Splice the conduit; the repair notification re-arms the backlog.
  for (const LinkId l : conduit) bed.model.repair_link(l);
  bed.engine.run();
  for (const ConnectionId id : affected) {
    const auto& c = bed.controller.connection(id);
    if (c.is_up()) continue;
    ++out.stranded_final;
    if (c.tier == core::ServiceTier::kGold) ++out.gold_stranded_final;
  }
  out.backlog_final = bed.controller.restoration_backlog_depth();
  out.storms = bed.controller.failure_manager().storms_seen();
  out.storm_clear = !bed.controller.restoration_storm_active();
  out.controller = bed.controller.stats();

  // Teardown-free run, but restorations leave retuned OTs behind; sweep
  // until the plant audits clean (bounded), as the reopt bench does.
  for (int pass = 0; pass < 4; ++pass) {
    out.resync_done = false;
    bed.controller.resync(
        [&out](Result<core::GriphonController::ResyncReport> r) {
          if (!r.ok()) return;
          out.resync_leaks = r.value().total_leaks();
          out.resync_drift = r.value().drifted_connections;
          out.resync_done = true;
        });
    bed.engine.run();
    if (out.resync_done && out.resync_leaks == 0 && out.resync_drift == 0)
      break;
  }
  return out;
}

}  // namespace

int main() {
  bench::banner(
      "Restoration storm on a 50-node backbone: one 3-fiber SRLG conduit "
      "cut under 24 tiered connections (12 DC sites), serial pump vs "
      "concurrent tiered pipeline");

  Rng mesh_rng(4242);
  const auto backbone = topology::random_mesh(50, 3.2, mesh_rng);
  Rng site_rng(977);
  const auto dc_sites = pick_sites(backbone, 12, site_rng);
  Rng demand_rng(31337);
  const auto demands =
      build_demands(dc_sites.size(), kConnections, demand_rng);

  const std::uint64_t seed = 20110804;
  const auto conduit = find_conduit(backbone, dc_sites, seed, demands);
  topology::Graph rigged = backbone;
  for (const LinkId l : conduit) rigged.set_srlg(l, 1);
  std::cout << "conduit (" << conduit.size() << " fibers):";
  for (const LinkId l : conduit)
    std::cout << " " << backbone.link(l).name << "(#" << l.value() << ")";
  std::cout << "\n";

  const ArmResult serial = run_arm(rigged, dc_sites, seed, demands, conduit,
                                   /*max_concurrent=*/1);
  const ArmResult conc = run_arm(rigged, dc_sites, seed, demands, conduit,
                                 /*max_concurrent=*/8);

  bench::Table table({"arm", "affected", "restored<60s", "gold stranded",
                      "retries", "non-diverse", "storms"},
                     14);
  const auto row = [&](const char* name, const ArmResult& r) {
    table.row({name, std::to_string(r.affected),
               std::to_string(r.restored_60) + " (" +
                   bench::fmt(r.restored_60_pct(), 0) + "%)",
               std::to_string(r.gold_stranded_final),
               std::to_string(r.controller.restorations_retried),
               std::to_string(r.controller.restorations_non_diverse),
               std::to_string(r.storms)});
  };
  row("serial", serial);
  row("concurrent", conc);
  table.print();
  std::cout << "\nconcurrent arm: " << conc.established << " established, "
            << conc.affected << " cut (" << conc.gold_affected << " gold), "
            << conc.controller.restorations_ok << " restorations ok, "
            << conc.gold_stranded_after_drain
            << " gold stranded pre-repair, backlog " << conc.backlog_final
            << " after splice\n";

  bench::JsonEmitter json("storm");
  json.row("affected_connections", static_cast<double>(conc.affected),
           "connections");
  json.row("serial_restored_60_pct", serial.restored_60_pct(), "%");
  json.row("concurrent_restored_60_pct", conc.restored_60_pct(), "%");
  json.row("serial_gold_stranded", static_cast<double>(
               serial.gold_stranded_final), "connections");
  json.row("concurrent_gold_stranded", static_cast<double>(
               conc.gold_stranded_final), "connections");
  json.row("concurrent_gold_stranded_pre_repair",
           static_cast<double>(conc.gold_stranded_after_drain),
           "connections");
  json.row("concurrent_restorations_retried",
           static_cast<double>(conc.controller.restorations_retried),
           "retries");
  json.row("concurrent_non_diverse",
           static_cast<double>(conc.controller.restorations_non_diverse),
           "restorations");
  json.row("storm_events", static_cast<double>(conc.storms), "storms");
  json.write("BENCH_storm.json");
  std::cout << "wrote BENCH_storm.json\n\n";

  // --- gates --------------------------------------------------------------
  int failures = 0;
  const auto gate = [&](bool ok, const std::string& what) {
    std::cout << (ok ? "PASS  " : "FAIL  ") << what << "\n";
    if (!ok) ++failures;
  };
  gate(serial.affected == conc.affected && conc.affected >= 6,
       "identical cut in both arms and it hurts (" +
           std::to_string(conc.affected) + " connections affected)");
  gate(conc.restored_60 > serial.restored_60,
       "concurrent pipeline restores strictly more within 60 s (" +
           std::to_string(conc.restored_60) + " > " +
           std::to_string(serial.restored_60) + " of " +
           std::to_string(conc.affected) + ")");
  gate(serial.storms == 1 && conc.storms == 1,
       "simultaneous sibling cuts collapse into exactly one storm event");
  gate(conc.gold_stranded_after_drain == 0,
       "no gold stranded once the pipeline drains (spare capacity exists)");
  gate(serial.stranded_final == 0 && conc.stranded_final == 0 &&
           serial.backlog_final == 0 && conc.backlog_final == 0 &&
           serial.storm_clear && conc.storm_clear,
       "after the splice every connection is up, backlog empty, storm "
       "flag clear in both arms");
  gate(conc.resync_done && conc.resync_leaks == 0 && conc.resync_drift == 0,
       "post-run resync sweeps clean (" +
           std::to_string(conc.resync_leaks) + " leaks, " +
           std::to_string(conc.resync_drift) + " drifted)");
  if (failures != 0) {
    std::cout << "\n" << failures << " gate(s) FAILED\n";
    return 1;
  }
  std::cout << "\nall gates passed\n";
  return 0;
}
