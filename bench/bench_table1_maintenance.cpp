// Experiment E6 — Table 1, row "Minimal impact during maintenance":
//
//   vision:  no customer impact from planned work;
//   today:   "non-negligible impact on service" (manual wavelength
//            management: affected circuits are down for the window);
//   GRIPhoN: "automated bridge-and-roll".
//
// A 2-hour maintenance window is taken on the testbed's I-IV span while N
// wavelength connections ride it. Compared: (a) unmanaged maintenance
// (connections just go dark), (b) GRIPhoN prepare_maintenance with
// bridge-and-roll beforehand.
#include <iostream>

#include "bench_util.hpp"
#include "core/scenario.hpp"

using namespace griphon;

namespace {

struct Outcome {
  double total_outage_s = 0;
  double worst_outage_s = 0;
  int affected = 0;
};

Outcome run(std::uint64_t seed, bool use_bridge_and_roll, int connections) {
  core::TestbedScenario s(seed);
  std::vector<ConnectionId> ids;
  for (int i = 0; i < connections; ++i) {
    s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                      core::ProtectionMode::kUnprotected,
                      [&](Result<ConnectionId> r) {
                        if (r.ok()) ids.push_back(r.value());
                      });
    s.engine.run();
  }

  if (use_bridge_and_roll) {
    s.controller->prepare_maintenance(s.topo.i_iv, [](Status) {});
    s.engine.run();
  }
  // The maintenance window: span out of service for two hours.
  s.model->fail_link(s.topo.i_iv);
  s.engine.run_until(s.engine.now() + hours(2));
  s.model->repair_link(s.topo.i_iv);
  s.engine.run();

  Outcome out;
  for (const auto id : ids) {
    const auto& c = s.controller->connection(id);
    // Bridge-and-roll's brief hit counts as impact too, honestly reported.
    const double o = to_seconds(c.total_outage + c.roll_hit_total);
    out.total_outage_s += o;
    out.worst_outage_s = std::max(out.worst_outage_s, o);
    if (o > 0) ++out.affected;
  }
  return out;
}

}  // namespace

int main() {
  bench::banner(
      "Table 1 row 4: service impact of a 2 h maintenance window (I-IV)");
  constexpr int kConnections = 3;

  const Outcome unmanaged = run(6001, false, kConnections);
  const Outcome rolled = run(6002, true, kConnections);

  bench::Table table({"strategy", "connections hit", "worst outage",
                      "total outage"});
  table.row({"unmanaged maintenance (today)",
             std::to_string(unmanaged.affected),
             bench::fmt(unmanaged.worst_outage_s / 3600.0, 2) + " h",
             bench::fmt(unmanaged.total_outage_s / 3600.0, 2) + " h"});
  table.row({"GRIPhoN bridge-and-roll",
             std::to_string(rolled.affected),
             bench::fmt(rolled.worst_outage_s * 1000, 0) + " ms",
             bench::fmt(rolled.total_outage_s * 1000, 0) + " ms"});
  table.print();

  const double improvement =
      unmanaged.total_outage_s / std::max(rolled.total_outage_s, 0.050);
  std::cout << "\nshape check: bridge-and-roll turns a ~2 h per-connection "
               "outage into a sub-second roll hit (improvement factor here: "
            << bench::fmt(improvement, 0)
            << "x); the movement is 'almost hitless' as the paper claims\n";
  return 0;
}
