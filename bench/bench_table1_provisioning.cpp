// Experiment E4 — Table 1, row "Rapid establishment of new connections":
//
//   vision:  rapid provisioning;
//   today:   "takes several weeks for highest data rates";
//   GRIPhoN: "automated FXC and ROADMs enable full wavelength connections
//             in minutes."
//
// Time-to-bandwidth for the same request under four regimes:
//   * manual/static wavelength provisioning (weeks, sampled 2-8 weeks),
//   * legacy SONET-layer BoD (minutes, but capped at 622 Mbps),
//   * GRIPhoN sub-wavelength (OTN, seconds),
//   * GRIPhoN full wavelength (about a minute).
#include <iostream>

#include "baseline/sonet_bod.hpp"
#include "baseline/static_provisioning.hpp"
#include "bench_util.hpp"
#include "core/scenario.hpp"

using namespace griphon;

namespace {

bench::Summary griphon_setup(DataRate rate, int runs) {
  std::vector<double> xs;
  for (int i = 0; i < runs; ++i) {
    core::NetworkModel::Config cfg;
    if (rate > rates::k10G) cfg.ots_40g_per_node = 2;
    core::TestbedScenario s(4000 + static_cast<std::uint64_t>(i), cfg);
    s.portal->connect(s.site_i, s.site_iv, rate,
                      core::ProtectionMode::kRestorable,
                      [&](Result<ConnectionId> r) {
                        if (r.ok())
                          xs.push_back(to_seconds(
                              s.controller->connection(r.value())
                                  .setup_duration));
                      });
    s.engine.run();
  }
  return bench::summarize(xs);
}

}  // namespace

int main() {
  bench::banner("Table 1 row 2: time to provision a new connection");
  constexpr int kRuns = 20;
  Rng rng(77);

  // Manual provisioning of a wavelength private line.
  baseline::StaticProvisioningModel manual;
  std::vector<double> weeks;
  for (int i = 0; i < kRuns; ++i)
    weeks.push_back(to_seconds(manual.provisioning_time(rng)));
  const auto s_manual = bench::summarize(weeks);

  // Legacy SONET BoD (only up to 622 Mbps).
  sonet::SonetRing ring({NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}}, 192);
  baseline::SonetBodService sonet_bod(&ring);
  std::vector<double> sonet_times;
  for (int i = 0; i < kRuns; ++i) {
    auto p = sonet_bod.request(NodeId{0}, NodeId{2}, rates::kOc12, rng);
    if (p.ok()) {
      sonet_times.push_back(to_seconds(p.value().provisioning_time));
      (void)sonet_bod.release(p.value().circuit);
    }
  }
  const auto s_sonet = bench::summarize(sonet_times);

  const auto s_otn = griphon_setup(rates::k1G, kRuns);
  const auto s_wave = griphon_setup(rates::k10G, kRuns);
  const auto s_wave40 = griphon_setup(rates::k40G, kRuns);

  bench::Table table({"regime", "max rate", "mean time-to-bandwidth",
                      "vs manual"});
  const double manual_mean = s_manual.mean;
  auto speedup = [&](double secs) {
    return bench::fmt(manual_mean / secs, 0) + "x faster";
  };
  table.row({"manual wavelength provisioning", "40G+",
             bench::fmt(s_manual.mean / 86400.0, 1) + " days", "1x"});
  table.row({"legacy SONET BoD", "0.622G",
             bench::fmt(s_sonet.mean / 60.0, 1) + " min",
             speedup(s_sonet.mean)});
  table.row({"GRIPhoN sub-wavelength (OTN)", "10G",
             bench::fmt(s_otn.mean, 1) + " s", speedup(s_otn.mean)});
  table.row({"GRIPhoN 10G wavelength", "10G",
             bench::fmt(s_wave.mean, 1) + " s", speedup(s_wave.mean)});
  table.row({"GRIPhoN 40G wavelength", "40G",
             bench::fmt(s_wave40.mean, 1) + " s", speedup(s_wave40.mean)});
  table.print();

  std::cout << "\nshape check: GRIPhoN turns weeks into ~a minute at "
               "wavelength rates (paper: 'orders of magnitude better than "
               "today's provisioning time in the DWDM layer') while legacy "
               "fast BoD exists only below 622 Mbps\n";
  return 0;
}
