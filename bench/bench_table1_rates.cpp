// Experiment E3 — Table 1, row "Dynamic configurable-rate":
//
//   vision:  rate configurable over a wide range;
//   today:   "maximum rate well below full wavelength rate" (<= 622 Mbps);
//   GRIPhoN: "integrated services using OTN, FXC and wavelength switching"
//            from 1 Gbps to 40 Gbps, composable (§2.2's 12G example).
//
// Sweeps the requested rate and reports what each system can serve and
// how GRIPhoN composes it; also quantifies the wavelength saving of the
// composite 12G service versus buying a second 10G wave.
#include <iostream>

#include "bench_util.hpp"
#include "core/scenario.hpp"
#include "sonet/sts.hpp"

using namespace griphon;

int main() {
  bench::banner("Table 1 row 1: dynamic configurable-rate service");

  bench::Table table({"requested", "legacy SONET BoD", "GRIPhoN composition",
                      "setup ok", "setup time (s)"});
  const double gbps[] = {1, 2.5, 5, 10, 12, 20, 40};
  for (const double r : gbps) {
    const DataRate rate = DataRate::gbps(r);
    const auto d = core::CustomerPortal::decompose(rate);
    std::string composition;
    if (d.wavelengths_10g > 0)
      composition += std::to_string(d.wavelengths_10g) + "x10G wave";
    if (d.odu_1g > 0) {
      if (!composition.empty()) composition += " + ";
      composition += std::to_string(d.odu_1g) + "x1G ODU0";
    }
    if (!d.odu_flex.zero()) {
      if (!composition.empty()) composition += " + ";
      composition += bench::fmt(d.odu_flex.in_gbps(), 1) + "G ODUflex";
    }
    const std::string legacy =
        rate <= sonet::kLegacyBodCeiling ? "yes (VCAT)" : "NO (>622M cap)";

    core::TestbedScenario s(3000 + static_cast<std::uint64_t>(r * 10));
    bool ok = false;
    double setup = 0;
    s.portal->connect_bundle(
        s.site_i, s.site_iv, rate, core::ProtectionMode::kRestorable,
        [&](Result<core::BundleId> res) {
          ok = res.ok();
          setup = to_seconds(s.engine.now());
        });
    s.engine.run();
    table.row({bench::fmt(r, 1) + "G", legacy, composition,
               ok ? "yes" : "no", bench::fmt(setup, 1)});
  }
  table.print();

  // The paper's 12G example: composite vs second wavelength.
  bench::banner("Composite 12G vs second 10G wavelength (paper example)");
  const auto d12 = core::CustomerPortal::decompose(DataRate::gbps(12));
  const int waves_composite = d12.wavelengths_10g;
  const int waves_naive = 2;  // two 10G DWDM waves
  bench::Table t2({"approach", "10G wavelengths", "1G ODU0 circuits",
                   "delivered", "stranded capacity"});
  t2.row({"2 x 10G DWDM", std::to_string(waves_naive), "0", "20G",
          bench::fmt(20.0 - 12.0, 1) + "G"});
  t2.row({"GRIPhoN composite", std::to_string(waves_composite),
          std::to_string(d12.odu_1g),
          bench::fmt(d12.total().in_gbps(), 1) + "G",
          bench::fmt(d12.total().in_gbps() - 12.0, 1) + "G"});
  t2.print();
  std::cout << "\nshape check: GRIPhoN serves every rate in 1..40G (legacy "
               "BoD stops at 0.622G) and the composite 12G frees a whole "
               "10G wavelength for the carrier's pool\n";
  return 0;
}
