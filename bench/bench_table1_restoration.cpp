// Experiment E5 — Table 1, row "Reduced outage times":
//
//   vision:  quick restoration after failures;
//   today:   "none (unless 1+1) for full wavelength rates" — either pay for
//            dedicated 1+1 or wait 4-12 h for manual repair;
//   GRIPhoN: "automated outage detection and dynamic re-provisioning".
//
// Fiber cuts are injected on the US backbone; the outage experienced by a
// 10G inter-DC connection is measured under four schemes. OTN shared-mesh
// restoration of sub-wavelength circuits is measured alongside.
#include <iostream>
#include <map>

#include "baseline/static_provisioning.hpp"
#include "bench_util.hpp"
#include "core/scenario.hpp"

using namespace griphon;

namespace {

/// Outage of one wavelength connection on the backbone when the first link
/// of its path is cut.
double one_trial(std::uint64_t seed, core::ProtectionMode mode) {
  core::BackboneScenario::Options opt;
  opt.config.ots_per_node = 10;
  opt.config.regens_per_node = 6;
  core::BackboneScenario s(seed, opt);
  std::optional<ConnectionId> id;
  s.portals[0]->connect(s.site(0, 0), s.site(0, 1), rates::k10G, mode,
                        [&](Result<ConnectionId> r) {
                          if (r.ok()) id = r.value();
                        });
  s.engine.run();
  if (!id) return -1;
  const LinkId victim =
      s.controller->connection(*id).plan.path.links.front();
  s.model->fail_link(victim);
  s.engine.run();
  const auto& c = s.controller->connection(*id);
  if (c.state != core::ConnectionState::kActive) return -1;
  return to_seconds(c.total_outage);
}

double otn_trial(std::uint64_t seed) {
  core::BackboneScenario s(seed, core::BackboneScenario::Options{});
  std::optional<ConnectionId> id;
  s.portals[0]->connect(s.site(0, 0), s.site(0, 1), rates::k1G,
                        core::ProtectionMode::kRestorable,
                        [&](Result<ConnectionId> r) {
                          if (r.ok()) id = r.value();
                        });
  s.engine.run();
  if (!id) return -1;
  const auto& circuit = s.model->otn().circuit(
      s.controller->connection(*id).odu);
  const LinkId victim = s.model->otn()
                            .carrier(circuit.primary.front())
                            .physical_route()
                            .front();
  s.model->fail_link(victim);
  s.engine.run();
  const auto& c = s.controller->connection(*id);
  if (c.state != core::ConnectionState::kActive) return -1;
  return to_seconds(c.total_outage);
}

bench::Summary collect(int trials, double (*fn)(std::uint64_t)) {
  std::vector<double> xs;
  for (int i = 0; i < trials; ++i) {
    const double v = fn(5000 + static_cast<std::uint64_t>(i));
    if (v >= 0) xs.push_back(v);
  }
  return bench::summarize(xs);
}

}  // namespace

int main() {
  bench::banner("Table 1 row 3: outage after a fiber cut (US backbone)");
  constexpr int kTrials = 15;

  const auto s_11 = collect(kTrials, [](std::uint64_t seed) {
    return one_trial(seed, core::ProtectionMode::kOnePlusOne);
  });
  const auto s_rest = collect(kTrials, [](std::uint64_t seed) {
    return one_trial(seed, core::ProtectionMode::kRestorable);
  });
  const auto s_otn = collect(kTrials, otn_trial);

  // Manual repair baseline (today's unprotected wavelength service).
  Rng rng(88);
  std::vector<double> manual;
  for (int i = 0; i < kTrials; ++i)
    manual.push_back(to_seconds(baseline::ManualRepairModel::repair_time(rng)));
  const auto s_manual = bench::summarize(manual);

  bench::Table table({"scheme", "paper expectation", "mean outage",
                      "min-max", "n"});
  table.row({"1+1 dedicated protection", "milliseconds",
             bench::fmt(s_11.mean * 1000, 0) + " ms",
             bench::fmt(s_11.min * 1000, 0) + "-" +
                 bench::fmt(s_11.max * 1000, 0) + " ms",
             std::to_string(s_11.n)});
  table.row({"OTN shared-mesh (sub-wavelength)", "sub-second",
             bench::fmt(s_otn.mean * 1000, 0) + " ms",
             bench::fmt(s_otn.min * 1000, 0) + "-" +
                 bench::fmt(s_otn.max * 1000, 0) + " ms",
             std::to_string(s_otn.n)});
  table.row({"GRIPhoN dynamic restoration", "minutes, cheap",
             bench::fmt(s_rest.mean / 60.0, 1) + " min",
             bench::fmt(s_rest.min / 60.0, 1) + "-" +
                 bench::fmt(s_rest.max / 60.0, 1) + " min",
             std::to_string(s_rest.n)});
  table.row({"manual repair (today, unprotected)", "4-12 hours",
             bench::fmt(s_manual.mean / 3600.0, 1) + " h",
             bench::fmt(s_manual.min / 3600.0, 1) + "-" +
                 bench::fmt(s_manual.max / 3600.0, 1) + " h",
             std::to_string(s_manual.n)});
  table.print();

  std::cout << "\nshape check: 1+1 ~ms << OTN mesh ~100s of ms << GRIPhoN "
               "restoration ~minutes << manual repair ~hours; GRIPhoN "
               "reinstates service 'far faster than repair of the "
               "underlying fault' without 1+1's dedicated capacity\n";

  // SLA differentiation: when one cut fails several connections, the
  // shared restoration machinery serves gold before silver before bronze.
  bench::banner("Tiered restoration after one cut (3 connections share it)");
  core::TestbedScenario s(5500);
  std::map<core::ServiceTier, ConnectionId> by_tier;
  for (const auto tier : {core::ServiceTier::kBronze,
                          core::ServiceTier::kGold,
                          core::ServiceTier::kSilver}) {
    s.portal->connect(
        s.site_i, s.site_iv, rates::k10G, core::ProtectionMode::kRestorable,
        [&, tier](Result<ConnectionId> r) {
          if (r.ok()) by_tier[tier] = r.value();
        },
        tier);
    s.engine.run();
  }
  s.model->fail_link(s.topo.i_iv);
  s.engine.run();
  bench::Table t3({"tier", "outage (s)", "restored"});
  for (const auto tier : {core::ServiceTier::kGold,
                          core::ServiceTier::kSilver,
                          core::ServiceTier::kBronze}) {
    const auto& c = s.controller->connection(by_tier[tier]);
    t3.row({to_string(tier), bench::fmt(to_seconds(c.total_outage), 1),
            c.is_up() ? "yes" : "no"});
  }
  t3.print();
  std::cout << "\nshape check: outage grows strictly down the tiers — the "
               "carrier can sell restoration order\n";
  return 0;
}
