// Experiment E1 — reproduces **Table 2** of the paper:
//
//   "Dependence of wavelength connection establishment times and the path
//    length in the ROADM layer."
//
//   Path length (hops)                 1 (I-IV)   2 (I-III-IV)   3 (I-II-III-IV)
//   Connection establishment time (s)  62.48      65.67          70.94
//
// Method: the paper's 4-ROADM testbed; each target path is forced by
// taking the shorter fibers out of service before the request (the lab
// equivalent of patching the route); 10 iterations per path length with
// different seeds, mean reported — exactly the paper's methodology
// ("Table 2 summarizes the results over ten iterations").
//
// The paper rows run the sequential executor (the 2011 testbed issued one
// EMS dialogue at a time). A second table compares it against the
// dependency-DAG executor that is now the controller default; the bench
// gates (exit code) on the DAG being measurably faster, and the
// comparison lands in BENCH_setup.json for tools/bench_diff.py.
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "core/observability.hpp"
#include "core/scenario.hpp"
#include "emit_json.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/timeline.hpp"
#include "telemetry/trace_export.hpp"

using namespace griphon;

namespace {

/// Measured mean setup time for a forced path of `hops` hops.
bench::Summary measure(int hops, int iterations, core::ExecMode mode) {
  std::vector<double> times;
  for (int it = 0; it < iterations; ++it) {
    core::NetworkModel::Config cfg;
    cfg.with_otn = false;  // DWDM-layer experiment, as in the paper
    core::GriphonController::Params params;
    params.exec_mode = mode;
    core::TestbedScenario s(1000 + static_cast<std::uint64_t>(it) * 7 +
                                static_cast<std::uint64_t>(hops),
                            cfg, params);
    // Force the route by failing shorter alternatives (no traffic rides
    // them yet, so no alarms or restorations are triggered).
    if (hops >= 2) s.model->fail_link(s.topo.i_iv);
    if (hops >= 3) s.model->fail_link(s.topo.i_iii);

    std::optional<double> setup;
    s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                      core::ProtectionMode::kRestorable,
                      [&](Result<ConnectionId> r) {
                        if (!r.ok()) return;
                        const auto& c = s.controller->connection(r.value());
                        if (static_cast<int>(c.plan.path.hops()) == hops)
                          setup = to_seconds(c.setup_duration);
                      });
    s.engine.run();
    if (setup) times.push_back(*setup);
  }
  return bench::summarize(times);
}

/// One instrumented 3-hop setup with telemetry attached: the span tracer
/// decomposes the end-to-end establishment time into path computation plus
/// the per-EMS-command dialogues. Under the DAG executor child spans
/// overlap, so the old exact sum-tiling check no longer applies; instead
/// the *critical path* — the longest chain of gap-free, non-overlapping
/// child spans — must still tile the root span exactly. Any shortfall
/// means an uninstrumented phase (or an idle gap the scheduler should
/// have filled).
bool span_decomposition(core::ExecMode mode, const std::string& trace_path,
                        const std::string& series_path) {
  core::NetworkModel::Config cfg;
  cfg.with_otn = false;
  core::GriphonController::Params params;
  params.exec_mode = mode;
  core::TestbedScenario s(424242, cfg, params);
  telemetry::Telemetry tel(&s.engine);
  s.model->attach_telemetry(&tel);
  telemetry::GaugeSampler sampler(&s.engine, &tel);
  core::install_standard_probes(sampler, *s.controller, *s.model);
  s.model->fail_link(s.topo.i_iv);
  s.model->fail_link(s.topo.i_iii);

  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    core::ProtectionMode::kUnprotected,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  // A bounded horizon: the sampler always has a next tick scheduled, so
  // an unbounded run() would never return.
  sampler.start(from_seconds(2));
  s.engine.run_until(s.engine.now() + minutes(10));
  sampler.stop();

  // Trace/series artifacts for Perfetto + tools/validate_trace.py and
  // tools/bench_diff.py --series.
  if (std::ofstream f(trace_path); f)
    f << telemetry::TraceExporter().to_json(tel) << "\n";
  if (!series_path.empty())
    if (std::ofstream f(series_path); f) f << sampler.rollups_json();

  if (!id) {
    std::cout << "span check: setup FAILED, no timeline to verify\n";
    return false;
  }

  const std::uint64_t tag = core::telemetry_tag(*id);
  std::cout << telemetry::TimelineReport(&tel.spans()).render(tag);

  const telemetry::Span* root = nullptr;
  for (const auto* sp : tel.spans().for_tag(tag))
    if (sp->name == "connection_setup") root = sp;
  if (root == nullptr || !root->done) {
    std::cout << "span check: no closed connection_setup root span\n";
    return false;
  }

  // Longest chain of child spans where each link starts at or after the
  // previous end (non-overlapping). Because a chain's duration sum can
  // never exceed the root span, equality holds iff a gap-free chain runs
  // from root start to root end — the critical path.
  std::vector<const telemetry::Span*> kids;
  for (const auto* child : tel.spans().children_of(root->id))
    kids.push_back(child);
  std::sort(kids.begin(), kids.end(),
            [](const telemetry::Span* a, const telemetry::Span* b) {
              return a->start < b->start;
            });
  std::vector<SimTime> best(kids.size());  // longest chain ending at i
  SimTime critical{};
  for (std::size_t i = 0; i < kids.size(); ++i) {
    SimTime prefix{};  // longest chain that can precede kids[i]
    for (std::size_t j = 0; j < i; ++j)
      if (kids[j]->end <= kids[i]->start) prefix = std::max(prefix, best[j]);
    best[i] = prefix + kids[i]->duration();
    critical = std::max(critical, best[i]);
  }
  const double critical_s = to_seconds(critical);
  const double total = to_seconds(root->duration());
  const double end_to_end =
      to_seconds(s.controller->connection(*id).setup_duration);
  const bool ok = std::abs(critical_s - total) < 1e-6 &&
                  std::abs(total - end_to_end) < 1e-6;
  std::cout << "\nspan check: critical path " << bench::fmt(critical_s, 3)
            << " s, root span " << bench::fmt(total, 3)
            << " s, end-to-end setup " << bench::fmt(end_to_end, 3) << " s — "
            << (ok ? "the longest span chain tiles the setup exactly"
                   : "MISMATCH (uninstrumented phase or scheduler gap?)")
            << "\n";
  return ok;
}

}  // namespace

int main() {
  bench::banner(
      "Table 2: wavelength connection establishment time vs path length "
      "(sequential executor, as in the 2011 testbed)");
  constexpr int kIterations = 10;

  const double paper[] = {62.48, 65.67, 70.94};
  const char* labels[] = {"1 (I-IV)", "2 (I-III-IV)", "3 (I-II-III-IV)"};

  bench::JsonEmitter json("table2_setup_time");
  std::map<int, bench::Summary> seq, dag;
  bench::Table table({"path length (hops)", "paper (s)", "measured mean (s)",
                      "stddev (s)", "iterations"});
  double prev = 0;
  bool monotonic = true;
  for (int hops = 1; hops <= 3; ++hops) {
    seq[hops] = measure(hops, kIterations, core::ExecMode::kSequential);
    const auto& s = seq[hops];
    table.row({labels[hops - 1], bench::fmt(paper[hops - 1]),
               bench::fmt(s.mean), bench::fmt(s.stddev),
               std::to_string(s.n)});
    if (s.mean < prev) monotonic = false;
    prev = s.mean;
  }
  table.print();
  std::cout << "\nshape check: establishment time "
            << (monotonic ? "increases" : "DOES NOT increase")
            << " with path length; paper band is 60-70 s with ~3-5 s per "
               "additional ROADM hop\n";

  bench::banner("Sequential vs dependency-DAG executor (controller default)");
  bench::Table cmp({"path length (hops)", "sequential (s)", "DAG (s)",
                    "speedup"});
  bool dag_faster = true;
  for (int hops = 1; hops <= 3; ++hops) {
    dag[hops] = measure(hops, kIterations, core::ExecMode::kDag);
    const double speedup = seq[hops].mean / dag[hops].mean;
    cmp.row({labels[hops - 1], bench::fmt(seq[hops].mean),
             bench::fmt(dag[hops].mean), bench::fmt(speedup, 2) + "x"});
    // Gate: the DAG executor must be measurably below the sequential
    // baseline (>= 20% off the mean) at every path length.
    if (!(dag[hops].mean < seq[hops].mean * 0.8)) dag_faster = false;
    const std::string h = std::to_string(hops);
    json.row("seq_" + h + "hop_mean", seq[hops].mean, "s");
    json.row("dag_" + h + "hop_mean", dag[hops].mean, "s");
    json.row("dag_speedup_" + h + "hop", speedup, "x");
  }
  cmp.print();
  json.append_to("BENCH_setup.json");
  std::cout << "\ngate: DAG executor "
            << (dag_faster ? "is" : "IS NOT")
            << " measurably below the sequential baseline (>= 20% at every "
               "path length); comparison appended to BENCH_setup.json\n";

  bench::banner("Setup-time decomposition (telemetry span waterfall, 3 hops)");
  // Both exec modes export a Chrome trace (trace_table2_*.json) so the
  // CI lane can hold them against tools/validate_trace.py.
  std::cout << "— sequential executor —\n";
  const bool tiled_seq = span_decomposition(
      core::ExecMode::kSequential, "trace_table2_sequential.json", "");
  std::cout << "\n— dependency-DAG executor —\n";
  const bool tiled_dag =
      span_decomposition(core::ExecMode::kDag, "trace_table2_dag.json",
                         "SERIES_table2.json");
  std::cout << "\ntrace artifacts: trace_table2_sequential.json, "
               "trace_table2_dag.json (Perfetto-loadable); sampler rollups: "
               "SERIES_table2.json\n";
  return (dag_faster && tiled_seq && tiled_dag) ? 0 : 1;
}
