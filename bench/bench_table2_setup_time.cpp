// Experiment E1 — reproduces **Table 2** of the paper:
//
//   "Dependence of wavelength connection establishment times and the path
//    length in the ROADM layer."
//
//   Path length (hops)                 1 (I-IV)   2 (I-III-IV)   3 (I-II-III-IV)
//   Connection establishment time (s)  62.48      65.67          70.94
//
// Method: the paper's 4-ROADM testbed; each target path is forced by
// taking the shorter fibers out of service before the request (the lab
// equivalent of patching the route); 10 iterations per path length with
// different seeds, mean reported — exactly the paper's methodology
// ("Table 2 summarizes the results over ten iterations").
#include <iostream>

#include "bench_util.hpp"
#include "core/scenario.hpp"

using namespace griphon;

namespace {

/// Measured mean setup time for a forced path of `hops` hops.
bench::Summary measure(int hops, int iterations) {
  std::vector<double> times;
  for (int it = 0; it < iterations; ++it) {
    core::NetworkModel::Config cfg;
    cfg.with_otn = false;  // DWDM-layer experiment, as in the paper
    core::TestbedScenario s(1000 + static_cast<std::uint64_t>(it) * 7 +
                                static_cast<std::uint64_t>(hops),
                            cfg);
    // Force the route by failing shorter alternatives (no traffic rides
    // them yet, so no alarms or restorations are triggered).
    if (hops >= 2) s.model->fail_link(s.topo.i_iv);
    if (hops >= 3) s.model->fail_link(s.topo.i_iii);

    std::optional<double> setup;
    s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                      core::ProtectionMode::kRestorable,
                      [&](Result<ConnectionId> r) {
                        if (!r.ok()) return;
                        const auto& c = s.controller->connection(r.value());
                        if (static_cast<int>(c.plan.path.hops()) == hops)
                          setup = to_seconds(c.setup_duration);
                      });
    s.engine.run();
    if (setup) times.push_back(*setup);
  }
  return bench::summarize(times);
}

}  // namespace

int main() {
  bench::banner(
      "Table 2: wavelength connection establishment time vs path length");
  constexpr int kIterations = 10;

  const double paper[] = {62.48, 65.67, 70.94};
  const char* labels[] = {"1 (I-IV)", "2 (I-III-IV)", "3 (I-II-III-IV)"};

  bench::Table table({"path length (hops)", "paper (s)", "measured mean (s)",
                      "stddev (s)", "iterations"});
  double prev = 0;
  bool monotonic = true;
  for (int hops = 1; hops <= 3; ++hops) {
    const auto s = measure(hops, kIterations);
    table.row({labels[hops - 1], bench::fmt(paper[hops - 1]),
               bench::fmt(s.mean), bench::fmt(s.stddev),
               std::to_string(s.n)});
    if (s.mean < prev) monotonic = false;
    prev = s.mean;
  }
  table.print();
  std::cout << "\nshape check: establishment time "
            << (monotonic ? "increases" : "DOES NOT increase")
            << " with path length; paper band is 60-70 s with ~3-5 s per "
               "additional ROADM hop\n";
  return 0;
}
