// Experiment E1 — reproduces **Table 2** of the paper:
//
//   "Dependence of wavelength connection establishment times and the path
//    length in the ROADM layer."
//
//   Path length (hops)                 1 (I-IV)   2 (I-III-IV)   3 (I-II-III-IV)
//   Connection establishment time (s)  62.48      65.67          70.94
//
// Method: the paper's 4-ROADM testbed; each target path is forced by
// taking the shorter fibers out of service before the request (the lab
// equivalent of patching the route); 10 iterations per path length with
// different seeds, mean reported — exactly the paper's methodology
// ("Table 2 summarizes the results over ten iterations").
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "core/scenario.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/timeline.hpp"

using namespace griphon;

namespace {

/// Measured mean setup time for a forced path of `hops` hops.
bench::Summary measure(int hops, int iterations) {
  std::vector<double> times;
  for (int it = 0; it < iterations; ++it) {
    core::NetworkModel::Config cfg;
    cfg.with_otn = false;  // DWDM-layer experiment, as in the paper
    core::TestbedScenario s(1000 + static_cast<std::uint64_t>(it) * 7 +
                                static_cast<std::uint64_t>(hops),
                            cfg);
    // Force the route by failing shorter alternatives (no traffic rides
    // them yet, so no alarms or restorations are triggered).
    if (hops >= 2) s.model->fail_link(s.topo.i_iv);
    if (hops >= 3) s.model->fail_link(s.topo.i_iii);

    std::optional<double> setup;
    s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                      core::ProtectionMode::kRestorable,
                      [&](Result<ConnectionId> r) {
                        if (!r.ok()) return;
                        const auto& c = s.controller->connection(r.value());
                        if (static_cast<int>(c.plan.path.hops()) == hops)
                          setup = to_seconds(c.setup_duration);
                      });
    s.engine.run();
    if (setup) times.push_back(*setup);
  }
  return bench::summarize(times);
}

/// One instrumented 3-hop setup with telemetry attached: the span tracer
/// decomposes the end-to-end establishment time into path computation plus
/// the per-EMS-command dialogues (the two components the paper attributes
/// the 60-70 s to). Renders the waterfall and checks that the phase
/// durations tile the root span exactly — the sequential command train has
/// no idle gaps, so any mismatch means an uninstrumented phase.
bool span_decomposition() {
  core::NetworkModel::Config cfg;
  cfg.with_otn = false;
  core::TestbedScenario s(424242, cfg);
  telemetry::Telemetry tel(&s.engine);
  s.model->attach_telemetry(&tel);
  s.model->fail_link(s.topo.i_iv);
  s.model->fail_link(s.topo.i_iii);

  std::optional<ConnectionId> id;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    core::ProtectionMode::kUnprotected,
                    [&](Result<ConnectionId> r) {
                      if (r.ok()) id = r.value();
                    });
  s.engine.run();
  if (!id) {
    std::cout << "span check: setup FAILED, no timeline to verify\n";
    return false;
  }

  const std::uint64_t tag = core::telemetry_tag(*id);
  std::cout << telemetry::TimelineReport(&tel.spans()).render(tag);

  const telemetry::Span* root = nullptr;
  for (const auto* sp : tel.spans().for_tag(tag))
    if (sp->name == "connection_setup") root = sp;
  if (root == nullptr || !root->done) {
    std::cout << "span check: no closed connection_setup root span\n";
    return false;
  }
  double phase_sum = 0;
  for (const auto* child : tel.spans().children_of(root->id))
    phase_sum += to_seconds(child->duration());
  const double total = to_seconds(root->duration());
  const double end_to_end =
      to_seconds(s.controller->connection(*id).setup_duration);
  const bool ok = std::abs(phase_sum - total) < 1e-6 &&
                  std::abs(total - end_to_end) < 1e-6;
  std::cout << "\nspan check: phases sum to " << bench::fmt(phase_sum, 3)
            << " s, root span " << bench::fmt(total, 3)
            << " s, end-to-end setup " << bench::fmt(end_to_end, 3) << " s — "
            << (ok ? "phase durations tile the setup exactly"
                   : "MISMATCH (uninstrumented phase?)")
            << "\n";
  return ok;
}

}  // namespace

int main() {
  bench::banner(
      "Table 2: wavelength connection establishment time vs path length");
  constexpr int kIterations = 10;

  const double paper[] = {62.48, 65.67, 70.94};
  const char* labels[] = {"1 (I-IV)", "2 (I-III-IV)", "3 (I-II-III-IV)"};

  bench::Table table({"path length (hops)", "paper (s)", "measured mean (s)",
                      "stddev (s)", "iterations"});
  double prev = 0;
  bool monotonic = true;
  for (int hops = 1; hops <= 3; ++hops) {
    const auto s = measure(hops, kIterations);
    table.row({labels[hops - 1], bench::fmt(paper[hops - 1]),
               bench::fmt(s.mean), bench::fmt(s.stddev),
               std::to_string(s.n)});
    if (s.mean < prev) monotonic = false;
    prev = s.mean;
  }
  table.print();
  std::cout << "\nshape check: establishment time "
            << (monotonic ? "increases" : "DOES NOT increase")
            << " with path length; paper band is 60-70 s with ~3-5 s per "
               "additional ROADM hop\n";

  bench::banner("Setup-time decomposition (telemetry span waterfall, 3 hops)");
  return span_decomposition() ? 0 : 1;
}
