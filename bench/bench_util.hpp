// Shared helpers for the experiment harness binaries: summary statistics
// and fixed-width table printing so every bench emits paper-style rows.
#pragma once

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

namespace griphon::bench {

struct Summary {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  std::size_t n = 0;
};

inline Summary summarize(std::vector<double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.mean = std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
  double var = 0;
  for (const double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(var / static_cast<double>(xs.size() - 1))
                 : 0.0;
  auto pct = [&](double p) {
    const double idx = p * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return xs[lo] * (1 - frac) + xs[hi] * frac;
  };
  s.p50 = pct(0.5);
  s.p95 = pct(0.95);
  return s;
}

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 24)
      : headers_(std::move(headers)), width_(width) {}

  void row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  void print(std::ostream& os = std::cout) const {
    auto line = [&](const std::vector<std::string>& cells) {
      for (const auto& c : cells) os << std::left << std::setw(width_) << c;
      os << '\n';
    };
    line(headers_);
    os << std::string(headers_.size() * static_cast<std::size_t>(width_),
                      '-')
       << '\n';
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int width_;
};

inline std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace griphon::bench
