// Machine-readable bench output.
//
// Benches print human tables, but the repo's perf trajectory needs numbers
// a script can diff across commits. JsonEmitter collects flat rows of
//   {"bench": ..., "metric": ..., "value": ..., "unit": ...}
// and writes them as a JSON array, e.g. BENCH_rwa.json next to the binary.
#pragma once

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace griphon::bench {

class JsonEmitter {
 public:
  explicit JsonEmitter(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  void row(const std::string& metric, double value, const std::string& unit) {
    rows_.push_back(Row{metric, value, unit});
  }

  /// Write all rows as a JSON array to `path`. Returns false (and warns on
  /// stderr) if the file cannot be opened; benches keep their table output
  /// either way.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "emit_json: cannot write " << path << '\n';
      return false;
    }
    out << "[\n" << body() << "]\n";
    return static_cast<bool>(out);
  }

  /// Append this emitter's rows to an existing JSON-array artifact (e.g.
  /// two benches contributing to one BENCH_setup.json). Falls back to a
  /// plain write when the file is missing or not an array.
  bool append_to(const std::string& path) const {
    if (rows_.empty()) return true;
    std::string existing;
    {
      std::ifstream in(path);
      if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        existing = buf.str();
      }
    }
    const auto close = existing.rfind(']');
    if (close == std::string::npos) return write(path);
    std::string prefix = existing.substr(0, close);
    const bool has_rows = prefix.find('{') != std::string::npos;
    while (!prefix.empty() &&
           (prefix.back() == '\n' || prefix.back() == ' '))
      prefix.pop_back();
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::cerr << "emit_json: cannot write " << path << '\n';
      return false;
    }
    out << prefix << (has_rows ? "," : "") << '\n' << body() << "]\n";
    return static_cast<bool>(out);
  }

 private:
  struct Row {
    std::string metric;
    double value;
    std::string unit;
  };

  [[nodiscard]] std::string body() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      os << "  {\"bench\": " << quote(bench_) << ", \"metric\": "
         << quote(r.metric) << ", \"value\": " << format(r.value)
         << ", \"unit\": " << quote(r.unit) << '}'
         << (i + 1 < rows_.size() ? "," : "") << '\n';
    }
    return os.str();
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        default: out += c;
      }
    }
    out += '"';
    return out;
  }

  /// JSON has no inf/nan; clamp those to null-safe 0 with a warning.
  static std::string format(double v) {
    if (!(v == v) || v > 1e308 || v < -1e308) return "0";
    std::ostringstream os;
    os.precision(12);
    os << v;
    return os.str();
  }

  std::string bench_;
  std::vector<Row> rows_;
};

}  // namespace griphon::bench
