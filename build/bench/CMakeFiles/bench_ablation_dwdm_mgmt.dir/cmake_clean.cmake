file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dwdm_mgmt.dir/bench_ablation_dwdm_mgmt.cpp.o"
  "CMakeFiles/bench_ablation_dwdm_mgmt.dir/bench_ablation_dwdm_mgmt.cpp.o.d"
  "bench_ablation_dwdm_mgmt"
  "bench_ablation_dwdm_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dwdm_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
