# Empty dependencies file for bench_ablation_dwdm_mgmt.
# This may be replaced when dependencies are built.
