file(REMOVE_RECURSE
  "CMakeFiles/bench_bulk_transfer.dir/bench_bulk_transfer.cpp.o"
  "CMakeFiles/bench_bulk_transfer.dir/bench_bulk_transfer.cpp.o.d"
  "bench_bulk_transfer"
  "bench_bulk_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bulk_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
