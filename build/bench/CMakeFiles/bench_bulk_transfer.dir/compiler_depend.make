# Empty compiler generated dependencies file for bench_bulk_transfer.
# This may be replaced when dependencies are built.
