file(REMOVE_RECURSE
  "CMakeFiles/bench_grooming.dir/bench_grooming.cpp.o"
  "CMakeFiles/bench_grooming.dir/bench_grooming.cpp.o.d"
  "bench_grooming"
  "bench_grooming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grooming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
