# Empty compiler generated dependencies file for bench_grooming.
# This may be replaced when dependencies are built.
