file(REMOVE_RECURSE
  "CMakeFiles/bench_ot_sharing.dir/bench_ot_sharing.cpp.o"
  "CMakeFiles/bench_ot_sharing.dir/bench_ot_sharing.cpp.o.d"
  "bench_ot_sharing"
  "bench_ot_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ot_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
