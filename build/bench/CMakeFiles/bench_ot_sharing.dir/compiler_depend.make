# Empty compiler generated dependencies file for bench_ot_sharing.
# This may be replaced when dependencies are built.
