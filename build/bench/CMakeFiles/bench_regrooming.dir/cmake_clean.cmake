file(REMOVE_RECURSE
  "CMakeFiles/bench_regrooming.dir/bench_regrooming.cpp.o"
  "CMakeFiles/bench_regrooming.dir/bench_regrooming.cpp.o.d"
  "bench_regrooming"
  "bench_regrooming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regrooming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
