# Empty dependencies file for bench_regrooming.
# This may be replaced when dependencies are built.
