file(REMOVE_RECURSE
  "CMakeFiles/bench_setup_teardown.dir/bench_setup_teardown.cpp.o"
  "CMakeFiles/bench_setup_teardown.dir/bench_setup_teardown.cpp.o.d"
  "bench_setup_teardown"
  "bench_setup_teardown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_setup_teardown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
