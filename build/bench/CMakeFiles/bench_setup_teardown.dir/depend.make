# Empty dependencies file for bench_setup_teardown.
# This may be replaced when dependencies are built.
