file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_maintenance.dir/bench_table1_maintenance.cpp.o"
  "CMakeFiles/bench_table1_maintenance.dir/bench_table1_maintenance.cpp.o.d"
  "bench_table1_maintenance"
  "bench_table1_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
