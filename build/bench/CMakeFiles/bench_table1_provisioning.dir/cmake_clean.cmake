file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_provisioning.dir/bench_table1_provisioning.cpp.o"
  "CMakeFiles/bench_table1_provisioning.dir/bench_table1_provisioning.cpp.o.d"
  "bench_table1_provisioning"
  "bench_table1_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
