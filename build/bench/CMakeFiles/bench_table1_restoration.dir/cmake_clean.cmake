file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_restoration.dir/bench_table1_restoration.cpp.o"
  "CMakeFiles/bench_table1_restoration.dir/bench_table1_restoration.cpp.o.d"
  "bench_table1_restoration"
  "bench_table1_restoration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_restoration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
