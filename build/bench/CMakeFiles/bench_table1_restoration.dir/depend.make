# Empty dependencies file for bench_table1_restoration.
# This may be replaced when dependencies are built.
