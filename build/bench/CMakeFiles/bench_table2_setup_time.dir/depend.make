# Empty dependencies file for bench_table2_setup_time.
# This may be replaced when dependencies are built.
