file(REMOVE_RECURSE
  "CMakeFiles/carrier_week.dir/carrier_week.cpp.o"
  "CMakeFiles/carrier_week.dir/carrier_week.cpp.o.d"
  "carrier_week"
  "carrier_week.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carrier_week.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
