# Empty compiler generated dependencies file for carrier_week.
# This may be replaced when dependencies are built.
