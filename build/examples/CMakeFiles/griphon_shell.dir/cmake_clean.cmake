file(REMOVE_RECURSE
  "CMakeFiles/griphon_shell.dir/griphon_shell.cpp.o"
  "CMakeFiles/griphon_shell.dir/griphon_shell.cpp.o.d"
  "griphon_shell"
  "griphon_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griphon_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
