# Empty compiler generated dependencies file for griphon_shell.
# This may be replaced when dependencies are built.
