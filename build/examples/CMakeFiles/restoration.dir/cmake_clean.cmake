file(REMOVE_RECURSE
  "CMakeFiles/restoration.dir/restoration.cpp.o"
  "CMakeFiles/restoration.dir/restoration.cpp.o.d"
  "restoration"
  "restoration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restoration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
