# Empty dependencies file for restoration.
# This may be replaced when dependencies are built.
