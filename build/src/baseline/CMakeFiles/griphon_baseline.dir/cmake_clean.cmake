file(REMOVE_RECURSE
  "CMakeFiles/griphon_baseline.dir/sonet_bod.cpp.o"
  "CMakeFiles/griphon_baseline.dir/sonet_bod.cpp.o.d"
  "CMakeFiles/griphon_baseline.dir/store_forward.cpp.o"
  "CMakeFiles/griphon_baseline.dir/store_forward.cpp.o.d"
  "libgriphon_baseline.a"
  "libgriphon_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griphon_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
