file(REMOVE_RECURSE
  "libgriphon_baseline.a"
)
