# Empty dependencies file for griphon_baseline.
# This may be replaced when dependencies are built.
