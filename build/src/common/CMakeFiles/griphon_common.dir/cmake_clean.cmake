file(REMOVE_RECURSE
  "CMakeFiles/griphon_common.dir/error.cpp.o"
  "CMakeFiles/griphon_common.dir/error.cpp.o.d"
  "CMakeFiles/griphon_common.dir/rng.cpp.o"
  "CMakeFiles/griphon_common.dir/rng.cpp.o.d"
  "libgriphon_common.a"
  "libgriphon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griphon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
