file(REMOVE_RECURSE
  "libgriphon_common.a"
)
