# Empty compiler generated dependencies file for griphon_common.
# This may be replaced when dependencies are built.
