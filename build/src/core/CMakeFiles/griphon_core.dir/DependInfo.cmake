
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/griphon_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/griphon_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/failure_manager.cpp" "src/core/CMakeFiles/griphon_core.dir/failure_manager.cpp.o" "gcc" "src/core/CMakeFiles/griphon_core.dir/failure_manager.cpp.o.d"
  "/root/repo/src/core/inventory.cpp" "src/core/CMakeFiles/griphon_core.dir/inventory.cpp.o" "gcc" "src/core/CMakeFiles/griphon_core.dir/inventory.cpp.o.d"
  "/root/repo/src/core/network_model.cpp" "src/core/CMakeFiles/griphon_core.dir/network_model.cpp.o" "gcc" "src/core/CMakeFiles/griphon_core.dir/network_model.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/griphon_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/griphon_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/portal.cpp" "src/core/CMakeFiles/griphon_core.dir/portal.cpp.o" "gcc" "src/core/CMakeFiles/griphon_core.dir/portal.cpp.o.d"
  "/root/repo/src/core/rwa.cpp" "src/core/CMakeFiles/griphon_core.dir/rwa.cpp.o" "gcc" "src/core/CMakeFiles/griphon_core.dir/rwa.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/griphon_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/griphon_core.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/griphon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/griphon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/griphon_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/dwdm/CMakeFiles/griphon_dwdm.dir/DependInfo.cmake"
  "/root/repo/build/src/fxc/CMakeFiles/griphon_fxc.dir/DependInfo.cmake"
  "/root/repo/build/src/otn/CMakeFiles/griphon_otn.dir/DependInfo.cmake"
  "/root/repo/build/src/sonet/CMakeFiles/griphon_sonet.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/griphon_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/ems/CMakeFiles/griphon_ems.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
