file(REMOVE_RECURSE
  "CMakeFiles/griphon_core.dir/controller.cpp.o"
  "CMakeFiles/griphon_core.dir/controller.cpp.o.d"
  "CMakeFiles/griphon_core.dir/failure_manager.cpp.o"
  "CMakeFiles/griphon_core.dir/failure_manager.cpp.o.d"
  "CMakeFiles/griphon_core.dir/inventory.cpp.o"
  "CMakeFiles/griphon_core.dir/inventory.cpp.o.d"
  "CMakeFiles/griphon_core.dir/network_model.cpp.o"
  "CMakeFiles/griphon_core.dir/network_model.cpp.o.d"
  "CMakeFiles/griphon_core.dir/planner.cpp.o"
  "CMakeFiles/griphon_core.dir/planner.cpp.o.d"
  "CMakeFiles/griphon_core.dir/portal.cpp.o"
  "CMakeFiles/griphon_core.dir/portal.cpp.o.d"
  "CMakeFiles/griphon_core.dir/rwa.cpp.o"
  "CMakeFiles/griphon_core.dir/rwa.cpp.o.d"
  "CMakeFiles/griphon_core.dir/scenario.cpp.o"
  "CMakeFiles/griphon_core.dir/scenario.cpp.o.d"
  "libgriphon_core.a"
  "libgriphon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griphon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
