file(REMOVE_RECURSE
  "libgriphon_core.a"
)
