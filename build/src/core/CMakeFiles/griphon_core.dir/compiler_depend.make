# Empty compiler generated dependencies file for griphon_core.
# This may be replaced when dependencies are built.
