
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dwdm/muxponder.cpp" "src/dwdm/CMakeFiles/griphon_dwdm.dir/muxponder.cpp.o" "gcc" "src/dwdm/CMakeFiles/griphon_dwdm.dir/muxponder.cpp.o.d"
  "/root/repo/src/dwdm/reach.cpp" "src/dwdm/CMakeFiles/griphon_dwdm.dir/reach.cpp.o" "gcc" "src/dwdm/CMakeFiles/griphon_dwdm.dir/reach.cpp.o.d"
  "/root/repo/src/dwdm/roadm.cpp" "src/dwdm/CMakeFiles/griphon_dwdm.dir/roadm.cpp.o" "gcc" "src/dwdm/CMakeFiles/griphon_dwdm.dir/roadm.cpp.o.d"
  "/root/repo/src/dwdm/transponder.cpp" "src/dwdm/CMakeFiles/griphon_dwdm.dir/transponder.cpp.o" "gcc" "src/dwdm/CMakeFiles/griphon_dwdm.dir/transponder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/griphon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/griphon_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
