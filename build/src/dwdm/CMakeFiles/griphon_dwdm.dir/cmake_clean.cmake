file(REMOVE_RECURSE
  "CMakeFiles/griphon_dwdm.dir/muxponder.cpp.o"
  "CMakeFiles/griphon_dwdm.dir/muxponder.cpp.o.d"
  "CMakeFiles/griphon_dwdm.dir/reach.cpp.o"
  "CMakeFiles/griphon_dwdm.dir/reach.cpp.o.d"
  "CMakeFiles/griphon_dwdm.dir/roadm.cpp.o"
  "CMakeFiles/griphon_dwdm.dir/roadm.cpp.o.d"
  "CMakeFiles/griphon_dwdm.dir/transponder.cpp.o"
  "CMakeFiles/griphon_dwdm.dir/transponder.cpp.o.d"
  "libgriphon_dwdm.a"
  "libgriphon_dwdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griphon_dwdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
