file(REMOVE_RECURSE
  "libgriphon_dwdm.a"
)
