# Empty dependencies file for griphon_dwdm.
# This may be replaced when dependencies are built.
