file(REMOVE_RECURSE
  "CMakeFiles/griphon_ems.dir/ems_server.cpp.o"
  "CMakeFiles/griphon_ems.dir/ems_server.cpp.o.d"
  "CMakeFiles/griphon_ems.dir/latency_profile.cpp.o"
  "CMakeFiles/griphon_ems.dir/latency_profile.cpp.o.d"
  "libgriphon_ems.a"
  "libgriphon_ems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griphon_ems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
