file(REMOVE_RECURSE
  "libgriphon_ems.a"
)
