# Empty compiler generated dependencies file for griphon_ems.
# This may be replaced when dependencies are built.
