file(REMOVE_RECURSE
  "CMakeFiles/griphon_fxc.dir/fxc.cpp.o"
  "CMakeFiles/griphon_fxc.dir/fxc.cpp.o.d"
  "libgriphon_fxc.a"
  "libgriphon_fxc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griphon_fxc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
