file(REMOVE_RECURSE
  "libgriphon_fxc.a"
)
