# Empty dependencies file for griphon_fxc.
# This may be replaced when dependencies are built.
