
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/otn/carrier.cpp" "src/otn/CMakeFiles/griphon_otn.dir/carrier.cpp.o" "gcc" "src/otn/CMakeFiles/griphon_otn.dir/carrier.cpp.o.d"
  "/root/repo/src/otn/layer.cpp" "src/otn/CMakeFiles/griphon_otn.dir/layer.cpp.o" "gcc" "src/otn/CMakeFiles/griphon_otn.dir/layer.cpp.o.d"
  "/root/repo/src/otn/otn_switch.cpp" "src/otn/CMakeFiles/griphon_otn.dir/otn_switch.cpp.o" "gcc" "src/otn/CMakeFiles/griphon_otn.dir/otn_switch.cpp.o.d"
  "/root/repo/src/otn/restorer.cpp" "src/otn/CMakeFiles/griphon_otn.dir/restorer.cpp.o" "gcc" "src/otn/CMakeFiles/griphon_otn.dir/restorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/griphon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/griphon_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/griphon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
