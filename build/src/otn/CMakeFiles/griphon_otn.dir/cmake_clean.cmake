file(REMOVE_RECURSE
  "CMakeFiles/griphon_otn.dir/carrier.cpp.o"
  "CMakeFiles/griphon_otn.dir/carrier.cpp.o.d"
  "CMakeFiles/griphon_otn.dir/layer.cpp.o"
  "CMakeFiles/griphon_otn.dir/layer.cpp.o.d"
  "CMakeFiles/griphon_otn.dir/otn_switch.cpp.o"
  "CMakeFiles/griphon_otn.dir/otn_switch.cpp.o.d"
  "CMakeFiles/griphon_otn.dir/restorer.cpp.o"
  "CMakeFiles/griphon_otn.dir/restorer.cpp.o.d"
  "libgriphon_otn.a"
  "libgriphon_otn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griphon_otn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
