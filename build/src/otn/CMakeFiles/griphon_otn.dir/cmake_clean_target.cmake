file(REMOVE_RECURSE
  "libgriphon_otn.a"
)
