# Empty dependencies file for griphon_otn.
# This may be replaced when dependencies are built.
