
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/channel.cpp" "src/proto/CMakeFiles/griphon_proto.dir/channel.cpp.o" "gcc" "src/proto/CMakeFiles/griphon_proto.dir/channel.cpp.o.d"
  "/root/repo/src/proto/client.cpp" "src/proto/CMakeFiles/griphon_proto.dir/client.cpp.o" "gcc" "src/proto/CMakeFiles/griphon_proto.dir/client.cpp.o.d"
  "/root/repo/src/proto/messages.cpp" "src/proto/CMakeFiles/griphon_proto.dir/messages.cpp.o" "gcc" "src/proto/CMakeFiles/griphon_proto.dir/messages.cpp.o.d"
  "/root/repo/src/proto/wire.cpp" "src/proto/CMakeFiles/griphon_proto.dir/wire.cpp.o" "gcc" "src/proto/CMakeFiles/griphon_proto.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/griphon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/griphon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
