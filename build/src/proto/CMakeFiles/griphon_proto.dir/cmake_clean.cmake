file(REMOVE_RECURSE
  "CMakeFiles/griphon_proto.dir/channel.cpp.o"
  "CMakeFiles/griphon_proto.dir/channel.cpp.o.d"
  "CMakeFiles/griphon_proto.dir/client.cpp.o"
  "CMakeFiles/griphon_proto.dir/client.cpp.o.d"
  "CMakeFiles/griphon_proto.dir/messages.cpp.o"
  "CMakeFiles/griphon_proto.dir/messages.cpp.o.d"
  "CMakeFiles/griphon_proto.dir/wire.cpp.o"
  "CMakeFiles/griphon_proto.dir/wire.cpp.o.d"
  "libgriphon_proto.a"
  "libgriphon_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griphon_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
