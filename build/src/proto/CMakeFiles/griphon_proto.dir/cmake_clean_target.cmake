file(REMOVE_RECURSE
  "libgriphon_proto.a"
)
