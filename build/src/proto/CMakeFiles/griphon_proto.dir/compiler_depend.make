# Empty compiler generated dependencies file for griphon_proto.
# This may be replaced when dependencies are built.
