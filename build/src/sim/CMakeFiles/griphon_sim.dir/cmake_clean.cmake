file(REMOVE_RECURSE
  "CMakeFiles/griphon_sim.dir/engine.cpp.o"
  "CMakeFiles/griphon_sim.dir/engine.cpp.o.d"
  "CMakeFiles/griphon_sim.dir/trace.cpp.o"
  "CMakeFiles/griphon_sim.dir/trace.cpp.o.d"
  "libgriphon_sim.a"
  "libgriphon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griphon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
