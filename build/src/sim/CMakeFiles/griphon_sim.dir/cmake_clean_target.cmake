file(REMOVE_RECURSE
  "libgriphon_sim.a"
)
