# Empty dependencies file for griphon_sim.
# This may be replaced when dependencies are built.
