file(REMOVE_RECURSE
  "CMakeFiles/griphon_sonet.dir/ring.cpp.o"
  "CMakeFiles/griphon_sonet.dir/ring.cpp.o.d"
  "libgriphon_sonet.a"
  "libgriphon_sonet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griphon_sonet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
