file(REMOVE_RECURSE
  "libgriphon_sonet.a"
)
