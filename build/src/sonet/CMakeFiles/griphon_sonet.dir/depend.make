# Empty dependencies file for griphon_sonet.
# This may be replaced when dependencies are built.
