file(REMOVE_RECURSE
  "CMakeFiles/griphon_topology.dir/builders.cpp.o"
  "CMakeFiles/griphon_topology.dir/builders.cpp.o.d"
  "CMakeFiles/griphon_topology.dir/graph.cpp.o"
  "CMakeFiles/griphon_topology.dir/graph.cpp.o.d"
  "CMakeFiles/griphon_topology.dir/path.cpp.o"
  "CMakeFiles/griphon_topology.dir/path.cpp.o.d"
  "libgriphon_topology.a"
  "libgriphon_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griphon_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
