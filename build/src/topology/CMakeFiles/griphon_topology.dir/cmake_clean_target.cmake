file(REMOVE_RECURSE
  "libgriphon_topology.a"
)
