# Empty compiler generated dependencies file for griphon_topology.
# This may be replaced when dependencies are built.
