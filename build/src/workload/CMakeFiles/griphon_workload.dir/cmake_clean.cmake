file(REMOVE_RECURSE
  "CMakeFiles/griphon_workload.dir/arrivals.cpp.o"
  "CMakeFiles/griphon_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/griphon_workload.dir/bulk_transfer.cpp.o"
  "CMakeFiles/griphon_workload.dir/bulk_transfer.cpp.o.d"
  "CMakeFiles/griphon_workload.dir/calendar.cpp.o"
  "CMakeFiles/griphon_workload.dir/calendar.cpp.o.d"
  "libgriphon_workload.a"
  "libgriphon_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/griphon_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
