file(REMOVE_RECURSE
  "libgriphon_workload.a"
)
