# Empty dependencies file for griphon_workload.
# This may be replaced when dependencies are built.
