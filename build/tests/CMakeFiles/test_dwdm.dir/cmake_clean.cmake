file(REMOVE_RECURSE
  "CMakeFiles/test_dwdm.dir/test_dwdm.cpp.o"
  "CMakeFiles/test_dwdm.dir/test_dwdm.cpp.o.d"
  "test_dwdm"
  "test_dwdm.pdb"
  "test_dwdm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dwdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
