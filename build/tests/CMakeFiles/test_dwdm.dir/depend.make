# Empty dependencies file for test_dwdm.
# This may be replaced when dependencies are built.
