file(REMOVE_RECURSE
  "CMakeFiles/test_ems.dir/test_ems.cpp.o"
  "CMakeFiles/test_ems.dir/test_ems.cpp.o.d"
  "test_ems"
  "test_ems.pdb"
  "test_ems[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
