file(REMOVE_RECURSE
  "CMakeFiles/test_fxc.dir/test_fxc.cpp.o"
  "CMakeFiles/test_fxc.dir/test_fxc.cpp.o.d"
  "test_fxc"
  "test_fxc.pdb"
  "test_fxc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fxc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
