file(REMOVE_RECURSE
  "CMakeFiles/test_otn.dir/test_otn.cpp.o"
  "CMakeFiles/test_otn.dir/test_otn.cpp.o.d"
  "test_otn"
  "test_otn.pdb"
  "test_otn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_otn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
