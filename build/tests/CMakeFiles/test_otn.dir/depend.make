# Empty dependencies file for test_otn.
# This may be replaced when dependencies are built.
