file(REMOVE_RECURSE
  "CMakeFiles/test_path_oracle.dir/test_path_oracle.cpp.o"
  "CMakeFiles/test_path_oracle.dir/test_path_oracle.cpp.o.d"
  "test_path_oracle"
  "test_path_oracle.pdb"
  "test_path_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
