# Empty dependencies file for test_path_oracle.
# This may be replaced when dependencies are built.
