file(REMOVE_RECURSE
  "CMakeFiles/test_sonet.dir/test_sonet.cpp.o"
  "CMakeFiles/test_sonet.dir/test_sonet.cpp.o.d"
  "test_sonet"
  "test_sonet.pdb"
  "test_sonet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sonet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
