file(REMOVE_RECURSE
  "CMakeFiles/test_tiers.dir/test_tiers.cpp.o"
  "CMakeFiles/test_tiers.dir/test_tiers.cpp.o.d"
  "test_tiers"
  "test_tiers.pdb"
  "test_tiers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
