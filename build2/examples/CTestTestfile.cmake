# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build2/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build2/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replication "/root/repo/build2/examples/replication")
set_tests_properties(example_replication PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_restoration "/root/repo/build2/examples/restoration")
set_tests_properties(example_restoration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_maintenance "/root/repo/build2/examples/maintenance")
set_tests_properties(example_maintenance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_carrier_week "/root/repo/build2/examples/carrier_week")
set_tests_properties(example_carrier_week PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
