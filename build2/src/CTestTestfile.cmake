# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build2/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("telemetry")
subdirs("topology")
subdirs("dwdm")
subdirs("fxc")
subdirs("otn")
subdirs("sonet")
subdirs("proto")
subdirs("ems")
subdirs("core")
subdirs("workload")
subdirs("baseline")
