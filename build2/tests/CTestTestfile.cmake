# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build2/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build2/tests/test_common[1]_include.cmake")
include("/root/repo/build2/tests/test_sim[1]_include.cmake")
include("/root/repo/build2/tests/test_topology[1]_include.cmake")
include("/root/repo/build2/tests/test_dwdm[1]_include.cmake")
include("/root/repo/build2/tests/test_fxc[1]_include.cmake")
include("/root/repo/build2/tests/test_otn[1]_include.cmake")
include("/root/repo/build2/tests/test_sonet[1]_include.cmake")
include("/root/repo/build2/tests/test_proto[1]_include.cmake")
include("/root/repo/build2/tests/test_ems[1]_include.cmake")
include("/root/repo/build2/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build2/tests/test_rwa[1]_include.cmake")
include("/root/repo/build2/tests/test_controller[1]_include.cmake")
include("/root/repo/build2/tests/test_workload[1]_include.cmake")
include("/root/repo/build2/tests/test_extensions[1]_include.cmake")
include("/root/repo/build2/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build2/tests/test_soak[1]_include.cmake")
include("/root/repo/build2/tests/test_planner[1]_include.cmake")
include("/root/repo/build2/tests/test_path_oracle[1]_include.cmake")
include("/root/repo/build2/tests/test_tiers[1]_include.cmake")
include("/root/repo/build2/tests/test_scenario[1]_include.cmake")
include("/root/repo/build2/tests/test_inventory_equiv[1]_include.cmake")
include("/root/repo/build2/tests/test_path_golden[1]_include.cmake")
