// A week in the life of a GRIPhoN deployment.
//
// End-to-end operations showcase on the US backbone: two cloud customers
// run bulk replication and hold steady circuits; mid-week a backhoe takes
// out a span (restoration at both layers); later the carrier performs
// planned maintenance with bridge-and-roll; at the end the customer
// dashboard and the controller's operational counters are printed.
//
// Build & run:  ./build/examples/carrier_week
#include <iomanip>
#include <iostream>

#include "core/scenario.hpp"
#include "workload/bulk_transfer.hpp"

using namespace griphon;

int main() {
  core::BackboneScenario::Options opt;
  opt.customers = 2;
  opt.sites_per_customer = 3;
  opt.config.ots_per_node = 10;
  opt.config.regens_per_node = 6;
  core::BackboneScenario s(/*seed=*/20260706, opt);
  std::cout << std::fixed << std::setprecision(1);
  std::cout << "GRIPhoN on a " << s.model->graph().nodes().size()
            << "-node continental backbone, " << opt.customers
            << " cloud customers\n\n";

  // Monday: steady circuits come up.
  std::vector<ConnectionId> steady;
  for (std::size_t c = 0; c < opt.customers; ++c) {
    s.portals[c]->connect(s.site(c, 0), s.site(c, 1), rates::k10G,
                          core::ProtectionMode::kRestorable,
                          [&](Result<ConnectionId> r) {
                            if (r.ok()) steady.push_back(r.value());
                          });
    s.portals[c]->connect(s.site(c, 0), s.site(c, 2), rates::k1G,
                          core::ProtectionMode::kRestorable,
                          [&](Result<ConnectionId> r) {
                            if (r.ok()) steady.push_back(r.value());
                          });
  }
  s.engine.run();
  std::cout << "[day 1] " << steady.size()
            << " steady circuits in service\n";

  // Tuesday: customer 0 runs a 25 TB replication at 12G composite.
  workload::BulkScheduler bulk(&s.engine, s.portals[0].get());
  s.engine.run_until(hours(24));
  bulk.submit(s.site(0, 1), s.site(0, 2), 25'000'000'000'000,
              DataRate::gbps(12), [&](const workload::BulkJob& j) {
                std::cout << "[day 2] 25 TB replication "
                          << (j.failed ? "FAILED" : "done") << " in "
                          << to_seconds(j.completion_time()) / 3600.0
                          << " h\n";
              });
  s.engine.run();

  // Wednesday: a backhoe finds a steady wavelength circuit's fiber.
  s.engine.run_until(hours(48));
  ConnectionId wave_conn;
  for (const ConnectionId id : steady)
    if (s.controller->connection(id).kind ==
        core::ConnectionKind::kWavelength)
      wave_conn = id;
  const LinkId victim =
      s.controller->connection(wave_conn).plan.path.links.front();
  std::cout << "[day 3] fiber cut on "
            << s.model->graph().link(victim).name << "\n";
  s.model->fail_link(victim);
  s.engine.run();
  for (const ConnectionId id : steady) {
    const auto& c = s.controller->connection(id);
    if (c.restorations > 0)
      std::cout << "        connection " << id << " restored, outage "
                << to_seconds(c.total_outage) << " s\n";
  }
  s.engine.run_until(hours(60));
  s.model->repair_link(victim);  // splice crew finishes
  s.engine.run();

  // Friday: planned maintenance on the busiest remaining span.
  s.engine.run_until(hours(96));
  const LinkId mx =
      s.controller->connection(wave_conn).plan.path.links.front();
  std::cout << "[day 5] maintenance window on "
            << s.model->graph().link(mx).name << "\n";
  s.controller->prepare_maintenance(mx, [&](Status st) {
    std::cout << "        traffic rolled off: "
              << (st.ok() ? "ok" : st.error().message()) << "\n";
  });
  s.engine.run();
  s.model->fail_link(mx);
  s.engine.run_until(s.engine.now() + hours(3));
  s.model->repair_link(mx);
  s.engine.run();

  // Sunday wrap-up.
  s.engine.run_until(hours(24 * 7));
  std::cout << "\n[day 7] customer 0 dashboard:\n"
            << s.portals[0]->render_dashboard();
  const auto& st = s.controller->stats();
  std::cout << "\ncontroller week totals: setups=" << st.setups_ok
            << " releases=" << st.releases
            << " restorations=" << st.restorations_ok << "/"
            << st.restorations_ok + st.restorations_failed
            << " rolls=" << st.rolls_ok
            << " EMS commands=" << st.commands_issued << "\n";
  return 0;
}
