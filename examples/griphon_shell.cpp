// Interactive GRIPhoN operations shell.
//
// A scriptable console for driving a deployment by hand — the closest
// thing to sitting at the paper's customer GUI plus the carrier's NOC at
// once. Reads commands from stdin (pipe a script or type interactively):
//
//   sites                      list customer sites
//   topo                       list fiber links
//   connect <a> <b> <gbps> [none|restore|1+1]
//   bundle <a> <b> <gbps>      composite-rate bundle
//   disconnect <id>
//   cut <link-name>            fiber cut
//   repair <link-name>
//   maintain <link-name>       bridge-and-roll everything off, then work
//   regroom <id>
//   wait <seconds>             advance simulated time
//   dashboard                  customer view + ops view (sparklines, SLOs)
//   stats                      controller counters
//   telemetry                  Prometheus metrics dump
//   telemetry <id>             per-connection lifecycle waterfall
//   telemetry json [id]        span JSON (all spans, or one connection)
//   telemetry save <path>      dump metrics + spans + events as JSON
//   trace save <path>          Chrome Trace Event JSON (Perfetto/
//                              chrome://tracing loadable)
//   series [save <path> [csv]] sampled gauge time series (sparklines to
//                              the console, JSON/CSV to a file)
//   eventlog [n]               newest n structured events (default 20)
//   eventlog save <path>       event log as JSON
//   dag                        step DAG + critical path of the last
//                              command train run by the DAG executor
//   schedule <a> <b> <tb> <hours>   deadline-driven bulk transfer (BoD)
//   transfers                  bulk-transfer status table
//   reserve <link> <gbps> <start-s> <end-s>   advance calendar reservation
//   calendar                   reservation-calendar occupancy map
//   reopt [analyze]            fragmentation + continuity scorecard
//   reopt plan                 migration delta the compaction solver wants
//   reopt run                  hitless defrag campaign (BoD windows exempt)
//   reopt stats                re-optimization service counters
//   chaos plan <preset> [x]    load a fault plan (optionally scaled by x)
//   chaos arm | disarm | heal  start / stop / repair fault injection
//   chaos stats                injector counters + controller fault stats
//   chaos log                  timestamped fault schedule
//   quit
//
// Example (one line):
//   printf 'connect 0 2 10\ntelemetry 1\nquit\n' | ./build/examples/griphon_shell
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "bod/observability.hpp"
#include "bod/transfer_scheduler.hpp"
#include "chaos/fault_injector.hpp"
#include "chaos/fault_plan.hpp"
#include "core/observability.hpp"
#include "core/scenario.hpp"
#include "reopt/service.hpp"
#include "core/step_dag.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/timeline.hpp"
#include "telemetry/trace_export.hpp"

using namespace griphon;

namespace {

std::optional<LinkId> link_by_name(const core::NetworkModel& model,
                                   const std::string& name) {
  for (const auto& l : model.graph().links())
    if (l.name == name) return l.id;
  return std::nullopt;
}

}  // namespace

int main() {
  core::TestbedScenario s(/*seed=*/1);
  telemetry::Telemetry tel(&s.engine);
  s.model->attach_telemetry(&tel);

  // BoD service layer riding the same deployment: an advance-reservation
  // calendar over the testbed fibers, admission control for the one
  // customer, and the deadline scheduler in front of the portal.
  bod::ReservationCalendar calendar;
  bod::AdmissionController admission(&s.engine);
  bod::AdmissionController::CustomerPolicy policy;
  policy.bandwidth_quota = DataRate::gbps(160);
  admission.set_policy(s.csp, policy);
  bod::TransferScheduler scheduler(s.controller.get(), &calendar,
                                   &admission);
  scheduler.register_portal(s.portal.get());

  // Re-optimization rides the same controller: hourly fragmentation
  // analysis and on-demand defrag campaigns. Connections inside
  // calendar-committed BoD transfer windows are never migrated.
  reopt::ReoptService::Params reopt_params;
  for (const auto& a : s.model->graph().nodes())
    for (const auto& b : s.model->graph().nodes())
      if (a.id.value() < b.id.value())
        reopt_params.pairs.emplace_back(a.id, b.id);
  reopt::ReoptService reoptsvc(s.controller.get(), reopt_params);
  reoptsvc.set_exempt_provider(
      [&scheduler] { return scheduler.migration_exempt_connections(); });

  // Observability v2: a gauge sampler over the standard probe set (pool
  // occupancy, EMS queues/breakers, calendar, connections) feeding SLO
  // evaluation against the paper's operational budgets.
  telemetry::GaugeSampler sampler(&s.engine, &tel);
  core::install_standard_probes(sampler, *s.controller, *s.model);
  {
    std::vector<LinkId> links;
    for (const auto& l : s.model->graph().links()) links.push_back(l.id);
    bod::install_calendar_probes(sampler, calendar, s.engine,
                                 std::move(links));
  }
  reoptsvc.install_probes(sampler);
  sampler.start(from_seconds(5));
  telemetry::SloMonitor slo(&s.engine, &tel);
  slo.add_objective(
      telemetry::setup_latency_objective(tel.metrics(), /*budget=*/90.0));
  slo.add_objective(
      telemetry::restoration_time_objective(tel.metrics(), /*budget=*/120.0));
  slo.add_objective(
      telemetry::blocking_rate_objective(tel.metrics(), /*ceiling=*/0.05));
  slo.add_objective(
      telemetry::bod_deadline_miss_objective(tel.metrics(), /*ceiling=*/0.1));
  slo.add_objective(reopt::fragmentation_objective(reoptsvc, /*bound=*/0.35));
  slo.add_objective(
      telemetry::restoration_backlog_objective(tel.metrics(), /*ceiling=*/4.0));
  slo.start(from_seconds(10));

  // Fault injection on demand: `chaos plan <preset>` builds an injector
  // for the loaded deployment, `chaos arm` lets it loose. One fixed seed —
  // a replayed script sees the identical fault schedule.
  std::unique_ptr<chaos::FaultInjector> injector;

  // The sampler (and an armed injector) always has its next tick
  // scheduled, so engine.run() would never return; bound the horizon.
  const auto settle = [&]() {
    s.engine.run_until(s.engine.now() + minutes(30));
  };

  auto& out = std::cout;
  out << "GRIPhoN shell — paper testbed loaded. 'help' for commands.\n";
  const std::vector<MuxponderId> sites{s.site_i, s.site_iii, s.site_iv};

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      out << "sites | topo | connect a b gbps [none|restore|1+1] | "
             "bundle a b gbps | disconnect id | cut link | repair link | "
             "maintain link | regroom id | wait s | dashboard | stats | "
             "telemetry [id | json [id] | save path] | trace save path | "
             "series [save path [csv]] | eventlog [n | save path] | dag | "
             "schedule a b tb hours | transfers | "
             "reserve link gbps start-s end-s | calendar | "
             "restoration [kick] | reopt [analyze | plan | run | stats] | "
             "chaos [plan preset [x] | arm | disarm | heal | stats | log] | "
             "quit\n";
    } else if (cmd == "sites") {
      for (std::size_t i = 0; i < sites.size(); ++i) {
        const auto* site = s.model->site_by_nte(sites[i]);
        out << "  [" << i << "] " << site->name << " (PoP "
            << s.model->graph().node(site->core_pop).name << ")\n";
      }
    } else if (cmd == "topo") {
      for (const auto& l : s.model->graph().links())
        out << "  " << l.name << "  " << l.length().in_km() << " km"
            << (s.model->link_failed(l.id) ? "  [FAILED]" : "") << "\n";
    } else if (cmd == "connect" || cmd == "bundle") {
      std::size_t a = 0, b = 0;
      double gbps = 0;
      std::string prot = "restore";
      in >> a >> b >> gbps >> prot;
      if (a >= sites.size() || b >= sites.size() || gbps <= 0) {
        out << "  usage: connect <site> <site> <gbps> [none|restore|1+1]\n";
        continue;
      }
      const auto protection =
          prot == "none" ? core::ProtectionMode::kUnprotected
          : prot == "1+1" ? core::ProtectionMode::kOnePlusOne
                          : core::ProtectionMode::kRestorable;
      if (cmd == "connect") {
        s.portal->connect(sites[a], sites[b], DataRate::gbps(gbps),
                          protection, [&](Result<ConnectionId> r) {
                            if (r.ok())
                              out << "  connection " << r.value()
                                  << " ACTIVE after "
                                  << to_seconds(s.controller
                                                    ->connection(r.value())
                                                    .setup_duration)
                                  << " s\n";
                            else
                              out << "  FAILED: " << r.error() << "\n";
                          });
      } else {
        s.portal->connect_bundle(
            sites[a], sites[b], DataRate::gbps(gbps), protection,
            [&](Result<core::BundleId> r) {
              if (r.ok())
                out << "  bundle " << r.value() << " up ("
                    << s.portal->bundle(r.value()).parts.size()
                    << " circuits)\n";
              else
                out << "  FAILED: " << r.error() << "\n";
            });
      }
      settle();
    } else if (cmd == "disconnect") {
      std::uint64_t id = 0;
      in >> id;
      s.portal->disconnect(ConnectionId{id}, [&](Status st) {
        out << "  " << (st.ok() ? "released" : st.error().message()) << "\n";
      });
      settle();
    } else if (cmd == "cut" || cmd == "repair" || cmd == "maintain") {
      std::string name;
      in >> name;
      const auto link = link_by_name(*s.model, name);
      if (!link) {
        out << "  unknown link '" << name << "' (see: topo)\n";
        continue;
      }
      if (cmd == "cut")
        s.model->fail_link(*link);
      else if (cmd == "repair")
        s.model->repair_link(*link);
      else
        s.controller->prepare_maintenance(*link, [&](Status st) {
          out << "  maintenance prep: "
              << (st.ok() ? "traffic rolled off" : st.error().message())
              << "\n";
        });
      settle();
    } else if (cmd == "regroom") {
      std::uint64_t id = 0;
      in >> id;
      s.controller->regroom(ConnectionId{id}, [&](Status st) {
        out << "  " << (st.ok() ? "re-groomed" : st.error().message())
            << "\n";
      });
      settle();
    } else if (cmd == "wait") {
      double secs = 0;
      in >> secs;
      s.engine.run_until(s.engine.now() + from_seconds(secs));
      out << "  t=" << to_seconds(s.engine.now()) << " s\n";
    } else if (cmd == "dashboard") {
      out << s.portal->render_dashboard();
      out << "\nops dashboard (t=" << to_seconds(s.engine.now())
          << " s, sampling every " << to_seconds(sampler.period())
          << " s):\n";
      for (const std::string& name : sampler.names()) {
        const telemetry::TimeSeries* ts = sampler.series(name);
        if (ts == nullptr || ts->points().empty()) continue;
        const auto roll = ts->rollup();
        out << "  " << std::left << std::setw(28) << name << std::right
            << " " << std::setw(9) << roll.last << "  ["
            << ts->spark(40) << "]\n";
      }
      out << slo.render();
      if (tel.events().size() > 0) out << tel.events().render(5);
    } else if (cmd == "trace") {
      std::string sub, path;
      in >> sub >> path;
      if (sub != "save" || path.empty()) {
        out << "  usage: trace save <path>\n";
        continue;
      }
      std::ofstream file(path);
      if (!file) {
        out << "  cannot write '" << path << "'\n";
        continue;
      }
      file << telemetry::TraceExporter().to_json(tel) << "\n";
      out << "  wrote " << path << " (load in ui.perfetto.dev or "
             "chrome://tracing)\n";
    } else if (cmd == "series") {
      std::string sub, path, format;
      in >> sub >> path >> format;
      if (sub.empty()) {
        for (const std::string& name : sampler.names()) {
          const telemetry::TimeSeries* ts = sampler.series(name);
          if (ts == nullptr) continue;
          const auto roll = ts->rollup();
          out << "  " << std::left << std::setw(28) << name << std::right
              << " last " << roll.last << " min " << roll.min << " max "
              << roll.max << " mean " << roll.mean << "\n";
        }
      } else if (sub == "save" && !path.empty()) {
        std::ofstream file(path);
        if (!file) {
          out << "  cannot write '" << path << "'\n";
          continue;
        }
        file << (format == "csv" ? sampler.to_csv() : sampler.to_json());
        out << "  wrote " << path << "\n";
      } else {
        out << "  usage: series [save <path> [csv]]\n";
      }
    } else if (cmd == "eventlog") {
      std::string sub;
      in >> sub;
      if (sub == "save") {
        std::string path;
        in >> path;
        if (path.empty()) {
          out << "  usage: eventlog save <path>\n";
          continue;
        }
        std::ofstream file(path);
        if (!file) {
          out << "  cannot write '" << path << "'\n";
          continue;
        }
        file << tel.events().to_json() << "\n";
        out << "  wrote " << path << "\n";
      } else {
        std::size_t n = 20;
        if (!sub.empty()) std::istringstream(sub) >> n;
        out << tel.events().render(n);
      }
    } else if (cmd == "telemetry") {
      std::string arg;
      in >> arg;
      const telemetry::TimelineReport report(&tel.spans());
      if (arg.empty()) {
        out << tel.metrics().to_prometheus();
      } else if (arg == "json") {
        std::uint64_t id = 0;
        const bool scoped = static_cast<bool>(in >> id);
        out << tel.spans().to_json(
                   scoped ? core::telemetry_tag(ConnectionId{id}) : 0)
            << "\n";
      } else if (arg == "save") {
        std::string path;
        in >> path;
        if (path.empty()) {
          out << "  usage: telemetry save <path>\n";
          continue;
        }
        std::ofstream file(path);
        if (!file) {
          out << "  cannot write '" << path << "'\n";
          continue;
        }
        file << "{\"metrics\": " << tel.metrics().to_json_rows("shell")
             << ", \"spans\": " << tel.spans().to_json()
             << ", \"events\": " << tel.events().to_json()
             << ", \"sim_trace\": " << s.model->trace().to_json() << "}\n";
        out << "  wrote " << path << "\n";
      } else {
        std::uint64_t id = 0;
        std::istringstream(arg) >> id;
        const std::string timeline =
            report.render(core::telemetry_tag(ConnectionId{id}));
        out << (timeline.empty()
                    ? "  no spans for connection " + arg + "\n"
                    : timeline);
      }
    } else if (cmd == "dag") {
      const auto& report = s.controller->last_dag_report();
      out << (report.steps.empty()
                  ? "  no DAG command train recorded yet (run a connect "
                    "with the default executor)\n"
                  : core::render_dag(report));
    } else if (cmd == "schedule") {
      std::size_t a = 0, b = 0;
      double tb = 0, hours_out = 0;
      in >> a >> b >> tb >> hours_out;
      if (a >= sites.size() || b >= sites.size() || a == b || tb <= 0 ||
          hours_out <= 0) {
        out << "  usage: schedule <site> <site> <terabytes> "
               "<deadline-hours-from-now>\n";
        continue;
      }
      bod::TransferScheduler::TransferRequest req;
      req.customer = s.csp;
      req.src_site = sites[a];
      req.dst_site = sites[b];
      req.bytes = static_cast<std::int64_t>(tb * 1e12);
      req.deadline = s.engine.now() + from_seconds(hours_out * 3600);
      const auto id = scheduler.submit(req);
      if (id.ok()) {
        const auto status = scheduler.inspect(s.csp, id.value());
        out << "  transfer " << id.value() << " scheduled, "
            << status.value().pieces << " piece(s), lands by t="
            << to_seconds(status.value().expected_completion) << " s\n";
      } else {
        out << "  REJECTED: " << id.error() << "\n";
      }
    } else if (cmd == "transfers") {
      out << scheduler.render();
    } else if (cmd == "reserve") {
      std::string name;
      double gbps = 0, start_s = 0, end_s = 0;
      in >> name >> gbps >> start_s >> end_s;
      const auto link = link_by_name(*s.model, name);
      if (!link || gbps <= 0 || end_s <= start_s) {
        out << "  usage: reserve <link> <gbps> <start-s> <end-s> "
               "(see: topo)\n";
        continue;
      }
      const auto resv = calendar.reserve(
          s.csp, {*link}, DataRate::gbps(gbps),
          {from_seconds(start_s), from_seconds(end_s)});
      if (resv.ok())
        out << "  reservation " << resv.value() << " holds "
            << gbps << "G on " << name << " [" << start_s << " s, "
            << end_s << " s)\n";
      else
        out << "  REJECTED: " << resv.error() << "\n";
    } else if (cmd == "calendar") {
      // Backbone fibers plus every site's access pipe, next 6 hours.
      std::vector<LinkId> links;
      for (const auto& l : s.model->graph().links()) links.push_back(l.id);
      for (const MuxponderId site : sites)
        links.push_back(scheduler.access_link(site));
      const std::string map = calendar.render(
          links, s.engine.now(), s.engine.now() + hours(6));
      out << (map.empty() ? "  calendar empty\n" : map);
    } else if (cmd == "stats") {
      const auto& st = s.controller->stats();
      out << "  setups " << st.setups_ok << "/"
          << st.setups_ok + st.setups_failed << ", releases " << st.releases
          << ", restorations " << st.restorations_ok << ", rolls "
          << st.rolls_ok << ", EMS commands " << st.commands_issued << "\n";
    } else if (cmd == "restoration") {
      std::string sub;
      in >> sub;
      if (sub == "kick") {
        s.controller->kick_restoration_backlog(/*reset_attempts=*/true);
        settle();
        out << "  backlog re-armed (" << s.controller->restoration_backlog_depth()
            << " entr(ies) remain)\n";
      } else {
        const auto& st = s.controller->stats();
        out << "  storm " << (s.controller->restoration_storm_active()
                                  ? "ACTIVE" : "clear")
            << " (" << s.controller->failure_manager().storms_seen()
            << " seen), queue " << s.controller->restoration_queue_depth()
            << ", in-flight " << s.controller->restorations_in_flight()
            << ", backlog " << s.controller->restoration_backlog_depth()
            << "\n";
        out << "  restorations ok " << st.restorations_ok << ", failed "
            << st.restorations_failed << ", retried " << st.restorations_retried
            << ", non-diverse " << st.restorations_non_diverse
            << "; preemptions " << st.preemptions_requested << " ("
            << st.bod_windows_preempted << " window(s) torn)\n";
      }
    } else if (cmd == "reopt") {
      std::string sub;
      in >> sub;
      if (sub.empty() || sub == "analyze") {
        const auto& report = reoptsvc.analyze();
        out << "  fragmentation mean " << report.mean_score << ", max "
            << report.max_score << " (" << report.fragmented_links
            << " fragmented link(s), " << report.total_used << " used / "
            << report.total_free << " free channels)\n"
            << "  continuity: " << report.stranded_pairs
            << " stranded pair(s), " << report.blocked_candidates
            << " blocked candidate route(s) of " << report.pairs_scored
            << " pairs probed\n";
        for (const auto& lf : report.links)
          if (lf.score > 0)
            out << "    " << s.model->graph().link(lf.link).name << ": score "
                << lf.score << " (largest free block "
                << lf.largest_free_block << " of " << lf.free << ")\n";
      } else if (sub == "plan") {
        const auto plan = reoptsvc.plan_now();
        if (plan.moves.empty()) {
          out << "  nothing to migrate (" << plan.items_considered
              << " live connection(s) considered)\n";
        } else {
          out << "  " << plan.moves.size() << " move(s) over "
              << plan.items_considered << " live connection(s):\n";
          for (const auto& mv : plan.moves) {
            out << "    connection " << mv.id.value() << " ->";
            for (const auto& seg : mv.target.segments)
              out << " ch" << seg.channel;
            out << "\n";
          }
        }
        const auto exempt = scheduler.migration_exempt_connections();
        if (!exempt.empty())
          out << "  (" << exempt.size()
              << " connection(s) exempt: in-window BoD transfers)\n";
      } else if (sub == "run") {
        bool done = false;
        reoptsvc.run_campaign(
            [&](const reopt::MigrationExecutor::CampaignReport& r) {
              done = true;
              out << "  campaign: " << r.moves_rolled << "/"
                  << r.moves_planned << " moved, " << r.moves_skipped
                  << " skipped, " << r.moves_failed << " failed, "
                  << r.cycle_breaks << " cycle break(s)"
                  << (r.aborted ? " — ABORTED: " + r.abort_reason : "")
                  << "\n";
            });
        settle();
        if (!done) out << "  campaign still draining (wait, then stats)\n";
      } else if (sub == "stats") {
        const auto& rs = reoptsvc.stats();
        out << "  analyses " << rs.analyses << ", campaigns "
            << rs.campaigns_completed << "/" << rs.campaigns_started
            << " (aborted " << rs.campaigns_aborted << "), moves rolled "
            << rs.moves_rolled << ", skipped " << rs.moves_skipped
            << ", failed " << rs.moves_failed << ", cycle breaks "
            << rs.cycle_breaks << "\n";
      } else {
        out << "  usage: reopt [analyze | plan | run | stats]\n";
      }
    } else if (cmd == "chaos") {
      std::string sub;
      in >> sub;
      if (sub == "plan") {
        std::string preset;
        double intensity = 1.0;
        in >> preset >> intensity;
        if (preset.empty()) {
          out << (injector ? injector->plan().render()
                           : "  no fault plan loaded (chaos plan "
                             "<none|ems-flaps|channel-loss|device-faults|"
                             "combined> [intensity])\n");
          continue;
        }
        const auto plan = chaos::FaultPlan::preset(preset);
        if (!plan.ok()) {
          out << "  " << plan.error() << "\n";
          continue;
        }
        if (injector) injector->disarm();
        injector = std::make_unique<chaos::FaultInjector>(
            s.model.get(), plan.value().scaled(intensity), /*seed=*/42);
        injector->set_telemetry(&tel);
        out << injector->plan().render();
      } else if (!injector) {
        out << "  load a plan first: chaos plan <preset> [intensity]\n";
      } else if (sub == "arm") {
        injector->arm();
        out << "  armed: " << injector->plan().name << "\n";
      } else if (sub == "disarm") {
        injector->disarm();
        out << "  disarmed (standing faults persist; chaos heal)\n";
      } else if (sub == "heal") {
        injector->heal_all();
        settle();
        out << "  all device faults repaired\n";
      } else if (sub == "stats") {
        const auto& is = injector->stats();
        const auto& cs = s.controller->stats();
        out << "  injected: nacks " << is.nacks_injected << ", slow "
            << is.slow_commands << ", crashes " << is.ems_crashes
            << ", drops " << is.frames_dropped << ", dups "
            << is.frames_duplicated << ", delays " << is.frames_delayed
            << ", ot-faults " << is.ot_faults << ", fxc-sticks "
            << is.fxc_sticks << "\n"
            << "  absorbed: retried " << cs.commands_retried << ", shed "
            << cs.commands_shed << ", resyncs " << cs.resync_runs
            << " (leaks " << cs.resync_leaks << ", drift "
            << cs.resync_drift << ")\n";
      } else if (sub == "log") {
        const std::string log = injector->render_log();
        out << (log.empty() ? "  fault log empty\n" : log);
      } else {
        out << "  usage: chaos [plan preset [x] | arm | disarm | heal | "
               "stats | log]\n";
      }
    } else {
      out << "  unknown command '" << cmd << "' (help)\n";
    }
  }
  return 0;
}
