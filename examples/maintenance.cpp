// Planned maintenance with automated bridge-and-roll.
//
// The paper's fourth service-vision row: "minimal impact during
// maintenance". Before the carrier takes the I-IV span down for work, the
// controller bridges every wavelength connection riding it onto
// resource-disjoint paths and rolls traffic across with a ~50 ms hit —
// instead of the multi-hour outage an unmanaged maintenance would cause.
//
// Build & run:  ./build/examples/maintenance
#include <iomanip>
#include <iostream>

#include "core/scenario.hpp"

using namespace griphon;

int main() {
  core::TestbedScenario s(/*seed=*/99);
  std::cout << std::fixed << std::setprecision(3);

  // Two wavelength connections that both ride the I-IV span.
  std::vector<ConnectionId> conns;
  for (int i = 0; i < 2; ++i) {
    s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                      core::ProtectionMode::kRestorable,
                      [&](Result<ConnectionId> r) {
                        if (r.ok()) conns.push_back(r.value());
                      });
    s.engine.run();
  }
  for (const ConnectionId id : conns)
    std::cout << "connection " << id << " up, "
              << s.controller->connection(id).plan.path.hops() << " hop(s)\n";

  std::cout << "\n[t=" << to_seconds(s.engine.now())
            << "s] maintenance scheduled on span I-IV; rolling traffic off\n";
  const SimTime start = s.engine.now();
  s.controller->prepare_maintenance(s.topo.i_iv, [&](Status status) {
    std::cout << "prepare-maintenance " << (status.ok() ? "done" : "FAILED")
              << " after " << to_seconds(s.engine.now() - start)
              << " s wall time\n";
  });
  s.engine.run();

  for (const ConnectionId id : conns) {
    const auto& c = s.controller->connection(id);
    std::cout << "  connection " << id << ": now " << c.plan.path.hops()
              << " hops, rolls=" << c.rolls << ", state=" << to_string(c.state)
              << " (service hit ~50 ms per roll, not "
              << "hours of outage)\n";
  }

  // The span is now traffic-free: take it down, do the work, bring it back.
  s.model->fail_link(s.topo.i_iv);
  s.engine.run_until(s.engine.now() + hours(2));  // maintenance window
  s.model->repair_link(s.topo.i_iv);
  s.engine.run();

  // Verify no connection saw an outage from the maintenance itself.
  std::cout << "\nafter the 2 h maintenance window:\n";
  for (const ConnectionId id : conns) {
    const auto& c = s.controller->connection(id);
    std::cout << "  connection " << id << ": state=" << to_string(c.state)
              << ", total outage " << to_seconds(c.total_outage) << " s\n";
  }

  // Re-groom everything back onto the shortest paths.
  for (const ConnectionId id : conns) {
    s.controller->regroom(id, [&](Status) {});
    s.engine.run();
  }
  std::cout << "\nafter re-grooming home:\n";
  for (const ConnectionId id : conns) {
    const auto& c = s.controller->connection(id);
    std::cout << "  connection " << id << ": " << c.plan.path.hops()
              << " hop(s), rolls=" << c.rolls << '\n';
  }
  return 0;
}
