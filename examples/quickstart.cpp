// Quickstart: bring up the paper's four-ROADM testbed, order a 10G
// wavelength connection between two data centers through the customer
// portal, watch it come up in about a minute of simulated time, then tear
// it down.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/scenario.hpp"

using namespace griphon;

int main() {
  core::TestbedScenario s(/*seed=*/42);
  std::cout << "GRIPhoN quickstart: testbed with "
            << s.model->graph().nodes().size() << " ROADM nodes, "
            << s.model->ots().size() << " transponders\n";

  ConnectionId connection;
  s.portal->connect(
      s.site_i, s.site_iv, rates::k10G, core::ProtectionMode::kRestorable,
      [&](Result<ConnectionId> r) {
        if (!r.ok()) {
          std::cout << "setup failed: " << r.error() << '\n';
          return;
        }
        connection = r.value();
        const auto& c = s.controller->connection(connection);
        std::cout << "connection " << connection << " ACTIVE after "
                  << to_seconds(c.setup_duration) << " s, path hops: "
                  << c.plan.path.hops() << ", channel: ch"
                  << c.plan.segments.front().channel << '\n';
      });
  s.engine.run();

  std::cout << "customer view:\n";
  for (const auto& v : s.portal->list())
    std::cout << "  " << v.src_site << " -> " << v.dst_site << "  "
              << v.rate << "  [" << v.state << "] via " << v.service << '\n';

  const SimTime teardown_start = s.engine.now();
  s.portal->disconnect(connection, [&](Status status) {
    std::cout << "teardown " << (status.ok() ? "ok" : "failed") << " in "
              << to_seconds(s.engine.now() - teardown_start) << " s\n";
  });
  s.engine.run();
  return 0;
}
