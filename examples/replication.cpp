// Inter-data-center content replication with composite-rate BoD.
//
// The paper's motivating workload (§1): a cloud service provider replicates
// bulk content between geographically distributed data centers. Here the
// CSP needs 12 Gbps between DC-I and DC-IV for a 10 TB replication job.
// Instead of holding a second 10G wavelength at ~17% utilization, the
// portal composes "one 10G DWDM wavelength + two 1G OTN circuits" exactly
// as §2.2 describes, holds the bundle for the duration of the transfer,
// and releases it afterwards.
//
// Build & run:  ./build/examples/replication
#include <iostream>

#include "core/scenario.hpp"
#include "workload/bulk_transfer.hpp"

using namespace griphon;

int main() {
  core::TestbedScenario s(/*seed=*/2026);

  const DataRate need = DataRate::gbps(12);
  const auto d = core::CustomerPortal::decompose(need);
  std::cout << "replication demand: " << need << "\n"
            << "portal decomposition: " << d.wavelengths_10g
            << " x 10G wavelength + " << d.odu_1g
            << " x 1G ODU0 circuit  (total " << d.total() << ")\n\n";

  workload::BulkScheduler scheduler(&s.engine, s.portal.get());
  const std::int64_t bytes = 10LL * 1000 * 1000 * 1000 * 1000;  // 10 TB

  scheduler.submit(s.site_i, s.site_iv, bytes, need,
                   [&](const workload::BulkJob& job) {
                     if (job.failed) {
                       std::cout << "job failed: " << job.failure << '\n';
                       return;
                     }
                     std::cout << "10 TB replication complete\n"
                               << "  bandwidth available after  "
                               << to_seconds(job.setup_overhead()) << " s\n"
                               << "  total completion time      "
                               << to_seconds(job.completion_time()) / 3600.0
                               << " h\n";
                   });
  s.engine.run();

  std::cout << "\nbandwidth after release: " << s.portal->provisioned()
            << " (pool returned to the carrier)\n";

  // Contrast: the same job on a single static 10G private line that first
  // has to be provisioned the traditional way.
  std::cout << "\nfor contrast, a statically provisioned 10G line would need "
            << "weeks of lead time before the first byte moves\n";
  return 0;
}
