// Fiber-cut restoration at two layers.
//
// Demonstrates the paper's outage story (§1 item 3, §2.2):
//  * a wavelength connection is restored by the GRIPhoN controller —
//    alarm correlation localizes the cut, a new path is computed and
//    provisioned in minutes (vs 4-12 h manual repair today);
//  * a protected sub-wavelength (OTN) circuit is restored by shared-mesh
//    switching in well under a second;
//  * after the fiber is repaired, the wavelength connection is reverted
//    to its home path with an almost-hitless bridge-and-roll.
//
// Build & run:  ./build/examples/restoration
#include <iomanip>
#include <iostream>

#include "core/scenario.hpp"

using namespace griphon;

int main() {
  core::TestbedScenario s(/*seed=*/7);
  std::cout << std::fixed << std::setprecision(3);

  // One 10G wavelength and one protected 1G OTN circuit, both I -> IV.
  ConnectionId wave, odu;
  s.portal->connect(s.site_i, s.site_iv, rates::k10G,
                    core::ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) { wave = r.value(); });
  s.portal->connect(s.site_i, s.site_iv, rates::k1G,
                    core::ProtectionMode::kRestorable,
                    [&](Result<ConnectionId> r) { odu = r.value(); });
  s.engine.run();
  std::cout << "wavelength connection up, path hops: "
            << s.controller->connection(wave).plan.path.hops()
            << " (direct I-IV)\n"
            << "sub-wavelength 1G circuit up (shared-mesh protected)\n\n";

  // Cut the I-IV fiber.
  const SimTime cut_at = s.engine.now();
  std::cout << "[t=" << to_seconds(cut_at) << "s] CUTTING fiber I-IV\n";
  s.model->fail_link(s.topo.i_iv);
  s.engine.run();

  const auto& w = s.controller->connection(wave);
  const auto& o = s.controller->connection(odu);
  std::cout << "\nafter the dust settles:\n"
            << "  wavelength: state=" << to_string(w.state)
            << ", restorations=" << w.restorations
            << ", outage=" << to_seconds(w.total_outage) << " s"
            << ", new path hops=" << w.plan.path.hops() << "\n"
            << "  OTN 1G:     state=" << to_string(o.state)
            << ", restorations=" << o.restorations
            << ", outage=" << to_seconds(o.total_outage) << " s"
            << " (shared mesh)\n\n";

  // Repair the fiber; then re-groom the wavelength back home.
  std::cout << "[t=" << to_seconds(s.engine.now()) << "s] repairing fiber\n";
  s.model->repair_link(s.topo.i_iv);
  s.engine.run();
  s.controller->regroom(wave, [&](Status status) {
    std::cout << "re-groom to home path: "
              << (status.ok() ? "done (bridge-and-roll)" : "failed") << '\n';
  });
  s.engine.run();
  const auto& w2 = s.controller->connection(wave);
  std::cout << "  wavelength now on " << w2.plan.path.hops()
            << "-hop path, rolls=" << w2.rolls
            << ", total outage remained " << to_seconds(w2.total_outage)
            << " s\n";
  return 0;
}
