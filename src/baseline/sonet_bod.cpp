#include "baseline/sonet_bod.hpp"

namespace griphon::baseline {

Result<SonetBodService::Provisioned> SonetBodService::request(NodeId src,
                                                              NodeId dst,
                                                              DataRate rate,
                                                              Rng& rng) {
  if (rate > sonet::kLegacyBodCeiling)
    return Error{ErrorCode::kInvalidArgument,
                 "sonet-bod: rate above the 622 Mbps service ceiling"};
  const int sts1 = sonet::sts1_count_for(rate);
  auto circuit = ring_->provision(src, dst, sts1);
  if (!circuit.ok()) return circuit.error();
  Provisioned p;
  p.circuit = circuit.value();
  p.provisioning_time = from_seconds(rng.uniform(
      to_seconds(params_.provisioning_min), to_seconds(params_.provisioning_max)));
  p.granted = sonet::vcat_rate(sts1);
  return p;
}

}  // namespace griphon::baseline
