// Legacy circuit BoD at the SONET layer.
//
// What carriers already offered in 2011 (paper §1: BoD private-line
// services "in limited architectures and usually at rates <= 622 Mbps"):
// virtually concatenated STS-1s on a ring, provisioned in minutes by
// reconfiguring electronic circuit switches. Fast, but capped far below
// wavelength rates — the gap GRIPhoN fills.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "sonet/ring.hpp"
#include "sonet/sts.hpp"

namespace griphon::baseline {

class SonetBodService {
 public:
  struct Params {
    /// Electronic cross-connect reconfiguration: minutes, not weeks.
    SimTime provisioning_min = seconds(60);
    SimTime provisioning_max = seconds(180);
  };

  explicit SonetBodService(sonet::SonetRing* ring);
  SonetBodService(sonet::SonetRing* ring, Params params)
      : ring_(ring), params_(params) {}

  struct Provisioned {
    StsCircuitId circuit;
    SimTime provisioning_time{};
    DataRate granted;
  };

  /// Request `rate` between two ring nodes. Rates above the 622 Mbps
  /// service ceiling are rejected — that is the point of the comparison.
  [[nodiscard]] Result<Provisioned> request(NodeId src, NodeId dst,
                                            DataRate rate, Rng& rng);
  [[nodiscard]] Status release(StsCircuitId id) { return ring_->release(id); }

  [[nodiscard]] const sonet::SonetRing& ring() const noexcept {
    return *ring_;
  }

 private:
  sonet::SonetRing* ring_;
  Params params_;
};

inline SonetBodService::SonetBodService(sonet::SonetRing* ring)
    : SonetBodService(ring, Params{}) {}

}  // namespace griphon::baseline
