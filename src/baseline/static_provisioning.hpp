// "Today's reality" baseline: statically provisioned private lines.
//
// A carrier provisions a dedicated inter-DC circuit in weeks (paper §1:
// "Today's backbone optical networks can take several weeks to provision a
// customer's private line connection") and the customer then holds it
// 24/7 whether or not bulk transfers are running. This model quantifies
// both sides: time-to-bandwidth and circuit-hours paid.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace griphon::baseline {

class StaticProvisioningModel {
 public:
  struct Params {
    /// Order-to-turn-up interval for a new wavelength private line.
    SimTime lead_time_min = hours(24 * 14);  // 2 weeks
    SimTime lead_time_max = hours(24 * 56);  // 8 weeks
  };

  StaticProvisioningModel();
  explicit StaticProvisioningModel(Params params) : params_(params) {}

  /// Sampled provisioning time for one new circuit.
  [[nodiscard]] SimTime provisioning_time(Rng& rng) const {
    return from_seconds(rng.uniform(to_seconds(params_.lead_time_min),
                                    to_seconds(params_.lead_time_max)));
  }

  /// Completion of a transfer of `bytes` when the circuit must first be
  /// provisioned (the "new route" worst case).
  [[nodiscard]] SimTime transfer_cold(std::int64_t bytes, DataRate rate,
                                      Rng& rng) const {
    return provisioning_time(rng) + transfer_time(bytes, rate);
  }

  /// Circuit-hours consumed over an interval when the line is dedicated:
  /// the full interval, independent of utilization — the waste BoD removes.
  [[nodiscard]] static double circuit_hours(SimTime held, int circuits = 1) {
    return to_seconds(held) / 3600.0 * circuits;
  }

 private:
  Params params_;
};

/// Manual repair of an unprotected wavelength service: "wait for the
/// carrier to manually restore connections which means long outage times
/// (4 to 12 hours typically)" (paper §1).
class ManualRepairModel {
 public:
  [[nodiscard]] static SimTime repair_time(Rng& rng) {
    return from_seconds(rng.uniform(to_seconds(hours(4)),
                                    to_seconds(hours(12))));
  }
};

inline StaticProvisioningModel::StaticProvisioningModel()
    : StaticProvisioningModel(Params{}) {}

}  // namespace griphon::baseline
