#include "baseline/store_forward.hpp"

#include <stdexcept>

namespace griphon::baseline {

namespace {

/// Bytes a leg can move during one step starting at `t`.
std::int64_t step_bytes(const StoreForwardPlanner::Leg& leg, SimTime t,
                        SimTime step) {
  const DataRate leftover = leg.profile.leftover_at(t, leg.capacity);
  return static_cast<std::int64_t>(
      static_cast<double>(leftover.in_bps()) / 8.0 * to_seconds(step));
}

constexpr std::int64_t kMaxSteps = 60 * 24 * 365;  // one simulated year

}  // namespace

SimTime StoreForwardPlanner::direct_completion(std::int64_t bytes,
                                               const Leg& leg,
                                               SimTime start) {
  std::int64_t remaining = bytes;
  SimTime t = start;
  for (std::int64_t i = 0; i < kMaxSteps && remaining > 0; ++i) {
    remaining -= step_bytes(leg, t, kStep);
    t += kStep;
  }
  if (remaining > 0)
    throw std::runtime_error("store-forward: transfer does not converge");
  return t - start;
}

SimTime StoreForwardPlanner::relay_completion(std::int64_t bytes,
                                              const Leg& first,
                                              const Leg& second,
                                              SimTime start) {
  std::int64_t at_src = bytes;
  std::int64_t at_relay = 0;
  std::int64_t at_dst = 0;
  SimTime t = start;
  for (std::int64_t i = 0; i < kMaxSteps && at_dst < bytes; ++i) {
    const std::int64_t leg1 = std::min(at_src, step_bytes(first, t, kStep));
    // The relay forwards what it already stored (plus what just arrived,
    // conservatively excluded: store THEN forward).
    const std::int64_t leg2 = std::min(at_relay, step_bytes(second, t, kStep));
    at_src -= leg1;
    at_relay += leg1 - leg2;
    at_dst += leg2;
    t += kStep;
  }
  if (at_dst < bytes)
    throw std::runtime_error("store-forward: transfer does not converge");
  return t - start;
}

StoreForwardPlanner::Plan StoreForwardPlanner::best(
    std::int64_t bytes, const Leg& direct,
    const std::vector<std::pair<Leg, Leg>>& relays, SimTime start) {
  Plan plan;
  plan.completion = direct_completion(bytes, direct, start);
  for (std::size_t i = 0; i < relays.size(); ++i) {
    const SimTime via =
        relay_completion(bytes, relays[i].first, relays[i].second, start);
    if (via < plan.completion) {
      plan.completion = via;
      plan.used_relay = true;
      plan.relay_index = i;
    }
  }
  return plan;
}

}  // namespace griphon::baseline
