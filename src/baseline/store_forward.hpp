// Store-and-forward bulk transfer over leftover capacity.
//
// The NetStitcher-flavored comparison point (paper §1): instead of buying
// bandwidth on demand, stitch together the *unused* capacity of existing
// static pipes across time zones, staging data at intermediate data
// centers. We simulate an hour-stepped fluid model: each leg moves as many
// bytes per step as its diurnal leftover allows, with unlimited storage at
// the relay.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "workload/diurnal.hpp"

namespace griphon::baseline {

class StoreForwardPlanner {
 public:
  struct Leg {
    DataRate capacity;                 ///< static pipe size
    workload::DiurnalProfile profile;  ///< interactive load riding it
  };

  /// Direct transfer: one leg, leftover-only.
  [[nodiscard]] static SimTime direct_completion(std::int64_t bytes,
                                                 const Leg& leg,
                                                 SimTime start);

  /// Two-leg store-and-forward via a relay DC with unbounded staging.
  /// Returns when the last byte reaches the destination.
  [[nodiscard]] static SimTime relay_completion(std::int64_t bytes,
                                                const Leg& first,
                                                const Leg& second,
                                                SimTime start);

  /// Best of direct and any provided relay.
  struct Plan {
    SimTime completion{};
    bool used_relay = false;
    std::size_t relay_index = 0;
  };
  [[nodiscard]] static Plan best(std::int64_t bytes, const Leg& direct,
                                 const std::vector<std::pair<Leg, Leg>>& relays,
                                 SimTime start);

 private:
  static constexpr SimTime kStep = minutes(10);
};

}  // namespace griphon::baseline
