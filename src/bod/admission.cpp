#include "bod/admission.hpp"

#include <algorithm>

namespace griphon::bod {

void AdmissionController::set_policy(CustomerId customer,
                                     CustomerPolicy policy) {
  CustomerState& state = customers_[customer];
  state.policy = policy;
  state.tokens = policy.burst;
  state.refilled_at = engine_->now();
}

const AdmissionController::CustomerPolicy* AdmissionController::policy(
    CustomerId customer) const {
  const auto it = customers_.find(customer);
  return it == customers_.end() ? nullptr : &it->second.policy;
}

Status AdmissionController::admit(const Request& request) {
  const auto it = customers_.find(request.customer);
  if (it == customers_.end()) {
    ++stats_.rejected_unknown;
    return Status{ErrorCode::kPermissionDenied,
                  "admission: customer has no BoD contract"};
  }
  CustomerState& state = it->second;

  // Priority arrives as a raw enum from callers; a value outside the three
  // defined classes would index past class_share below.
  const auto cls = static_cast<std::size_t>(request.priority);
  if (cls >= state.policy.class_share.size())
    return Status{ErrorCode::kInvalidArgument,
                  "admission: unknown priority class"};

  // Lazy token-bucket refill on the sim clock: no periodic events needed,
  // which keeps admit() allocation-free and fast.
  const SimTime now = engine_->now();
  if (now > state.refilled_at) {
    state.tokens =
        std::min(state.policy.burst,
                 state.tokens + to_seconds(now - state.refilled_at) *
                                    state.policy.requests_per_second);
    state.refilled_at = now;
  }
  if (state.tokens < 1.0) {
    ++stats_.rejected_rate_limit;
    return Status{ErrorCode::kBusy,
                  "admission: request rate limit exceeded, retry later"};
  }
  state.tokens -= 1.0;

  const auto allowed = DataRate{static_cast<std::int64_t>(
      static_cast<double>(state.policy.bandwidth_quota.in_bps()) *
      state.policy.class_share[cls])};
  if (state.committed + request.rate > allowed) {
    ++stats_.rejected_quota;
    return Status{ErrorCode::kResourceExhausted,
                  "admission: bandwidth quota exhausted for class " +
                      std::string(to_string(request.priority))};
  }
  ++stats_.admitted;
  return Status::success();
}

void AdmissionController::commit(CustomerId customer, DataRate rate) {
  const auto it = customers_.find(customer);
  if (it != customers_.end()) it->second.committed += rate;
}

void AdmissionController::release(CustomerId customer, DataRate rate) {
  const auto it = customers_.find(customer);
  if (it == customers_.end()) return;
  it->second.committed -= rate;
  if (it->second.committed <= DataRate{}) it->second.committed = DataRate{};
}

DataRate AdmissionController::committed(CustomerId customer) const {
  const auto it = customers_.find(customer);
  return it == customers_.end() ? DataRate{} : it->second.committed;
}

}  // namespace griphon::bod
