// Admission control for the BoD service layer.
//
// The carrier isolates tenants *before* any network resource is touched:
// each customer gets a bandwidth quota (max concurrently committed rate
// across the calendar and live circuits), a token-bucket limit on request
// rate (a runaway client cannot starve the scheduler), and a priority
// class. Admission is a pure in-memory decision — a couple of hash
// lookups — so it sustains well over 100k decisions/s and can front every
// request on the hot path.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"
#include "sim/engine.hpp"

namespace griphon::bod {

/// Service priority of a BoD request. On-demand connects get the full
/// quota; scheduled (calendar) work keeps headroom for on-demand; bulk
/// best-effort keeps headroom for both.
enum class Priority : std::uint8_t {
  kOnDemand = 0,
  kScheduled = 1,
  kBestEffortBulk = 2,
};

[[nodiscard]] constexpr const char* to_string(Priority p) noexcept {
  switch (p) {
    case Priority::kOnDemand:
      return "on-demand";
    case Priority::kScheduled:
      return "scheduled";
    case Priority::kBestEffortBulk:
      return "best-effort-bulk";
  }
  return "?";
}

class AdmissionController {
 public:
  struct CustomerPolicy {
    DataRate bandwidth_quota = DataRate::gbps(100);
    double requests_per_second = 100.0;  ///< token-bucket refill rate
    double burst = 1000.0;               ///< token-bucket depth
    /// Fraction of the quota each priority class may fill (on-demand,
    /// scheduled, best-effort-bulk). Lower classes see a smaller pool, so
    /// bulk can never squeeze out interactive growth.
    std::array<double, 3> class_share{1.0, 0.9, 0.7};
  };

  explicit AdmissionController(sim::Engine* engine) : engine_(engine) {}

  /// Register (or replace) a customer's policy. Customers without a
  /// policy are rejected outright — BoD is an opt-in contract.
  void set_policy(CustomerId customer, CustomerPolicy policy);
  [[nodiscard]] const CustomerPolicy* policy(CustomerId customer) const;

  struct Request {
    CustomerId customer;
    DataRate rate;  ///< peak concurrent rate the request would commit
    Priority priority = Priority::kScheduled;
  };

  /// Admission decision. Errors:
  ///  * kPermissionDenied — unknown customer (no BoD contract);
  ///  * kBusy             — token bucket empty (request rate limit);
  ///  * kResourceExhausted — committed + rate above the class's quota
  ///    share.
  /// Admission does NOT commit capacity; callers pair it with
  /// commit()/release() once the calendar accepts the plan.
  [[nodiscard]] Status admit(const Request& request);

  /// Account committed rate against the customer's quota.
  void commit(CustomerId customer, DataRate rate);
  void release(CustomerId customer, DataRate rate);
  [[nodiscard]] DataRate committed(CustomerId customer) const;

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t rejected_quota = 0;
    std::uint64_t rejected_rate_limit = 0;
    std::uint64_t rejected_unknown = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct CustomerState {
    CustomerPolicy policy;
    DataRate committed{};
    double tokens = 0;
    SimTime refilled_at{};
  };

  sim::Engine* engine_;
  std::unordered_map<CustomerId, CustomerState> customers_;
  Stats stats_;
};

}  // namespace griphon::bod
