#include "bod/observability.hpp"

#include <utility>

#include "bod/reservation_calendar.hpp"
#include "sim/engine.hpp"

namespace griphon::bod {

void install_calendar_probes(telemetry::GaugeSampler& sampler,
                             ReservationCalendar& calendar,
                             sim::Engine& engine, std::vector<LinkId> links) {
  sampler.add_probe("calendar_active_reservations", "count", [&calendar] {
    return static_cast<double>(calendar.active_reservations());
  });
  sampler.add_probe(
      "calendar_occupancy", "ratio",
      [&calendar, &engine, links = std::move(links)] {
        if (links.empty()) return 0.0;
        double sum = 0;
        for (const LinkId link : links) {
          const double cap = calendar.link_capacity(link).in_gbps();
          if (cap <= 0) continue;
          sum += calendar.committed(link, engine.now()).in_gbps() / cap;
        }
        return sum / static_cast<double>(links.size());
      });
}

}  // namespace griphon::bod
