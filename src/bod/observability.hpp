// BoD gauge probes: reservation-calendar occupancy and active bookings.
//
// Lives in bod (not core/observability) because the calendar is a BoD
// concept the core layer cannot see. Same lifetime rule as the core
// probes: the sampler must not outlive the calendar/engine it samples.
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "telemetry/sampler.hpp"

namespace griphon::sim {
class Engine;
}  // namespace griphon::sim

namespace griphon::bod {

class ReservationCalendar;

/// Register calendar probes over `links`: calendar_active_reservations
/// and calendar_occupancy (mean committed/capacity across the links at
/// the sampling instant, 0..1).
void install_calendar_probes(telemetry::GaugeSampler& sampler,
                             ReservationCalendar& calendar,
                             sim::Engine& engine, std::vector<LinkId> links);

}  // namespace griphon::bod
