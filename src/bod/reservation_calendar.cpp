#include "bod/reservation_calendar.hpp"

#include <algorithm>
#include <sstream>

namespace griphon::bod {

ReservationCalendar::ReservationCalendar(Params params)
    : params_(params) {}

void ReservationCalendar::set_link_capacity(LinkId link, DataRate capacity) {
  capacity_override_[link] = capacity;
}

DataRate ReservationCalendar::link_capacity(LinkId link) const {
  const auto it = capacity_override_.find(link);
  return it == capacity_override_.end() ? params_.default_link_capacity
                                        : it->second;
}

std::pair<ReservationCalendar::SlotIndex, ReservationCalendar::SlotIndex>
ReservationCalendar::slots_of(Window w) const noexcept {
  const SlotIndex first = slot_of(w.start);
  // End is exclusive: a window ending exactly on a slot edge does not
  // occupy the next slot.
  const SlotIndex last =
      (w.end.count() + params_.slot.count() - 1) / params_.slot.count();
  return {first, std::max(last, first + 1)};
}

void ReservationCalendar::apply(const Reservation& r, Window w, bool add) {
  const auto [first, last] = slots_of(w);
  for (const LinkId link : r.links) {
    auto& slots = committed_[link];
    for (SlotIndex s = first; s < last; ++s) {
      auto& used = slots[s];
      if (add) {
        used += r.rate;
      } else {
        used -= r.rate;
        if (used <= DataRate{}) slots.erase(s);
      }
    }
  }
}

bool ReservationCalendar::feasible(const std::vector<LinkId>& links,
                                   DataRate rate, Window window) const {
  if (!window.valid()) return false;
  const auto [first, last] = slots_of(window);
  for (const LinkId link : links) {
    const DataRate cap = link_capacity(link);
    if (rate > cap) return false;
    const auto it = committed_.find(link);
    if (it == committed_.end()) continue;
    // Scan only the slots that actually carry commitments in the range.
    for (auto s = it->second.lower_bound(first);
         s != it->second.end() && s->first < last; ++s)
      if (s->second + rate > cap) return false;
  }
  return true;
}

Result<Window> ReservationCalendar::earliest_feasible(
    const std::vector<LinkId>& links, DataRate rate, SimTime duration,
    SimTime not_before) const {
  if (duration <= SimTime{})
    return Error{ErrorCode::kInvalidArgument,
                 "calendar: window duration must be positive"};
  for (const LinkId link : links)
    if (rate > link_capacity(link))
      return Error{ErrorCode::kResourceExhausted,
                   "calendar: rate exceeds link capacity budget"};

  const SlotIndex slots_needed =
      std::max<SlotIndex>(1, (duration.count() + params_.slot.count() - 1) /
                                 params_.slot.count());
  SlotIndex start = slot_of(not_before);
  // Not-before may fall mid-slot; a window may not start in the past part
  // of its first slot, so begin at the next edge unless aligned.
  if (SimTime{start * params_.slot.count()} < not_before) ++start;
  const SlotIndex limit =
      start + params_.horizon.count() / params_.slot.count();

  while (start < limit) {
    // Check slots [start, start+needed) across all links; on the first
    // full slot, restart just past it (classic earliest-gap scan).
    SlotIndex blocked = -1;
    for (const LinkId link : links) {
      const DataRate cap = link_capacity(link);
      const auto it = committed_.find(link);
      if (it == committed_.end()) continue;
      for (auto s = it->second.lower_bound(start);
           s != it->second.end() && s->first < start + slots_needed; ++s) {
        if (s->second + rate > cap) {
          blocked = std::max(blocked, s->first);
          break;
        }
      }
    }
    if (blocked < 0) {
      const SimTime ws{start * params_.slot.count()};
      return Window{ws, ws + duration};
    }
    start = blocked + 1;
  }
  return Error{ErrorCode::kResourceExhausted,
               "calendar: no feasible window inside the search horizon"};
}

Result<ReservationId> ReservationCalendar::reserve(CustomerId customer,
                                                   std::vector<LinkId> links,
                                                   DataRate rate,
                                                   Window window) {
  if (!window.valid() || links.empty() || rate <= DataRate{})
    return Error{ErrorCode::kInvalidArgument,
                 "calendar: reservation needs links, a rate and a window"};
  if (!feasible(links, rate, window)) {
    // Conflict: tell the caller when the same request *would* fit.
    const auto alt =
        earliest_feasible(links, rate, window.duration(), window.start);
    std::string msg = "calendar: window conflicts with committed capacity";
    if (alt.ok())
      msg += "; earliest feasible window starts at " +
             std::to_string(to_seconds(alt.value().start)) + "s";
    return Error{ErrorCode::kResourceExhausted, std::move(msg)};
  }
  Reservation r;
  r.id = ids_.next();
  r.customer = customer;
  r.links = std::move(links);
  r.rate = rate;
  r.window = window;
  apply(r, window, /*add=*/true);
  const ReservationId id = r.id;
  reservations_[id] = std::move(r);
  return id;
}

Status ReservationCalendar::release(ReservationId id) {
  const auto it = reservations_.find(id);
  if (it == reservations_.end())
    return Status{ErrorCode::kNotFound, "calendar: unknown reservation"};
  apply(it->second, it->second.window, /*add=*/false);
  reservations_.erase(it);
  return Status::success();
}

Status ReservationCalendar::truncate(ReservationId id, SimTime new_end) {
  const auto it = reservations_.find(id);
  if (it == reservations_.end())
    return Status{ErrorCode::kNotFound, "calendar: unknown reservation"};
  Reservation& r = it->second;
  if (new_end >= r.window.end) return Status::success();  // nothing to free
  const SimTime clamped = std::max(new_end, r.window.start);
  // Re-apply on slot granularity: remove the whole window, add the stub.
  apply(r, r.window, /*add=*/false);
  r.window.end = clamped;
  if (r.window.valid()) {
    apply(r, r.window, /*add=*/true);
  } else {
    reservations_.erase(it);
  }
  return Status::success();
}

const ReservationCalendar::Reservation* ReservationCalendar::find(
    ReservationId id) const {
  const auto it = reservations_.find(id);
  return it == reservations_.end() ? nullptr : &it->second;
}

DataRate ReservationCalendar::committed(LinkId link, SimTime at) const {
  const auto it = committed_.find(link);
  if (it == committed_.end()) return DataRate{};
  const auto s = it->second.find(slot_of(at));
  return s == it->second.end() ? DataRate{} : s->second;
}

void ReservationCalendar::purge_before(SimTime before) {
  const SlotIndex cutoff = slot_of(before);
  for (auto& [link, slots] : committed_)
    slots.erase(slots.begin(), slots.lower_bound(cutoff));
}

std::string ReservationCalendar::render(const std::vector<LinkId>& links,
                                        SimTime from, SimTime until) const {
  std::ostringstream os;
  const SlotIndex first = slot_of(from);
  const SlotIndex last = slot_of(until);
  os << "calendar " << to_seconds(from) << "s .. " << to_seconds(until)
     << "s (" << to_seconds(params_.slot) << "s slots, 0-9 = tenths of "
     << "capacity committed)\n";
  for (const LinkId link : links) {
    const DataRate cap = link_capacity(link);
    os << "  link " << link.value() << " [";
    for (SlotIndex s = first; s < last; ++s) {
      const SimTime at{s * params_.slot.count()};
      const DataRate used = committed(link, at);
      if (used <= DataRate{}) {
        os << '.';
      } else {
        const auto tenth = static_cast<int>(
            10.0 * static_cast<double>(used.in_bps()) /
            static_cast<double>(cap.in_bps()));
        os << std::min(9, std::max(0, tenth));
      }
    }
    os << "] " << cap.in_gbps() << "G budget\n";
  }
  return os.str();
}

}  // namespace griphon::bod
