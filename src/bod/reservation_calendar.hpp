// Advance-reservation calendar — committed capacity per (link, time-slot).
//
// The BoD service layer sells bandwidth over *time windows*, not just
// "now": scheduled backup wants 40G from 02:00 to 04:00, a deadline
// transfer wants any window that finishes before Friday. The calendar is
// the single source of truth for how much capacity is already promised on
// each fiber link in each future time slot, and answers the query every
// admission decision hangs on: "what is the earliest window in which this
// route can carry this rate for this long?"
//
// Time is discretized into fixed slots (default 5 min). A reservation
// occupies every slot its window overlaps, on every link of its route.
// Capacity is modeled per link as a DataRate budget — the share of the
// link's spectrum the carrier exposes to the BoD service (the rest stays
// for on-demand and restoration headroom).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace griphon::bod {

/// Half-open service window [start, end).
struct Window {
  SimTime start{};
  SimTime end{};

  [[nodiscard]] SimTime duration() const noexcept { return end - start; }
  [[nodiscard]] bool valid() const noexcept { return end > start; }
  friend bool operator==(const Window&, const Window&) = default;
};

class ReservationCalendar {
 public:
  struct Params {
    SimTime slot = minutes(5);  ///< slot width; windows round out to slots
    /// Capacity budget per link unless overridden via set_link_capacity.
    DataRate default_link_capacity = DataRate::gbps(40);
    /// How far ahead earliest_feasible() searches before giving up.
    SimTime horizon = hours(14 * 24);
  };

  ReservationCalendar() : ReservationCalendar(Params{}) {}
  explicit ReservationCalendar(Params params);

  void set_link_capacity(LinkId link, DataRate capacity);
  [[nodiscard]] DataRate link_capacity(LinkId link) const;

  struct Reservation {
    ReservationId id;
    CustomerId customer;
    std::vector<LinkId> links;
    DataRate rate;
    Window window;
  };

  /// Commit `rate` on every link of `links` for `window`. On conflict
  /// nothing is committed and the error (kResourceExhausted) names the
  /// earliest feasible same-duration window — also available directly via
  /// earliest_feasible().
  [[nodiscard]] Result<ReservationId> reserve(CustomerId customer,
                                              std::vector<LinkId> links,
                                              DataRate rate, Window window);

  /// Release a reservation's capacity (idempotent; unknown id = kNotFound).
  [[nodiscard]] Status release(ReservationId id);

  /// Shrink a committed reservation's window to end at `new_end` (a
  /// transfer that finished early hands its tail back to the calendar).
  [[nodiscard]] Status truncate(ReservationId id, SimTime new_end);

  [[nodiscard]] const Reservation* find(ReservationId id) const;
  [[nodiscard]] std::size_t active_reservations() const noexcept {
    return reservations_.size();
  }

  /// True iff every slot of `window` has `rate` headroom on every link.
  [[nodiscard]] bool feasible(const std::vector<LinkId>& links, DataRate rate,
                              Window window) const;

  /// Earliest window of `duration` starting at or after `not_before` with
  /// `rate` headroom on every link; kResourceExhausted when nothing fits
  /// inside the search horizon.
  [[nodiscard]] Result<Window> earliest_feasible(
      const std::vector<LinkId>& links, DataRate rate, SimTime duration,
      SimTime not_before) const;

  /// Capacity already committed on `link` at instant `at`.
  [[nodiscard]] DataRate committed(LinkId link, SimTime at) const;

  /// Drop per-slot bookkeeping for slots that ended before `before` (the
  /// reservations themselves stay until released). Keeps week-long
  /// simulations from accreting dead slots.
  void purge_before(SimTime before);

  /// ASCII occupancy chart of [from, until) for the given links, one row
  /// per link, one column per slot (0-9 = tenths of capacity committed).
  [[nodiscard]] std::string render(const std::vector<LinkId>& links,
                                   SimTime from, SimTime until) const;

 private:
  using SlotIndex = std::int64_t;

  [[nodiscard]] SlotIndex slot_of(SimTime t) const noexcept {
    return t.count() / params_.slot.count();
  }
  /// Slots [first, last) covered by a window, rounded outward.
  [[nodiscard]] std::pair<SlotIndex, SlotIndex> slots_of(
      Window w) const noexcept;
  void apply(const Reservation& r, Window w, bool add);

  Params params_;
  std::unordered_map<LinkId, DataRate> capacity_override_;
  /// Committed rate per (link, slot); absent slot = nothing committed.
  std::unordered_map<LinkId, std::map<SlotIndex, DataRate>> committed_;
  std::map<ReservationId, Reservation> reservations_;
  IdAllocator<ReservationId> ids_;
};

}  // namespace griphon::bod
