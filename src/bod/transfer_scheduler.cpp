#include "bod/transfer_scheduler.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "dwdm/muxponder.hpp"
#include "telemetry/telemetry.hpp"

namespace griphon::bod {

namespace {

/// Access-pipe pseudo-links live far above any real LinkId so the two key
/// spaces can never collide in the calendar.
constexpr std::uint64_t kAccessLinkBase = std::uint64_t{1} << 40;

}  // namespace

TransferScheduler::TransferScheduler(core::GriphonController* controller,
                                     ReservationCalendar* calendar,
                                     AdmissionController* admission,
                                     Params params)
    : controller_(controller),
      engine_(&controller->model().engine()),
      calendar_(calendar),
      admission_(admission),
      params_(std::move(params)) {
  controller_->set_topology_observer(
      [this](const std::vector<LinkId>& links, bool failed) {
        on_topology_change(links, failed);
      });
  controller_->set_preemption_hook(
      [this](NodeId src, NodeId dst, DataRate rate,
             const std::set<LinkId>& avoid) {
        return preempt_for_restoration(src, dst, rate, avoid);
      });
}

void TransferScheduler::register_portal(core::CustomerPortal* portal) {
  portals_[portal->customer()] = portal;
}

core::CustomerPortal* TransferScheduler::portal_of(CustomerId customer) const {
  const auto it = portals_.find(customer);
  return it == portals_.end() ? nullptr : it->second;
}

void TransferScheduler::count(const char* name, const char* help,
                              CustomerId customer) {
  if (telemetry::Telemetry* t = controller_->model().telemetry())
    t->metrics()
        .counter(name, help,
                 {{"customer", std::to_string(customer.value())}})
        ->inc();
}

LinkId TransferScheduler::access_link(MuxponderId nte) {
  const LinkId pseudo{kAccessLinkBase + nte.value()};
  const dwdm::Muxponder& device = controller_->model().nte(nte);
  const DataRate hardware =
      device.client_rate() *
      static_cast<std::int64_t>(dwdm::Muxponder::kClientPorts);
  // Ports lit by traffic the calendar never saw — connections the operator
  // provisioned directly through the portal — shrink the pipe for the whole
  // horizon (they have no teardown date the scheduler could plan around).
  // The scheduler's own active pieces also hold ports, but those are still
  // reserved in the calendar; subtract them from the port count or they
  // would be charged twice.
  DataRate scheduler_owned{};
  for (const auto& [id, t] : transfers_) {
    if (t.src_site != nte && t.dst_site != nte) continue;
    for (const Piece& p : t.pieces)
      if (p.active && !p.done) scheduler_owned += p.rate;
  }
  DataRate foreign =
      device.client_rate() * static_cast<std::int64_t>(device.ports_in_use());
  foreign = foreign > scheduler_owned ? foreign - scheduler_owned : DataRate{};
  calendar_->set_link_capacity(
      pseudo, hardware > foreign ? hardware - foreign : DataRate{});
  return pseudo;
}

Result<TransferScheduler::PiecePlan> TransferScheduler::plan_piece(
    NodeId src_pop, NodeId dst_pop, std::int64_t bytes, SimTime not_before,
    const std::vector<LinkId>& access_links,
    const core::Exclusions& exclude) const {
  const auto& routes =
      controller_->rwa().candidate_routes(src_pop, dst_pop, exclude);
  if (routes.empty())
    return Error{ErrorCode::kUnreachable,
                 "scheduler: no route between the sites"};

  // Search routes x the rate ladder for the earliest *completion*. A higher
  // rate needs a shorter window but more headroom; on a contended calendar
  // the winner is often a mid-ladder rate squeezed into a near gap rather
  // than the top rate waiting for a wide one.
  const PiecePlan* best = nullptr;
  PiecePlan candidate, chosen;
  for (const auto& route : routes) {
    std::vector<LinkId> links = route.links;
    links.insert(links.end(), access_links.begin(), access_links.end());
    for (const DataRate rate : params_.rate_ladder) {
      const SimTime duration = params_.setup_pad + transfer_time(bytes, rate);
      auto window =
          calendar_->earliest_feasible(links, rate, duration, not_before);
      if (!window.ok()) continue;
      candidate = PiecePlan{links, rate, window.value()};
      if (best == nullptr || candidate.window.end < chosen.window.end) {
        chosen = candidate;
        best = &chosen;
      }
    }
  }
  if (best == nullptr)
    return Error{ErrorCode::kResourceExhausted,
                 "scheduler: no calendar window fits this transfer on any "
                 "route within the horizon"};
  return chosen;
}

Result<TransferId> TransferScheduler::submit(const TransferRequest& request) {
  ++stats_.submitted;
  count("griphon_bod_transfers_submitted_total",
        "Bulk transfers submitted to the scheduler", request.customer);

  const auto reject = [&](Error error, const char* reason) -> Error {
    ++stats_.rejected;
    if (telemetry::Telemetry* t = controller_->model().telemetry())
      t->metrics()
          .counter("griphon_bod_transfers_rejected_total",
                   "Bulk transfers rejected at submission",
                   {{"customer", std::to_string(request.customer.value())},
                    {"reason", reason}})
          ->inc();
    return error;
  };

  core::CustomerPortal* portal = portal_of(request.customer);
  if (portal == nullptr)
    return reject(Error{ErrorCode::kPermissionDenied,
                        "scheduler: customer has no registered portal"},
                  "no-portal");
  if (request.bytes <= 0 || request.deadline <= engine_->now())
    return reject(Error{ErrorCode::kInvalidArgument,
                        "scheduler: need positive volume and a future "
                        "deadline"},
                  "invalid");
  const auto* src = controller_->model().site_by_nte(request.src_site);
  const auto* dst = controller_->model().site_by_nte(request.dst_site);
  if (src == nullptr || dst == nullptr)
    return reject(
        Error{ErrorCode::kInvalidArgument, "scheduler: unknown site"},
        "invalid");

  const SimTime now = engine_->now();
  const std::vector<LinkId> access = {access_link(request.src_site),
                                      access_link(request.dst_site)};

  // Plan greedily: one piece for the whole volume; if that misses the
  // deadline, split the bytes over more pieces (each planned against a
  // calendar that already holds the previous pieces' reservations, so the
  // pieces land in genuinely distinct windows/routes).
  std::vector<Piece> pieces;
  auto roll_back = [&] {
    for (Piece& p : pieces) {
      (void)calendar_->release(p.reservation);
    }
    pieces.clear();
  };
  std::string last_error;
  SimTime best_single_end{};
  bool fully_planned = false;
  for (int n = 1; n <= std::max(1, params_.max_pieces); ++n) {
    roll_back();
    const std::int64_t share = request.bytes / n;
    bool planned = true;
    SimTime latest_end{};
    for (int i = 0; i < n && planned; ++i) {
      const std::int64_t piece_bytes =
          i == n - 1 ? request.bytes - share * (n - 1) : share;
      auto plan = plan_piece(src->core_pop, dst->core_pop, piece_bytes, now,
                             access, core::Exclusions{});
      if (!plan.ok()) {
        last_error = plan.error().message();
        planned = false;
        break;
      }
      auto resv = calendar_->reserve(request.customer, plan.value().links,
                                     plan.value().rate, plan.value().window);
      if (!resv.ok()) {
        last_error = resv.error().message();
        planned = false;
        break;
      }
      Piece p;
      p.reservation = resv.value();
      p.route_links = plan.value().links;
      p.rate = plan.value().rate;
      p.window = plan.value().window;
      p.bytes = piece_bytes;
      pieces.push_back(std::move(p));
      latest_end = std::max(latest_end, plan.value().window.end);
    }
    if (!planned) continue;
    if (n == 1) best_single_end = latest_end;
    if (latest_end <= request.deadline) {
      fully_planned = true;  // this plan meets the deadline
      break;
    }
    if (n == std::max(1, params_.max_pieces)) {
      roll_back();
      std::string msg =
          "scheduler: no schedule meets the deadline; earliest achievable "
          "completion is ";
      msg += std::to_string(to_seconds(
                 best_single_end > SimTime{} ? best_single_end : latest_end)) +
             "s";
      return reject(Error{ErrorCode::kResourceExhausted, std::move(msg)},
                    "deadline");
    }
  }
  if (!fully_planned) {
    // The final split attempt may have reserved some pieces before a later
    // one failed to plan; accepting that remainder would move only part of
    // the bytes while reporting the transfer complete.
    roll_back();
    if (last_error.empty())
      last_error = "scheduler: could not plan the transfer";
    return reject(Error{ErrorCode::kResourceExhausted, last_error},
                  "capacity");
  }

  // Admission: the customer commits the sum of its piece rates (worst-case
  // concurrency) against its per-class quota share.
  DataRate total{};
  for (const Piece& p : pieces) total += p.rate;
  if (Status admitted = admission_->admit(
          {request.customer, total, request.priority});
      !admitted.ok()) {
    roll_back();
    const char* reason =
        admitted.error().code() == ErrorCode::kBusy ? "rate-limit" : "quota";
    return reject(admitted.error(), reason);
  }
  for (const Piece& p : pieces) admission_->commit(request.customer, p.rate);

  Transfer t;
  t.id = ids_.next();
  t.customer = request.customer;
  t.src_site = request.src_site;
  t.dst_site = request.dst_site;
  t.bytes = request.bytes;
  t.deadline = request.deadline;
  t.priority = request.priority;
  t.pieces = std::move(pieces);
  const TransferId id = t.id;
  if (t.pieces.size() > 1) {
    ++stats_.splits;
    count("griphon_bod_transfer_splits_total",
          "Transfers that needed more than one calendar window", t.customer);
  }
  transfers_[id] = std::move(t);
  for (std::size_t i = 0; i < transfers_[id].pieces.size(); ++i)
    schedule_setup(id, i);

  ++stats_.accepted;
  count("griphon_bod_transfers_accepted_total",
        "Bulk transfers accepted and scheduled", request.customer);
  return id;
}

void TransferScheduler::schedule_setup(TransferId id,
                                       std::size_t piece_index) {
  Transfer& t = transfers_.at(id);
  Piece& p = t.pieces[piece_index];
  const SimTime at = std::max(engine_->now(), p.window.start);
  p.setup_event = engine_->schedule_at(
      at, [this, id, piece_index] { start_setup(id, piece_index); });
}

void TransferScheduler::start_setup(TransferId id, std::size_t piece_index) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return;  // cancelled meanwhile
  Transfer& t = it->second;
  if (t.state != TransferState::kScheduled &&
      t.state != TransferState::kActive)
    return;
  Piece& p = t.pieces[piece_index];
  if (p.done || p.active) return;
  core::CustomerPortal* portal = portal_of(t.customer);
  if (portal == nullptr) {
    fail_transfer(t, "portal vanished");
    return;
  }
  const int epoch = p.setup_epoch;
  portal->connect_bundle(t.src_site, t.dst_site, p.rate,
                         core::ProtectionMode::kRestorable,
                         [this, id, piece_index, epoch](Result<core::BundleId> r) {
                           on_setup_result(id, piece_index, epoch,
                                           std::move(r));
                         });
}

void TransferScheduler::on_setup_result(TransferId id,
                                        std::size_t piece_index, int epoch,
                                        Result<core::BundleId> result) {
  // A setup that raced a cancel/fail/reschedule may still have created a
  // bundle; nothing in the current plan owns it, so tear it down here or
  // its NTE ports and wavelengths leak for good.
  const auto orphan = [&](CustomerId customer) {
    if (!result.ok()) return;
    if (core::CustomerPortal* portal = portal_of(customer))
      portal->disconnect_bundle(result.value(), [](Status) {});
  };
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  if (t.state == TransferState::kFailed ||
      t.state == TransferState::kCancelled) {
    orphan(t.customer);
    return;
  }
  Piece& p = t.pieces[piece_index];
  if (epoch != p.setup_epoch || p.done || p.active) {
    orphan(t.customer);
    return;
  }

  if (result.ok()) {
    p.bundle = result.value();
    p.active = true;
    t.state = TransferState::kActive;
    // Bandwidth is live; the last byte lands one transfer-time from now.
    const SimTime done_at = engine_->now() + transfer_time(p.bytes, p.rate);
    engine_->schedule_at(
        done_at, [this, id, piece_index] { finish_piece(id, piece_index); });
    return;
  }

  if (result.error().code() == ErrorCode::kUnavailable &&
      p.defers < params_.max_unavailable_defers) {
    // The controller shed the setup because an EMS circuit breaker is
    // open: the command path is down, not this piece. Park it without
    // consuming a retry and come back once the breaker has had a chance
    // to half-open.
    ++p.defers;
    ++stats_.setups_deferred;
    count("griphon_bod_setup_deferrals_total",
          "Bundle setups deferred on an open EMS circuit breaker",
          t.customer);
    engine_->schedule(params_.unavailable_defer,
                      [this, id, piece_index, epoch] {
                        const auto it2 = transfers_.find(id);
                        if (it2 == transfers_.end()) return;
                        if (it2->second.pieces[piece_index].setup_epoch !=
                            epoch)
                          return;
                        start_setup(id, piece_index);
                      });
    return;
  }

  ++p.attempts;
  if (p.attempts <= params_.max_setup_retries) {
    // Transient setup failure: back off linearly and retry inside the
    // reserved window (the setup_pad exists to absorb exactly this).
    ++stats_.setup_retries;
    count("griphon_bod_setup_retries_total",
          "Bundle setups retried after a failure", t.customer);
    engine_->schedule(params_.retry_backoff * p.attempts,
                      [this, id, piece_index, epoch] {
                        const auto it2 = transfers_.find(id);
                        if (it2 == transfers_.end()) return;
                        // A reschedule meanwhile moved the piece to a new
                        // window; retrying now would light capacity outside
                        // the reservation.
                        if (it2->second.pieces[piece_index].setup_epoch !=
                            epoch)
                          return;
                        start_setup(id, piece_index);
                      });
    return;
  }
  // Retries exhausted — the window is burnt; re-plan the piece from now.
  reschedule_piece(id, piece_index);
}

void TransferScheduler::finish_piece(TransferId id, std::size_t piece_index) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  Transfer& t = it->second;
  if (t.state != TransferState::kActive) return;
  Piece& p = t.pieces[piece_index];
  if (p.done || !p.active) return;

  core::CustomerPortal* portal = portal_of(t.customer);
  if (portal != nullptr)
    portal->disconnect_bundle(p.bundle, [](Status) {});
  // The transfer finished early relative to its padded window: hand the
  // tail of the reservation back to the calendar.
  (void)calendar_->truncate(p.reservation, engine_->now());
  (void)calendar_->release(p.reservation);
  admission_->release(t.customer, p.rate);
  p.active = false;
  p.done = true;

  if (!std::all_of(t.pieces.begin(), t.pieces.end(),
                   [](const Piece& q) { return q.done; }))
    return;
  t.state = TransferState::kCompleted;
  t.completed_at = engine_->now();
  ++stats_.completed;
  count("griphon_bod_transfers_completed_total",
        "Bulk transfers that delivered every byte", t.customer);
  if (t.completed_at <= t.deadline) {
    ++stats_.deadline_met;
    count("griphon_bod_deadlines_met_total",
          "Transfers completed at or before their deadline", t.customer);
  } else {
    ++stats_.deadline_missed;
    count("griphon_bod_deadlines_missed_total",
          "Transfers completed after their deadline", t.customer);
  }
}

void TransferScheduler::reschedule_piece(TransferId id,
                                         std::size_t piece_index) {
  Transfer& t = transfers_.at(id);
  Piece& p = t.pieces[piece_index];
  if (p.done || p.active) return;  // live pieces ride controller restoration

  // Invalidate any in-flight setup callback or pending retry timer for the
  // old window/route before re-planning.
  ++p.setup_epoch;
  engine_->cancel(p.setup_event);
  (void)calendar_->release(p.reservation);
  admission_->release(t.customer, p.rate);

  const auto* src = controller_->model().site_by_nte(t.src_site);
  const auto* dst = controller_->model().site_by_nte(t.dst_site);
  const std::vector<LinkId> access = {access_link(t.src_site),
                                      access_link(t.dst_site)};
  auto plan = src != nullptr && dst != nullptr
                  ? plan_piece(src->core_pop, dst->core_pop, p.bytes,
                               engine_->now(), access, core::Exclusions{})
                  : Result<PiecePlan>{Error{ErrorCode::kInvalidArgument,
                                            "scheduler: unknown site"}};
  if (!plan.ok()) {
    fail_transfer(t, plan.error().message());
    return;
  }
  if (plan.value().window.end > t.deadline) {
    // A re-planned window past the deadline is a broken promise, not a
    // schedule — and failing here also bounds the retry/re-plan cycle:
    // every re-plan starts at now(), so windows only march forward.
    fail_transfer(t, "re-planned completion " +
                         std::to_string(to_seconds(plan.value().window.end)) +
                         "s misses the deadline");
    return;
  }
  auto resv = calendar_->reserve(t.customer, plan.value().links,
                                 plan.value().rate, plan.value().window);
  if (!resv.ok()) {
    fail_transfer(t, resv.error().message());
    return;
  }
  p.reservation = resv.value();
  p.route_links = plan.value().links;
  p.rate = plan.value().rate;
  p.window = plan.value().window;
  p.attempts = 0;
  admission_->commit(t.customer, p.rate);
  ++t.reschedules;
  ++stats_.reschedules;
  count("griphon_bod_reschedules_total",
        "Scheduled pieces re-planned after capacity loss", t.customer);
  schedule_setup(id, piece_index);
}

void TransferScheduler::release_piece_resources(Transfer& t, Piece& p) {
  if (p.done) return;
  engine_->cancel(p.setup_event);
  if (p.active) {
    if (core::CustomerPortal* portal = portal_of(t.customer))
      portal->disconnect_bundle(p.bundle, [](Status) {});
    p.active = false;
  }
  (void)calendar_->release(p.reservation);
  admission_->release(t.customer, p.rate);
  p.done = true;
}

void TransferScheduler::fail_transfer(Transfer& t, const std::string& why) {
  for (Piece& p : t.pieces) release_piece_resources(t, p);
  t.state = TransferState::kFailed;
  ++stats_.failed;
  count("griphon_bod_transfers_failed_total",
        "Bulk transfers abandoned before completion", t.customer);
  controller_->model().trace().emit(
      engine_->now(), sim::TraceLevel::kInfo, "transfer-scheduler",
      "transfer-failed", "id " + std::to_string(t.id.value()) + ": " + why);
}

void TransferScheduler::on_topology_change(const std::vector<LinkId>& links,
                                           bool failed) {
  if (!failed) return;  // repairs only widen future choice; nothing to fix
  // Re-plan every scheduled (not yet live) piece whose reserved route just
  // lost a link: its window is a promise the network can no longer keep.
  // Live pieces stay put — the controller's restoration path moves them.
  std::vector<std::pair<TransferId, std::size_t>> hit;
  for (auto& [id, t] : transfers_) {
    if (t.state != TransferState::kScheduled &&
        t.state != TransferState::kActive)
      continue;
    for (std::size_t i = 0; i < t.pieces.size(); ++i) {
      const Piece& p = t.pieces[i];
      if (p.done || p.active) continue;
      const bool uses_failed =
          std::any_of(p.route_links.begin(), p.route_links.end(),
                      [&links](LinkId l) {
                        return std::find(links.begin(), links.end(), l) !=
                               links.end();
                      });
      if (uses_failed) hit.emplace_back(id, i);
    }
  }
  for (const auto& [id, index] : hit) {
    // A prior reschedule may have failed the whole transfer meanwhile.
    const auto it = transfers_.find(id);
    if (it == transfers_.end()) continue;
    if (it->second.state == TransferState::kFailed) continue;
    reschedule_piece(id, index);
  }
}

Result<TransferScheduler::TransferStatus> TransferScheduler::inspect(
    CustomerId caller, TransferId id) const {
  const auto it = transfers_.find(id);
  if (it == transfers_.end())
    return Error{ErrorCode::kNotFound, "scheduler: unknown transfer"};
  const Transfer& t = it->second;
  if (t.customer != caller)
    return Error{ErrorCode::kPermissionDenied,
                 "scheduler: transfer belongs to another customer"};
  TransferStatus s;
  s.id = t.id;
  s.state = t.state;
  s.bytes = t.bytes;
  s.deadline = t.deadline;
  s.pieces = static_cast<int>(t.pieces.size());
  s.reschedules = t.reschedules;
  if (t.state == TransferState::kCompleted) {
    s.expected_completion = t.completed_at;
  } else {
    for (const Piece& p : t.pieces)
      s.expected_completion = std::max(s.expected_completion, p.window.end);
  }
  s.detail = to_string(t.state);
  return s;
}

Status TransferScheduler::cancel(CustomerId caller, TransferId id) {
  const auto it = transfers_.find(id);
  if (it == transfers_.end())
    return Status{ErrorCode::kNotFound, "scheduler: unknown transfer"};
  Transfer& t = it->second;
  if (t.customer != caller)
    return Status{ErrorCode::kPermissionDenied,
                  "scheduler: transfer belongs to another customer"};
  if (t.state == TransferState::kCompleted ||
      t.state == TransferState::kFailed ||
      t.state == TransferState::kCancelled)
    return Status{ErrorCode::kInvalidArgument,
                  "scheduler: transfer already finished"};
  for (Piece& p : t.pieces) release_piece_resources(t, p);
  t.state = TransferState::kCancelled;
  return Status::success();
}

std::size_t TransferScheduler::preempt_for_restoration(
    NodeId src, NodeId dst, DataRate rate, const std::set<LinkId>& avoid) {
  // Links any of the restoration's candidate routes could use. A preempted
  // window only helps if its lit channels sit on one of these.
  core::Exclusions exclude;
  exclude.links = avoid;
  std::set<LinkId> useful;
  for (const auto& route : controller_->rwa().candidate_routes(src, dst,
                                                               exclude))
    useful.insert(route.links.begin(), route.links.end());
  if (useful.empty()) return 0;

  std::size_t preempted = 0;
  DataRate freed{};
  for (auto& [id, t] : transfers_) {
    if (freed >= rate) break;
    if (t.state != TransferState::kScheduled &&
        t.state != TransferState::kActive)
      continue;
    if (t.priority != Priority::kBestEffortBulk) continue;
    core::CustomerPortal* portal = portal_of(t.customer);
    if (portal == nullptr) continue;
    for (std::size_t i = 0; i < t.pieces.size(); ++i) {
      if (freed >= rate) break;
      Piece& p = t.pieces[i];
      // Only live pieces hold lit spectrum; scheduled windows are calendar
      // promises, not channels — preempting them frees nothing today.
      if (p.done || !p.active || !p.bundle.valid()) continue;
      // The piece's actual lit plant is its bundle's connection plans, not
      // the calendar route (RWA may have packed them differently).
      bool intersects = false;
      for (const ConnectionId cid : portal->bundle(p.bundle).parts) {
        const core::Connection* c = controller_->find_connection(cid);
        if (c == nullptr || c->kind != core::ConnectionKind::kWavelength)
          continue;
        for (const LinkId l : c->plan.path.links)
          if (useful.contains(l)) {
            intersects = true;
            break;
          }
        if (intersects) break;
      }
      if (!intersects) continue;
      // Tear the live bundle down (channels free as the teardown trains
      // complete, each release kicking the restoration backlog), then
      // re-plan the piece from now — reschedule_piece fails the transfer
      // loudly when the re-planned window cannot meet the deadline.
      ++p.setup_epoch;
      engine_->cancel(p.setup_event);
      portal->disconnect_bundle(p.bundle, [](Status) {});
      p.bundle = core::BundleId{};
      p.active = false;
      freed += p.rate;
      ++preempted;
      ++stats_.preempted;
      count("griphon_bod_windows_preempted_total",
            "Best-effort windows preempted by gold restorations",
            t.customer);
      controller_->model().trace().emit(
          engine_->now(), sim::TraceLevel::kWarn, "transfer-scheduler",
          "window-preempted",
          "transfer " + std::to_string(id.value()) + " piece " +
              std::to_string(i) + " preempted for gold restoration");
      if (t.state == TransferState::kActive) {
        const bool any_active = std::any_of(
            t.pieces.begin(), t.pieces.end(),
            [](const Piece& q) { return q.active; });
        if (!any_active) t.state = TransferState::kScheduled;
      }
      reschedule_piece(id, i);
      if (transfers_.at(id).state == TransferState::kFailed) break;
    }
  }
  return preempted;
}

std::set<ConnectionId> TransferScheduler::migration_exempt_connections()
    const {
  std::set<ConnectionId> exempt;
  for (const auto& [id, t] : transfers_) {
    if (t.state != TransferState::kScheduled &&
        t.state != TransferState::kActive)
      continue;
    const core::CustomerPortal* portal = portal_of(t.customer);
    if (portal == nullptr) continue;
    for (const Piece& p : t.pieces) {
      if (!p.active || p.done || !p.bundle.valid()) continue;
      for (const ConnectionId c : portal->bundle(p.bundle).parts)
        exempt.insert(c);
    }
  }
  return exempt;
}

std::string TransferScheduler::render() const {
  std::ostringstream os;
  os << "+-----+----------+-----------+------------+------------+--------+\n"
     << "| id  | customer | state     | volume     | deadline   | pieces |\n"
     << "+-----+----------+-----------+------------+------------+--------+\n";
  for (const auto& [id, t] : transfers_) {
    os << "| " << std::setw(3) << id.value() << " | " << std::setw(8)
       << t.customer.value() << " | " << std::setw(9) << to_string(t.state)
       << " | " << std::setw(7) << t.bytes / 1'000'000'000 << " GB | "
       << std::setw(9) << static_cast<std::int64_t>(to_seconds(t.deadline))
       << "s | " << std::setw(6) << t.pieces.size() << " |\n";
  }
  os << "+-----+----------+-----------+------------+------------+--------+\n";
  return os.str();
}

}  // namespace griphon::bod
