// Deadline-driven bulk-transfer scheduling — the BoD service layer's
// "move N terabytes from A to B before Friday" front door.
//
// The scheduler turns a volume + deadline into concrete network actions:
// it picks a route from the RWA engine's candidate set, a composable
// service rate (10G waves + n x 1G ODUs via the portal's bundle
// decomposition), and the earliest calendar window that fits — then
// compiles the choice into timed setup/release events on the sim clock.
// When one window cannot meet the deadline it splits the transfer into
// pieces scheduled over separate windows/routes; when setup fails it
// retries with backoff; when a fiber cut shrinks future capacity it
// re-plans every scheduled piece whose route died.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "bod/admission.hpp"
#include "bod/reservation_calendar.hpp"
#include "core/portal.hpp"

namespace griphon::bod {

class TransferScheduler {
 public:
  struct Params {
    /// Service rates offered to a transfer, tried highest first. Each must
    /// decompose cleanly through CustomerPortal::decompose.
    std::vector<DataRate> rate_ladder{
        rates::k40G,          DataRate::gbps(20), DataRate::gbps(12),
        rates::k10G,          DataRate::gbps(5),  DataRate::gbps(2),
        rates::k1G};
    /// Extra window time reserved in front of the data to absorb bundle
    /// setup (the paper's 60-70 s per wavelength, x4 for a 40G composite).
    SimTime setup_pad = minutes(8);
    /// Base retry delay after a failed bundle setup; attempt n waits n x
    /// this.
    SimTime retry_backoff = seconds(30);
    int max_setup_retries = 3;
    /// A setup refused with kUnavailable (an EMS circuit breaker is open)
    /// is *deferred* — parked for this long without consuming a retry,
    /// since hammering a dead EMS cannot succeed. Bounded per piece.
    SimTime unavailable_defer = seconds(60);
    int max_unavailable_defers = 20;
    /// Split a transfer into at most this many pieces when a single window
    /// cannot meet the deadline.
    int max_pieces = 2;
  };

  /// The scheduler claims the controller's topology-observer slot to learn
  /// about fiber cuts/repairs (re-scheduling hook) and its preemption-hook
  /// slot so gold restorations out of wavelengths can reclaim best-effort
  /// calendar windows.
  TransferScheduler(core::GriphonController* controller,
                    ReservationCalendar* calendar,
                    AdmissionController* admission, Params params);
  TransferScheduler(core::GriphonController* controller,
                    ReservationCalendar* calendar,
                    AdmissionController* admission)
      : TransferScheduler(controller, calendar, admission, Params{}) {}

  /// Transfers are submitted on behalf of a registered customer portal —
  /// the portal supplies quota enforcement and bundle setup. Unregistered
  /// customers are rejected with kPermissionDenied.
  void register_portal(core::CustomerPortal* portal);

  struct TransferRequest {
    CustomerId customer;
    MuxponderId src_site;
    MuxponderId dst_site;
    std::int64_t bytes = 0;
    SimTime deadline{};  ///< absolute sim time the last byte must land by
    Priority priority = Priority::kBestEffortBulk;
  };

  enum class TransferState {
    kScheduled,  ///< calendar windows reserved, waiting for setup time
    kActive,     ///< at least one piece's bundle is carrying data
    kCompleted,  ///< all bytes delivered
    kFailed,     ///< could not be completed (setup/capacity loss)
    kCancelled,  ///< customer cancelled
  };

  /// Admission + planning + calendar reservation, all up front. On success
  /// the transfer is fully scheduled (every piece has a reserved window
  /// that completes before the deadline). Errors:
  ///  * kPermissionDenied  — customer has no portal / no BoD contract;
  ///  * kBusy              — per-customer request rate limit;
  ///  * kResourceExhausted — quota, or no calendar window meets the
  ///    deadline (the message names the earliest achievable completion);
  ///  * kUnreachable       — no route between the sites.
  [[nodiscard]] Result<TransferId> submit(const TransferRequest& request);

  /// Customer-facing status view. `caller` must own the transfer
  /// (kPermissionDenied otherwise — tenant isolation).
  struct TransferStatus {
    TransferId id;
    TransferState state = TransferState::kScheduled;
    std::int64_t bytes = 0;
    SimTime deadline{};
    /// Scheduled completion (latest piece window end) or actual completion
    /// once done.
    SimTime expected_completion{};
    int pieces = 0;
    int reschedules = 0;
    std::string detail;
  };
  [[nodiscard]] Result<TransferStatus> inspect(CustomerId caller,
                                               TransferId id) const;

  /// Cancel a scheduled/active transfer, releasing its calendar windows
  /// and tearing down any live bundles. Same isolation guard as inspect().
  [[nodiscard]] Status cancel(CustomerId caller, TransferId id);

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t deadline_met = 0;
    std::uint64_t deadline_missed = 0;
    std::uint64_t failed = 0;
    std::uint64_t splits = 0;       ///< transfers scheduled in >1 piece
    std::uint64_t reschedules = 0;  ///< pieces re-planned after a cut
    std::uint64_t setup_retries = 0;
    std::uint64_t setups_deferred = 0;  ///< parked on an open EMS breaker
    std::uint64_t preempted = 0;  ///< windows torn down for gold restoration
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Text table of all transfers (shell `transfers` command).
  [[nodiscard]] std::string render() const;

  /// Calendar key for a site's access pipe. The NTE muxponder bounds the
  /// site to kClientPorts x 10G of concurrent service, and the calendar is
  /// how the scheduler promises capacity ahead of time — so the access
  /// pipe is entered into the calendar as a pseudo-link, keyed far above
  /// any real LinkId. Each call refreshes the pseudo-link's budget to the
  /// hardware limit minus ports lit by traffic provisioned outside the
  /// calendar (direct portal connections), so plans never promise rates
  /// the NTE cannot deliver. Public so operators can render/inspect
  /// access-pipe occupancy alongside the fibers.
  [[nodiscard]] LinkId access_link(MuxponderId nte);

  /// Free wavelength capacity for a gold restoration between two PoPs
  /// (the controller's PreemptionHook). Walks active best-effort pieces
  /// whose lit connections intersect the restoration's candidate routes
  /// (avoiding `avoid`), tears their bundles down and re-plans each piece
  /// from now — reschedule_piece fails the transfer loudly when the
  /// re-planned window misses its deadline. Stops once the torn-down
  /// rate covers `rate`. Returns the number of windows preempted; the
  /// freed channels land asynchronously as the teardowns complete.
  std::size_t preempt_for_restoration(NodeId src, NodeId dst, DataRate rate,
                                      const std::set<LinkId>& avoid);

  /// Connections currently carrying calendar-committed transfer pieces.
  /// The re-optimization service must not migrate these: their windows
  /// were admitted against specific calendar capacity, and even a hitless
  /// roll risks a mid-window interruption if it aborts. Recomputed per
  /// call — campaign planning queries it once at gather time.
  [[nodiscard]] std::set<ConnectionId> migration_exempt_connections()
      const;

 private:
  /// One scheduled slice of a transfer: a route, a composable rate and a
  /// reserved calendar window big enough for setup + its share of bytes.
  struct Piece {
    ReservationId reservation;
    std::vector<LinkId> route_links;
    DataRate rate;
    Window window;
    std::int64_t bytes = 0;
    core::BundleId bundle;
    bool active = false;
    bool done = false;
    int attempts = 0;
    int defers = 0;  ///< kUnavailable deferrals (EMS breaker open)
    /// Bumped on every reschedule; setup callbacks and retry timers carry
    /// the epoch they were issued under, and results from a superseded
    /// epoch are dropped (their bundle torn down) instead of binding a
    /// stale route to the re-planned piece.
    int setup_epoch = 0;
    sim::EventHandle setup_event;
  };

  struct Transfer {
    TransferId id;
    CustomerId customer;
    MuxponderId src_site;
    MuxponderId dst_site;
    std::int64_t bytes = 0;
    SimTime deadline{};
    Priority priority = Priority::kBestEffortBulk;
    TransferState state = TransferState::kScheduled;
    std::vector<Piece> pieces;
    SimTime completed_at{};
    int reschedules = 0;
  };

  struct PiecePlan {
    std::vector<LinkId> links;
    DataRate rate;
    Window window;
  };

  /// Best (route, rate, window) for `bytes`, preferring the earliest
  /// completion. Searches candidate routes x the rate ladder against the
  /// calendar; `access_links` (the endpoints' access-pipe pseudo-links)
  /// are budgeted alongside every candidate route so concurrent transfers
  /// cannot oversubscribe a site's NTE.
  [[nodiscard]] Result<PiecePlan> plan_piece(
      NodeId src_pop, NodeId dst_pop, std::int64_t bytes, SimTime not_before,
      const std::vector<LinkId>& access_links,
      const core::Exclusions& exclude) const;

  void schedule_setup(TransferId id, std::size_t piece_index);
  void start_setup(TransferId id, std::size_t piece_index);
  void on_setup_result(TransferId id, std::size_t piece_index, int epoch,
                       Result<core::BundleId> result);
  void finish_piece(TransferId id, std::size_t piece_index);
  /// Re-plan a not-yet-active piece around the current failed-link set.
  void reschedule_piece(TransferId id, std::size_t piece_index);
  void fail_transfer(Transfer& t, const std::string& why);
  void release_piece_resources(Transfer& t, Piece& p);
  void on_topology_change(const std::vector<LinkId>& links, bool failed);

  void count(const char* name, const char* help, CustomerId customer);
  [[nodiscard]] core::CustomerPortal* portal_of(CustomerId customer) const;

  core::GriphonController* controller_;
  sim::Engine* engine_;
  ReservationCalendar* calendar_;
  AdmissionController* admission_;
  Params params_;
  std::unordered_map<CustomerId, core::CustomerPortal*> portals_;
  std::map<TransferId, Transfer> transfers_;
  IdAllocator<TransferId> ids_;
  Stats stats_;
};

[[nodiscard]] constexpr const char* to_string(
    TransferScheduler::TransferState s) noexcept {
  switch (s) {
    case TransferScheduler::TransferState::kScheduled:
      return "scheduled";
    case TransferScheduler::TransferState::kActive:
      return "active";
    case TransferScheduler::TransferState::kCompleted:
      return "completed";
    case TransferScheduler::TransferState::kFailed:
      return "failed";
    case TransferScheduler::TransferState::kCancelled:
      return "cancelled";
  }
  return "?";
}

}  // namespace griphon::bod
