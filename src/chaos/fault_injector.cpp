#include "chaos/fault_injector.hpp"

#include <algorithm>
#include <sstream>

#include "telemetry/telemetry.hpp"

namespace griphon::chaos {

FaultInjector::FaultInjector(core::NetworkModel* model, FaultPlan plan,
                             std::uint64_t seed)
    : model_(model), plan_(std::move(plan)), rng_(seed) {}

FaultInjector::~FaultInjector() { disarm(); }

bool FaultInjector::targets(const std::string& ems) const {
  if (plan_.ems.targets.empty()) return true;
  return std::find(plan_.ems.targets.begin(), plan_.ems.targets.end(), ems) !=
         plan_.ems.targets.end();
}

std::vector<ems::EmsServer*> FaultInjector::target_servers() {
  std::vector<ems::EmsServer*> out;
  for (ems::EmsServer* s : model_->ems_servers())
    if (targets(s->name())) out.push_back(s);
  return out;
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  for (ems::EmsServer* s : target_servers()) s->set_fault_hook(this);
  if (plan_.wants_channel_faults())
    for (proto::ControlChannel* c : model_->control_channels())
      c->set_fault_hook(this);
  schedule_crashes();
  schedule_ot_faults();
  schedule_fxc_sticks();
  schedule_fiber_cuts();
  record("arm", plan_.name);
}

void FaultInjector::disarm() {
  if (!armed_) return;
  armed_ = false;
  for (ems::EmsServer* s : model_->ems_servers())
    s->set_fault_hook(nullptr);
  for (proto::ControlChannel* c : model_->control_channels())
    c->set_fault_hook(nullptr);
  model_->engine().cancel(crash_event_);
  model_->engine().cancel(ot_event_);
  model_->engine().cancel(fxc_event_);
  model_->engine().cancel(fiber_event_);
  record("disarm", plan_.name);
}

void FaultInjector::heal_all() {
  std::size_t healed = 0;
  for (const auto& ot : model_->ots())
    if (ot->state() == dwdm::Transponder::State::kFailed) {
      ot->repair();
      ++healed;
    }
  for (const auto& node : model_->graph().nodes()) {
    fxc::Fxc& f = model_->fxc_at(node.id);
    // Copy: set_stuck mutates the set we'd be iterating.
    const auto stuck = f.stuck_ports();
    for (const PortId p : stuck) {
      f.set_stuck(p, false);
      ++healed;
    }
  }
  // Copy: repair_link fires the controller's repair path synchronously,
  // and the scheduled splice callbacks also erase from the set.
  const auto cuts = cut_by_injector_;
  for (const LinkId link : cuts) {
    cut_by_injector_.erase(link);
    if (model_->link_failed(link)) {
      model_->repair_link(link);
      ++healed;
    }
  }
  record("heal-all", std::to_string(healed) + " faults repaired");
}

// --- scheduled fault processes --------------------------------------------

void FaultInjector::schedule_crashes() {
  if (plan_.ems.mean_crash_interval <= SimTime{}) return;
  const double wait =
      rng_.exponential(to_seconds(plan_.ems.mean_crash_interval));
  crash_event_ = model_->engine().schedule(from_seconds(wait), [this]() {
    if (!armed_) return;
    auto servers = target_servers();
    if (!servers.empty()) {
      ems::EmsServer* victim = servers[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(servers.size()) - 1))];
      if (!victim->down()) {
        ++stats_.ems_crashes;
        bump(crashes_total_);
        record("ems-crash",
               victim->name() + " down for " +
                   std::to_string(to_seconds(plan_.ems.restart_after)) + "s");
        victim->crash_restart(plan_.ems.restart_after);
      }
    }
    schedule_crashes();
  });
}

void FaultInjector::schedule_ot_faults() {
  if (plan_.device.mean_ot_fault_interval <= SimTime{}) return;
  const double wait =
      rng_.exponential(to_seconds(plan_.device.mean_ot_fault_interval));
  ot_event_ = model_->engine().schedule(from_seconds(wait), [this]() {
    if (!armed_) return;
    // Laser failure on an idle pool OT: the fault is caught by routine
    // diagnostics before the OT is handed out, so its effect is a
    // shrinking spare pool the RWA must route around.
    std::vector<dwdm::Transponder*> idle;
    for (const auto& ot : model_->ots())
      if (ot->state() == dwdm::Transponder::State::kIdle)
        idle.push_back(ot.get());
    if (!idle.empty()) {
      dwdm::Transponder* victim = idle[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(idle.size()) - 1))];
      victim->fail();
      ++stats_.ot_faults;
      bump(device_faults_total_);
      record("ot-fault", victim->name() + " laser failed");
      Alarm alarm;
      alarm.id = alarm_ids_.next();
      alarm.type = AlarmType::kEquipmentFault;
      alarm.raised_at = model_->engine().now();
      alarm.source = victim->name();
      alarm.node = victim->site();
      alarm.detail = "laser failure (injected)";
      model_->roadm_ems().forward_alarm(alarm);
      const TransponderId id = victim->id();
      model_->engine().schedule(plan_.device.ot_repair_after, [this, id]() {
        dwdm::Transponder& ot = model_->ot(id);
        if (ot.state() == dwdm::Transponder::State::kFailed) {
          ot.repair();
          record("ot-repair", ot.name());
        }
      });
    }
    schedule_ot_faults();
  });
}

void FaultInjector::schedule_fxc_sticks() {
  if (plan_.device.mean_fxc_stick_interval <= SimTime{}) return;
  const double wait =
      rng_.exponential(to_seconds(plan_.device.mean_fxc_stick_interval));
  fxc_event_ = model_->engine().schedule(from_seconds(wait), [this]() {
    if (!armed_) return;
    const auto& nodes = model_->graph().nodes();
    if (!nodes.empty()) {
      const auto& node = nodes[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
      fxc::Fxc& f = model_->fxc_at(node.id);
      if (f.port_count() > 0) {
        const PortId port{static_cast<std::uint64_t>(rng_.uniform_int(
            0, static_cast<std::int64_t>(f.port_count()) - 1))};
        if (!f.stuck(port)) {
          f.set_stuck(port, true);
          ++stats_.fxc_sticks;
          bump(device_faults_total_);
          record("fxc-stick",
                 f.name() + " port " + std::to_string(port.value()));
          Alarm alarm;
          alarm.id = alarm_ids_.next();
          alarm.type = AlarmType::kEquipmentFault;
          alarm.raised_at = model_->engine().now();
          alarm.source = f.name();
          alarm.node = f.site();
          alarm.detail = "port " + std::to_string(port.value()) +
                         " stuck (injected)";
          model_->fxc_ems().forward_alarm(alarm);
          const NodeId site = node.id;
          model_->engine().schedule(
              plan_.device.fxc_release_after, [this, site, port]() {
                fxc::Fxc& fx = model_->fxc_at(site);
                if (fx.stuck(port)) {
                  fx.set_stuck(port, false);
                  record("fxc-release",
                         fx.name() + " port " + std::to_string(port.value()));
                }
              });
        }
      }
    }
    schedule_fxc_sticks();
  });
}

void FaultInjector::schedule_fiber_cuts() {
  if (plan_.fiber.mean_cut_interval <= SimTime{}) return;
  const double wait =
      rng_.exponential(to_seconds(plan_.fiber.mean_cut_interval));
  fiber_event_ = model_->engine().schedule(from_seconds(wait), [this]() {
    if (!armed_) return;
    cut_fiber(/*overlap_allowed=*/true);
    schedule_fiber_cuts();
  });
}

void FaultInjector::cut_fiber(bool overlap_allowed) {
  // Candidates: links currently up. Failed links (ours or the test's own
  // cuts) are already dark — a second backhoe adds nothing there.
  std::vector<LinkId> up;
  for (const auto& link : model_->graph().links())
    if (!model_->link_failed(link.id)) up.push_back(link.id);
  if (up.empty()) return;
  const LinkId seed = up[static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(up.size()) - 1))];

  // With conduit_probability the backhoe takes the whole right-of-way:
  // every SRLG sibling fails in one burst, which the controller's
  // FailureManager should collapse into a single correlated storm event.
  std::vector<LinkId> victims{seed};
  bool conduit = false;
  if (plan_.fiber.conduit_probability > 0.0 &&
      rng_.chance(plan_.fiber.conduit_probability)) {
    for (const LinkId sib : model_->graph().srlg_siblings(seed))
      if (sib != seed && !model_->link_failed(sib)) victims.push_back(sib);
    conduit = victims.size() > 1;
  }

  ++stats_.fiber_cuts;
  if (conduit) ++stats_.conduit_cuts;
  stats_.links_cut += victims.size();
  bump(fiber_cuts_total_);
  record(conduit ? "conduit-cut" : "fiber-cut",
         std::to_string(victims.size()) + " link(s), repair in " +
             std::to_string(to_seconds(plan_.fiber.repair_after)) + "s");
  for (const LinkId link : victims) {
    cut_by_injector_.insert(link);
    model_->fail_link(link);
  }
  model_->engine().schedule(plan_.fiber.repair_after, [this, victims]() {
    std::size_t spliced = 0;
    for (const LinkId link : victims)
      // heal_all() may have beaten the splicing crew to it.
      if (cut_by_injector_.erase(link) != 0 && model_->link_failed(link)) {
        model_->repair_link(link);
        ++spliced;
      }
    if (spliced != 0)
      record("fiber-splice", std::to_string(spliced) + " link(s) repaired");
  });

  // One overlapping follow-up at most per scheduled cut, so a high
  // overlap probability cannot chain-react the whole plant dark.
  if (overlap_allowed && plan_.fiber.overlap_probability > 0.0 &&
      rng_.chance(plan_.fiber.overlap_probability)) {
    const double lag = rng_.exponential(
        to_seconds(plan_.fiber.repair_after) / 2.0);
    model_->engine().schedule(from_seconds(lag), [this]() {
      if (!armed_) return;
      cut_fiber(/*overlap_allowed=*/false);
    });
  }
}

// --- hook implementations --------------------------------------------------

proto::FaultDecision FaultInjector::on_frame() {
  proto::FaultDecision d;
  if (!armed_) return d;
  const auto& ch = plan_.channel;
  if (ch.drop_probability > 0.0 && rng_.chance(ch.drop_probability)) {
    d.drop = true;
    ++stats_.frames_dropped;
    bump(drops_total_);
    return d;
  }
  if (ch.duplicate_probability > 0.0 &&
      rng_.chance(ch.duplicate_probability)) {
    d.duplicate = true;
    ++stats_.frames_duplicated;
    bump(dups_total_);
  }
  if (ch.delay_probability > 0.0 && rng_.chance(ch.delay_probability)) {
    d.extra_delay = ch.extra_delay;
    ++stats_.frames_delayed;
    bump(delays_total_);
  }
  return d;
}

Status FaultInjector::on_command(const std::string& ems,
                                 const proto::Message& message) {
  if (!armed_) return Status::success();
  if (plan_.ems.nack_probability > 0.0 &&
      rng_.chance(plan_.ems.nack_probability)) {
    ++stats_.nacks_injected;
    bump(nacks_total_);
    return Status{ErrorCode::kBusy,
                  ems + ": injected transient fault (" +
                      proto::name_of(proto::type_of(message)) + ")"};
  }
  return Status::success();
}

double FaultInjector::latency_scale(const std::string& ems) {
  (void)ems;  // targeting already decided at hook-install time
  if (!armed_) return 1.0;
  if (plan_.ems.slow_probability > 0.0 &&
      rng_.chance(plan_.ems.slow_probability)) {
    ++stats_.slow_commands;
    bump(slow_total_);
    return plan_.ems.slow_factor;
  }
  return 1.0;
}

// --- bookkeeping -----------------------------------------------------------

void FaultInjector::record(const std::string& kind,
                           const std::string& detail) {
  log_.push_back(Event{model_->engine().now(), kind, detail});
  model_->trace().emit(model_->engine().now(), sim::TraceLevel::kInfo,
                       "chaos", kind, detail);
  if (telemetry_ != nullptr)
    telemetry_->event(telemetry::Severity::kWarn, "fault", "chaos",
                      kind + (detail.empty() ? "" : ": " + detail));
}

void FaultInjector::bump(telemetry::Counter* counter) {
  if (counter != nullptr) counter->inc();
}

std::string FaultInjector::render_log() const {
  std::ostringstream out;
  for (const Event& e : log_)
    out << "t=" << to_seconds(e.at) << "s " << e.kind
        << (e.detail.empty() ? "" : " " + e.detail) << "\n";
  return out.str();
}

void FaultInjector::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    nacks_total_ = slow_total_ = crashes_total_ = drops_total_ =
        dups_total_ = delays_total_ = device_faults_total_ =
            fiber_cuts_total_ = nullptr;
    return;
  }
  auto& m = telemetry_->metrics();
  nacks_total_ = m.counter("griphon_chaos_nacks_injected_total",
                           "Commands NACKed by the fault injector");
  slow_total_ = m.counter("griphon_chaos_slow_commands_total",
                          "Commands stretched by the fault injector");
  crashes_total_ = m.counter("griphon_chaos_ems_crashes_total",
                             "EMS crash/restart events injected");
  drops_total_ = m.counter("griphon_chaos_frames_dropped_total",
                           "Control frames dropped by the fault injector");
  dups_total_ = m.counter("griphon_chaos_frames_duplicated_total",
                          "Control frames duplicated by the fault injector");
  delays_total_ = m.counter("griphon_chaos_frames_delayed_total",
                            "Control frames delayed by the fault injector");
  device_faults_total_ = m.counter("griphon_chaos_device_faults_total",
                                   "Device faults injected (OT + FXC)");
  fiber_cuts_total_ = m.counter("griphon_chaos_fiber_cuts_total",
                                "Fiber/conduit cut events injected");
}

}  // namespace griphon::chaos
