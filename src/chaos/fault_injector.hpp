// Deterministic fault injection for the whole GRIPhoN stack.
//
// The FaultInjector turns a declarative FaultPlan into concrete fault
// events, driven by the sim clock and its own seeded RNG (forked off
// nothing else, so the fault schedule for a given (plan, seed) is
// identical no matter what traffic runs underneath). It plugs into the
// seams the production code exposes:
//
//   * ems::EmsFaultHook      — transient NACKs and slow commands as each
//                              dialogue leaves an EMS queue;
//   * EMS crash/restart      — scheduled crash_restart() calls that drop
//                              queued commands and flush response caches;
//   * proto::ChannelFaultHook — control-message drop / duplicate / delay;
//   * device faults          — OT laser failures and stuck FXC ports,
//                              announced via kEquipmentFault alarms;
//   * fiber cuts             — fail_link() on one fiber or a whole SRLG
//                              conduit, repaired on a splicing schedule.
//
// Disarmed (or never armed), every hook site is a one-pointer test: the
// production fast path stays fault-free and bench-identical.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "core/network_model.hpp"
#include "ems/ems_server.hpp"
#include "proto/channel.hpp"

namespace griphon::telemetry {
class Telemetry;
class Counter;
}  // namespace griphon::telemetry

namespace griphon::chaos {

class FaultInjector final : public proto::ChannelFaultHook,
                            public ems::EmsFaultHook {
 public:
  FaultInjector(core::NetworkModel* model, FaultPlan plan,
                std::uint64_t seed);
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Install hooks on every targeted EMS and control channel and start
  /// the crash / device-fault processes. Idempotent.
  void arm();
  /// Remove every hook and stop scheduling new faults. Faults already in
  /// effect (failed OTs, stuck ports, a down EMS) persist until their
  /// scheduled repair fires or heal_all() is called.
  void disarm();
  [[nodiscard]] bool armed() const noexcept { return armed_; }

  /// Instantly repair every outstanding device fault (failed OTs, stuck
  /// FXC ports) and every fiber the injector cut. Does not resurrect a
  /// crashed EMS — that restarts on its own schedule.
  void heal_all();

  // --- hook implementations (called by the production stack) ------------
  [[nodiscard]] proto::FaultDecision on_frame() override;
  [[nodiscard]] Status on_command(const std::string& ems,
                                  const proto::Message& message) override;
  [[nodiscard]] double latency_scale(const std::string& ems) override;

  // --- introspection -----------------------------------------------------
  struct Stats {
    std::uint64_t nacks_injected = 0;
    std::uint64_t slow_commands = 0;
    std::uint64_t ems_crashes = 0;
    std::uint64_t frames_dropped = 0;
    std::uint64_t frames_duplicated = 0;
    std::uint64_t frames_delayed = 0;
    std::uint64_t ot_faults = 0;
    std::uint64_t fxc_sticks = 0;
    std::uint64_t fiber_cuts = 0;     ///< cut events (each may hit >1 link)
    std::uint64_t conduit_cuts = 0;   ///< cuts that took a whole SRLG
    std::uint64_t links_cut = 0;      ///< individual links failed
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Timestamped fault log (arm/disarm, crashes, device faults/repairs).
  /// Per-frame and per-command faults are counted, not logged.
  struct Event {
    SimTime at{};
    std::string kind;
    std::string detail;
  };
  [[nodiscard]] const std::vector<Event>& log() const noexcept {
    return log_;
  }
  [[nodiscard]] std::string render_log() const;

  /// Attach/detach telemetry: griphon_chaos_* counters. Null = fast path.
  void set_telemetry(telemetry::Telemetry* telemetry);

 private:
  [[nodiscard]] bool targets(const std::string& ems) const;
  [[nodiscard]] std::vector<ems::EmsServer*> target_servers();
  void schedule_crashes();
  void schedule_ot_faults();
  void schedule_fxc_sticks();
  void schedule_fiber_cuts();
  /// Execute one cut event: pick an up link, take it (and, with
  /// conduit_probability, its whole SRLG) down, schedule the splice and
  /// possibly an overlapping follow-up cut.
  void cut_fiber(bool overlap_allowed);
  void record(const std::string& kind, const std::string& detail);
  void bump(telemetry::Counter* counter);

  core::NetworkModel* model_;
  FaultPlan plan_;
  Rng rng_;
  IdAllocator<AlarmId> alarm_ids_;
  bool armed_ = false;
  sim::EventHandle crash_event_;
  sim::EventHandle ot_event_;
  sim::EventHandle fxc_event_;
  sim::EventHandle fiber_event_;
  /// Links the injector cut and has not yet repaired — so heal_all()
  /// repairs exactly our faults and never a test's own fail_link().
  std::set<LinkId> cut_by_injector_;
  Stats stats_;
  std::vector<Event> log_;

  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter* nacks_total_ = nullptr;
  telemetry::Counter* slow_total_ = nullptr;
  telemetry::Counter* crashes_total_ = nullptr;
  telemetry::Counter* drops_total_ = nullptr;
  telemetry::Counter* dups_total_ = nullptr;
  telemetry::Counter* delays_total_ = nullptr;
  telemetry::Counter* device_faults_total_ = nullptr;
  telemetry::Counter* fiber_cuts_total_ = nullptr;
};

}  // namespace griphon::chaos
