#include "chaos/fault_plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace griphon::chaos {

namespace {

double clamp_probability(double p) { return std::clamp(p, 0.0, 0.95); }

SimTime scale_interval(SimTime mean, double intensity) {
  if (mean <= SimTime{} || intensity <= 0.0) return SimTime{};
  return from_seconds(to_seconds(mean) / intensity);
}

}  // namespace

FaultPlan FaultPlan::none() {
  FaultPlan p;
  p.name = "none";
  return p;
}

FaultPlan FaultPlan::ems_flaps() {
  FaultPlan p;
  p.name = "ems-flaps";
  p.ems.nack_probability = 0.05;
  p.ems.slow_probability = 0.05;
  p.ems.slow_factor = 4.0;
  p.ems.mean_crash_interval = minutes(10);
  p.ems.restart_after = seconds(30);
  return p;
}

FaultPlan FaultPlan::channel_loss() {
  FaultPlan p;
  p.name = "channel-loss";
  p.channel.drop_probability = 0.02;
  p.channel.duplicate_probability = 0.02;
  p.channel.delay_probability = 0.05;
  p.channel.extra_delay = milliseconds(200);
  return p;
}

FaultPlan FaultPlan::device_faults() {
  FaultPlan p;
  p.name = "device-faults";
  p.device.mean_ot_fault_interval = minutes(15);
  p.device.ot_repair_after = minutes(2);
  p.device.mean_fxc_stick_interval = minutes(15);
  p.device.fxc_release_after = minutes(2);
  return p;
}

FaultPlan FaultPlan::combined() {
  FaultPlan p;
  p.name = "combined";
  p.ems.nack_probability = 0.03;
  p.ems.slow_probability = 0.03;
  p.ems.slow_factor = 3.0;
  p.ems.mean_crash_interval = minutes(20);
  p.ems.restart_after = seconds(30);
  p.channel.drop_probability = 0.01;
  p.channel.duplicate_probability = 0.01;
  p.channel.delay_probability = 0.03;
  p.channel.extra_delay = milliseconds(200);
  p.device.mean_ot_fault_interval = minutes(30);
  p.device.ot_repair_after = minutes(2);
  p.device.mean_fxc_stick_interval = minutes(30);
  p.device.fxc_release_after = minutes(2);
  return p;
}

FaultPlan FaultPlan::conduit_cut() {
  FaultPlan p;
  p.name = "conduit-cut";
  p.fiber.mean_cut_interval = minutes(12);
  p.fiber.repair_after = minutes(6);
  p.fiber.conduit_probability = 0.9;
  p.fiber.overlap_probability = 0.0;
  return p;
}

FaultPlan FaultPlan::failure_storm() {
  FaultPlan p;
  p.name = "failure-storm";
  p.fiber.mean_cut_interval = minutes(5);
  p.fiber.repair_after = minutes(8);
  p.fiber.conduit_probability = 0.7;
  p.fiber.overlap_probability = 0.5;
  p.ems.nack_probability = 0.03;
  p.ems.slow_probability = 0.03;
  p.ems.slow_factor = 3.0;
  return p;
}

Result<FaultPlan> FaultPlan::preset(const std::string& name) {
  if (name == "none") return none();
  if (name == "ems-flaps") return ems_flaps();
  if (name == "channel-loss") return channel_loss();
  if (name == "device-faults") return device_faults();
  if (name == "combined") return combined();
  if (name == "conduit-cut") return conduit_cut();
  if (name == "failure-storm") return failure_storm();
  return Error{ErrorCode::kNotFound, "chaos: unknown preset '" + name + "'"};
}

FaultPlan FaultPlan::scaled(double intensity) const {
  FaultPlan p = *this;
  p.name = name + "@" + std::to_string(intensity);
  p.ems.nack_probability = clamp_probability(ems.nack_probability * intensity);
  p.ems.slow_probability = clamp_probability(ems.slow_probability * intensity);
  p.ems.mean_crash_interval =
      scale_interval(ems.mean_crash_interval, intensity);
  p.channel.drop_probability =
      clamp_probability(channel.drop_probability * intensity);
  p.channel.duplicate_probability =
      clamp_probability(channel.duplicate_probability * intensity);
  p.channel.delay_probability =
      clamp_probability(channel.delay_probability * intensity);
  p.device.mean_ot_fault_interval =
      scale_interval(device.mean_ot_fault_interval, intensity);
  p.device.mean_fxc_stick_interval =
      scale_interval(device.mean_fxc_stick_interval, intensity);
  p.fiber.mean_cut_interval = scale_interval(fiber.mean_cut_interval, intensity);
  p.fiber.conduit_probability =
      clamp_probability(fiber.conduit_probability * intensity);
  p.fiber.overlap_probability =
      clamp_probability(fiber.overlap_probability * intensity);
  return p;
}

Result<FaultPlan> FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  const auto fail = [&](const std::string& why) -> Result<FaultPlan> {
    return Error{ErrorCode::kInvalidArgument,
                 "chaos: line " + std::to_string(line_no) + ": " + why};
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto strip = [](std::string s) {
      const auto b = s.find_first_not_of(" \t\r");
      if (b == std::string::npos) return std::string{};
      const auto e = s.find_last_not_of(" \t\r");
      return s.substr(b, e - b + 1);
    };
    line = strip(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) return fail("expected key=value");
    const std::string key = strip(line.substr(0, eq));
    const std::string value = strip(line.substr(eq + 1));
    if (key.empty() || value.empty()) return fail("expected key=value");

    if (key == "preset") {
      auto base = preset(value);
      if (!base.ok()) return base.error();
      plan = std::move(base).value();
      continue;
    }
    if (key == "name") {
      plan.name = value;
      continue;
    }
    if (key == "ems.targets") {
      // Comma-separated EMS names.
      plan.ems.targets.clear();
      std::istringstream items(value);
      std::string item;
      while (std::getline(items, item, ',')) {
        item = strip(item);
        if (!item.empty()) plan.ems.targets.push_back(item);
      }
      continue;
    }

    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
      return fail("'" + value + "' is not a number");
    const auto prob = [&](double* slot) {
      *slot = v;
      return v >= 0.0 && v <= 1.0;
    };
    if (key == "ems.nack_probability") {
      if (!prob(&plan.ems.nack_probability)) return fail("probability out of [0,1]");
    } else if (key == "ems.slow_probability") {
      if (!prob(&plan.ems.slow_probability)) return fail("probability out of [0,1]");
    } else if (key == "ems.slow_factor") {
      plan.ems.slow_factor = v;
    } else if (key == "ems.mean_crash_interval") {
      plan.ems.mean_crash_interval = from_seconds(v);
    } else if (key == "ems.restart_after") {
      plan.ems.restart_after = from_seconds(v);
    } else if (key == "channel.drop_probability") {
      if (!prob(&plan.channel.drop_probability)) return fail("probability out of [0,1]");
    } else if (key == "channel.duplicate_probability") {
      if (!prob(&plan.channel.duplicate_probability))
        return fail("probability out of [0,1]");
    } else if (key == "channel.delay_probability") {
      if (!prob(&plan.channel.delay_probability)) return fail("probability out of [0,1]");
    } else if (key == "channel.extra_delay") {
      plan.channel.extra_delay = from_seconds(v);
    } else if (key == "device.mean_ot_fault_interval") {
      plan.device.mean_ot_fault_interval = from_seconds(v);
    } else if (key == "device.ot_repair_after") {
      plan.device.ot_repair_after = from_seconds(v);
    } else if (key == "device.mean_fxc_stick_interval") {
      plan.device.mean_fxc_stick_interval = from_seconds(v);
    } else if (key == "device.fxc_release_after") {
      plan.device.fxc_release_after = from_seconds(v);
    } else if (key == "fiber.mean_cut_interval") {
      plan.fiber.mean_cut_interval = from_seconds(v);
    } else if (key == "fiber.repair_after") {
      plan.fiber.repair_after = from_seconds(v);
    } else if (key == "fiber.conduit_probability") {
      if (!prob(&plan.fiber.conduit_probability)) return fail("probability out of [0,1]");
    } else if (key == "fiber.overlap_probability") {
      if (!prob(&plan.fiber.overlap_probability)) return fail("probability out of [0,1]");
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  return plan;
}

std::string FaultPlan::render() const {
  std::ostringstream out;
  out << "fault plan '" << name << "'\n";
  out << "  ems: nack=" << ems.nack_probability
      << " slow=" << ems.slow_probability << "x" << ems.slow_factor
      << " crash-mean=" << to_seconds(ems.mean_crash_interval) << "s"
      << " restart=" << to_seconds(ems.restart_after) << "s";
  if (!ems.targets.empty()) {
    out << " targets=";
    for (std::size_t i = 0; i < ems.targets.size(); ++i)
      out << (i != 0 ? "," : "") << ems.targets[i];
  }
  out << "\n";
  out << "  channel: drop=" << channel.drop_probability
      << " dup=" << channel.duplicate_probability
      << " delay=" << channel.delay_probability << "@"
      << to_seconds(channel.extra_delay) << "s\n";
  out << "  device: ot-fault-mean="
      << to_seconds(device.mean_ot_fault_interval) << "s"
      << " ot-repair=" << to_seconds(device.ot_repair_after) << "s"
      << " fxc-stick-mean=" << to_seconds(device.mean_fxc_stick_interval)
      << "s fxc-release=" << to_seconds(device.fxc_release_after) << "s\n";
  out << "  fiber: cut-mean=" << to_seconds(fiber.mean_cut_interval) << "s"
      << " repair=" << to_seconds(fiber.repair_after) << "s"
      << " conduit=" << fiber.conduit_probability
      << " overlap=" << fiber.overlap_probability << "\n";
  return out.str();
}

}  // namespace griphon::chaos
