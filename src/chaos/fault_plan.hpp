// Declarative fault plans for the chaos injector.
//
// A FaultPlan says *what* goes wrong and how often; the FaultInjector
// (driven by the sim clock and a seeded RNG) decides *when*. Plans are
// plain data so soak tests, benches and the shell can share the same
// presets, scale them by intensity, or parse operator-authored ones from
// key=value text.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/units.hpp"

namespace griphon::chaos {

struct FaultPlan {
  std::string name = "custom";

  /// Faults at the EMS command layer.
  struct EmsFaults {
    /// Chance a dequeued command is NACKed with a retryable kBusy instead
    /// of executing (transient vendor-EMS hiccup).
    double nack_probability = 0.0;
    /// Chance a command's dialogue latency is stretched by slow_factor.
    double slow_probability = 0.0;
    double slow_factor = 4.0;
    /// Mean time between EMS crash/restart events (exponential); zero
    /// disables crashes. A crash drops every queued command on the floor
    /// and flushes the response cache.
    SimTime mean_crash_interval{};
    SimTime restart_after = seconds(30);
    /// EMS names the faults apply to; empty = every EMS.
    std::vector<std::string> targets;
  } ems;

  /// Faults at the control-channel (message transport) layer.
  struct ChannelFaults {
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
    double delay_probability = 0.0;
    SimTime extra_delay = milliseconds(200);
  } channel;

  /// Spontaneous device faults.
  struct DeviceFaults {
    /// Mean time between OT laser failures (picks an idle pool OT — the
    /// fault is discovered by diagnostics before the OT is handed out, so
    /// the RWA must route around a shrinking pool). Zero disables.
    SimTime mean_ot_fault_interval{};
    SimTime ot_repair_after = minutes(2);
    /// Mean time between FXC ports sticking (the patch robot jams; any
    /// setup or teardown touching the port NACKs with kDeviceFault until
    /// a technician frees it). Zero disables.
    SimTime mean_fxc_stick_interval{};
    SimTime fxc_release_after = minutes(2);
  } device;

  /// Fiber-plant faults: backhoe cuts on in-service links. A cut either
  /// severs one fiber pair or — with conduit_probability — the whole
  /// conduit (every SRLG sibling fails in one correlated burst, which is
  /// what the controller's storm correlator is built to recognise).
  struct FiberFaults {
    /// Mean time between cut events (exponential); zero disables.
    SimTime mean_cut_interval{};
    /// Splicing-crew time before the cut links are repaired.
    SimTime repair_after = minutes(10);
    /// Chance a cut takes the whole SRLG conduit instead of one fiber.
    double conduit_probability = 0.0;
    /// Chance a cut spawns a second, independent cut elsewhere while the
    /// first is still being spliced — overlapping failures exercise the
    /// restoration retry backlog.
    double overlap_probability = 0.0;
  } fiber;

  [[nodiscard]] bool wants_channel_faults() const noexcept {
    return channel.drop_probability > 0.0 ||
           channel.duplicate_probability > 0.0 ||
           channel.delay_probability > 0.0;
  }

  // --- presets ------------------------------------------------------------
  [[nodiscard]] static FaultPlan none();
  /// Flapping EMSs: transient NACKs, slow commands, periodic crashes.
  [[nodiscard]] static FaultPlan ems_flaps();
  /// Lossy control channels: drops, duplicates, delays.
  [[nodiscard]] static FaultPlan channel_loss();
  /// Hardware gremlins: OT laser failures and stuck FXC ports.
  [[nodiscard]] static FaultPlan device_faults();
  /// Everything at once, at gentler per-fault rates.
  [[nodiscard]] static FaultPlan combined();
  /// Occasional full-conduit cuts: every SRLG sibling fails at once, then
  /// a splicing crew repairs the conduit minutes later.
  [[nodiscard]] static FaultPlan conduit_cut();
  /// Restoration storm: frequent conduit cuts with overlapping seconds
  /// (a new cut lands while the last is still being spliced), plus mildly
  /// flaky EMSs — the worst night of the year for the control plane.
  [[nodiscard]] static FaultPlan failure_storm();
  /// Look a preset up by name ("none", "ems-flaps", "channel-loss",
  /// "device-faults", "combined", "conduit-cut", "failure-storm").
  [[nodiscard]] static Result<FaultPlan> preset(const std::string& name);

  /// A copy with every probability multiplied by `intensity` (clamped to
  /// 0.95) and every mean event interval divided by it. intensity 0 turns
  /// everything off; 1 is the plan as authored.
  [[nodiscard]] FaultPlan scaled(double intensity) const;

  /// Parse key=value text ('#' comments, blank lines ignored). A
  /// `preset=<name>` line loads that preset as the base; later lines
  /// override single fields, e.g. `ems.nack_probability=0.1` or
  /// `channel.extra_delay=0.5` (durations in seconds).
  [[nodiscard]] static Result<FaultPlan> parse(const std::string& text);

  /// Human-readable summary (shell `chaos plan`, CI artifact).
  [[nodiscard]] std::string render() const;
};

}  // namespace griphon::chaos
