// Network alarms.
//
// Devices raise alarms (LOS after a fiber cut, equipment faults, ODU AIS);
// EMSs forward them to the GRIPhoN controller, whose failure manager
// correlates them to localize the root cause (paper §2.2: "failure
// detection, localization and automated restorations").
#pragma once

#include <optional>
#include <ostream>
#include <string>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace griphon {

enum class AlarmType {
  kLos,             ///< loss of signal on a line/client port
  kLof,             ///< loss of frame (digital layer)
  kOduAis,          ///< ODU alarm indication signal (OTN downstream)
  kEquipmentFault,  ///< device-internal failure
  kClear,           ///< previously raised condition cleared
  kEmsRestart,      ///< an EMS came back after a crash (state may be stale)
};

[[nodiscard]] constexpr const char* to_string(AlarmType t) noexcept {
  switch (t) {
    case AlarmType::kLos:
      return "LOS";
    case AlarmType::kLof:
      return "LOF";
    case AlarmType::kOduAis:
      return "ODU-AIS";
    case AlarmType::kEquipmentFault:
      return "EQPT";
    case AlarmType::kClear:
      return "CLEAR";
    case AlarmType::kEmsRestart:
      return "EMS-RESTART";
  }
  return "?";
}

/// One alarm instance as seen by the controller. Which optional fields are
/// set depends on the reporting layer.
struct Alarm {
  AlarmId id;
  AlarmType type = AlarmType::kLos;
  SimTime raised_at{};
  std::string source;               ///< reporting element, e.g. "roadm/2"
  std::optional<NodeId> node;       ///< site of the reporting element
  std::optional<LinkId> link;       ///< line side: which inter-node link
  std::optional<int> channel;       ///< DWDM channel index, if per-channel
  std::optional<ConnectionId> connection;  ///< if the device knows it
  std::string detail;
};

inline std::ostream& operator<<(std::ostream& os, const Alarm& a) {
  os << to_string(a.type) << '@' << a.source;
  if (a.channel) os << " ch" << *a.channel;
  if (!a.detail.empty()) os << " (" << a.detail << ')';
  return os;
}

}  // namespace griphon
