#include "common/error.hpp"

namespace griphon {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kNone:
      return "ok";
    case ErrorCode::kNotFound:
      return "not-found";
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kResourceExhausted:
      return "resource-exhausted";
    case ErrorCode::kBusy:
      return "busy";
    case ErrorCode::kConflict:
      return "conflict";
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kDeviceFault:
      return "device-fault";
    case ErrorCode::kUnreachable:
      return "unreachable";
    case ErrorCode::kPermissionDenied:
      return "permission-denied";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

}  // namespace griphon
