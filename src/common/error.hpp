// Error model for the GRIPhoN control plane.
//
// Control-plane operations fail for *expected* reasons (no wavelength
// available, port already cross-connected, EMS timeout); those are carried
// as values via Result<T>. Programming errors (indexing a port that does
// not exist on a device we own) throw.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

namespace griphon {

/// Machine-readable error categories. Keep coarse: callers branch on these;
/// detail goes into the message string.
enum class ErrorCode {
  kNone = 0,
  kNotFound,            ///< entity id does not resolve
  kInvalidArgument,     ///< request is malformed / out of range
  kResourceExhausted,   ///< no wavelength / OT / regen / slot available
  kBusy,                ///< resource exists but is held by someone else
  kConflict,            ///< state machine does not allow this transition
  kTimeout,             ///< EMS or protocol deadline expired
  kDeviceFault,         ///< element rejected the command / is failed
  kUnreachable,         ///< no path satisfies the constraints
  kPermissionDenied,    ///< customer isolation / quota violation
  kInternal,            ///< invariant violation escaping as a value
  kUnavailable,         ///< dependency down (EMS circuit breaker open)
};

[[nodiscard]] std::string_view to_string(ErrorCode code) noexcept;

/// An error value: code + human-readable context.
class Error {
 public:
  Error() = default;
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }
  [[nodiscard]] bool ok() const noexcept { return code_ == ErrorCode::kNone; }

  friend bool operator==(const Error& a, const Error& b) noexcept {
    return a.code_ == b.code_;
  }

  friend std::ostream& operator<<(std::ostream& os, const Error& e) {
    return os << to_string(e.code()) << ": " << e.message();
  }

 private:
  ErrorCode code_ = ErrorCode::kNone;
  std::string message_;
};

}  // namespace griphon
