// Strongly typed identifiers used across GRIPhoN.
//
// Every entity in the network (node, link, port, wavelength channel,
// connection, customer, ...) gets its own ID type so that mixing them up is
// a compile error rather than a silent bug. IDs are cheap value types:
// a 64-bit integer wrapped in a tag-discriminated template.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace griphon {

/// Generic strongly typed identifier. `Tag` is an empty struct that makes
/// each instantiation a distinct type.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint64_t;

  /// Sentinel for "no id". Default-constructed ids are invalid.
  static constexpr value_type kInvalid = ~value_type{0};

  constexpr Id() noexcept = default;
  constexpr explicit Id(value_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalid;
  }
  constexpr explicit operator bool() const noexcept { return valid(); }

  friend constexpr bool operator==(Id a, Id b) noexcept {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Id a, Id b) noexcept {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(Id a, Id b) noexcept {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator>(Id a, Id b) noexcept {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator<=(Id a, Id b) noexcept {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>=(Id a, Id b) noexcept {
    return a.value_ >= b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  value_type value_ = kInvalid;
};

/// Monotonic generator for a given ID type. Not thread-safe by design: all
/// GRIPhoN state lives on the single-threaded simulation loop.
template <typename IdT>
class IdAllocator {
 public:
  [[nodiscard]] IdT next() noexcept { return IdT{next_++}; }
  [[nodiscard]] typename IdT::value_type issued() const noexcept {
    return next_;
  }

 private:
  typename IdT::value_type next_ = 0;
};

// --- topology ---------------------------------------------------------
using NodeId = Id<struct NodeTag>;        ///< ROADM/CO site in the graph
using LinkId = Id<struct LinkTag>;        ///< inter-node fiber link (bidir)
using SpanId = Id<struct SpanTag>;        ///< amplified fiber span in a link

// --- photonic layer ---------------------------------------------------
using RoadmId = Id<struct RoadmTag>;      ///< ROADM network element
using TransponderId = Id<struct OtTag>;   ///< optical transponder (OT)
using RegenId = Id<struct RegenTag>;      ///< optical regenerator
using MuxponderId = Id<struct MuxTag>;    ///< 10/40G muxponder (NTE)
using FxcId = Id<struct FxcTag>;          ///< fiber cross-connect
using PortId = Id<struct PortTag>;        ///< device port (scoped per device)

// --- electrical layers -------------------------------------------------
using OtnSwitchId = Id<struct OtnSwTag>;  ///< OTN switch element
using CarrierId = Id<struct CarrierTag>;  ///< OTU carrier riding a wavelength
using OduCircuitId = Id<struct OduCtTag>; ///< sub-wavelength ODU circuit
using StsCircuitId = Id<struct StsCtTag>; ///< SONET legacy circuit

// --- control plane ----------------------------------------------------
using ConnectionId = Id<struct ConnTag>;  ///< end-to-end BoD connection
using CustomerId = Id<struct CustTag>;    ///< cloud service provider tenant
using RequestId = Id<struct ReqTag>;      ///< protocol request correlation
using AlarmId = Id<struct AlarmTag>;      ///< raised alarm instance
using JobId = Id<struct JobTag>;          ///< workload bulk-transfer job

// --- BoD service layer -------------------------------------------------
using ReservationId = Id<struct ResvTag>; ///< calendar capacity reservation
using TransferId = Id<struct XferTag>;    ///< deadline-driven bulk transfer

}  // namespace griphon

namespace std {
template <typename Tag>
struct hash<griphon::Id<Tag>> {
  size_t operator()(griphon::Id<Tag> id) const noexcept {
    return std::hash<typename griphon::Id<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
