// Result<T>: a minimal expected-like type (std::expected is C++23; we target
// C++20). Holds either a value or an Error. Deliberately small: no monadic
// chaining beyond what the codebase actually uses.
#pragma once

#include <cassert>
#include <stdexcept>
#include <utility>
#include <variant>

#include "common/error.hpp"

namespace griphon {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from both value and error keeps call sites readable:
  //   return Error{...};  /  return some_value;
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Result(Error error) : storage_(std::in_place_index<1>, std::move(error)) {
    assert(!std::get<1>(storage_).ok() && "Result error must carry a code");
  }

  [[nodiscard]] bool ok() const noexcept { return storage_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    check();
    return std::get<0>(storage_);
  }
  [[nodiscard]] T& value() & {
    check();
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    check();
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] const Error& error() const& {
    assert(!ok());
    return std::get<1>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(storage_) : std::move(fallback);
  }

 private:
  void check() const {
    if (!ok())
      throw std::logic_error("Result::value() on error: " +
                             std::get<1>(storage_).message());
  }

  std::variant<T, Error> storage_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)) {}
  Status(ErrorCode code, std::string message)
      : error_(code, std::move(message)) {}

  [[nodiscard]] bool ok() const noexcept { return error_.ok(); }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] const Error& error() const noexcept { return error_; }

  [[nodiscard]] static Status success() { return {}; }

 private:
  Error error_;
};

}  // namespace griphon
