#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

namespace griphon {

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  const double v = std::normal_distribution<double>(mean, stddev)(engine_);
  return std::max(0.0, v);
}

double Rng::exponential(double mean) {
  if (mean <= 0) return 0;
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::lognormal(double mean, double sigma) {
  if (mean <= 0) return 0;
  // Choose mu so that the distribution's mean equals `mean`:
  // E[LogNormal(mu, sigma)] = exp(mu + sigma^2/2).
  const double mu = std::log(mean) - sigma * sigma / 2.0;
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

bool Rng::chance(double probability) {
  if (probability <= 0) return false;
  if (probability >= 1) return true;
  return std::bernoulli_distribution(probability)(engine_);
}

Rng Rng::fork() {
  // Derive a child seed; consuming one draw keeps parent deterministic.
  return Rng{engine_()};
}

LatencyModel LatencyModel::fixed(SimTime value) {
  return LatencyModel{Kind::kFixed, value, SimTime{}, SimTime{}, 0};
}

LatencyModel LatencyModel::normal(SimTime floor, SimTime mean,
                                  SimTime stddev) {
  return LatencyModel{Kind::kNormal, floor, mean, stddev, 0};
}

LatencyModel LatencyModel::lognormal(SimTime floor, SimTime mean,
                                     double sigma) {
  return LatencyModel{Kind::kLogNormal, floor, mean, SimTime{}, sigma};
}

LatencyModel LatencyModel::exponential(SimTime floor, SimTime mean) {
  return LatencyModel{Kind::kExponential, floor, mean, SimTime{}, 0};
}

SimTime LatencyModel::sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kFixed:
      return floor_;
    case Kind::kNormal:
      return floor_ + from_seconds(rng.normal(to_seconds(mean_),
                                              to_seconds(stddev_)));
    case Kind::kLogNormal:
      return floor_ + from_seconds(rng.lognormal(to_seconds(mean_), sigma_));
    case Kind::kExponential:
      return floor_ + from_seconds(rng.exponential(to_seconds(mean_)));
  }
  return floor_;
}

SimTime LatencyModel::mean() const {
  switch (kind_) {
    case Kind::kFixed:
      return floor_;
    case Kind::kNormal:
    case Kind::kLogNormal:
    case Kind::kExponential:
      return floor_ + mean_;
  }
  return floor_;
}

}  // namespace griphon
