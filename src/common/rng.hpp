// Deterministic random number generation.
//
// Everything stochastic in the simulator (EMS command latencies, arrival
// processes, failure injection) draws from an Rng owned by the simulation
// so that a run is reproducible from its seed.
#pragma once

#include <cstdint>
#include <random>

#include "common/units.hpp"

namespace griphon {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Normal draw truncated at zero (latencies cannot be negative).
  [[nodiscard]] double normal(double mean, double stddev);
  /// Exponential draw with the given mean.
  [[nodiscard]] double exponential(double mean);
  /// Log-normal draw parameterized by the *target* mean and sigma of the
  /// underlying normal (heavy-tailed EMS latencies).
  [[nodiscard]] double lognormal(double mean, double sigma);
  /// Bernoulli trial.
  [[nodiscard]] bool chance(double probability);

  /// Fork an independent stream (e.g. per-device) that stays deterministic
  /// regardless of draw interleaving elsewhere.
  [[nodiscard]] Rng fork();

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// A latency distribution: fixed floor plus a stochastic component. Models
/// EMS/device command service times (paper §3: "EMS configuration steps"
/// and "optical tasks").
class LatencyModel {
 public:
  enum class Kind { kFixed, kNormal, kLogNormal, kExponential };

  /// Deterministic latency.
  static LatencyModel fixed(SimTime value);
  /// floor + Normal(mean, stddev), truncated at zero.
  static LatencyModel normal(SimTime floor, SimTime mean, SimTime stddev);
  /// floor + LogNormal with given mean/sigma.
  static LatencyModel lognormal(SimTime floor, SimTime mean, double sigma);
  /// floor + Exp(mean).
  static LatencyModel exponential(SimTime floor, SimTime mean);

  [[nodiscard]] SimTime sample(Rng& rng) const;
  /// Expected value (used by planning code, not by the simulator).
  [[nodiscard]] SimTime mean() const;

 private:
  LatencyModel(Kind kind, SimTime floor, SimTime mean, SimTime stddev,
               double sigma)
      : kind_(kind), floor_(floor), mean_(mean), stddev_(stddev),
        sigma_(sigma) {}

  Kind kind_ = Kind::kFixed;
  SimTime floor_{};
  SimTime mean_{};
  SimTime stddev_{};
  double sigma_ = 0;
};

}  // namespace griphon
