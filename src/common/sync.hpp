// Annotated synchronization primitives (DESIGN.md §15).
//
// Every lock in GRIPhoN goes through these wrappers, never through raw
// std::mutex / std::lock_guard (enforced by the griphon-lint `raw-sync`
// check). The wrappers carry Clang capability attributes, so under
// `clang++ -Wthread-safety -Wthread-safety-beta` lock discipline is a
// *compile-time* property: a `GUARDED_BY(mu_)` member touched without the
// mutex held, a function called without its `REQUIRES` capability, or a
// lock taken while `EXCLUDES` says it must be free is a build error — not
// a race a TSan run may or may not happen to execute. Under GCC (which has
// no capability analysis) the attribute macros expand to nothing and the
// wrappers are zero-cost pass-throughs to the standard primitives; the
// TSan CI lane then checks the same discipline dynamically.
//
// Usage pattern:
//
//   class Registry {
//    public:
//     void add(Entry e) EXCLUDES(mu_) {
//       MutexLock lock(&mu_);
//       entries_.push_back(std::move(e));
//     }
//    private:
//     mutable Mutex mu_;
//     std::vector<Entry> entries_ GUARDED_BY(mu_);
//   };
#pragma once

#include <condition_variable>  // griphon-lint: allow(raw-sync) wrapper implementation
#include <mutex>               // griphon-lint: allow(raw-sync) wrapper implementation

// --- capability attribute macros -------------------------------------------
// Clang exposes the analysis through __attribute__((capability)) et al.;
// other compilers parse none of them, so the macros vanish there. The
// spellings follow the Clang Thread Safety Analysis documentation.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GRIPHON_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GRIPHON_THREAD_ANNOTATION
#define GRIPHON_THREAD_ANNOTATION(x)  // non-Clang: no capability analysis
#endif

/// Marks a class as a capability (lockable resource) named `x` in
/// diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) GRIPHON_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define SCOPED_CAPABILITY GRIPHON_THREAD_ANNOTATION(scoped_lockable)

/// Member `x` may only be read/written while holding the named mutex.
#define GUARDED_BY(x) GRIPHON_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* is protected by the named mutex (the
/// pointer itself is not).
#define PT_GUARDED_BY(x) GRIPHON_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while already holding the capability.
#define REQUIRES(...) \
  GRIPHON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function may only be called while NOT holding the capability (it
/// acquires it internally); prevents self-deadlock at compile time.
#define EXCLUDES(...) GRIPHON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and holds it past return.
#define ACQUIRE(...) \
  GRIPHON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases a held capability.
#define RELEASE(...) \
  GRIPHON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define TRY_ACQUIRE(result, ...) \
  GRIPHON_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// The function returns a reference to the named capability (lock
/// accessors).
#define RETURN_CAPABILITY(x) GRIPHON_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's lock discipline is intentionally invisible
/// to the analysis. Every use must carry a justification comment and is
/// subject to the suppression policy in DESIGN.md §15.
#define NO_THREAD_SAFETY_ANALYSIS \
  GRIPHON_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace griphon {

class CondVar;

/// Annotated exclusive mutex. Prefer MutexLock over manual lock()/unlock().
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // griphon-lint: allow(raw-sync) wrapper implementation
};

/// RAII scoped lock over Mutex (the std::lock_guard of this codebase).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. wait() must be called with the
/// mutex held (enforced by REQUIRES under Clang); it atomically releases
/// the mutex while blocked and re-acquires it before returning, exactly
/// like std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock  // griphon-lint: allow(raw-sync) wrapper implementation
        lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // caller still owns the mutex, as REQUIRES promises
  }

  /// Waits until `pred()` is true, re-checking after every wakeup. `pred`
  /// runs with the mutex held.
  template <typename Pred>
  void wait_until(Mutex& mu, Pred pred) REQUIRES(mu) {
    while (!pred()) wait(mu);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // griphon-lint: allow(raw-sync) wrapper implementation
  std::condition_variable cv_;
};

}  // namespace griphon
