// Physical units used throughout GRIPhoN: data rates, simulated time and
// fiber distance. Wrapping them in dedicated types keeps Gbps from being
// added to kilometers.
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <ratio>

namespace griphon {

/// Simulated time: a chrono duration with microsecond resolution.
using SimTime = std::chrono::duration<std::int64_t, std::micro>;

using std::chrono::duration_cast;

constexpr SimTime microseconds(std::int64_t us) { return SimTime{us}; }
constexpr SimTime milliseconds(std::int64_t ms) {
  return duration_cast<SimTime>(std::chrono::milliseconds{ms});
}
constexpr SimTime seconds(std::int64_t s) {
  return duration_cast<SimTime>(std::chrono::seconds{s});
}
constexpr SimTime minutes(std::int64_t m) {
  return duration_cast<SimTime>(std::chrono::minutes{m});
}
constexpr SimTime hours(std::int64_t h) {
  return duration_cast<SimTime>(std::chrono::hours{h});
}

/// Seconds as a double, for reporting.
[[nodiscard]] constexpr double to_seconds(SimTime t) {
  return std::chrono::duration<double>(t).count();
}
[[nodiscard]] constexpr double to_milliseconds(SimTime t) {
  return std::chrono::duration<double, std::milli>(t).count();
}
[[nodiscard]] constexpr SimTime from_seconds(double s) {
  return duration_cast<SimTime>(std::chrono::duration<double>(s));
}

/// A data rate in bits per second. Circuit rates in GRIPhoN are discrete
/// (1G, 2.5G, 10G, 40G, 100G, ODU0=1.25G, ...) but arithmetic over them
/// (aggregating composite circuits, filling tributary slots) needs a real
/// quantity type.
class DataRate {
 public:
  constexpr DataRate() noexcept = default;
  constexpr explicit DataRate(std::int64_t bps) noexcept : bps_(bps) {}

  [[nodiscard]] static constexpr DataRate bps(std::int64_t v) {
    return DataRate{v};
  }
  [[nodiscard]] static constexpr DataRate mbps(std::int64_t v) {
    return DataRate{v * 1'000'000};
  }
  [[nodiscard]] static constexpr DataRate gbps(double v) {
    return DataRate{static_cast<std::int64_t>(v * 1e9)};
  }

  [[nodiscard]] constexpr std::int64_t in_bps() const noexcept { return bps_; }
  [[nodiscard]] constexpr double in_gbps() const noexcept {
    return static_cast<double>(bps_) / 1e9;
  }

  [[nodiscard]] constexpr bool zero() const noexcept { return bps_ == 0; }

  constexpr DataRate& operator+=(DataRate o) noexcept {
    bps_ += o.bps_;
    return *this;
  }
  constexpr DataRate& operator-=(DataRate o) noexcept {
    bps_ -= o.bps_;
    return *this;
  }

  friend constexpr DataRate operator+(DataRate a, DataRate b) noexcept {
    return DataRate{a.bps_ + b.bps_};
  }
  friend constexpr DataRate operator-(DataRate a, DataRate b) noexcept {
    return DataRate{a.bps_ - b.bps_};
  }
  friend constexpr DataRate operator*(DataRate a, std::int64_t k) noexcept {
    return DataRate{a.bps_ * k};
  }
  friend constexpr auto operator<=>(DataRate a, DataRate b) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, DataRate r) {
    return os << r.in_gbps() << "Gbps";
  }

 private:
  std::int64_t bps_ = 0;
};

/// Time needed to move `bytes` over a circuit of rate `rate`.
[[nodiscard]] constexpr SimTime transfer_time(std::int64_t bytes,
                                              DataRate rate) {
  if (rate.zero()) return SimTime::max();
  const double secs =
      static_cast<double>(bytes) * 8.0 / static_cast<double>(rate.in_bps());
  return from_seconds(secs);
}

/// Fiber distance in kilometers; drives optical-reach computations.
class Distance {
 public:
  constexpr Distance() noexcept = default;
  constexpr explicit Distance(double km) noexcept : km_(km) {}

  [[nodiscard]] static constexpr Distance km(double v) { return Distance{v}; }
  [[nodiscard]] constexpr double in_km() const noexcept { return km_; }

  constexpr Distance& operator+=(Distance o) noexcept {
    km_ += o.km_;
    return *this;
  }
  friend constexpr Distance operator+(Distance a, Distance b) noexcept {
    return Distance{a.km_ + b.km_};
  }
  friend constexpr auto operator<=>(Distance a, Distance b) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, Distance d) {
    return os << d.km_ << "km";
  }

 private:
  double km_ = 0;
};

namespace rates {
// Client/service rates offered by the BoD portal (paper §1: 1G .. 40G).
inline constexpr DataRate k1G = DataRate::gbps(1);
inline constexpr DataRate k2G5 = DataRate::gbps(2.5);
inline constexpr DataRate k10G = DataRate::gbps(10);
inline constexpr DataRate k40G = DataRate::gbps(40);
inline constexpr DataRate k100G = DataRate::gbps(100);
// OTN payload rates (ITU-T G.709).
inline constexpr DataRate kOdu0 = DataRate::bps(1'244'160'000);   // 1.25G
inline constexpr DataRate kOdu1 = DataRate::bps(2'498'775'126);   // 2.5G
inline constexpr DataRate kOdu2 = DataRate::bps(10'037'273'924);  // 10G
inline constexpr DataRate kOdu3 = DataRate::bps(40'319'218'983);  // 40G
inline constexpr DataRate kOdu4 = DataRate::bps(104'794'445'815); // 100G
// Legacy SONET rates.
inline constexpr DataRate kSts1 = DataRate::bps(51'840'000);
inline constexpr DataRate kOc3 = DataRate::bps(155'520'000);
inline constexpr DataRate kOc12 = DataRate::bps(622'080'000);
inline constexpr DataRate kOc48 = DataRate::bps(2'488'320'000);
inline constexpr DataRate kOc192 = DataRate::bps(9'953'280'000);
}  // namespace rates

}  // namespace griphon
