// BoD connection records and lifecycle.
//
// A Connection is what a cloud service provider buys: an end-to-end circuit
// between two of its data-center sites at a chosen rate. Wavelength-rate
// connections own a WavelengthPlan (path + channels + OTs + regens);
// sub-wavelength connections reference an ODU circuit in the OTN layer.
#pragma once

#include <optional>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "core/rwa.hpp"

namespace griphon::core {

/// Service tier: restoration order after a shared failure. The carrier
/// restores gold connections before silver before bronze — with a pool of
/// shared spare resources, who goes first is a sellable differentiator.
enum class ServiceTier { kGold = 0, kSilver = 1, kBronze = 2 };

[[nodiscard]] constexpr const char* to_string(ServiceTier t) noexcept {
  switch (t) {
    case ServiceTier::kGold:
      return "gold";
    case ServiceTier::kSilver:
      return "silver";
    case ServiceTier::kBronze:
      return "bronze";
  }
  return "?";
}

enum class ConnectionKind {
  kWavelength,     ///< full wavelength on the DWDM layer (10-40G)
  kSubWavelength,  ///< ODU circuit groomed by the OTN layer (1-10G)
};

enum class ProtectionMode {
  kUnprotected,  ///< outage until manual repair
  kRestorable,   ///< GRIPhoN dynamic restoration (minutes, cheap)
  kOnePlusOne,   ///< dedicated disjoint protection path (ms, expensive)
};

enum class ConnectionState {
  kPending,      ///< accepted, awaiting orchestration
  kSettingUp,    ///< EMS command sequence in flight
  kActive,       ///< carrying traffic
  kFailed,       ///< outage in progress
  kRestoring,    ///< restoration command sequence in flight
  kRolling,      ///< bridge-and-roll in progress (service unaffected)
  kTearingDown,  ///< release command sequence in flight
  kReleased,     ///< gone; record kept for accounting
  kSetupFailed,  ///< setup aborted and rolled back
};

[[nodiscard]] constexpr const char* to_string(ConnectionState s) noexcept {
  switch (s) {
    case ConnectionState::kPending:
      return "pending";
    case ConnectionState::kSettingUp:
      return "setting-up";
    case ConnectionState::kActive:
      return "active";
    case ConnectionState::kFailed:
      return "failed";
    case ConnectionState::kRestoring:
      return "restoring";
    case ConnectionState::kRolling:
      return "rolling";
    case ConnectionState::kTearingDown:
      return "tearing-down";
    case ConnectionState::kReleased:
      return "released";
    case ConnectionState::kSetupFailed:
      return "setup-failed";
  }
  return "?";
}

/// Telemetry correlation tag for a connection's lifecycle spans. Offset by
/// one: tag 0 is the span tracer's "untagged" sentinel (plant-level spans
/// like detect/localize), and connection ids start at 0.
[[nodiscard]] constexpr std::uint64_t telemetry_tag(ConnectionId id) noexcept {
  return id.value() + 1;
}

/// What a customer submits through the portal.
struct ConnectionRequest {
  CustomerId customer;
  MuxponderId src_site;  ///< site handle (the NTE at the premises)
  MuxponderId dst_site;
  DataRate rate;
  ProtectionMode protection = ProtectionMode::kRestorable;
  ServiceTier tier = ServiceTier::kSilver;
};

struct Connection {
  ConnectionId id;
  CustomerId customer;
  MuxponderId src_site;
  MuxponderId dst_site;
  NodeId src_pop;
  NodeId dst_pop;
  std::size_t src_nte_port = 0;
  std::size_t dst_nte_port = 0;
  DataRate rate;
  ConnectionKind kind = ConnectionKind::kWavelength;
  ProtectionMode protection = ProtectionMode::kRestorable;
  ServiceTier tier = ServiceTier::kSilver;
  ConnectionState state = ConnectionState::kPending;

  // Wavelength connections:
  WavelengthPlan plan;                    ///< active lightpath
  std::optional<WavelengthPlan> standby;  ///< 1+1 protection leg / bridge
  bool traffic_on_standby = false;        ///< 1+1: failed over

  // Sub-wavelength connections:
  OduCircuitId odu;

  // Accounting.
  SimTime requested_at{};
  SimTime active_at{};            ///< first time traffic flowed
  SimTime setup_duration{};       ///< request -> active
  SimTime outage_started_at{};    ///< valid while state == kFailed/kRestoring
  SimTime total_outage{};
  int restorations = 0;
  int rolls = 0;                  ///< completed bridge-and-roll operations
  SimTime roll_hit_total{};       ///< accumulated sub-second roll hits
  /// True when a failed restoration left the recorded plan without device
  /// configuration behind it — repair alone cannot bring service back.
  bool deprovisioned = false;

  // Telemetry span handles (telemetry::SpanId; 0 = none / telemetry off).
  // The controller tags every span of this connection's lifecycle with
  // telemetry_tag(id), so the timeline tooling can pull the whole story.
  std::uint64_t setup_span = 0;  ///< open connection_setup root span
  std::uint64_t op_span = 0;     ///< open restoration / roll root span

  [[nodiscard]] bool is_up() const noexcept {
    return state == ConnectionState::kActive ||
           state == ConnectionState::kRolling;
  }
};

}  // namespace griphon::core
