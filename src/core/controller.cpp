#include "core/controller.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

#include "telemetry/telemetry.hpp"

namespace griphon::core {

namespace {

Status response_to_status(const Result<proto::Response>& r) {
  if (!r.ok()) return r.error();
  if (r.value().ok()) return Status::success();
  return Status{static_cast<ErrorCode>(r.value().code), r.value().message};
}

/// Telemetry span name + actor for one EMS command.
struct SpanLabel {
  const char* name;
  const char* actor;
};

SpanLabel span_label(const proto::Message& m) {
  struct Visitor {
    SpanLabel operator()(const proto::FxcConnect&) {
      return {"fxc.xconnect", "fxc-ems"};
    }
    SpanLabel operator()(const proto::FxcDisconnect&) {
      return {"fxc.disconnect", "fxc-ems"};
    }
    SpanLabel operator()(const proto::RoadmExpress&) {
      return {"roadm.express", "roadm-ems"};
    }
    SpanLabel operator()(const proto::RoadmAddDrop&) {
      return {"roadm.add_drop", "roadm-ems"};
    }
    SpanLabel operator()(const proto::OtTune&) {
      return {"ot.tune", "roadm-ems"};
    }
    SpanLabel operator()(const proto::OtSetState&) {
      return {"ot.set_state", "roadm-ems"};
    }
    SpanLabel operator()(const proto::RegenEngage&) {
      return {"regen.engage", "roadm-ems"};
    }
    SpanLabel operator()(const proto::PowerBalance&) {
      return {"power.balance", "roadm-ems"};
    }
    SpanLabel operator()(const proto::OtnOp&) { return {"otn.op", "otn-ems"}; }
    SpanLabel operator()(const proto::NtePort&) {
      return {"nte.port", "nte-ems"};
    }
    SpanLabel operator()(const proto::Response&) {
      return {"ems.command", "ems"};
    }
    SpanLabel operator()(const proto::AlarmEvent&) {
      return {"ems.command", "ems"};
    }
    SpanLabel operator()(const proto::EmsBatch&) {
      // Only stateless power balancing is coalesced today (see
      // proto::EmsBatch); label the dialogue accordingly.
      return {"power.balance.batch", "roadm-ems"};
    }
  };
  return std::visit(Visitor{}, m);
}

bool plan_uses_any(const WavelengthPlan& plan,
                   const std::set<LinkId>& links) {
  return std::any_of(plan.path.links.begin(), plan.path.links.end(),
                     [&](LinkId l) { return links.contains(l); });
}

/// Worth a second try? kTimeout: the transport gave up and the command's
/// fate is unknown. kBusy: transient EMS/device contention. Validation
/// NACKs and device faults are deterministic — retrying burns time.
bool command_retryable(ErrorCode code) {
  return code == ErrorCode::kTimeout || code == ErrorCode::kBusy;
}

/// Concatenate two step lists, re-basing the appended list's dependency
/// indices (they are positions within their own list).
void append_steps(StepList& dst, StepList src) {
  const std::size_t base = dst.size();
  for (Step& s : src) {
    for (std::size_t& d : s.deps) d += base;
    dst.push_back(std::move(s));
  }
}

}  // namespace

GriphonController::GriphonController(NetworkModel* model, Params params)
    : model_(model), params_(params), inventory_(model),
      rwa_(model, &inventory_, params.rwa),
      failures_(&model->engine(), params.failure),
      ems_health_(&model->engine(), params.ems_health) {
  client_domains_ = {
      {&model_->roadm_ems_client(), "roadm-ems"},
      {&model_->fxc_ems_client(), "fxc-ems"},
      {&model_->otn_ems_client(), "otn-ems"},
      {&model_->nte_ems_client(), "nte-ems"},
  };
  // O(1) snapshot free-bitmap maintenance off device lifecycle
  // transitions (DESIGN.md §15) — no pool re-scan on the plan hot path.
  inventory_.attach_device_listeners(model_);
  // Alarm plumbing: every EMS event stream feeds the failure manager.
  const auto sink = [this](const proto::Frame& frame) {
    handle_alarm_frame(frame);
  };
  model_->roadm_ems_client().on_event(sink);
  model_->fxc_ems_client().on_event(sink);
  model_->otn_ems_client().on_event(sink);
  model_->nte_ems_client().on_event(sink);
  // The failure manager groups localized links by conduit so a backhoe
  // cut arrives as one correlated storm event, not N independent ones.
  failures_.set_srlg_resolver([this](LinkId link) {
    return model_->graph().srlg_siblings(link);
  });
  failures_.on_failure([this](const FailureManager::FailureEvent& event) {
    on_links_failed(event);
  });
  failures_.on_repair(
      [this](const std::vector<LinkId>& links) { on_links_repaired(links); });

  if (model_->config().with_otn) {
    model_->mesh_restorer().on_restore(
        [this](OduCircuitId odu, Status status) {
          const auto it = odu_to_connection_.find(odu);
          if (it == odu_to_connection_.end()) return;
          Connection* c = find_conn(it->second);
          if (c == nullptr) return;
          if (status.ok()) {
            ++c->restorations;
            ++stats_.restorations_ok;
            if (c->state == ConnectionState::kFailed) {
              mark_recovered(*c);
            } else {
              // Mesh restoration finished before alarm correlation even
              // localized the cut; charge the measured sub-second hit.
              const auto& times =
                  model_->mesh_restorer().restoration_times();
              const auto t = times.find(odu);
              if (t != times.end()) c->total_outage += t->second;
            }
            trace(sim::TraceLevel::kInfo, "otn-restored",
                  "connection " + std::to_string(c->id.value()));
          } else {
            ++stats_.restorations_failed;
            trace(sim::TraceLevel::kWarn, "otn-restore-failed",
                  status.error().message());
          }
        });
    model_->mesh_restorer().on_revert_eligible([this](OduCircuitId odu) {
      // Revertive mode: move traffic home shortly after repair.
      model_->engine().schedule(milliseconds(500), [this, odu]() {
        const auto it = odu_to_connection_.find(odu);
        if (it == odu_to_connection_.end()) return;
        (void)model_->otn().revert_to_primary(odu);
      });
    });
  }
}

void GriphonController::trace(sim::TraceLevel level, const std::string& event,
                              const std::string& detail) {
  model_->trace().emit(model_->engine().now(), level, "controller", event,
                       detail);
}

Connection& GriphonController::conn(ConnectionId id) {
  const auto it = connections_.find(id);
  if (it == connections_.end())
    throw std::out_of_range("controller: unknown connection");
  return it->second;
}

Connection* GriphonController::find_conn(ConnectionId id) {
  const auto it = connections_.find(id);
  return it == connections_.end() ? nullptr : &it->second;
}

const Connection& GriphonController::connection(ConnectionId id) const {
  const auto it = connections_.find(id);
  if (it == connections_.end())
    throw std::out_of_range("controller: unknown connection");
  return it->second;
}

const Connection* GriphonController::find_connection(
    ConnectionId id) const noexcept {
  const auto it = connections_.find(id);
  return it == connections_.end() ? nullptr : &it->second;
}

std::vector<ConnectionId> GriphonController::connections_of(
    CustomerId customer) const {
  std::vector<ConnectionId> out;
  for (const auto& [id, c] : connections_)
    if (c.customer == customer && c.state != ConnectionState::kReleased &&
        c.state != ConnectionState::kSetupFailed)
      out.push_back(id);
  return out;
}

std::size_t GriphonController::active_connections() const {
  return static_cast<std::size_t>(
      std::count_if(connections_.begin(), connections_.end(),
                    [](const auto& kv) { return kv.second.is_up(); }));
}

Result<std::size_t> GriphonController::pick_free_nte_port(MuxponderId nte) {
  const auto& device = model_->nte(nte);
  for (std::size_t p = 0; p < dwdm::Muxponder::kClientPorts; ++p) {
    if (device.port_in_use(p)) continue;
    if (reserved_nte_ports_.contains({nte, p})) continue;
    reserved_nte_ports_.insert({nte, p});
    return p;
  }
  return Error{ErrorCode::kResourceExhausted,
               "controller: access pipe fully used at site"};
}

void GriphonController::release_nte_port(MuxponderId nte, std::size_t port) {
  reserved_nte_ports_.erase({nte, port});
}

// --------------------------------------------------------------------------
// Command sequencing
// --------------------------------------------------------------------------

const std::string& GriphonController::domain_of(
    const proto::RequestClient* client) const {
  static const std::string kUnknown = "ems";
  const auto it = client_domains_.find(client);
  return it == client_domains_.end() ? kUnknown : it->second;
}

SimTime GriphonController::retry_delay(int attempt) {
  const auto& p = params_.command_retry;
  double d = to_seconds(p.base_backoff);
  for (int i = 1; i < attempt; ++i) d *= p.backoff_multiplier;
  d = std::min(d, to_seconds(p.max_backoff));
  if (p.jitter > 0.0)
    d *= model_->engine().rng().uniform(1.0 - p.jitter, 1.0 + p.jitter);
  return from_seconds(d);
}

void GriphonController::issue_command(
    proto::RequestClient* client, proto::Message message,
    proto::RequestClient::ResponseCallback cb, int attempt,
    std::uint64_t idem_key) {
  ems_health_.set_telemetry(model_->telemetry());
  const std::string& domain = domain_of(client);
  if (!ems_health_.allow(domain)) {
    // Breaker open: shed the command without touching the wire, so a dead
    // EMS costs microseconds, not a protocol-timeout ladder. Deferred one
    // event to keep callback ordering identical to the wire path.
    ++stats_.commands_shed;
    ++pending_commands_;
    model_->engine().schedule(
        SimTime{}, [this, domain, cb = std::move(cb)]() {
          --pending_commands_;
          cb(Error{ErrorCode::kUnavailable,
                   "controller: " + domain + " circuit breaker open"});
        });
    return;
  }
  ++pending_commands_;
  // The id the frame actually went out under; needed to reuse it as the
  // idempotency key on a retry-after-timeout. request() returns before any
  // callback can fire (single-threaded sim), so the shared slot is always
  // populated by then.
  auto sent_id = std::make_shared<std::uint64_t>(0);
  *sent_id = client->request(
      message,
      [this, client, message, cb = std::move(cb), attempt, sent_id](
          Result<proto::Response> r) mutable {
        --pending_commands_;
        const bool transport_timeout =
            !r.ok() && r.error().code() == ErrorCode::kTimeout;
        if (transport_timeout)
          ems_health_.record_timeout(domain_of(client));
        else
          ems_health_.record_success(domain_of(client));
        const Status s = response_to_status(r);
        if (!s.ok() && command_retryable(s.error().code()) &&
            attempt < params_.command_retry.max_attempts) {
          ++stats_.commands_retried;
          // After a timeout the command may or may not have executed:
          // retry under the SAME request id so the EMS either replays its
          // cached response or executes once. A NACK is cached under this
          // id too, so a retryable NACK must go out under a fresh id.
          const std::uint64_t reuse = transport_timeout ? *sent_id : 0;
          trace(sim::TraceLevel::kInfo, "command-retry",
                domain_of(client) + " attempt " + std::to_string(attempt) +
                    ": " + s.error().message());
          if (telemetry::Telemetry* t = model_->telemetry())
            t->event(telemetry::Severity::kWarn, "retry",
                     domain_of(client) + "-ems",
                     "command retry, attempt " + std::to_string(attempt) +
                         ": " + s.error().message());
          model_->engine().schedule(
              retry_delay(attempt),
              [this, client, message = std::move(message),
               cb = std::move(cb), attempt, reuse]() mutable {
                issue_command(client, std::move(message), std::move(cb),
                              attempt + 1, reuse);
              });
          return;
        }
        cb(std::move(r));
      },
      idem_key);
}

struct GriphonController::RunState {
  std::shared_ptr<StepList> steps;
  bool best_effort = false;
  RunDone done;
  std::vector<std::size_t> succeeded;
  Status first_error = Status::success();
  std::size_t outstanding = 0;       // pipelined mode
  std::uint64_t parent_span = 0;     // 0 = no per-command spans
  // DAG mode:
  std::unique_ptr<StepDag> dag;
  std::unique_ptr<DagScheduler> sched;
  std::vector<std::string> domains;  // per-step EMS domain
  SimTime run_start{};
  StepDagReport report;
  bool done_called = false;
};

void GriphonController::run_steps(std::shared_ptr<StepList> steps,
                                  bool best_effort, RunDone done,
                                  std::uint64_t parent_span) {
  run_steps_as(params_.exec_mode, std::move(steps), best_effort,
               std::move(done), parent_span);
}

void GriphonController::run_steps_as(ExecMode mode,
                                     std::shared_ptr<StepList> steps,
                                     bool best_effort, RunDone done,
                                     std::uint64_t parent_span) {
  auto state = std::make_shared<RunState>();
  state->steps = std::move(steps);
  state->best_effort = best_effort;
  state->done = std::move(done);
  if (model_->telemetry() != nullptr) state->parent_span = parent_span;
  if (state->steps->empty()) {
    state->done(Status::success(), {});
    return;
  }
  switch (mode) {
    case ExecMode::kSequential:
      run_steps_sequential(state, 0);
      break;
    case ExecMode::kPipelined:
      run_steps_pipelined(state);
      break;
    case ExecMode::kDag:
      run_steps_dag(state);
      break;
  }
}

void GriphonController::run_steps_sequential(std::shared_ptr<RunState> state,
                                             std::size_t at) {
  if (at >= state->steps->size()) {
    state->done(state->first_error, std::move(state->succeeded));
    return;
  }
  Step& step = (*state->steps)[at];
  ++stats_.commands_issued;
  std::uint64_t span = 0;
  if (state->parent_span != 0) {
    if (telemetry::Telemetry* t = model_->telemetry()) {
      const SpanLabel label = span_label(step.forward);
      span = t->span_start(label.name, label.actor, 0, state->parent_span);
    }
  }
  issue_command(step.client, step.forward, [this, state, at, span](
                                               Result<proto::Response> r) {
    const Status s = response_to_status(r);
    if (span != 0)
      if (telemetry::Telemetry* t = model_->telemetry())
        t->span_end(span, s.ok(),
                    s.ok() ? std::string{} : s.error().message());
    if (s.ok()) {
      state->succeeded.push_back(at);
    } else {
      if (state->first_error.ok()) state->first_error = s;
      if (!state->best_effort) {
        state->done(state->first_error, std::move(state->succeeded));
        return;
      }
    }
    run_steps_sequential(state, at + 1);
  });
}

void GriphonController::run_steps_pipelined(std::shared_ptr<RunState> state) {
  state->outstanding = state->steps->size();
  for (std::size_t i = 0; i < state->steps->size(); ++i) {
    ++stats_.commands_issued;
    std::uint64_t span = 0;
    if (state->parent_span != 0) {
      if (telemetry::Telemetry* t = model_->telemetry()) {
        const SpanLabel label = span_label((*state->steps)[i].forward);
        span = t->span_start(label.name, label.actor, 0, state->parent_span);
      }
    }
    issue_command(
        (*state->steps)[i].client, (*state->steps)[i].forward,
        [this, state, i, span](Result<proto::Response> r) {
          const Status s = response_to_status(r);
          if (span != 0)
            if (telemetry::Telemetry* t = model_->telemetry())
              t->span_end(span, s.ok(),
                          s.ok() ? std::string{} : s.error().message());
          if (s.ok())
            state->succeeded.push_back(i);
          else if (state->first_error.ok())
            state->first_error = s;
          if (--state->outstanding == 0) {
            std::sort(state->succeeded.begin(), state->succeeded.end());
            state->done(state->first_error, std::move(state->succeeded));
          }
        });
  }
}

void GriphonController::run_steps_dag(std::shared_ptr<RunState> state) {
  const StepList& steps = *state->steps;
  state->dag = std::make_unique<StepDag>(steps);
  state->domains.reserve(steps.size());
  for (const Step& s : steps) state->domains.push_back(domain_of(s.client));
  state->sched = std::make_unique<DagScheduler>(
      state->dag.get(), state->domains, params_.dag_domain_window);
  state->run_start = model_->engine().now();
  state->report.started_at_s = to_seconds(state->run_start);
  state->report.steps.resize(steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    DagStepRecord& rec = state->report.steps[i];
    rec.name = span_label(steps[i].forward).name;
    rec.domain = state->domains[i];
    rec.deps = state->dag->deps_of(i);
  }
  pump_dag(state);
}

void GriphonController::pump_dag(const std::shared_ptr<RunState>& state) {
  if (state->done_called) return;
  while (const auto next = state->sched->acquire()) {
    const std::size_t i = *next;
    const Step& step = (*state->steps)[i];

    // Batch window: sweep every other ready stateless sibling on the same
    // EMS into this dialogue — they pay the management overhead once.
    std::vector<std::size_t> members{i};
    if (params_.batch_commands &&
        std::holds_alternative<proto::PowerBalance>(step.forward)) {
      auto peers = state->sched->drain_ready(
          state->domains[i], [&](std::size_t j) {
            return (*state->steps)[j].client == step.client &&
                   std::holds_alternative<proto::PowerBalance>(
                       (*state->steps)[j].forward);
          });
      members.insert(members.end(), peers.begin(), peers.end());
    }

    proto::Message message = step.forward;
    if (members.size() > 1) {
      proto::EmsBatch batch;
      for (const std::size_t j : members)
        batch.items.push_back(
            proto::encode_frame(0, (*state->steps)[j].forward));
      message = proto::Message{std::move(batch)};
    }

    stats_.commands_issued += members.size();
    std::uint64_t span = 0;
    if (state->parent_span != 0) {
      if (telemetry::Telemetry* t = model_->telemetry()) {
        const SpanLabel label = span_label(message);
        span = t->span_start(label.name, label.actor, 0, state->parent_span);
      }
    }
    const double start_s =
        to_seconds(model_->engine().now() - state->run_start);
    for (const std::size_t j : members) {
      state->report.steps[j].start_s = start_s;
      state->report.steps[j].batched = members.size() > 1;
    }

    issue_command(
        step.client, std::move(message),
        [this, state, i, members, span](Result<proto::Response> r) {
          const Status s = response_to_status(r);
          if (span != 0)
            if (telemetry::Telemetry* t = model_->telemetry())
              t->span_end(span, s.ok(),
                          s.ok() ? std::string{} : s.error().message());
          const double end_s =
              to_seconds(model_->engine().now() - state->run_start);
          for (const std::size_t j : members) {
            state->report.steps[j].end_s = end_s;
            state->report.steps[j].ok = s.ok();
          }
          state->sched->slot_done(i);  // one window slot per dialogue
          if (s.ok()) {
            for (const std::size_t j : members) {
              state->succeeded.push_back(j);
              state->sched->release(j);
            }
          } else {
            if (state->first_error.ok()) state->first_error = s;
            if (state->best_effort) {
              // Keep going: dependents of a failed step still run, exactly
              // as sequential best-effort does.
              for (const std::size_t j : members) state->sched->release(j);
            } else {
              state->sched->abort();
            }
          }
          pump_dag(state);
        });
  }
  if (state->sched->finished()) finish_dag(state);
}

void GriphonController::finish_dag(const std::shared_ptr<RunState>& state) {
  if (state->done_called) return;
  state->done_called = true;
  Status s = state->first_error;
  if (s.ok() && state->sched->stuck() > 0)
    s = Status{ErrorCode::kInternal,
               "controller: dependency cycle in command train (" +
                   std::to_string(state->sched->stuck()) +
                   " steps unreachable)"};
  double total = 0.0;
  for (const DagStepRecord& rec : state->report.steps)
    total = std::max(total, rec.end_s);
  state->report.total_s = total;
  mark_critical_path(state->report);
  last_dag_report_ = state->report;
  std::sort(state->succeeded.begin(), state->succeeded.end());
  state->done(s, std::move(state->succeeded));
}

void GriphonController::rollback_steps(std::shared_ptr<StepList> steps,
                                       std::vector<std::size_t> succeeded,
                                       std::function<void()> done) {
  // Reverse completion order with reverse dependency edges: an undo may
  // only run once the undos of everything that depended on its forward
  // step are done (a cross-connect is removed before the port under it is
  // disabled). The sequential executor honors this by list order; the
  // pipelined ablation would not, so rollback always runs on the DAG
  // executor when any concurrency is enabled.
  auto undo =
      std::make_shared<StepList>(build_undo_steps(*steps, succeeded));
  const ExecMode mode = params_.exec_mode == ExecMode::kSequential
                            ? ExecMode::kSequential
                            : ExecMode::kDag;
  run_steps_as(mode, std::move(undo), /*best_effort=*/true,
               [done = std::move(done)](Status, std::vector<std::size_t>) {
                 done();
               },
               /*parent_span=*/0);
}

Status GriphonController::admit_optical_plan(const WavelengthPlan& plan,
                                             DataRate rate,
                                             std::uint64_t parent_span) {
  std::vector<dwdm::ReachModel::Segment> segments;
  segments.reserve(plan.segments.size());
  for (const auto& seg : plan.segments)
    segments.push_back(
        dwdm::ReachModel::Segment{seg.first_link, seg.last_link});
  const dwdm::ReachModel::Admission verdict = model_->reach().admit(
      model_->graph(), plan.path, segments, dwdm::profile_for(rate));
  if (telemetry::Telemetry* t = model_->telemetry()) {
    std::ostringstream detail;
    detail << "worst margin " << verdict.worst_margin_db << " dB across "
           << verdict.segment_margins_db.size() << " segment(s)";
    // Zero-duration event: the decision is a model lookup, not a probe
    // dialogue — that is the point.
    const SimTime now = model_->engine().now();
    t->span_record("optical_admission", "controller", 0, parent_span, now,
                   now, verdict.admitted, detail.str());
  }
  if (!verdict.admitted)
    return Status{ErrorCode::kUnreachable,
                  "controller: optical admission rejected route (worst "
                  "margin " +
                      std::to_string(verdict.worst_margin_db) + " dB)"};
  return Status::success();
}

// --------------------------------------------------------------------------
// Step construction
// --------------------------------------------------------------------------

StepList GriphonController::build_access_setup(
    const Connection& c, const WavelengthPlan& plan) const {
  StepList steps;
  auto* nte_client = &model_->nte_ems_client();
  auto* fxc_client = &model_->fxc_ems_client();

  // Customer NTE client ports at both premises.
  steps.push_back(Step{
      nte_client,
      proto::NtePort{c.src_site, static_cast<std::uint32_t>(c.src_nte_port),
                     true},
      proto::Message{proto::NtePort{
          c.src_site, static_cast<std::uint32_t>(c.src_nte_port), false}}});
  steps.push_back(Step{
      nte_client,
      proto::NtePort{c.dst_site, static_cast<std::uint32_t>(c.dst_nte_port),
                     true},
      proto::Message{proto::NtePort{
          c.dst_site, static_cast<std::uint32_t>(c.dst_nte_port), false}}});

  // FXC: steer the access channel to the chosen OT's client port. The NTE
  // port must be up before the cross-connect that steers it.
  auto fxc_steps = [&](NodeId pop, MuxponderId site, std::size_t nte_port,
                       TransponderId ot, std::size_t nte_step) {
    fxc::Fxc& f = model_->fxc_at(pop);
    const auto access = f.port_for(fxc::Wiring::Kind::kCustomerAccess,
                                   site.value(), nte_port);
    const auto otp = f.port_for(fxc::Wiring::Kind::kTransponderClient,
                                ot.value(), 0);
    assert(access && otp && "FXC wiring missing");
    steps.push_back(
        Step{fxc_client, proto::FxcConnect{f.id(), *access, *otp},
             proto::Message{proto::FxcDisconnect{f.id(), *access}},
             {nte_step}});
  };
  fxc_steps(c.src_pop, c.src_site, c.src_nte_port, plan.src_ot, 0);
  fxc_steps(c.dst_pop, c.dst_site, c.dst_nte_port, plan.dst_ot, 1);
  return steps;
}

StepList GriphonController::build_wavelength_setup(
    const Connection& c, const WavelengthPlan& plan,
    bool include_access) const {
  StepList steps;
  if (include_access) steps = build_access_setup(c, plan);
  auto* roadm = &model_->roadm_ems_client();
  const auto& path = plan.path;

  auto degree = [&](NodeId node, LinkId link) {
    const auto d = model_->roadm_at(node).degree_for(link);
    assert(d && "path link not on a ROADM degree");
    return static_cast<std::int32_t>(*d);
  };
  auto roadm_id = [&](NodeId node) {
    return model_->roadm_at(node).id();
  };

  const dwdm::ChannelIndex first_ch = plan.segments.front().channel;
  const dwdm::ChannelIndex last_ch = plan.segments.back().channel;

  // Dependency bookkeeping: `seg_cfg[s]` collects the ROADM-configuration
  // steps of transparent segment s (its power balancing waits for them);
  // `path_steps` collects every path-building step (activation waits for
  // all of them).
  std::vector<std::vector<std::size_t>> seg_cfg(plan.segments.size());
  std::vector<std::size_t> path_steps;

  // Tune endpoint transponders to their segment wavelengths.
  const std::size_t src_tune = steps.size();
  steps.push_back(Step{roadm, proto::OtTune{plan.src_ot, first_ch},
                       proto::Message{proto::OtSetState{
                           plan.src_ot, proto::OtSetState::Action::kReset}}});
  const std::size_t dst_tune = steps.size();
  steps.push_back(Step{roadm, proto::OtTune{plan.dst_ot, last_ch},
                       proto::Message{proto::OtSetState{
                           plan.dst_ot, proto::OtSetState::Action::kReset}}});
  path_steps.push_back(src_tune);
  path_steps.push_back(dst_tune);

  // Endpoint add/drop (colorless, non-directional ports). The transponder
  // must be tuned before the add/drop that references its wavelength.
  const NodeId src = path.nodes.front();
  const NodeId dst = path.nodes.back();
  seg_cfg.front().push_back(steps.size());
  path_steps.push_back(steps.size());
  steps.push_back(Step{
      roadm,
      proto::RoadmAddDrop{roadm_id(src), model_->roadm_port_of_ot(plan.src_ot),
                          degree(src, path.links.front()), first_ch, true},
      proto::Message{proto::RoadmAddDrop{
          roadm_id(src), model_->roadm_port_of_ot(plan.src_ot), 0, 0,
          false}},
      {src_tune}});
  seg_cfg.back().push_back(steps.size());
  path_steps.push_back(steps.size());
  steps.push_back(Step{
      roadm,
      proto::RoadmAddDrop{roadm_id(dst), model_->roadm_port_of_ot(plan.dst_ot),
                          degree(dst, path.links.back()), last_ch, true},
      proto::Message{proto::RoadmAddDrop{
          roadm_id(dst), model_->roadm_port_of_ot(plan.dst_ot), 0, 0,
          false}},
      {dst_tune}});

  // Regenerators at segment boundaries: two add/drop ports + engage. The
  // regen engages only after both of its add/drops are configured.
  for (std::size_t b = 0; b < plan.regens.size(); ++b) {
    const auto& seg_in = plan.segments[b];
    const auto& seg_out = plan.segments[b + 1];
    const NodeId site = path.nodes[seg_in.last_link + 1];
    const RegenId regen = plan.regens[b];
    const auto [up_port, down_port] = model_->roadm_ports_of_regen(regen);
    const std::size_t up_step = steps.size();
    seg_cfg[b].push_back(up_step);
    path_steps.push_back(up_step);
    steps.push_back(Step{
        roadm,
        proto::RoadmAddDrop{roadm_id(site), up_port,
                            degree(site, path.links[seg_in.last_link]),
                            seg_in.channel, true},
        proto::Message{
            proto::RoadmAddDrop{roadm_id(site), up_port, 0, 0, false}}});
    const std::size_t down_step = steps.size();
    seg_cfg[b + 1].push_back(down_step);
    path_steps.push_back(down_step);
    steps.push_back(Step{
        roadm,
        proto::RoadmAddDrop{roadm_id(site), down_port,
                            degree(site, path.links[seg_out.first_link]),
                            seg_out.channel, true},
        proto::Message{
            proto::RoadmAddDrop{roadm_id(site), down_port, 0, 0, false}}});
    // The engaged regen is the light source of the downstream segment.
    seg_cfg[b + 1].push_back(steps.size());
    path_steps.push_back(steps.size());
    steps.push_back(
        Step{roadm,
             proto::RegenEngage{regen, seg_in.channel, seg_out.channel, true},
             proto::Message{proto::RegenEngage{regen, seg_in.channel,
                                               seg_out.channel, false}},
             {up_step, down_step}});
  }

  // Express cross-connects at nodes interior to each transparent segment.
  for (std::size_t s = 0; s < plan.segments.size(); ++s) {
    const auto& seg = plan.segments[s];
    for (std::size_t j = seg.first_link; j < seg.last_link; ++j) {
      const NodeId node = path.nodes[j + 1];
      seg_cfg[s].push_back(steps.size());
      path_steps.push_back(steps.size());
      steps.push_back(Step{
          roadm,
          proto::RoadmExpress{roadm_id(node), seg.channel,
                              degree(node, path.links[j]),
                              degree(node, path.links[j + 1]), true},
          proto::Message{proto::RoadmExpress{
              roadm_id(node), seg.channel, degree(node, path.links[j]),
              degree(node, path.links[j + 1]), false}}});
    }
  }

  // Per-link power balancing + equalization (the per-hop optical task).
  // A segment balances once its ROADM configuration is in; segments
  // balance independently of each other.
  for (std::size_t s = 0; s < plan.segments.size(); ++s) {
    const auto& seg = plan.segments[s];
    for (std::size_t j = seg.first_link; j <= seg.last_link; ++j) {
      path_steps.push_back(steps.size());
      steps.push_back(Step{
          roadm, proto::PowerBalance{path.links[j], seg.channel},
          std::nullopt, seg_cfg[s]});
    }
  }

  // Light it up — only after the whole path is built and balanced.
  steps.push_back(
      Step{roadm,
           proto::OtSetState{plan.src_ot, proto::OtSetState::Action::kActivate},
           proto::Message{proto::OtSetState{
               plan.src_ot, proto::OtSetState::Action::kDeactivate}},
           path_steps});
  steps.push_back(
      Step{roadm,
           proto::OtSetState{plan.dst_ot, proto::OtSetState::Action::kActivate},
           proto::Message{proto::OtSetState{
               plan.dst_ot, proto::OtSetState::Action::kDeactivate}},
           path_steps});
  return steps;
}

StepList GriphonController::build_wavelength_teardown(
    const Connection& c, const WavelengthPlan& plan,
    bool include_access) const {
  StepList steps;
  auto* roadm = &model_->roadm_ems_client();
  const auto& path = plan.path;
  auto roadm_id = [&](NodeId node) { return model_->roadm_at(node).id(); };
  auto degree = [&](NodeId node, LinkId link) {
    const auto d = model_->roadm_at(node).degree_for(link);
    assert(d);
    return static_cast<std::int32_t>(*d);
  };

  // Stop the light first: everything else unconfigures only after both
  // endpoint transponders are dark.
  const std::size_t deact_src = steps.size();
  steps.push_back(Step{roadm,
                       proto::OtSetState{plan.src_ot,
                                         proto::OtSetState::Action::kDeactivate},
                       std::nullopt});
  const std::size_t deact_dst = steps.size();
  steps.push_back(Step{roadm,
                       proto::OtSetState{plan.dst_ot,
                                         proto::OtSetState::Action::kDeactivate},
                       std::nullopt});
  const std::vector<std::size_t> dark{deact_src, deact_dst};
  for (const auto& seg : plan.segments) {
    for (std::size_t j = seg.first_link; j < seg.last_link; ++j) {
      const NodeId node = path.nodes[j + 1];
      steps.push_back(Step{roadm,
                           proto::RoadmExpress{roadm_id(node), seg.channel,
                                               degree(node, path.links[j]),
                                               degree(node, path.links[j + 1]),
                                               false},
                           std::nullopt, dark});
    }
  }
  for (std::size_t b = 0; b < plan.regens.size(); ++b) {
    const auto& seg_in = plan.segments[b];
    const NodeId site = path.nodes[seg_in.last_link + 1];
    const RegenId regen = plan.regens[b];
    const auto [up_port, down_port] = model_->roadm_ports_of_regen(regen);
    // Disengage the regen before tearing its add/drop ports out from
    // under it.
    const std::size_t regen_release = steps.size();
    steps.push_back(Step{
        roadm, proto::RegenEngage{regen, 0, 0, false}, std::nullopt, dark});
    steps.push_back(
        Step{roadm, proto::RoadmAddDrop{roadm_id(site), up_port, 0, 0, false},
             std::nullopt, {regen_release}});
    steps.push_back(Step{
        roadm, proto::RoadmAddDrop{roadm_id(site), down_port, 0, 0, false},
        std::nullopt, {regen_release}});
  }
  const NodeId src = path.nodes.front();
  const NodeId dst = path.nodes.back();
  steps.push_back(Step{
      roadm,
      proto::RoadmAddDrop{roadm_id(src), model_->roadm_port_of_ot(plan.src_ot),
                          0, 0, false},
      std::nullopt, {deact_src}});
  steps.push_back(Step{
      roadm,
      proto::RoadmAddDrop{roadm_id(dst), model_->roadm_port_of_ot(plan.dst_ot),
                          0, 0, false},
      std::nullopt, {deact_dst}});

  if (include_access) {
    auto* fxc_client = &model_->fxc_ems_client();
    auto* nte_client = &model_->nte_ems_client();
    // The cross-connect unwinds after its side went dark; the NTE port
    // disables only after the cross-connect that steered it is gone.
    auto fxc_step = [&](NodeId pop, MuxponderId site, std::size_t nte_port,
                        std::size_t deact_step) {
      fxc::Fxc& f = model_->fxc_at(pop);
      const auto access = f.port_for(fxc::Wiring::Kind::kCustomerAccess,
                                     site.value(), nte_port);
      assert(access);
      steps.push_back(Step{fxc_client,
                           proto::FxcDisconnect{f.id(), *access},
                           std::nullopt, {deact_step}});
    };
    const std::size_t fxc_src = steps.size();
    fxc_step(c.src_pop, c.src_site, c.src_nte_port, deact_src);
    const std::size_t fxc_dst = steps.size();
    fxc_step(c.dst_pop, c.dst_site, c.dst_nte_port, deact_dst);
    steps.push_back(
        Step{nte_client,
             proto::NtePort{c.src_site,
                            static_cast<std::uint32_t>(c.src_nte_port), false},
             std::nullopt, {fxc_src}});
    steps.push_back(
        Step{nte_client,
             proto::NtePort{c.dst_site,
                            static_cast<std::uint32_t>(c.dst_nte_port), false},
             std::nullopt, {fxc_dst}});
  }
  return steps;
}

// --------------------------------------------------------------------------
// Reservations
// --------------------------------------------------------------------------

void GriphonController::reserve_plan(const WavelengthPlan& plan) {
  for (const auto& seg : plan.segments)
    for (std::size_t j = seg.first_link; j <= seg.last_link; ++j)
      inventory_.reserve_channel(plan.path.links[j], seg.channel);
  inventory_.reserve_ot(plan.src_ot);
  inventory_.reserve_ot(plan.dst_ot);
  for (const RegenId r : plan.regens) inventory_.reserve_regen(r);
}

void GriphonController::unreserve_plan(const WavelengthPlan& plan) {
  for (const auto& seg : plan.segments)
    for (std::size_t j = seg.first_link; j <= seg.last_link; ++j)
      inventory_.release_channel(plan.path.links[j], seg.channel);
  inventory_.release_ot(plan.src_ot);
  inventory_.release_ot(plan.dst_ot);
  for (const RegenId r : plan.regens) inventory_.release_regen(r);
}

// --------------------------------------------------------------------------
// Setup
// --------------------------------------------------------------------------

void GriphonController::request_connection(const ConnectionRequest& request,
                                           SetupCallback cb) {
  const CustomerSite* src = model_->site_by_nte(request.src_site);
  const CustomerSite* dst = model_->site_by_nte(request.dst_site);
  if (src == nullptr || dst == nullptr) {
    cb(Error{ErrorCode::kNotFound, "controller: unknown customer site"});
    return;
  }
  if (src->customer != request.customer || dst->customer != request.customer) {
    cb(Error{ErrorCode::kPermissionDenied,
             "controller: site belongs to another customer"});
    return;
  }
  if (src->core_pop == dst->core_pop) {
    cb(Error{ErrorCode::kInvalidArgument,
             "controller: sites share a core PoP (no backbone segment)"});
    return;
  }
  if (request.rate > rates::k40G) {
    cb(Error{ErrorCode::kInvalidArgument,
             "controller: rate above the 40G service ceiling"});
    return;
  }
  if (request.rate < rates::k1G) {
    // The service-evolution model (paper Fig. 2): "below 1 Gbps is
    // transported via the IP layer as EVCs" — not a GRIPhoN circuit.
    cb(Error{ErrorCode::kInvalidArgument,
             "controller: sub-1G demand belongs to the IP layer (EVC), not "
             "the circuit BoD service"});
    return;
  }

  Connection c;
  c.id = ids_.next();
  c.customer = request.customer;
  c.src_site = request.src_site;
  c.dst_site = request.dst_site;
  c.src_pop = src->core_pop;
  c.dst_pop = dst->core_pop;
  c.rate = request.rate;
  c.protection = request.protection;
  c.tier = request.tier;
  c.kind = request.rate >= rates::k10G ? ConnectionKind::kWavelength
                                       : ConnectionKind::kSubWavelength;
  c.requested_at = model_->engine().now();
  c.state = ConnectionState::kPending;

  auto sp = pick_free_nte_port(c.src_site);
  if (!sp.ok()) {
    cb(sp.error());
    return;
  }
  c.src_nte_port = sp.value();
  auto dp = pick_free_nte_port(c.dst_site);
  if (!dp.ok()) {
    release_nte_port(c.src_site, c.src_nte_port);
    cb(dp.error());
    return;
  }
  c.dst_nte_port = dp.value();

  const ConnectionId id = c.id;
  connections_[id] = std::move(c);
  if (telemetry::Telemetry* t = model_->telemetry()) {
    connections_[id].setup_span = t->span_start(
        "connection_setup", "controller", telemetry_tag(id), 0);
    t->metrics()
        .counter("griphon_controller_requests_total",
                 "Connection requests accepted for orchestration")
        ->inc();
    t->event(telemetry::Severity::kInfo, "lifecycle", "controller",
             "connection " + std::to_string(id.value()) + " requested",
             telemetry_tag(id));
  }
  trace(sim::TraceLevel::kInfo, "request",
        "connection " + std::to_string(id.value()) + " rate " +
            std::to_string(request.rate.in_gbps()) + "G");
  if (connections_[id].kind == ConnectionKind::kWavelength)
    setup_wavelength(id, std::move(cb));
  else
    setup_subwavelength(id, std::move(cb));
}

void GriphonController::finish_setup(ConnectionId id, Status status,
                                     SetupCallback cb) {
  Connection* c = find_conn(id);
  if (c == nullptr) {
    cb(Error{ErrorCode::kNotFound, "controller: connection vanished"});
    return;
  }
  if (telemetry::Telemetry* t = model_->telemetry()) {
    t->span_end(c->setup_span, status.ok(),
                status.ok() ? std::string{} : status.error().message());
    c->setup_span = 0;
    auto& m = t->metrics();
    const char* name = status.ok() ? "griphon_controller_setups_ok_total"
                                   : "griphon_controller_setups_failed_total";
    const char* help = status.ok()
                           ? "Connection setups completed"
                           : "Connection setups failed and rolled back";
    m.counter(name, help)->inc();
    // Per-customer series: customer isolation must be observable.
    m.counter(name, help,
              {{"customer", std::to_string(c->customer.value())}})
        ->inc();
    if (status.ok())
      m.histogram("griphon_controller_setup_seconds",
                  "Request to traffic-flowing, end to end")
          ->observe(to_seconds(model_->engine().now() - c->requested_at));
    if (status.ok())
      t->event(telemetry::Severity::kInfo, "lifecycle", "controller",
               "connection " + std::to_string(id.value()) + " active",
               telemetry_tag(id));
    else
      t->event(telemetry::Severity::kWarn, "lifecycle", "controller",
               "connection " + std::to_string(id.value()) +
                   " setup failed: " + status.error().message(),
               telemetry_tag(id));
  }
  if (status.ok()) {
    c->state = ConnectionState::kActive;
    c->active_at = model_->engine().now();
    c->setup_duration = c->active_at - c->requested_at;
    ++stats_.setups_ok;
    trace(sim::TraceLevel::kInfo, "setup-done",
          "connection " + std::to_string(id.value()) + " in " +
              std::to_string(to_seconds(c->setup_duration)) + "s");
    // A fiber may have died *while* the command train was running; the
    // commands themselves still succeed (devices accept configuration on a
    // dark degree). Treat the connection as failed-at-birth and let the
    // normal restoration machinery take over.
    if (c->kind == ConnectionKind::kWavelength &&
        plan_uses_any(c->plan, failures_.believed_failed())) {
      const ConnectionId cid = id;
      mark_failed(*c);
      if (c->protection == ProtectionMode::kRestorable &&
          params_.auto_restore)
        enqueue_restoration(cid);
    }
    cb(id);
  } else {
    c->state = ConnectionState::kSetupFailed;
    release_nte_port(c->src_site, c->src_nte_port);
    release_nte_port(c->dst_site, c->dst_nte_port);
    ++stats_.setups_failed;
    trace(sim::TraceLevel::kWarn, "setup-failed", status.error().message());
    cb(status.error());
  }
}

void GriphonController::setup_wavelength(ConnectionId id, SetupCallback cb) {
  Connection& c = conn(id);
  c.state = ConnectionState::kSettingUp;
  std::uint64_t think_span = 0;
  if (telemetry::Telemetry* t = model_->telemetry())
    think_span =
        t->span_start("path_computation", "controller", 0, c.setup_span);
  const SimTime think = params_.path_computation.sample(model_->engine().rng());
  model_->engine().schedule(think, [this, id, think_span,
                                    cb = std::move(cb)]() mutable {
    Connection* c = find_conn(id);
    if (c == nullptr) return;
    auto plan = rwa_.plan(c->src_pop, c->dst_pop, c->rate);
    if (telemetry::Telemetry* t = model_->telemetry())
      t->span_end(think_span, plan.ok());
    if (!plan.ok()) {
      finish_setup(id, plan.error(), std::move(cb));
      return;
    }
    c->plan = std::move(plan).value();
    // Probe-free optical admission: verify the plan's OSNR margins before
    // the first EMS command goes out, instead of probing mid-train.
    if (const Status adm =
            admit_optical_plan(c->plan, c->rate, c->setup_span);
        !adm.ok()) {
      finish_setup(id, adm, std::move(cb));
      return;
    }
    reserve_plan(c->plan);
    auto steps = std::make_shared<StepList>(
        build_wavelength_setup(*c, c->plan, /*include_access=*/true));
    const std::uint64_t setup_span = c->setup_span;
    run_steps(steps, /*best_effort=*/false,
              [this, id, steps, cb = std::move(cb)](
                  Status status, std::vector<std::size_t> succeeded) mutable {
                Connection* c = find_conn(id);
                if (c == nullptr) return;
                unreserve_plan(c->plan);
                if (!status.ok()) {
                  rollback_steps(steps, std::move(succeeded),
                                 [this, id, status, cb = std::move(cb)]() mutable {
                                   finish_setup(id, status, std::move(cb));
                                 });
                  return;
                }
                if (c->protection == ProtectionMode::kOnePlusOne) {
                  // Provision the dedicated protection leg before declaring
                  // the service up: 1+1 is sold as protected from second one.
                  Exclusions avoid;
                  for (const LinkId l : c->plan.path.links)
                    for (const LinkId sibling :
                         model_->graph().srlg_siblings(l))
                      avoid.links.insert(sibling);
                  for (std::size_t i = 1; i + 1 < c->plan.path.nodes.size();
                       ++i)
                    avoid.nodes.insert(c->plan.path.nodes[i]);
                  auto standby =
                      rwa_.plan(c->src_pop, c->dst_pop, c->rate, avoid);
                  Status standby_status = standby.ok()
                                              ? Status::success()
                                              : Status{standby.error()};
                  if (standby_status.ok())
                    standby_status = admit_optical_plan(
                        standby.value(), c->rate, c->setup_span);
                  if (!standby_status.ok()) {
                    // No disjoint admissible capacity: fail the request.
                    auto teardown = std::make_shared<StepList>(
                        build_wavelength_teardown(*c, c->plan, true));
                    run_steps(teardown, true,
                              [this, id, err = standby_status.error(),
                               cb = std::move(cb)](
                                  Status, std::vector<std::size_t>) mutable {
                                finish_setup(id, err, std::move(cb));
                              });
                    return;
                  }
                  c->standby = std::move(standby).value();
                  reserve_plan(*c->standby);
                  auto steps2 = std::make_shared<StepList>(
                      build_wavelength_setup(*c, *c->standby,
                                             /*include_access=*/false));
                  run_steps(steps2, false,
                            [this, id, steps2, cb = std::move(cb)](
                                Status s2,
                                std::vector<std::size_t> ok2) mutable {
                              Connection* c = find_conn(id);
                              if (c == nullptr) return;
                              unreserve_plan(*c->standby);
                              if (!s2.ok()) {
                                rollback_steps(
                                    steps2, std::move(ok2),
                                    [this, id, s2, cb = std::move(cb)]() mutable {
                                      Connection* c = find_conn(id);
                                      if (c == nullptr) return;
                                      c->standby.reset();
                                      auto teardown =
                                          std::make_shared<StepList>(
                                              build_wavelength_teardown(
                                                  *c, c->plan, true));
                                      run_steps(
                                          teardown, true,
                                          [this, id, s2, cb = std::move(cb)](
                                              Status,
                                              std::vector<std::size_t>) mutable {
                                            finish_setup(id, s2,
                                                         std::move(cb));
                                          });
                                    });
                                return;
                              }
                              finish_setup(id, Status::success(),
                                           std::move(cb));
                            },
                            c->setup_span);
                  return;
                }
                finish_setup(id, Status::success(), std::move(cb));
              },
              setup_span);
  });
}

void GriphonController::setup_subwavelength(ConnectionId id,
                                            SetupCallback cb) {
  Connection& c = conn(id);
  c.state = ConnectionState::kSettingUp;
  send_otn_create(id, std::move(cb), /*allow_groom=*/true);
}

void GriphonController::send_otn_create(ConnectionId id, SetupCallback cb,
                                        bool allow_groom) {
  Connection* c0 = find_conn(id);
  if (c0 == nullptr) return;
  // Phase 1: ask the OTN switch EMS to route and cross-connect the ODU
  // circuit through the OTN layer (shared-mesh protected when requested).
  proto::OtnOp create;
  create.op = proto::OtnOp::Op::kCreate;
  create.customer = c0->customer;
  create.src = c0->src_pop;
  create.dst = c0->dst_pop;
  create.rate_bps = c0->rate.in_bps();
  create.protect = c0->protection != ProtectionMode::kUnprotected;
  ++stats_.commands_issued;
  std::uint64_t span = 0;
  if (telemetry::Telemetry* t = model_->telemetry())
    span = t->span_start("otn.op", "otn-ems", 0, c0->setup_span);
  issue_command(
      &model_->otn_ems_client(), proto::Message{create},
      [this, id, allow_groom, span,
       cb = std::move(cb)](Result<proto::Response> r) mutable {
        const Status s = response_to_status(r);
        if (telemetry::Telemetry* t = model_->telemetry())
          t->span_end(span, s.ok(),
                      s.ok() ? std::string{} : s.error().message());
        if (!s.ok()) {
          Connection* c = find_conn(id);
          if (s.error().code() == ErrorCode::kUnreachable && allow_groom &&
              c != nullptr) {
            // The OTN layer is out of tributary capacity on this relation:
            // groom a fresh OTU carrier onto the DWDM layer, then retry.
            trace(sim::TraceLevel::kInfo, "otn-groom",
                  "no OTN capacity; provisioning a new carrier");
            groom_new_carrier(
                c->src_pop, c->dst_pop,
                [this, id, cb = std::move(cb)](Status gs) mutable {
                  if (!gs.ok()) {
                    finish_setup(id, gs, std::move(cb));
                    return;
                  }
                  send_otn_create(id, std::move(cb), /*allow_groom=*/false);
                });
            return;
          }
          finish_setup(id, s, std::move(cb));
          return;
        }
        Connection* c = find_conn(id);
        if (c == nullptr) return;
        c->odu = OduCircuitId{r.value().aux};
        odu_to_connection_[c->odu] = id;
        setup_subwavelength_access(id, std::move(cb));
      });
}

void GriphonController::setup_subwavelength_access(ConnectionId id,
                                                   SetupCallback cb) {
  Connection* c = find_conn(id);
  if (c == nullptr) return;
  const auto& circuit = model_->otn().circuit(c->odu);

  // Phase 2: access plumbing — NTE ports + FXC steering of the access
  // channels onto the OTN switch client ports.
  auto steps = std::make_shared<StepList>();
  auto* nte_client = &model_->nte_ems_client();
  auto* fxc_client = &model_->fxc_ems_client();
  steps->push_back(
      Step{nte_client,
           proto::NtePort{c->src_site,
                          static_cast<std::uint32_t>(c->src_nte_port), true},
           proto::Message{proto::NtePort{
               c->src_site, static_cast<std::uint32_t>(c->src_nte_port),
               false}}});
  steps->push_back(
      Step{nte_client,
           proto::NtePort{c->dst_site,
                          static_cast<std::uint32_t>(c->dst_nte_port), true},
           proto::Message{proto::NtePort{
               c->dst_site, static_cast<std::uint32_t>(c->dst_nte_port),
               false}}});
  auto fxc_step = [&](NodeId pop, MuxponderId site, std::size_t nte_port,
                      std::size_t otn_port, std::size_t nte_step) {
    fxc::Fxc& f = model_->fxc_at(pop);
    const auto access = f.port_for(fxc::Wiring::Kind::kCustomerAccess,
                                   site.value(), nte_port);
    const auto sw = model_->otn().switch_at(pop);
    const auto otnp = f.port_for(fxc::Wiring::Kind::kOtnClientPort,
                                 sw->id().value(), otn_port);
    assert(access && otnp && "FXC wiring for OTN missing");
    steps->push_back(
        Step{fxc_client, proto::FxcConnect{f.id(), *access, *otnp},
             proto::Message{proto::FxcDisconnect{f.id(), *access}},
             {nte_step}});
  };
  fxc_step(c->src_pop, c->src_site, c->src_nte_port, circuit.src_port, 0);
  fxc_step(c->dst_pop, c->dst_site, c->dst_nte_port, circuit.dst_port, 1);

  const std::uint64_t setup_span = c->setup_span;
  run_steps(steps, false,
            [this, id, steps, cb = std::move(cb)](
                Status status, std::vector<std::size_t> succeeded) mutable {
              if (status.ok()) {
                finish_setup(id, Status::success(), std::move(cb));
                return;
              }
              rollback_steps(
                  steps, std::move(succeeded),
                  [this, id, status, cb = std::move(cb)]() mutable {
                    Connection* c = find_conn(id);
                    if (c != nullptr && c->odu.valid()) {
                      proto::OtnOp release;
                      release.op = proto::OtnOp::Op::kRelease;
                      release.circuit = c->odu;
                      ++stats_.commands_issued;
                      issue_command(&model_->otn_ems_client(),
                                    proto::Message{release},
                                    [](Result<proto::Response>) {});
                      odu_to_connection_.erase(c->odu);
                      c->odu = OduCircuitId{};
                    }
                    finish_setup(id, status, std::move(cb));
                  });
            },
            setup_span);
}

void GriphonController::groom_new_carrier(NodeId a, NodeId b,
                                          DoneCallback cb) {
  // A carrier is a plain wavelength whose endpoints feed the OTN switches'
  // line ports; it consumes spectrum, two pool OTs as line optics, and any
  // regens the route needs — exactly what it costs the carrier.
  auto plan = rwa_.plan(a, b, rates::k10G);
  if (!plan.ok()) {
    cb(plan.error());
    return;
  }
  const WavelengthPlan wplan = std::move(plan).value();
  if (const Status adm = admit_optical_plan(wplan, rates::k10G, 0);
      !adm.ok()) {
    cb(adm);
    return;
  }
  reserve_plan(wplan);
  // No customer access is involved; reuse the wavelength command builder
  // with a synthetic connection record for naming only.
  Connection synthetic;
  synthetic.src_pop = a;
  synthetic.dst_pop = b;
  auto steps = std::make_shared<StepList>(
      build_wavelength_setup(synthetic, wplan, /*include_access=*/false));
  run_steps(steps, false,
            [this, a, b, wplan, steps, cb = std::move(cb)](
                Status status, std::vector<std::size_t> succeeded) mutable {
              unreserve_plan(wplan);
              if (!status.ok()) {
                rollback_steps(steps, std::move(succeeded),
                               [status, cb = std::move(cb)]() mutable {
                                 cb(status);
                               });
                return;
              }
              auto carrier = model_->add_otn_carrier(
                  a, b, rates::k10G, wplan.path.links);
              if (!carrier.ok()) {
                cb(carrier.error());
                return;
              }
              ++carriers_groomed_;
              groomed_plans_[carrier.value()] = wplan;
              trace(sim::TraceLevel::kInfo, "carrier-groomed",
                    "new OTU carrier " +
                        std::to_string(carrier.value().value()));
              cb(Status::success());
            });
}

void GriphonController::decommission_idle_carriers(DoneCallback cb) {
  std::vector<CarrierId> idle;
  for (const auto& [carrier_id, plan] : groomed_plans_) {
    const auto& carrier = model_->otn().carrier(carrier_id);
    if (carrier.retired()) continue;
    if (carrier.allocated_slots() == 0 && carrier.shared_reserved_slots() == 0)
      idle.push_back(carrier_id);
  }
  if (idle.empty()) {
    cb(Status::success());
    return;
  }
  auto remaining = std::make_shared<std::size_t>(idle.size());
  for (const CarrierId carrier_id : idle) {
    // Retire first so nothing new lands while the wavelength comes down.
    if (const Status s = model_->otn().retire_carrier(carrier_id); !s.ok()) {
      if (--*remaining == 0) cb(Status::success());
      continue;
    }
    const WavelengthPlan plan = groomed_plans_.at(carrier_id);
    groomed_plans_.erase(carrier_id);
    Connection synthetic;
    auto steps = std::make_shared<StepList>(
        build_wavelength_teardown(synthetic, plan, /*include_access=*/false));
    run_steps(steps, /*best_effort=*/true,
              [this, carrier_id, remaining, cb](Status,
                                                std::vector<std::size_t>) {
                trace(sim::TraceLevel::kInfo, "carrier-decommissioned",
                      "OTU carrier " + std::to_string(carrier_id.value()));
                kick_restoration_backlog();
                if (--*remaining == 0) cb(Status::success());
              });
  }
}

// --------------------------------------------------------------------------
// Release
// --------------------------------------------------------------------------

void GriphonController::release_connection(ConnectionId id, DoneCallback cb) {
  Connection* c = find_conn(id);
  if (c == nullptr) {
    cb(Status{ErrorCode::kNotFound, "controller: unknown connection"});
    return;
  }
  if (c->state == ConnectionState::kReleased ||
      c->state == ConnectionState::kTearingDown) {
    cb(Status{ErrorCode::kConflict, "controller: already releasing"});
    return;
  }
  if (c->state == ConnectionState::kRestoring ||
      c->state == ConnectionState::kRolling ||
      c->state == ConnectionState::kSettingUp) {
    // The orchestration FSM holds partially-built state; let it finish.
    cb(Status{ErrorCode::kBusy,
              "controller: connection busy (setup/restore/roll in flight)"});
    return;
  }
  c->state = ConnectionState::kTearingDown;
  // A backlogged (kFailed) connection can be released; drop its retry
  // entry so no backoff timer resurrects it mid-teardown.
  if (restore_backlog_.erase(id) != 0) update_restoration_gauges();
  if (telemetry::Telemetry* t = model_->telemetry())
    c->op_span =
        t->span_start("connection_release", "controller", telemetry_tag(id),
                      0);

  auto finish = [this, id, cb](Status status) {
    Connection* c = find_conn(id);
    if (c == nullptr) return;
    release_nte_port(c->src_site, c->src_nte_port);
    release_nte_port(c->dst_site, c->dst_nte_port);
    c->state = ConnectionState::kReleased;
    ++stats_.releases;
    if (telemetry::Telemetry* t = model_->telemetry()) {
      t->span_end(c->op_span, status.ok());
      c->op_span = 0;
      auto& m = t->metrics();
      m.counter("griphon_controller_releases_total", "Connections released")
          ->inc();
      m.counter("griphon_controller_releases_total", "Connections released",
                {{"customer", std::to_string(c->customer.value())}})
          ->inc();
      t->event(telemetry::Severity::kInfo, "lifecycle", "controller",
               "connection " + std::to_string(id.value()) + " released",
               telemetry_tag(id));
    }
    trace(sim::TraceLevel::kInfo, "released",
          "connection " + std::to_string(id.value()));
    // The teardown freed channels and devices — capacity a backlogged
    // restoration may have been starving for.
    kick_restoration_backlog();
    cb(status);
  };

  if (c->kind == ConnectionKind::kWavelength) {
    auto steps = std::make_shared<StepList>(
        build_wavelength_teardown(*c, c->plan, /*include_access=*/true));
    if (c->standby) {
      append_steps(*steps, build_wavelength_teardown(*c, *c->standby, false));
    }
    run_steps(steps, /*best_effort=*/true,
              [finish](Status status, std::vector<std::size_t>) {
                finish(status);
              },
              c->op_span);
  } else {
    auto steps = std::make_shared<StepList>();
    auto* fxc_client = &model_->fxc_ems_client();
    auto* nte_client = &model_->nte_ems_client();
    auto fxc_step = [&](NodeId pop, MuxponderId site, std::size_t nte_port) {
      fxc::Fxc& f = model_->fxc_at(pop);
      const auto access = f.port_for(fxc::Wiring::Kind::kCustomerAccess,
                                     site.value(), nte_port);
      assert(access);
      steps->push_back(Step{fxc_client,
                            proto::FxcDisconnect{f.id(), *access},
                            std::nullopt});
    };
    fxc_step(c->src_pop, c->src_site, c->src_nte_port);
    fxc_step(c->dst_pop, c->dst_site, c->dst_nte_port);
    steps->push_back(Step{
        nte_client,
        proto::NtePort{c->src_site,
                       static_cast<std::uint32_t>(c->src_nte_port), false},
        std::nullopt});
    steps->push_back(Step{
        nte_client,
        proto::NtePort{c->dst_site,
                       static_cast<std::uint32_t>(c->dst_nte_port), false},
        std::nullopt});
    proto::OtnOp release;
    release.op = proto::OtnOp::Op::kRelease;
    release.circuit = c->odu;
    steps->push_back(Step{&model_->otn_ems_client(), release, std::nullopt});
    const OduCircuitId odu = c->odu;
    run_steps(steps, true,
              [this, odu, finish](Status status, std::vector<std::size_t>) {
                odu_to_connection_.erase(odu);
                finish(status);
              },
              c->op_span);
  }
}

// --------------------------------------------------------------------------
// Failure handling
// --------------------------------------------------------------------------

void GriphonController::handle_alarm_frame(const proto::Frame& frame) {
  // Keep the failure manager's sink in lock-step with the model's (the
  // sink may be attached after construction); a pointer store, idempotent.
  failures_.set_telemetry(model_->telemetry());
  const auto* ev = std::get_if<proto::AlarmEvent>(&frame.message);
  if (ev == nullptr) return;
  if (ev->alarm.type == AlarmType::kEmsRestart) {
    // The EMS lost its command queues and response cache in the crash;
    // device state may have diverged from the inventory. Audit once the
    // control plane quiets down.
    trace(sim::TraceLevel::kWarn, "ems-restart",
          ev->alarm.source + ": scheduling reconciliation audit");
    schedule_resync();
    return;
  }
  failures_.ingest(ev->alarm);
}

void GriphonController::mark_failed(Connection& c) {
  if (c.state == ConnectionState::kFailed ||
      c.state == ConnectionState::kRestoring)
    return;
  c.state = ConnectionState::kFailed;
  c.outage_started_at = model_->engine().now();
  trace(sim::TraceLevel::kWarn, "outage",
        "connection " + std::to_string(c.id.value()));
  if (telemetry::Telemetry* t = model_->telemetry())
    t->event(telemetry::Severity::kWarn, "lifecycle", "controller",
             "connection " + std::to_string(c.id.value()) +
                 " failed (outage started)",
             telemetry_tag(c.id));
}

void GriphonController::mark_recovered(Connection& c) {
  if (c.state != ConnectionState::kFailed &&
      c.state != ConnectionState::kRestoring)
    return;
  c.total_outage += model_->engine().now() - c.outage_started_at;
  c.state = ConnectionState::kActive;
  // Service is back — retire the retry-backlog entry (if any) so a stale
  // backoff timer cannot relaunch a restoration of a healthy connection.
  if (restore_backlog_.erase(c.id) != 0) update_restoration_gauges();
  trace(sim::TraceLevel::kInfo, "recovered",
        "connection " + std::to_string(c.id.value()) + " outage " +
            std::to_string(to_seconds(c.total_outage)) + "s total");
  if (telemetry::Telemetry* t = model_->telemetry())
    t->event(telemetry::Severity::kInfo, "lifecycle", "controller",
             "connection " + std::to_string(c.id.value()) + " recovered (" +
                 std::to_string(to_seconds(c.total_outage)) +
                 "s outage total)",
             telemetry_tag(c.id));
}

void GriphonController::on_links_failed(
    const FailureManager::FailureEvent& event) {
  const std::vector<LinkId>& links = event.links;
  if (event.storm && !storm_active_) {
    // Degraded mode: restoration demand just exceeded what serial handling
    // was designed for. The flag holds until the pipeline drains; reopt
    // campaigns stand down while it is up.
    storm_active_ = true;
    trace(sim::TraceLevel::kWarn, "storm-start",
          std::to_string(links.size()) + " link(s) across " +
              std::to_string(event.conduits) + " conduit(s)");
    if (telemetry::Telemetry* t = model_->telemetry()) {
      t->metrics()
          .counter("griphon_restoration_storms_total",
                   "Correlated failure storms entering the restoration "
                   "pipeline")
          ->inc();
      t->event(telemetry::Severity::kWarn, "restoration", "controller",
               "restoration storm: " + std::to_string(links.size()) +
                   " link(s) across " + std::to_string(event.conduits) +
                   " conduit(s)");
    }
  }
  const std::set<LinkId> failed(links.begin(), links.end());
  for (auto& [id, c] : connections_) {
    if (!c.is_up() && c.state != ConnectionState::kSettingUp) continue;
    if (c.kind == ConnectionKind::kWavelength) {
      const WavelengthPlan& active =
          (c.traffic_on_standby && c.standby) ? *c.standby : c.plan;
      if (!plan_uses_any(active, failed)) continue;
      const bool mid_setup = c.state == ConnectionState::kSettingUp;
      mark_failed(c);
      if (mid_setup) continue;  // finish_setup re-checks and restores
      if (c.protection == ProtectionMode::kOnePlusOne && c.standby) {
        // Tail-end switch to the other leg if it survives.
        const WavelengthPlan& other =
            c.traffic_on_standby ? c.plan : *c.standby;
        const auto& believed = failures_.believed_failed();
        const bool other_ok =
            !plan_uses_any(other, believed);
        if (other_ok) {
          const ConnectionId cid = id;
          model_->engine().schedule(params_.roll_hit, [this, cid]() {
            Connection* c = find_conn(cid);
            if (c == nullptr || c->state != ConnectionState::kFailed) return;
            c->traffic_on_standby = !c->traffic_on_standby;
            ++c->restorations;
            mark_recovered(*c);
            trace(sim::TraceLevel::kInfo, "1+1-switch",
                  "connection " + std::to_string(cid.value()));
          });
        }
      } else if (c.protection == ProtectionMode::kRestorable &&
                 params_.auto_restore) {
        enqueue_restoration(id);
      }
    } else {
      // Sub-wavelength: the OTN layer knows; mirror its state. Mesh
      // restoration (if protected) reports back through the restorer.
      if (!c.odu.valid()) continue;
      const auto& circuit = model_->otn().circuit(c.odu);
      if (circuit.state == otn::OduCircuit::State::kFailed) mark_failed(c);
    }
  }
  if (topology_observer_) topology_observer_(links, /*failed=*/true);
  // A storm with no restorable victims drains immediately.
  maybe_clear_storm();
  update_restoration_gauges();
}

void GriphonController::on_links_repaired(const std::vector<LinkId>& links) {
  const std::set<LinkId>& believed = failures_.believed_failed();
  (void)links;
  for (auto& [id, c] : connections_) {
    if (c.state != ConnectionState::kFailed) continue;
    if (c.kind == ConnectionKind::kWavelength) {
      const WavelengthPlan& active =
          (c.traffic_on_standby && c.standby) ? *c.standby : c.plan;
      if (!plan_uses_any(active, believed)) {
        if (c.deprovisioned) {
          // A failed restoration attempt already released this path's
          // devices: light alone is not service; re-provision now.
          if (c.protection == ProtectionMode::kRestorable &&
              params_.auto_restore)
            enqueue_restoration(id);
        } else {
          // Light returns on the repaired fiber; devices never
          // deconfigured.
          mark_recovered(c);
        }
      } else if (c.protection == ProtectionMode::kOnePlusOne && c.standby) {
        // The active leg is still dark but the other one just came back:
        // tail-end switch onto it.
        const WavelengthPlan& other =
            c.traffic_on_standby ? c.plan : *c.standby;
        if (!plan_uses_any(other, believed)) {
          const ConnectionId cid = id;
          model_->engine().schedule(params_.roll_hit, [this, cid]() {
            Connection* cc = find_conn(cid);
            if (cc == nullptr || cc->state != ConnectionState::kFailed)
              return;
            cc->traffic_on_standby = !cc->traffic_on_standby;
            mark_recovered(*cc);
            trace(sim::TraceLevel::kInfo, "1+1-switch-back",
                  "connection " + std::to_string(cid.value()));
          });
        }
      }
    } else if (c.odu.valid()) {
      const auto& circuit = model_->otn().circuit(c.odu);
      if (circuit.state == otn::OduCircuit::State::kActive ||
          circuit.state == otn::OduCircuit::State::kOnBackup)
        mark_recovered(c);
    }
  }
  // Repair is the strongest re-arm signal the backlog gets: dormant
  // entries wake and the backoff clock restarts (the world changed).
  kick_restoration_backlog(/*reset_attempts=*/true);
  if (topology_observer_) topology_observer_(links, /*failed=*/false);
}

void GriphonController::enqueue_restoration(ConnectionId id) {
  if (std::find(restore_queue_.begin(), restore_queue_.end(), id) !=
      restore_queue_.end())
    return;
  restore_queue_.push_back(id);
  // Gold before silver before bronze; FIFO within a tier (stable sort).
  std::stable_sort(restore_queue_.begin(), restore_queue_.end(),
                   [this](ConnectionId a, ConnectionId b) {
                     const Connection* ca = find_conn(a);
                     const Connection* cb = find_conn(b);
                     if (ca == nullptr || cb == nullptr) return false;
                     return static_cast<int>(ca->tier) <
                            static_cast<int>(cb->tier);
                   });
  // Defer the dispatch one event so that a burst of failures (one cut,
  // many connections) is fully enqueued — and therefore fully sorted —
  // before the first restoration is picked.
  model_->engine().schedule(SimTime{}, [this]() { pump_restorations(); });
}

void GriphonController::pump_restorations() {
  // Wavelength restoration trains (include_access=false) are dominated by
  // roadm-ems dialogues: OT tuning, add/drop, regens, power balancing.
  // Admission is gated on that domain — with one dominant domain the
  // effective parallelism is min(max_concurrent, per_domain_inflight).
  static const std::string kDomain = "roadm-ems";
  while (restorations_in_flight_ < params_.restoration.max_concurrent &&
         !restore_queue_.empty()) {
    const ConnectionId id = restore_queue_.front();
    Connection* c = find_conn(id);
    if (c == nullptr || c->state != ConnectionState::kFailed) {
      restore_queue_.erase(restore_queue_.begin());
      continue;
    }
    if (ems_health_.state(kDomain) == EmsHealthTracker::BreakerState::kOpen) {
      // The domain's breaker is open: nothing restores until it heals.
      // Send the head to the backlog (bounded backoff, observable) rather
      // than spinning or burning the half-open probe slot.
      restore_queue_.erase(restore_queue_.begin());
      backlog_restoration(id, "restoration shed: " + kDomain +
                                  " breaker open");
      continue;
    }
    if (restoration_domain_inflight_[kDomain] >=
        params_.restoration.per_domain_inflight)
      break;  // a landing restoration re-pumps
    restore_queue_.erase(restore_queue_.begin());
    if (restore_backlog_.contains(id)) {
      ++stats_.restorations_retried;
      if (telemetry::Telemetry* t = model_->telemetry())
        t->metrics()
            .counter("griphon_restoration_retries_total",
                     "Backlogged restorations relaunched")
            ->inc();
    }
    ++restorations_in_flight_;
    ++restoration_domain_inflight_[kDomain];
    update_restoration_gauges();
    restore_wavelength(id, [this]() {
      --restorations_in_flight_;
      --restoration_domain_inflight_[kDomain];
      // Deferred one event: restore_wavelength's early exits call done
      // synchronously, and a re-entrant pump inside the launch loop would
      // act on half-updated counters.
      model_->engine().schedule(SimTime{}, [this]() { pump_restorations(); });
    });
  }
  maybe_clear_storm();
  update_restoration_gauges();
}

void GriphonController::backlog_restoration(ConnectionId id,
                                            const std::string& why) {
  Connection* c = find_conn(id);
  if (c == nullptr || c->protection != ProtectionMode::kRestorable ||
      !params_.auto_restore)
    return;
  BacklogEntry& e = restore_backlog_[id];
  ++e.attempts;
  const std::uint64_t gen = ++e.generation;
  if (e.attempts > params_.restoration.max_timed_retries) {
    // Timed retries exhausted: go dormant. Only an external event — a
    // repair, a capacity-freeing teardown or roll — re-arms this entry,
    // so a permanently unroutable connection cannot keep the event loop
    // (or a drain-to-idle test) alive forever.
    e.dormant = true;
    trace(sim::TraceLevel::kWarn, "restore-backlog-dormant",
          "connection " + std::to_string(id.value()) + " after " +
              std::to_string(e.attempts - 1) + " timed retries: " + why);
    if (telemetry::Telemetry* t = model_->telemetry())
      t->event(telemetry::Severity::kWarn, "restoration", "controller",
               "connection " + std::to_string(id.value()) +
                   " backlog dormant: " + why,
               telemetry_tag(id));
    update_restoration_gauges();
    maybe_clear_storm();
    return;
  }
  e.dormant = false;
  const SimTime delay = restoration_retry_delay(e.attempts);
  trace(sim::TraceLevel::kInfo, "restore-backlog",
        "connection " + std::to_string(id.value()) + " retry #" +
            std::to_string(e.attempts) + " in " +
            std::to_string(to_seconds(delay)) + "s: " + why);
  model_->engine().schedule(delay, [this, id, gen]() {
    const auto it = restore_backlog_.find(id);
    if (it == restore_backlog_.end() || it->second.generation != gen ||
        it->second.dormant)
      return;  // re-armed, recovered or released meanwhile
    Connection* c = find_conn(id);
    if (c == nullptr || c->state != ConnectionState::kFailed) return;
    enqueue_restoration(id);
  });
  update_restoration_gauges();
}

SimTime GriphonController::restoration_retry_delay(int attempt) const {
  // Deterministic (no jitter): chaos soaks compare digests across runs.
  double delay = to_seconds(params_.restoration.retry_base);
  for (int i = 1; i < attempt; ++i)
    delay *= params_.restoration.retry_multiplier;
  return std::min(params_.restoration.retry_max, from_seconds(delay));
}

void GriphonController::kick_restoration_backlog(bool reset_attempts) {
  if (restore_backlog_.empty()) return;
  for (auto& [id, e] : restore_backlog_) {
    Connection* c = find_conn(id);
    if (c == nullptr || c->state != ConnectionState::kFailed) continue;
    if (reset_attempts) {
      e.attempts = 0;
      e.preemptions = 0;
    }
    e.dormant = false;
    ++e.generation;  // cancels any armed backoff timer
    enqueue_restoration(id);
  }
  update_restoration_gauges();
}

void GriphonController::maybe_clear_storm() {
  if (!storm_active_) return;
  if (!restore_queue_.empty() || restorations_in_flight_ != 0) return;
  for (const auto& [id, e] : restore_backlog_)
    if (!e.dormant) return;  // an armed retry still owns the storm
  storm_active_ = false;
  trace(sim::TraceLevel::kInfo, "storm-cleared",
        "restoration pipeline drained");
  if (telemetry::Telemetry* t = model_->telemetry())
    t->event(telemetry::Severity::kInfo, "restoration", "controller",
             "restoration storm cleared (pipeline drained)");
  update_restoration_gauges();
}

void GriphonController::update_restoration_gauges() {
  telemetry::Telemetry* t = model_->telemetry();
  if (t == nullptr) return;
  auto& m = t->metrics();
  m.gauge("griphon_restoration_backlog_depth",
          "Failed restorations awaiting retry (armed + dormant)")
      ->set(static_cast<double>(restore_backlog_.size()));
  m.gauge("griphon_restoration_queue_depth",
          "Failed connections ready for restoration, tier-ordered")
      ->set(static_cast<double>(restore_queue_.size()));
  m.gauge("griphon_restoration_in_flight",
          "Restoration command trains currently running")
      ->set(static_cast<double>(restorations_in_flight_));
  m.gauge("griphon_restoration_storm_active",
          "1 while a correlated failure storm is being worked")
      ->set(storm_active_ ? 1.0 : 0.0);
}

void GriphonController::restore_wavelength(ConnectionId id,
                                           std::function<void()> done) {
  Connection* c0 = find_conn(id);
  if (c0 == nullptr || c0->state != ConnectionState::kFailed) {
    done();
    return;
  }
  c0->state = ConnectionState::kRestoring;
  trace(sim::TraceLevel::kInfo, "restore-start",
        "connection " + std::to_string(id.value()));
  const SimTime restore_started = model_->engine().now();
  if (telemetry::Telemetry* t = model_->telemetry())
    c0->op_span =
        t->span_start("restoration", "controller", telemetry_tag(id), 0);
  // Ends the restoration root span + counts the attempt, on every exit.
  auto close_restore = [this, id, restore_started](bool ok,
                                                   const std::string& why) {
    telemetry::Telemetry* t = model_->telemetry();
    if (t == nullptr) return;
    Connection* c = find_conn(id);
    if (c != nullptr) {
      t->span_end(c->op_span, ok, why);
      c->op_span = 0;
    }
    auto& m = t->metrics();
    m.counter(ok ? "griphon_controller_restorations_ok_total"
                 : "griphon_controller_restorations_failed_total",
              ok ? "Wavelength restorations completed"
                 : "Wavelength restoration attempts that failed")
        ->inc();
    if (ok)
      m.histogram("griphon_controller_restore_seconds",
                  "Restoration start to traffic back, end to end")
          ->observe(to_seconds(model_->engine().now() - restore_started));
    t->event(ok ? telemetry::Severity::kInfo : telemetry::Severity::kWarn,
             "lifecycle", "controller",
             "connection " + std::to_string(id.value()) +
                 (ok ? " restored" : " restoration failed: " + why),
             telemetry_tag(id));
  };

  // Steps 2+ (replan, admit, reprovision), entered either after the old
  // path's release or directly on a backlog retry that already released it.
  auto proceed = [this, id, done, close_restore]() {
    Connection* c = find_conn(id);
    if (c == nullptr || c->state != ConnectionState::kRestoring) {
      close_restore(false, "connection left restoring state");
      done();
      return;
    }
    // 2. Compute a path around the failure.
    std::uint64_t replan_span = 0;
    if (telemetry::Telemetry* t = model_->telemetry())
      replan_span = t->span_start("replan", "controller", 0, c->op_span);
    const SimTime think =
        params_.path_computation.sample(model_->engine().rng());
    model_->engine().schedule(think, [this, id, done, close_restore,
                                      replan_span]() {
      Connection* c = find_conn(id);
      if (c == nullptr || c->state != ConnectionState::kRestoring) {
        if (telemetry::Telemetry* t = model_->telemetry())
          t->span_end(replan_span, false);
        close_restore(false, "connection left restoring state");
        done();
        return;
      }
      // Failed attempts return to kFailed and enter the retry backlog —
      // the outage continues, but it is never dropped on the floor.
      auto fail_attempt = [this, id, done,
                           close_restore](const std::string& why) {
        ++stats_.restorations_failed;
        if (Connection* cc = find_conn(id); cc != nullptr)
          cc->state = ConnectionState::kFailed;
        trace(sim::TraceLevel::kError, "restore-failed", why);
        backlog_restoration(id, why);
        close_restore(false, why);
        done();
      };
      // SRLG-diverse replan: avoid not just the failed plant but every
      // conduit-mate of it — a "diverse" path through a sibling fiber of
      // the cut conduit dies with the next backhoe swing. Fall back to
      // failed-links-only exclusions when no diverse route exists at all
      // (restoring onto a surviving sibling beats staying dark).
      Exclusions avoid;
      for (const LinkId l : failures_.believed_failed())
        avoid.links.insert(l);
      Exclusions diverse = avoid;
      for (const LinkId l : failures_.believed_failed())
        for (const LinkId sibling : model_->graph().srlg_siblings(l))
          diverse.links.insert(sibling);
      auto plan = rwa_.plan(c->src_pop, c->dst_pop, c->rate, diverse);
      if (!plan.ok() && plan.error().code() == ErrorCode::kUnreachable &&
          diverse.links.size() > avoid.links.size()) {
        plan = rwa_.plan(c->src_pop, c->dst_pop, c->rate, avoid);
        if (plan.ok()) {
          ++stats_.restorations_non_diverse;
          trace(sim::TraceLevel::kWarn, "restore-non-diverse",
                "connection " + std::to_string(id.value()) +
                    ": no SRLG-diverse route; restoring onto a conduit "
                    "sibling");
          if (telemetry::Telemetry* t = model_->telemetry())
            t->metrics()
                .counter("griphon_restoration_non_diverse_total",
                         "Restorations that fell back to a non-SRLG-"
                         "diverse path")
                ->inc();
        }
      }
      if (telemetry::Telemetry* t = model_->telemetry())
        t->span_end(replan_span, plan.ok());
      if (!plan.ok()) {
        // 3. Out of wavelengths (not out of routes): a gold restoration
        // may preempt best-effort BoD calendar windows to free channels.
        // The freed capacity lands asynchronously as those teardowns
        // complete, each one kicking the backlog this failure is about
        // to enter.
        if (plan.error().code() == ErrorCode::kResourceExhausted &&
            c->tier == ServiceTier::kGold &&
            params_.restoration.preempt_bod_for_gold && preemption_hook_) {
          BacklogEntry& e = restore_backlog_[id];
          if (e.preemptions <
              params_.restoration.max_preemptions_per_connection) {
            ++e.preemptions;
            ++stats_.preemptions_requested;
            const std::size_t freed = preemption_hook_(
                c->src_pop, c->dst_pop, c->rate, avoid.links);
            stats_.bod_windows_preempted += freed;
            trace(sim::TraceLevel::kWarn, "restore-preempt",
                  "connection " + std::to_string(id.value()) +
                      " preempted " + std::to_string(freed) +
                      " best-effort BoD window(s)");
            if (telemetry::Telemetry* t = model_->telemetry()) {
              t->metrics()
                  .counter("griphon_restoration_preemptions_total",
                           "Best-effort BoD windows preempted for gold "
                           "restorations")
                  ->inc(freed);
              t->event(telemetry::Severity::kWarn, "restoration",
                       "controller",
                       "gold restoration " + std::to_string(id.value()) +
                           " preempted " + std::to_string(freed) +
                           " BoD window(s)",
                       telemetry_tag(id));
            }
          }
        }
        fail_attempt(plan.error().message());
        return;
      }
      // Reuse the connection's own transponders: the access FXC patches
      // still point at them, and they are free again after the teardown.
      WavelengthPlan new_plan = std::move(plan).value();
      new_plan.src_ot = c->plan.src_ot;
      new_plan.dst_ot = c->plan.dst_ot;
      if (const Status adm =
              admit_optical_plan(new_plan, c->rate, c->op_span);
          !adm.ok()) {
        fail_attempt(adm.error().message());
        return;
      }
      reserve_plan(new_plan);
      std::uint64_t reprov_span = 0;
      if (telemetry::Telemetry* t = model_->telemetry())
        reprov_span =
            t->span_start("reprovision", "controller", 0, c->op_span);
      auto steps = std::make_shared<StepList>(
          build_wavelength_setup(*c, new_plan, /*include_access=*/false));
      run_steps(steps, false,
                [this, id, new_plan, steps, done, close_restore, reprov_span](
                    Status status, std::vector<std::size_t> succeeded) {
                  if (telemetry::Telemetry* t = model_->telemetry())
                    t->span_end(reprov_span, status.ok());
                  Connection* c = find_conn(id);
                  if (c == nullptr) {
                    close_restore(false, "connection vanished");
                    done();
                    return;
                  }
                  unreserve_plan(new_plan);
                  if (status.ok()) {
                    c->plan = new_plan;
                    c->deprovisioned = false;
                    ++c->restorations;
                    ++stats_.restorations_ok;
                    mark_recovered(*c);
                    trace(sim::TraceLevel::kInfo, "restore-done",
                          "connection " + std::to_string(id.value()));
                    close_restore(true, {});
                  } else {
                    ++stats_.restorations_failed;
                    const std::string why = status.error().message();
                    rollback_steps(steps, std::move(succeeded),
                                   [this, id, why]() {
                      Connection* c = find_conn(id);
                      if (c != nullptr) c->state = ConnectionState::kFailed;
                      // Backlogged only once the rollback released the
                      // half-built path — a retry must not race its own
                      // cleanup.
                      backlog_restoration(id, why);
                    });
                    trace(sim::TraceLevel::kError, "restore-failed", why);
                    close_restore(false, why);
                  }
                  done();
                },
                reprov_span);
    });
  };

  if (c0->deprovisioned) {
    // Backlog retry: the first attempt already released the old path, and
    // its channels may since have been re-acquired by other connections —
    // tearing "our" old path down again would disconnect their devices.
    proceed();
    return;
  }
  // 1. Release the dead path's configuration (keeps access + OTs).
  std::uint64_t release_span = 0;
  if (telemetry::Telemetry* t = model_->telemetry())
    release_span =
        t->span_start("release_old_path", "controller", 0, c0->op_span);
  auto teardown = std::make_shared<StepList>(
      build_wavelength_teardown(*c0, c0->plan, /*include_access=*/false));
  run_steps(teardown, /*best_effort=*/true,
            [this, id, proceed, release_span](Status,
                                              std::vector<std::size_t>) {
              if (telemetry::Telemetry* t = model_->telemetry())
                t->span_end(release_span);
              if (Connection* c = find_conn(id);
                  c != nullptr && c->state == ConnectionState::kRestoring)
                c->deprovisioned = true;  // old path released; not live
              proceed();
            },
            release_span);
}

void GriphonController::restore_subwavelength(ConnectionId) {
  // Sub-wavelength restoration is autonomous (MeshRestorer); nothing to do
  // from the controller beyond the bookkeeping done in callbacks.
}

// --------------------------------------------------------------------------
// Bridge-and-roll, maintenance, re-grooming
// --------------------------------------------------------------------------

void GriphonController::roll_to_plan(ConnectionId id,
                                     const WavelengthPlan& new_plan,
                                     DoneCallback cb) {
  Connection* c0 = find_conn(id);
  // Stricter than is_up(): kRestoring means a restoration owns the state
  // machine right now (a fiber cut can land during the roll's path-compute
  // think time), and kRolling means another roll does. Starting a roll in
  // either state would clobber the in-flight operation.
  if (c0 == nullptr || c0->state != ConnectionState::kActive) {
    cb(Status{ErrorCode::kConflict, "controller: connection not rollable"});
    return;
  }
  if (const Status adm = admit_optical_plan(new_plan, c0->rate, 0);
      !adm.ok()) {
    cb(adm);
    return;
  }
  c0->state = ConnectionState::kRolling;
  reserve_plan(new_plan);
  std::uint64_t bridge_span = 0;
  if (telemetry::Telemetry* t = model_->telemetry()) {
    c0->op_span =
        t->span_start("bridge_and_roll", "controller", telemetry_tag(id), 0);
    bridge_span = t->span_start("bridge", "controller", 0, c0->op_span);
  }
  // Failure handling (a fiber cut on the in-service path) can take the
  // connection out of kRolling while the bridge is still building. The
  // restoration machinery owns the state machine from that point; every
  // roll callback below re-checks the state and, if it lost the race,
  // unwinds the bridge and stands down instead of clobbering the
  // restoration. c->op_span may already belong to the restoration then,
  // so the roll's root span handle is captured by value here.
  const std::uint64_t roll_span = c0->op_span;
  // Bridge: build the new path end to end while traffic rides the old one.
  auto steps = std::make_shared<StepList>(
      build_wavelength_setup(*c0, new_plan, /*include_access=*/false));
  run_steps(steps, false, [this, id, new_plan, steps, bridge_span, roll_span,
                           cb = std::move(cb)](
                              Status status,
                              std::vector<std::size_t> succeeded) mutable {
    if (telemetry::Telemetry* t = model_->telemetry())
      t->span_end(bridge_span, status.ok());
    Connection* c = find_conn(id);
    if (c == nullptr) {
      unreserve_plan(new_plan);
      return;
    }
    unreserve_plan(new_plan);
    if (!status.ok() || c->state != ConnectionState::kRolling) {
      const Status out =
          status.ok()
              ? Status{ErrorCode::kConflict,
                       "controller: connection failed during bridge; "
                       "restoration owns recovery"}
              : status;
      ++stats_.rolls_failed;
      if (telemetry::Telemetry* t = model_->telemetry()) {
        t->span_end(roll_span, false, out.error().message());
        if (c->op_span == roll_span) c->op_span = 0;
        t->metrics()
            .counter("griphon_controller_rolls_failed_total",
                     "Bridge-and-roll attempts that failed")
            ->inc();
      }
      rollback_steps(steps, std::move(succeeded),
                     [this, id, out, cb = std::move(cb)]() mutable {
                       Connection* c = find_conn(id);
                       // Only un-wedge a still-rolling connection; a failed
                       // or restoring one belongs to failure handling.
                       if (c != nullptr &&
                           c->state == ConnectionState::kRolling)
                         c->state = ConnectionState::kActive;
                       cb(out);
                     });
      return;
    }
    // Roll: the NTE bridges the client signal to both paths; the receive
    // side selects the new one. The service hit is tens of milliseconds.
    model_->engine().schedule(params_.roll_hit, [this, id, new_plan, steps,
                                                 roll_span,
                                                 cb = std::move(cb)]() mutable {
      Connection* c = find_conn(id);
      if (c == nullptr) return;
      if (c->state != ConnectionState::kRolling) {
        // The cut landed in the post-bridge settling window. The bridge is
        // fully built, so unwind all of it and let restoration recover the
        // service on whatever path it finds.
        ++stats_.rolls_failed;
        if (telemetry::Telemetry* t = model_->telemetry()) {
          t->span_end(roll_span, false, "superseded by failure handling");
          if (c->op_span == roll_span) c->op_span = 0;
          t->metrics()
              .counter("griphon_controller_rolls_failed_total",
                       "Bridge-and-roll attempts that failed")
              ->inc();
        }
        std::vector<std::size_t> all(steps->size());
        std::iota(all.begin(), all.end(), 0);
        rollback_steps(steps, std::move(all), [cb = std::move(cb)]() mutable {
          cb(Status{ErrorCode::kConflict,
                    "controller: connection failed before the roll; "
                    "restoration owns recovery"});
        });
        return;
      }
      const WavelengthPlan old_plan = c->plan;
      c->plan = new_plan;
      ++c->rolls;
      c->roll_hit_total += params_.roll_hit;
      ++stats_.rolls_ok;
      if (telemetry::Telemetry* t = model_->telemetry()) {
        // The roll itself: the sub-second traffic hit, recorded in
        // hindsight now that the receive side has selected the new path.
        t->span_record("roll", "controller", 0, c->op_span,
                       t->now() - params_.roll_hit, t->now());
        t->metrics()
            .histogram("griphon_controller_roll_hit_seconds",
                       "Traffic hit while rolling between bridged paths",
                       {0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                        1.0})
            ->observe(to_seconds(params_.roll_hit));
      }
      // Re-patch the FXCs to the new OTs (hitless, signal already rolled),
      // then release the old path.
      auto post = std::make_shared<StepList>();
      auto* fxc_client = &model_->fxc_ems_client();
      auto repatch = [&](NodeId pop, MuxponderId site, std::size_t nte_port,
                         TransponderId new_ot) {
        fxc::Fxc& f = model_->fxc_at(pop);
        const auto access = f.port_for(fxc::Wiring::Kind::kCustomerAccess,
                                       site.value(), nte_port);
        const auto otp = f.port_for(fxc::Wiring::Kind::kTransponderClient,
                                    new_ot.value(), 0);
        assert(access && otp);
        post->push_back(Step{fxc_client,
                             proto::FxcDisconnect{f.id(), *access},
                             std::nullopt});
        post->push_back(Step{fxc_client,
                             proto::FxcConnect{f.id(), *access, *otp},
                             std::nullopt});
      };
      if (old_plan.src_ot != new_plan.src_ot)
        repatch(c->src_pop, c->src_site, c->src_nte_port, new_plan.src_ot);
      if (old_plan.dst_ot != new_plan.dst_ot)
        repatch(c->dst_pop, c->dst_site, c->dst_nte_port, new_plan.dst_ot);
      // Teardown deps are indices within their own list; the repatch steps
      // above shift them, so rebase instead of splicing raw.
      const std::size_t tear_base = post->size();
      append_steps(*post,
                   build_wavelength_teardown(*c, old_plan,
                                             /*include_access=*/false));
      // Old endpoint optics the new plan no longer uses go back to idle,
      // not just dark: a completed roll must leave no tuned-but-unowned
      // residue for resync to sweep. Deactivate steps sit first in the
      // teardown (tear_base + 0 / + 1).
      auto* roadm = &model_->roadm_ems_client();
      if (old_plan.src_ot != new_plan.src_ot)
        post->push_back(Step{roadm,
                             proto::OtSetState{old_plan.src_ot,
                                               proto::OtSetState::Action::kReset},
                             std::nullopt, {tear_base}});
      if (old_plan.dst_ot != new_plan.dst_ot)
        post->push_back(Step{roadm,
                             proto::OtSetState{old_plan.dst_ot,
                                               proto::OtSetState::Action::kReset},
                             std::nullopt, {tear_base + 1}});
      std::uint64_t repatch_span = 0;
      if (telemetry::Telemetry* t = model_->telemetry())
        repatch_span =
            t->span_start("repatch_teardown", "controller", 0, c->op_span);
      run_steps(post, true, [this, id, repatch_span, roll_span,
                             cb = std::move(cb)](
                                Status, std::vector<std::size_t>) mutable {
        Connection* c = find_conn(id);
        if (c != nullptr && c->state == ConnectionState::kRolling)
          c->state = ConnectionState::kActive;
        if (telemetry::Telemetry* t = model_->telemetry()) {
          t->span_end(repatch_span);
          t->span_end(roll_span);
          if (c != nullptr && c->op_span == roll_span) c->op_span = 0;
          t->metrics()
              .counter("griphon_controller_rolls_ok_total",
                       "Bridge-and-roll operations completed")
              ->inc();
        }
        trace(sim::TraceLevel::kInfo, "roll-done",
              "connection " + std::to_string(id.value()));
        // The old path's release is a capacity-freeing event (reopt moves
        // drain fragmented spectrum a backlogged restoration may need).
        kick_restoration_backlog();
        cb(Status::success());
      },
      repatch_span);
    });
  },
  bridge_span);
}

void GriphonController::bridge_and_roll(ConnectionId id,
                                        const Exclusions& avoid,
                                        DoneCallback cb) {
  Connection* c = find_conn(id);
  if (c == nullptr) {
    cb(Status{ErrorCode::kNotFound, "controller: unknown connection"});
    return;
  }
  if (c->kind != ConnectionKind::kWavelength) {
    cb(Status{ErrorCode::kInvalidArgument,
              "controller: bridge-and-roll applies to wavelength services"});
    return;
  }
  if (!c->is_up()) {
    cb(Status{ErrorCode::kConflict, "controller: connection not active"});
    return;
  }
  const SimTime think = params_.path_computation.sample(model_->engine().rng());
  model_->engine().schedule(think, [this, id, avoid, cb = std::move(cb)]() mutable {
    Connection* c = find_conn(id);
    if (c == nullptr || !c->is_up()) {
      cb(Status{ErrorCode::kConflict, "controller: connection went away"});
      return;
    }
    // The bridge must be resource-disjoint from the in-service path (paper
    // §2.2 constraint) — including conduit-mates of its links (SRLG) —
    // plus whatever the caller wants avoided.
    Exclusions full = avoid;
    for (const LinkId l : c->plan.path.links)
      for (const LinkId sibling : model_->graph().srlg_siblings(l))
        full.links.insert(sibling);
    auto plan = rwa_.plan(c->src_pop, c->dst_pop, c->rate, full);
    if (!plan.ok()) {
      ++stats_.rolls_failed;
      cb(plan.error());
      return;
    }
    roll_to_plan(id, std::move(plan).value(), std::move(cb));
  });
}

void GriphonController::roll_to(ConnectionId id, const WavelengthPlan& new_plan,
                                DoneCallback cb) {
  Connection* c = find_conn(id);
  if (c == nullptr) {
    cb(Status{ErrorCode::kNotFound, "controller: unknown connection"});
    return;
  }
  if (c->kind != ConnectionKind::kWavelength) {
    cb(Status{ErrorCode::kInvalidArgument,
              "controller: roll_to applies to wavelength services"});
    return;
  }
  // Stricter than is_up(): a connection already mid-roll cannot take a
  // second overlapping roll.
  if (c->state != ConnectionState::kActive) {
    cb(Status{ErrorCode::kConflict, "controller: connection not active"});
    return;
  }
  if (new_plan.path.nodes.empty() || new_plan.path.nodes.front() != c->src_pop ||
      new_plan.path.nodes.back() != c->dst_pop) {
    cb(Status{ErrorCode::kInvalidArgument,
              "controller: plan endpoints do not match connection"});
    return;
  }
  if (new_plan.segments.empty()) {
    cb(Status{ErrorCode::kInvalidArgument, "controller: plan has no segments"});
    return;
  }
  // Both paths are lit simultaneously while the bridge stands, so the new
  // plan may not reuse any (link, channel) cell of the current one.
  std::set<std::pair<std::uint64_t, dwdm::ChannelIndex>> lit;
  for (const SegmentPlan& seg : c->plan.segments)
    for (std::size_t i = seg.first_link; i <= seg.last_link; ++i)
      lit.emplace(c->plan.path.links[i].value(), seg.channel);
  for (const SegmentPlan& seg : new_plan.segments) {
    for (std::size_t i = seg.first_link; i <= seg.last_link; ++i) {
      if (lit.count({new_plan.path.links[i].value(), seg.channel}) != 0) {
        cb(Status{ErrorCode::kConflict,
                  "controller: plan shares a lit (link, channel) cell with "
                  "the in-service path"});
        return;
      }
    }
  }
  roll_to_plan(id, new_plan, std::move(cb));
}

std::vector<ConnectionId> GriphonController::live_wavelength_connections()
    const {
  std::vector<ConnectionId> out;
  for (const auto& [id, c] : connections_)
    if (c.kind == ConnectionKind::kWavelength && c.is_up()) out.push_back(id);
  return out;  // connections_ is an ordered map, so ids are ascending
}

void GriphonController::prepare_maintenance(LinkId link, DoneCallback cb) {
  std::vector<ConnectionId> to_roll;
  for (const auto& [id, c] : connections_) {
    if (c.kind != ConnectionKind::kWavelength || !c.is_up()) continue;
    if (c.plan.path.uses_link(link)) to_roll.push_back(id);
  }
  // Protected OTN circuits riding the span move to their backups
  // proactively (done by the switches on command, small hit).
  if (model_->config().with_otn) {
    for (const OduCircuitId odu : model_->otn().circuit_ids()) {
      const auto& circuit = model_->otn().circuit(odu);
      if (circuit.state != otn::OduCircuit::State::kActive ||
          !circuit.is_protected)
        continue;
      const bool on_span = std::any_of(
          circuit.primary.begin(), circuit.primary.end(), [&](CarrierId cid) {
            return model_->otn().carrier(cid).rides_link(link);
          });
      if (on_span) (void)model_->otn().preemptive_switch(odu);
    }
  }
  if (to_roll.empty()) {
    cb(Status::success());
    return;
  }
  auto remaining = std::make_shared<std::size_t>(to_roll.size());
  auto first_error = std::make_shared<Status>(Status::success());
  for (const ConnectionId id : to_roll) {
    Exclusions avoid;
    avoid.links.insert(link);
    bridge_and_roll(id, avoid,
                    [remaining, first_error, cb](Status s) {
                      if (!s.ok() && first_error->ok()) *first_error = s;
                      if (--*remaining == 0) cb(*first_error);
                    });
  }
}

void GriphonController::regroom(ConnectionId id, DoneCallback cb) {
  Connection* c = find_conn(id);
  if (c == nullptr || c->kind != ConnectionKind::kWavelength || !c->is_up()) {
    cb(Status{ErrorCode::kConflict, "controller: not re-groomable"});
    return;
  }
  // Would a fresh plan (ignoring the current one) be shorter? The bridge
  // must still be resource-disjoint, so exclude the current links.
  Exclusions avoid;
  for (const LinkId l : c->plan.path.links) avoid.links.insert(l);
  auto candidate = rwa_.plan(c->src_pop, c->dst_pop, c->rate, avoid);
  if (!candidate.ok()) {
    cb(Status{ErrorCode::kUnreachable,
              "controller: no disjoint alternative path"});
    return;
  }
  const auto& g = model_->graph();
  if (candidate.value().path.length(g) >= c->plan.path.length(g)) {
    cb(Status::success());  // current path already best; nothing to do
    return;
  }
  roll_to_plan(id, std::move(candidate).value(), std::move(cb));
}

// --------------------------------------------------------------------------
// Reconciliation (post-EMS-restart audit)
// --------------------------------------------------------------------------
//
// Device configuration is modelled as a set of canonical string keys — one
// per stateful command effect. The same key function is applied to the
// setup command lists a live connection *would* issue today (expected) and
// to the actual device state (present). present − expected is a leak:
// configuration with no owner, released via best-effort commands.
// expected − present is drift: an owned connection missing configuration,
// repaired by re-issuing the missing setup commands in setup order.

namespace {

std::string express_key(RoadmId r, std::int32_t ch, std::int32_t a,
                        std::int32_t b) {
  if (a > b) std::swap(a, b);
  return "rx/" + std::to_string(r.value()) + "/" + std::to_string(ch) + "/" +
         std::to_string(a) + "/" + std::to_string(b);
}
std::string add_drop_key(RoadmId r, PortId p, std::int32_t degree,
                         std::int32_t ch) {
  return "rad/" + std::to_string(r.value()) + "/" + std::to_string(p.value()) +
         "/" + std::to_string(degree) + "/" + std::to_string(ch);
}
// Tuned and active are separate keys so a half-built OT (tuned, never
// activated) still reads as drifted against an expected kActivate.
std::string ot_tuned_key(TransponderId t) {
  return "ot/" + std::to_string(t.value()) + "/t";
}
std::string ot_active_key(TransponderId t) {
  return "ot/" + std::to_string(t.value()) + "/a";
}
std::string regen_key(RegenId r) {
  return "regen/" + std::to_string(r.value());
}
std::string fxc_key(FxcId f, PortId a, PortId b) {
  if (b < a) std::swap(a, b);
  return "fxc/" + std::to_string(f.value()) + "/" + std::to_string(a.value()) +
         "/" + std::to_string(b.value());
}
std::string nte_key(MuxponderId n, std::uint32_t p) {
  return "nte/" + std::to_string(n.value()) + "/" + std::to_string(p);
}

/// Keys a setup-direction command contributes to expected configuration.
/// Release-direction and stateless (PowerBalance) commands contribute none.
struct ConfigKeyVisitor {
  std::set<std::string>& out;
  void operator()(const proto::RoadmExpress& e) const {
    if (e.engage)
      out.insert(express_key(e.roadm, e.channel, e.degree_in, e.degree_out));
  }
  void operator()(const proto::RoadmAddDrop& a) const {
    if (a.engage)
      out.insert(add_drop_key(a.roadm, a.port, a.degree, a.channel));
  }
  void operator()(const proto::OtTune& t) const {
    out.insert(ot_tuned_key(t.ot));
  }
  void operator()(const proto::OtSetState& s) const {
    if (s.action == proto::OtSetState::Action::kActivate)
      out.insert(ot_active_key(s.ot));
  }
  void operator()(const proto::RegenEngage& r) const {
    if (r.engage) out.insert(regen_key(r.regen));
  }
  void operator()(const proto::FxcConnect& f) const {
    out.insert(fxc_key(f.fxc, f.port_a, f.port_b));
  }
  void operator()(const proto::NtePort& n) const {
    if (n.engage) out.insert(nte_key(n.nte, n.port));
  }
  template <typename T>
  void operator()(const T&) const {}
};

void append_config_keys(const proto::Message& m, std::set<std::string>& out) {
  std::visit(ConfigKeyVisitor{out}, m);
}

}  // namespace

bool GriphonController::quiescent() const {
  if (pending_commands_ != 0 || restorations_in_flight_ != 0 ||
      !restore_queue_.empty())
    return false;
  // A non-dormant backlog entry has a backoff timer armed: a restoration
  // could launch mid-audit. Dormant entries only wake on external events
  // the audit itself will not produce.
  for (const auto& [id, e] : restore_backlog_)
    if (!e.dormant) return false;
  for (const auto& [id, c] : connections_) {
    switch (c.state) {
      case ConnectionState::kPending:
      case ConnectionState::kSettingUp:
      case ConnectionState::kRestoring:
      case ConnectionState::kRolling:
      case ConnectionState::kTearingDown:
        return false;
      default:
        break;
    }
  }
  return true;
}

void GriphonController::schedule_resync() {
  if (resync_scheduled_) return;
  resync_scheduled_ = true;
  resync_attempts_ = 0;
  model_->engine().schedule(params_.resync_delay,
                            [this]() { try_auto_resync(); });
}

void GriphonController::try_auto_resync() {
  if (!quiescent()) {
    if (++resync_attempts_ < params_.resync_max_deferrals) {
      model_->engine().schedule(params_.resync_retry,
                                [this]() { try_auto_resync(); });
    } else {
      // Never went quiet; stand down. The next restart alarm re-arms us.
      resync_scheduled_ = false;
      trace(sim::TraceLevel::kWarn, "resync-abandoned",
            "control plane never quiesced");
    }
    return;
  }
  resync_scheduled_ = false;
  do_resync([](const ResyncReport&) {});
}

void GriphonController::resync(ResyncCallback cb) {
  if (!quiescent()) {
    cb(Error{ErrorCode::kBusy, "controller: command trains in flight"});
    return;
  }
  do_resync([cb = std::move(cb)](const ResyncReport& r) { cb(r); });
}

StepList GriphonController::expected_steps_for(
    const Connection& c) const {
  if (c.state != ConnectionState::kActive &&
      c.state != ConnectionState::kFailed)
    return {};
  if (c.kind == ConnectionKind::kWavelength) {
    if (c.deprovisioned) {
      // Restoration already released this path's devices; only the access
      // plumbing is still owned.
      return build_access_setup(c, c.plan);
    }
    StepList steps = build_wavelength_setup(c, c.plan, /*include_access=*/true);
    if (c.standby) {
      StepList standby =
          build_wavelength_setup(c, *c.standby, /*include_access=*/false);
      steps.insert(steps.end(), standby.begin(), standby.end());
    }
    return steps;
  }
  // Sub-wavelength: NTE ports + FXC steering onto the OTN client ports.
  // The ODU circuit itself is audited separately by id.
  if (!c.odu.valid()) return {};
  StepList steps;
  auto* nte_client = &model_->nte_ems_client();
  auto* fxc_client = &model_->fxc_ems_client();
  steps.push_back(
      Step{nte_client,
           proto::NtePort{c.src_site,
                          static_cast<std::uint32_t>(c.src_nte_port), true},
           std::nullopt});
  steps.push_back(
      Step{nte_client,
           proto::NtePort{c.dst_site,
                          static_cast<std::uint32_t>(c.dst_nte_port), true},
           std::nullopt});
  const auto& circuit = model_->otn().circuit(c.odu);
  auto fxc_step = [&](NodeId pop, MuxponderId site, std::size_t nte_port,
                      std::size_t otn_port) {
    fxc::Fxc& f = model_->fxc_at(pop);
    const auto access = f.port_for(fxc::Wiring::Kind::kCustomerAccess,
                                   site.value(), nte_port);
    const auto sw = model_->otn().switch_at(pop);
    if (!access || sw == nullptr) return;
    const auto otnp = f.port_for(fxc::Wiring::Kind::kOtnClientPort,
                                 sw->id().value(), otn_port);
    if (!otnp) return;
    steps.push_back(Step{fxc_client, proto::FxcConnect{f.id(), *access, *otnp},
                         std::nullopt});
  };
  fxc_step(c.src_pop, c.src_site, c.src_nte_port, circuit.src_port);
  fxc_step(c.dst_pop, c.dst_site, c.dst_nte_port, circuit.dst_port);
  return steps;
}

StepList GriphonController::build_expected_steps() const {
  StepList steps;
  for (const auto& [id, c] : connections_) {
    StepList s = expected_steps_for(c);
    steps.insert(steps.end(), std::make_move_iterator(s.begin()),
                 std::make_move_iterator(s.end()));
  }
  for (const auto& [carrier, plan] : groomed_plans_) {
    Connection synthetic;
    StepList s =
        build_wavelength_setup(synthetic, plan, /*include_access=*/false);
    steps.insert(steps.end(), std::make_move_iterator(s.begin()),
                 std::make_move_iterator(s.end()));
  }
  return steps;
}

void GriphonController::do_resync(
    std::function<void(const ResyncReport&)> done) {
  ++stats_.resync_runs;
  auto report = std::make_shared<ResyncReport>();

  // Expected: what live connections + groomed carriers own today.
  std::set<std::string> expected;
  std::set<OduCircuitId> expected_odus;
  for (const Step& s : build_expected_steps())
    append_config_keys(s.forward, expected);
  for (const auto& [id, c] : connections_)
    if (c.odu.valid() && (c.state == ConnectionState::kActive ||
                          c.state == ConnectionState::kFailed))
      expected_odus.insert(c.odu);

  // Present: walk every device; anything configured but unowned is a leak
  // and gets a release command.
  std::set<std::string> present;
  auto repair = std::make_shared<StepList>();
  auto* roadm_client = &model_->roadm_ems_client();
  auto* fxc_client = &model_->fxc_ems_client();
  auto* nte_client = &model_->nte_ems_client();
  auto leak = [&](std::size_t& counter, proto::RequestClient* client,
                  proto::Message release) {
    ++counter;
    repair->push_back(Step{client, std::move(release), std::nullopt});
  };

  for (const auto& node : model_->graph().nodes()) {
    const dwdm::Roadm& r = model_->roadm_at(node.id);
    for (const auto& u : r.uses()) {
      if (u.is_express) {
        if (u.degree > u.other_degree) continue;  // each pair once
        const std::string key =
            express_key(r.id(), u.channel, u.degree, u.other_degree);
        present.insert(key);
        if (!expected.contains(key))
          leak(report->leaked_roadm_uses, roadm_client,
               proto::RoadmExpress{r.id(), u.channel, u.degree, u.other_degree,
                                   false});
      } else {
        const auto& port = r.port(u.port);
        const std::string key =
            add_drop_key(r.id(), u.port, port.degree, port.channel);
        present.insert(key);
        if (!expected.contains(key))
          leak(report->leaked_roadm_uses, roadm_client,
               proto::RoadmAddDrop{r.id(), u.port, 0, 0, false});
      }
    }
    const fxc::Fxc& f = model_->fxc_at(node.id);
    for (const auto& [a, b] : f.cross_connects()) {
      const std::string key = fxc_key(f.id(), a, b);
      present.insert(key);
      if (!expected.contains(key))
        leak(report->leaked_fxc_connects, fxc_client,
             proto::FxcDisconnect{f.id(), a});
    }
  }
  for (const auto& ot : model_->ots()) {
    if (ot->state() == dwdm::Transponder::State::kIdle ||
        ot->state() == dwdm::Transponder::State::kFailed)
      continue;
    present.insert(ot_tuned_key(ot->id()));
    if (ot->state() == dwdm::Transponder::State::kActive)
      present.insert(ot_active_key(ot->id()));
    if (!expected.contains(ot_tuned_key(ot->id())))
      leak(report->leaked_ots, roadm_client,
           proto::OtSetState{ot->id(), proto::OtSetState::Action::kReset});
  }
  for (const auto& rg : model_->regens()) {
    if (!rg->in_use()) continue;
    const std::string key = regen_key(rg->id());
    present.insert(key);
    if (!expected.contains(key))
      leak(report->leaked_regens, roadm_client,
           proto::RegenEngage{rg->id(), 0, 0, false});
  }
  for (const auto& site : model_->customer_sites()) {
    const dwdm::Muxponder& mux = model_->nte(site.nte);
    for (std::size_t p = 0; p < dwdm::Muxponder::kClientPorts; ++p) {
      if (!mux.port_in_use(p)) continue;
      const std::string key =
          nte_key(site.nte, static_cast<std::uint32_t>(p));
      present.insert(key);
      if (!expected.contains(key))
        leak(report->leaked_nte_ports, nte_client,
             proto::NtePort{site.nte, static_cast<std::uint32_t>(p), false});
    }
  }
  if (model_->config().with_otn) {
    auto* otn_client = &model_->otn_ems_client();
    for (const OduCircuitId cid : model_->otn().circuit_ids()) {
      if (expected_odus.contains(cid)) continue;
      proto::OtnOp release;
      release.op = proto::OtnOp::Op::kRelease;
      release.circuit = cid;
      leak(report->leaked_otn_circuits, otn_client, proto::Message{release});
    }
  }

  // Drift: owned configuration the devices no longer hold. Re-issue the
  // missing setup commands in setup order (per-device EMS queues keep a
  // same-port release-then-reconfigure sequence ordered).
  auto append_drift_repairs = [&](const StepList& steps) {
    bool drifted = false;
    for (const Step& s : steps) {
      std::set<std::string> keys;
      append_config_keys(s.forward, keys);
      if (keys.empty()) continue;
      const bool missing = std::any_of(
          keys.begin(), keys.end(),
          [&](const std::string& k) { return !present.contains(k); });
      if (!missing) continue;
      drifted = true;
      repair->push_back(Step{s.client, s.forward, std::nullopt});
    }
    return drifted;
  };
  for (const auto& [id, c] : connections_)
    if (append_drift_repairs(expected_steps_for(c)))
      ++report->drifted_connections;
  for (const auto& [carrier, plan] : groomed_plans_) {
    Connection synthetic;
    if (append_drift_repairs(
            build_wavelength_setup(synthetic, plan, /*include_access=*/false)))
      ++report->drifted_connections;
  }

  report->repair_commands = repair->size();
  stats_.resync_leaks += report->total_leaks();
  stats_.resync_drift += report->drifted_connections;
  if (telemetry::Telemetry* t = model_->telemetry()) {
    auto& m = t->metrics();
    m.counter("griphon_controller_resync_runs_total",
              "Reconciliation audits run")
        ->inc();
    m.counter("griphon_controller_resync_leaks_total",
              "Unowned device configuration found by audits")
        ->inc(report->total_leaks());
    m.counter("griphon_controller_resync_drift_total",
              "Connections found missing device configuration")
        ->inc(report->drifted_connections);
    m.counter("griphon_controller_resync_repairs_total",
              "Repair commands issued by audits")
        ->inc(report->repair_commands);
    t->event(report->repair_commands == 0 ? telemetry::Severity::kInfo
                                          : telemetry::Severity::kWarn,
             "resync", "controller",
             "audit: leaks=" + std::to_string(report->total_leaks()) +
                 " drift=" + std::to_string(report->drifted_connections) +
                 " repairs=" + std::to_string(report->repair_commands));
  }
  trace(report->repair_commands == 0 ? sim::TraceLevel::kInfo
                                     : sim::TraceLevel::kWarn,
        "resync",
        "leaks=" + std::to_string(report->total_leaks()) +
            " drift=" + std::to_string(report->drifted_connections) +
            " repairs=" + std::to_string(report->repair_commands));
  if (repair->empty()) {
    done(*report);
    return;
  }
  run_steps(repair, /*best_effort=*/true,
            [report, done = std::move(done)](Status,
                                             std::vector<std::size_t>) {
              done(*report);
            });
}

std::string GriphonController::device_state_digest() const {
  // Same canonical-key walk the reconciliation audit uses for its
  // "present" set, enriched with each transponder's tuned channel and
  // state so a wrong wavelength or a merely-tuned OT changes the digest.
  // Keys are sorted, so the digest is independent of command order — the
  // property the seq/DAG equivalence tests pin down.
  std::set<std::string> keys;
  for (const auto& node : model_->graph().nodes()) {
    const dwdm::Roadm& r = model_->roadm_at(node.id);
    for (const auto& u : r.uses()) {
      if (u.is_express) {
        if (u.degree > u.other_degree) continue;  // each pair once
        keys.insert(express_key(r.id(), u.channel, u.degree, u.other_degree));
      } else {
        const auto& port = r.port(u.port);
        keys.insert(add_drop_key(r.id(), u.port, port.degree, port.channel));
      }
    }
    const fxc::Fxc& f = model_->fxc_at(node.id);
    for (const auto& [a, b] : f.cross_connects())
      keys.insert(fxc_key(f.id(), a, b));
  }
  for (const auto& ot : model_->ots()) {
    if (ot->state() == dwdm::Transponder::State::kIdle) continue;
    keys.insert("ot/" + std::to_string(ot->id().value()) + "/ch" +
                std::to_string(ot->channel()) + "/" +
                to_string(ot->state()));
  }
  for (const auto& rg : model_->regens())
    if (rg->in_use()) keys.insert(regen_key(rg->id()));
  for (const auto& site : model_->customer_sites()) {
    const dwdm::Muxponder& mux = model_->nte(site.nte);
    for (std::size_t p = 0; p < dwdm::Muxponder::kClientPorts; ++p)
      if (mux.port_in_use(p))
        keys.insert(nte_key(site.nte, static_cast<std::uint32_t>(p)));
  }
  if (model_->config().with_otn)
    for (const OduCircuitId cid : model_->otn().circuit_ids())
      keys.insert("odu/" + std::to_string(cid.value()));
  std::string digest;
  for (const std::string& k : keys) {
    digest += k;
    digest += '\n';
  }
  return digest;
}

}  // namespace griphon::core
