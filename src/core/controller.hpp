// The GRIPhoN controller — the paper's central contribution (§2.2).
//
// "Connection establishment and release based on requests from the CSP are
// handled by the GRIPhoN controller. The controller ... communicates with
// the network elements (FXC controllers, OTN switch EMS, ROADM EMS and NTE
// controllers) in order to create or tear down the connections ordered by
// the CSPs, capacity and resource management, inventory database
// management, failure detection, localization and automated restorations."
//
// The controller is fully asynchronous: every service call returns
// immediately and completes through a callback once the EMS command
// sequence has finished on the simulated network. Command trains run on a
// dependency DAG by default: steps carry explicit ordering edges from the
// builders, independent commands overlap under a bounded per-EMS-domain
// window, and same-domain stateless commands coalesce into one batched
// dialogue. `ExecMode::kSequential` reproduces the 2011 testbed behaviour
// (one dialogue at a time — this is what makes setup take 60-70 s);
// `kPipelined` is the everything-at-once ablation for the §4 "DWDM layer
// management" challenge, kept for comparison.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/connection.hpp"
#include "core/ems_health.hpp"
#include "core/failure_manager.hpp"
#include "core/inventory.hpp"
#include "core/network_model.hpp"
#include "core/rwa.hpp"
#include "core/step_dag.hpp"

namespace griphon::core {

/// How a command train is pushed to the element managers.
enum class ExecMode : std::uint8_t {
  kSequential = 0,  ///< one dialogue at a time (2011 testbed baseline)
  kPipelined = 1,   ///< everything at once, ordering ignored (ablation)
  kDag = 2,         ///< dependency DAG with per-domain windows (default)
};

class GriphonController {
 public:
  struct Params {
    RwaEngine::Params rwa{};
    ExecMode exec_mode = ExecMode::kDag;
    /// kDag: max dialogues in flight per EMS domain.
    std::size_t dag_domain_window = 4;
    /// kDag: coalesce ready same-domain stateless commands (power
    /// balancing) into one batched dialogue paying one overhead.
    bool batch_commands = true;
    FailureManager::Params failure{};
    /// Route computation time inside the controller.
    LatencyModel path_computation =
        LatencyModel::fixed(milliseconds(500));
    /// Distributed shared-mesh restoration of one ODU circuit (done by the
    /// OTN switches themselves, not by EMS commands).
    LatencyModel otn_restoration =
        LatencyModel::normal(milliseconds(120), milliseconds(60),
                             milliseconds(15));
    /// Traffic hit when rolling between bridged paths.
    SimTime roll_hit = milliseconds(50);
    /// Restore wavelength connections automatically on failure.
    bool auto_restore = true;

    /// Restoration-storm pipeline (DESIGN.md §17). Failed restorable
    /// connections drain from a tier-ordered queue; up to
    /// `max_concurrent` restorations run at once (1 reproduces the 2011
    /// serial pump), each admitted against its dominant EMS domain so a
    /// storm cannot stampede one EMS past its circuit breaker. A failed
    /// attempt lands in a persistent retry backlog with exponential
    /// backoff; after `max_timed_retries` the entry goes dormant and only
    /// an external event (repair, capacity-freeing teardown or roll)
    /// re-arms it — so the event loop always drains.
    struct RestorationPolicy {
      std::size_t max_concurrent = 1;
      /// Restorations in flight against one EMS domain at once.
      std::size_t per_domain_inflight = 4;
      int max_timed_retries = 6;
      SimTime retry_base = seconds(10);
      double retry_multiplier = 2.0;
      SimTime retry_max = seconds(300);
      /// Gold restorations out of wavelengths may preempt best-effort BoD
      /// calendar windows (via the preemption hook) to free channels.
      bool preempt_bod_for_gold = true;
      /// Preemption rounds one connection may trigger before it has to
      /// wait for organic capacity.
      int max_preemptions_per_connection = 2;
    };
    RestorationPolicy restoration{};

    /// Application-level retry of EMS commands, on top of the protocol
    /// client's frame retransmissions. Timeout retries reuse the original
    /// request id (idempotency key — the EMS response cache absorbs a
    /// duplicated execution); retryable NACKs (kBusy) retry under a fresh
    /// id after backoff.
    struct RetryPolicy {
      int max_attempts = 3;  ///< total tries per command
      SimTime base_backoff = seconds(2);
      double backoff_multiplier = 2.0;
      SimTime max_backoff = seconds(30);
      double jitter = 0.25;  ///< uniform +/- fraction of each delay
    };
    RetryPolicy command_retry{};
    /// Per-EMS-domain circuit breaker (consecutive-timeout trip).
    EmsHealthTracker::Params ems_health{};
    /// EMS-restart alarm -> reconciliation audit, after this settle delay.
    SimTime resync_delay = seconds(5);
    /// Audit retry cadence while command trains are still in flight, and
    /// how many times to re-check before giving up (the next restart alarm
    /// re-arms it).
    SimTime resync_retry = seconds(5);
    int resync_max_deferrals = 64;
  };

  using SetupCallback = std::function<void(Result<ConnectionId>)>;
  using DoneCallback = std::function<void(Status)>;

  GriphonController(NetworkModel* model, Params params);

  // --- BoD service API -----------------------------------------------------
  /// Set up a connection; the callback fires when traffic can flow (or the
  /// setup failed and was rolled back).
  void request_connection(const ConnectionRequest& request, SetupCallback cb);
  /// Tear a connection down; callback fires when all resources are freed.
  void release_connection(ConnectionId id, DoneCallback cb);

  [[nodiscard]] const Connection& connection(ConnectionId id) const;
  /// Null when the id is unknown (never existed or already released).
  /// Surfaces holding caller-supplied ids use this instead of connection()
  /// so a stale id degrades to kNotFound rather than a crash.
  [[nodiscard]] const Connection* find_connection(
      ConnectionId id) const noexcept;
  [[nodiscard]] std::vector<ConnectionId> connections_of(
      CustomerId customer) const;
  [[nodiscard]] std::size_t active_connections() const;

  // --- maintenance & grooming ----------------------------------------------
  /// Move one connection to a new, resource-disjoint path with
  /// bridge-and-roll; `avoid` constrains the new path (e.g. the span about
  /// to enter maintenance).
  void bridge_and_roll(ConnectionId id, const Exclusions& avoid,
                       DoneCallback cb);
  /// Roll one Active wavelength connection onto a caller-supplied plan
  /// (the re-optimization subsystem computes plans globally rather than
  /// asking RWA per connection). Validates before touching hardware:
  /// the connection must exist, be a wavelength, be Active (not mid-roll),
  /// the plan must terminate at its endpoints, and the plan must not reuse
  /// any (link, channel) cell of the current plan — during the bridge both
  /// paths are lit simultaneously, so any shared cell would self-collide.
  void roll_to(ConnectionId id, const WavelengthPlan& new_plan,
               DoneCallback cb);
  /// Ids of wavelength-kind connections currently carrying traffic
  /// (Active or Rolling), ascending. The re-optimization planner's input.
  [[nodiscard]] std::vector<ConnectionId> live_wavelength_connections() const;
  /// Roll every wavelength connection off `link` ahead of maintenance.
  void prepare_maintenance(LinkId link, DoneCallback cb);
  /// Revert a restored/rolled connection to its shortest path (re-groom).
  void regroom(ConnectionId id, DoneCallback cb);

  /// Provision a fresh OTU carrier for the OTN layer between two PoPs: a
  /// wavelength is set up on the DWDM layer (consuming spectrum and a pair
  /// of pool transponders as the carrier's line optics) and handed to the
  /// OTN switches as new tributary capacity. Called automatically when a
  /// sub-wavelength request finds the OTN layer full — "the OTN layer with
  /// its switching capability can achieve more efficient packing of
  /// wavelengths" (paper §2.1).
  void groom_new_carrier(NodeId a, NodeId b, DoneCallback cb);
  [[nodiscard]] std::size_t carriers_groomed() const noexcept {
    return carriers_groomed_;
  }
  /// Decommission groomed carriers no circuit uses anymore: retire them in
  /// the OTN layer and release their wavelengths back to the pool.
  void decommission_idle_carriers(DoneCallback cb);

  // --- reconciliation -------------------------------------------------------
  /// What a reconciliation audit found and repaired. Device state is
  /// compared against the union of every live connection's (and groomed
  /// carrier's) expected configuration: configuration with no owner is a
  /// leak (released via best-effort commands); an Active connection whose
  /// devices lost configuration has drifted (marked failed and queued for
  /// restoration).
  struct ResyncReport {
    std::size_t leaked_roadm_uses = 0;
    std::size_t leaked_fxc_connects = 0;
    std::size_t leaked_ots = 0;
    std::size_t leaked_regens = 0;
    std::size_t leaked_nte_ports = 0;
    std::size_t leaked_otn_circuits = 0;
    std::size_t drifted_connections = 0;
    std::size_t repair_commands = 0;
    [[nodiscard]] std::size_t total_leaks() const noexcept {
      return leaked_roadm_uses + leaked_fxc_connects + leaked_ots +
             leaked_regens + leaked_nte_ports + leaked_otn_circuits;
    }
  };
  using ResyncCallback = std::function<void(Result<ResyncReport>)>;

  /// Audit device state against the inventory and repair divergence. Runs
  /// only when the control plane is quiescent (no command trains or
  /// transitional connections) — kBusy otherwise. Triggered automatically
  /// (with deferral until quiescent) when an EMS announces a restart.
  void resync(ResyncCallback cb);

  /// True when no EMS commands or connection state machines are in flight.
  [[nodiscard]] bool quiescent() const;

  [[nodiscard]] const EmsHealthTracker& ems_health() const noexcept {
    return ems_health_;
  }

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] const Inventory& inventory() const noexcept {
    return inventory_;
  }
  [[nodiscard]] const FailureManager& failure_manager() const noexcept {
    return failures_;
  }
  [[nodiscard]] NetworkModel& model() noexcept { return *model_; }
  /// Shared RWA engine — the BoD service layer plans routes (and hits the
  /// exclusion-keyed route cache) through the same engine restoration uses.
  [[nodiscard]] const RwaEngine& rwa() const noexcept { return rwa_; }

  /// Observer hook for localized plant events: called with the root-cause
  /// links after the controller's own failure/repair handling ran.
  /// `failed` is true for cuts, false for repairs. Used by the BoD
  /// TransferScheduler to re-schedule transfers whose reserved routes lost
  /// capacity mid-flight. One observer; set empty to detach.
  using TopologyObserver =
      std::function<void(const std::vector<LinkId>&, bool failed)>;
  void set_topology_observer(TopologyObserver observer) {
    topology_observer_ = std::move(observer);
  }

  /// Preemption hook: asked to free wavelength capacity between two PoPs
  /// when a gold restoration fails with resource exhaustion. The callee
  /// (the BoD TransferScheduler) tears down best-effort calendar windows
  /// whose routes could serve (src, dst) avoiding `avoid`, and returns how
  /// many windows it preempted. Capacity frees asynchronously — the
  /// retry backlog re-arms on the teardowns. One hook; set empty to
  /// detach.
  using PreemptionHook = std::function<std::size_t(
      NodeId src, NodeId dst, DataRate rate, const std::set<LinkId>& avoid)>;
  void set_preemption_hook(PreemptionHook hook) {
    preemption_hook_ = std::move(hook);
  }

  // --- restoration pipeline introspection ----------------------------------
  /// True from a correlated storm event until the restoration pipeline
  /// has drained (no queue, nothing in flight, no armed backlog retry).
  /// Reopt campaigns hold while this is set.
  [[nodiscard]] bool restoration_storm_active() const noexcept {
    return storm_active_;
  }
  /// Failed-restoration entries awaiting retry (armed or dormant).
  [[nodiscard]] std::size_t restoration_backlog_depth() const noexcept {
    return restore_backlog_.size();
  }
  [[nodiscard]] std::size_t restorations_in_flight() const noexcept {
    return restorations_in_flight_;
  }
  [[nodiscard]] std::size_t restoration_queue_depth() const noexcept {
    return restore_queue_.size();
  }
  /// Re-arm every backlogged restoration now (capacity may have freed).
  /// Called internally after teardowns, completed rolls and repairs; public
  /// for the shell and operators. `reset_attempts` restarts the
  /// exponential-backoff clock (repairs do; capacity kicks keep it).
  void kick_restoration_backlog(bool reset_attempts = false);

  struct Stats {
    std::size_t setups_ok = 0;
    std::size_t setups_failed = 0;
    std::size_t releases = 0;
    std::size_t restorations_ok = 0;
    std::size_t restorations_failed = 0;
    std::size_t restorations_retried = 0;     ///< backlog retry launches
    std::size_t restorations_non_diverse = 0; ///< SRLG-diverse plan fallback
    std::size_t preemptions_requested = 0;    ///< hook invocations
    std::size_t bod_windows_preempted = 0;    ///< windows the hook freed
    std::size_t rolls_ok = 0;
    std::size_t rolls_failed = 0;
    std::size_t commands_issued = 0;
    std::size_t commands_retried = 0;  ///< application-level retries
    std::size_t commands_shed = 0;     ///< failed fast: breaker open
    std::size_t resync_runs = 0;
    std::size_t resync_leaks = 0;
    std::size_t resync_drift = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Stable digest of all configured device state (ROADM uses, FXC
  /// cross-connects, OT tuning/activation, regens, NTE ports, OTN
  /// circuits), independent of the order commands were applied in. Two
  /// controllers that provisioned the same connections must produce equal
  /// digests regardless of ExecMode — the equivalence tests hold the DAG
  /// executor to that.
  [[nodiscard]] std::string device_state_digest() const;

  /// Execution report of the most recent DAG-mode command train (setup,
  /// teardown, restore...), for the shell's `dag` view. Empty steps when no
  /// DAG train has run yet.
  [[nodiscard]] const StepDagReport& last_dag_report() const noexcept {
    return last_dag_report_;
  }

 private:
  // Step/StepList live in core/step_dag.hpp — builders attach dependency
  // edges there and the DAG executor consumes them.

  // Sequencing machinery. `done` receives the first error (or success) and
  // the indices of steps that succeeded (rollback input).
  using RunDone = std::function<void(Status, std::vector<std::size_t>)>;
  struct RunState;
  /// Execute a command list under params_.exec_mode (see ExecMode).
  /// `best_effort` keeps going past failures (teardown paths). A non-zero
  /// `parent_span` wraps every command in a child telemetry span (named
  /// after the command, e.g. "ot.tune"), inheriting the parent's tag.
  void run_steps(std::shared_ptr<StepList> steps, bool best_effort,
                 RunDone done, std::uint64_t parent_span = 0);
  /// Same, with an explicit executor (rollback forces the DAG executor
  /// under kPipelined so reverse ordering holds; everything else goes
  /// through run_steps).
  void run_steps_as(ExecMode mode, std::shared_ptr<StepList> steps,
                    bool best_effort, RunDone done,
                    std::uint64_t parent_span);
  void run_steps_sequential(std::shared_ptr<RunState> state, std::size_t at);
  void run_steps_pipelined(std::shared_ptr<RunState> state);
  void run_steps_dag(std::shared_ptr<RunState> state);
  void pump_dag(const std::shared_ptr<RunState>& state);
  void finish_dag(const std::shared_ptr<RunState>& state);
  /// Issue one EMS command with circuit-breaker check and bounded
  /// exponential-backoff retry. `cb` fires once with the final outcome
  /// (kUnavailable without touching the wire when the domain's breaker is
  /// open). Every controller command goes through here.
  void issue_command(proto::RequestClient* client, proto::Message message,
                     proto::RequestClient::ResponseCallback cb,
                     int attempt = 1, std::uint64_t idem_key = 0);
  [[nodiscard]] SimTime retry_delay(int attempt);
  [[nodiscard]] const std::string& domain_of(
      const proto::RequestClient* client) const;
  /// Run undo commands of the given steps in reverse completion order
  /// (dependents' undos strictly before their dependencies' undos),
  /// ignoring errors, then call done.
  void rollback_steps(std::shared_ptr<StepList> steps,
                      std::vector<std::size_t> succeeded,
                      std::function<void()> done);

  /// Probe-free optical admission: re-checks the plan's transparent
  /// segments against the reach model's OSNR budget before any EMS command
  /// is issued, and records the margin as a zero-duration telemetry event
  /// under `parent_span`. Returns kUnreachable when a segment has negative
  /// margin — the setup fails fast instead of discovering the problem via
  /// per-segment quality probes mid-train.
  [[nodiscard]] Status admit_optical_plan(const WavelengthPlan& plan,
                                          DataRate rate,
                                          std::uint64_t parent_span);

  // Plan -> command sequences.
  [[nodiscard]] StepList build_wavelength_setup(const Connection& c,
                                                const WavelengthPlan& plan,
                                                bool include_access) const;
  [[nodiscard]] StepList build_wavelength_teardown(
      const Connection& c, const WavelengthPlan& plan,
      bool include_access) const;
  [[nodiscard]] StepList build_access_setup(const Connection& c,
                                            const WavelengthPlan& plan) const;

  // Reservation bookkeeping around a plan.
  void reserve_plan(const WavelengthPlan& plan);
  void unreserve_plan(const WavelengthPlan& plan);

  // Setup flows.
  void setup_wavelength(ConnectionId id, SetupCallback cb);
  void setup_subwavelength(ConnectionId id, SetupCallback cb);
  void send_otn_create(ConnectionId id, SetupCallback cb, bool allow_groom);
  void setup_subwavelength_access(ConnectionId id, SetupCallback cb);
  void finish_setup(ConnectionId id, Status status, SetupCallback cb);

  // Failure handling.
  void handle_alarm_frame(const proto::Frame& frame);
  void on_links_failed(const FailureManager::FailureEvent& event);
  void on_links_repaired(const std::vector<LinkId>& links);
  /// Queue a failed restorable connection; the queue drains in tier order
  /// (gold first), up to restoration.max_concurrent at a time.
  void enqueue_restoration(ConnectionId id);
  void pump_restorations();
  void restore_wavelength(ConnectionId id, std::function<void()> done);
  void restore_subwavelength(ConnectionId id);
  /// Record a failed attempt in the retry backlog: exponential backoff
  /// while timed retries remain, dormant (event-driven only) after.
  void backlog_restoration(ConnectionId id, const std::string& why);
  [[nodiscard]] SimTime restoration_retry_delay(int attempt) const;
  /// Clear the storm flag once the pipeline has fully drained.
  void maybe_clear_storm();
  void update_restoration_gauges();
  void mark_failed(Connection& c);
  void mark_recovered(Connection& c);

  // Bridge-and-roll core (shared by maintenance, re-groom, reversion).
  void roll_to_plan(ConnectionId id, const WavelengthPlan& new_plan,
                    DoneCallback cb);

  // Reconciliation.
  void schedule_resync();
  void try_auto_resync();
  void do_resync(std::function<void(const ResyncReport&)> done);
  /// Expected device configuration of every live connection + groomed
  /// carrier, expressed as the setup command lists that would create it.
  [[nodiscard]] StepList build_expected_steps() const;
  [[nodiscard]] StepList expected_steps_for(const Connection& c) const;

  [[nodiscard]] Connection& conn(ConnectionId id);
  [[nodiscard]] Connection* find_conn(ConnectionId id);
  [[nodiscard]] Result<std::size_t> pick_free_nte_port(MuxponderId nte);
  void release_nte_port(MuxponderId nte, std::size_t port);
  void trace(sim::TraceLevel level, const std::string& event,
             const std::string& detail);

  NetworkModel* model_;
  Params params_;
  Inventory inventory_;
  RwaEngine rwa_;
  FailureManager failures_;
  EmsHealthTracker ems_health_;
  std::map<ConnectionId, Connection> connections_;
  std::map<OduCircuitId, ConnectionId> odu_to_connection_;
  std::size_t carriers_groomed_ = 0;
  std::map<CarrierId, WavelengthPlan> groomed_plans_;
  std::set<std::pair<MuxponderId, std::size_t>> reserved_nte_ports_;
  std::vector<ConnectionId> restore_queue_;  ///< ready, tier-sorted
  /// Failed restorations awaiting another try. An entry lives from the
  /// first failed attempt until the connection recovers or is released;
  /// non-dormant entries always have either a backoff timer armed, a
  /// queue slot, or an attempt in flight.
  struct BacklogEntry {
    int attempts = 0;           ///< failed attempts so far
    int preemptions = 0;        ///< BoD preemption rounds triggered
    bool dormant = false;       ///< timed retries exhausted; event-driven
    std::uint64_t generation = 0;  ///< bumps on re-arm; stale timers no-op
  };
  std::map<ConnectionId, BacklogEntry> restore_backlog_;
  std::size_t restorations_in_flight_ = 0;
  /// In-flight restorations per dominant EMS domain (admission window).
  std::map<std::string, std::size_t> restoration_domain_inflight_;
  bool storm_active_ = false;
  std::size_t pending_commands_ = 0;  ///< EMS commands awaiting a response
  bool resync_scheduled_ = false;
  int resync_attempts_ = 0;
  std::map<const proto::RequestClient*, std::string> client_domains_;
  TopologyObserver topology_observer_;
  PreemptionHook preemption_hook_;
  IdAllocator<ConnectionId> ids_;
  Stats stats_;
  StepDagReport last_dag_report_;
};

}  // namespace griphon::core
