#include "core/ems_health.hpp"

#include "telemetry/telemetry.hpp"

namespace griphon::core {

bool EmsHealthTracker::allow(const std::string& domain) {
  Domain& d = domain_of(domain);
  switch (d.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (engine_->now() - d.opened_at < params_.open_cooldown) {
        ++stats_.fast_failures;
        return false;
      }
      // Cooldown over: admit this caller as the half-open probe.
      d.state = BreakerState::kHalfOpen;
      d.probe_in_flight = true;
      gauge_set(domain, 0.5);
      return true;
    case BreakerState::kHalfOpen:
      if (d.probe_in_flight) {
        ++stats_.fast_failures;
        return false;  // one probe at a time
      }
      d.probe_in_flight = true;
      return true;
  }
  return true;
}

void EmsHealthTracker::record_success(const std::string& domain) {
  Domain& d = domain_of(domain);
  d.consecutive_timeouts = 0;
  d.probe_in_flight = false;
  if (d.state != BreakerState::kClosed) close_breaker(domain, d);
}

void EmsHealthTracker::record_timeout(const std::string& domain) {
  Domain& d = domain_of(domain);
  ++d.consecutive_timeouts;
  d.probe_in_flight = false;
  if (d.state == BreakerState::kHalfOpen ||
      (d.state == BreakerState::kClosed &&
       d.consecutive_timeouts >= params_.failure_threshold))
    open_breaker(domain, d);
}

EmsHealthTracker::BreakerState EmsHealthTracker::state(
    const std::string& domain) const {
  const auto it = domains_.find(domain);
  return it == domains_.end() ? BreakerState::kClosed : it->second.state;
}

int EmsHealthTracker::consecutive_timeouts(const std::string& domain) const {
  const auto it = domains_.find(domain);
  return it == domains_.end() ? 0 : it->second.consecutive_timeouts;
}

void EmsHealthTracker::open_breaker(const std::string& name, Domain& d) {
  d.state = BreakerState::kOpen;
  d.opened_at = engine_->now();
  ++stats_.opens;
  if (telemetry_ != nullptr) {
    telemetry_
        ->metrics()
        .counter("griphon_controller_ems_breaker_opened_total",
                 "Circuit-breaker open transitions", {{"domain", name}})
        ->inc();
    gauge_set(name, 1.0);
    telemetry_->event(telemetry::Severity::kWarn, "breaker", name + "-ems",
                      "circuit breaker opened after " +
                          std::to_string(d.consecutive_timeouts) +
                          " consecutive timeouts");
  }
}

void EmsHealthTracker::close_breaker(const std::string& name, Domain& d) {
  d.state = BreakerState::kClosed;
  ++stats_.closes;
  if (telemetry_ != nullptr) {
    telemetry_
        ->metrics()
        .counter("griphon_controller_ems_breaker_closed_total",
                 "Circuit-breaker close transitions", {{"domain", name}})
        ->inc();
    gauge_set(name, 0.0);
    telemetry_->event(telemetry::Severity::kInfo, "breaker", name + "-ems",
                      "circuit breaker closed (probe succeeded)");
  }
}

void EmsHealthTracker::gauge_set(const std::string& name, double value) {
  if (telemetry_ == nullptr) return;
  telemetry_
      ->metrics()
      .gauge("griphon_controller_ems_breaker_open",
             "1 = breaker open, 0.5 = half-open, 0 = closed",
             {{"domain", name}})
      ->set(value);
}

}  // namespace griphon::core
