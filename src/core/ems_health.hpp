// Per-EMS-domain health tracking: a consecutive-timeout circuit breaker.
//
// Every controller EMS command reports its transport outcome here. A run
// of consecutive timeouts against one domain trips that domain's breaker
// open: further commands fail fast with kUnavailable instead of burning
// 30-second protocol timeouts against a dead EMS. After a cooldown the
// breaker goes half-open and admits one probe command; a success closes
// it, another timeout re-opens it. Modelled on the classic Nygard circuit
// breaker; thresholds are deliberately conservative (an EMS restart takes
// tens of seconds, a retransmit storm should not flap the breaker).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/units.hpp"
#include "sim/engine.hpp"

namespace griphon::telemetry {
class Telemetry;
}  // namespace griphon::telemetry

namespace griphon::core {

class EmsHealthTracker {
 public:
  struct Params {
    /// Consecutive transport timeouts that trip the breaker open.
    int failure_threshold = 3;
    /// Open -> half-open after this cooldown (one probe admitted).
    SimTime open_cooldown = seconds(45);
  };

  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  EmsHealthTracker(sim::Engine* engine, Params params)
      : engine_(engine), params_(params) {}

  /// May a command be issued to `domain` right now? False while the
  /// breaker is open (callers fail fast with kUnavailable). In half-open
  /// state exactly one caller is admitted as the probe until its outcome
  /// is recorded.
  [[nodiscard]] bool allow(const std::string& domain);

  void record_success(const std::string& domain);
  void record_timeout(const std::string& domain);

  [[nodiscard]] BreakerState state(const std::string& domain) const;
  [[nodiscard]] int consecutive_timeouts(const std::string& domain) const;

  struct Stats {
    std::uint64_t opens = 0;
    std::uint64_t closes = 0;
    std::uint64_t fast_failures = 0;  ///< commands shed while open
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Attach/detach telemetry (null = fast path). Registers
  /// griphon_controller_ems_breaker_{opened,closed}_total counters and a
  /// griphon_controller_ems_breaker_open gauge, labelled per domain.
  void set_telemetry(telemetry::Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

 private:
  struct Domain {
    BreakerState state = BreakerState::kClosed;
    int consecutive_timeouts = 0;
    SimTime opened_at{};
    bool probe_in_flight = false;
  };

  Domain& domain_of(const std::string& name) { return domains_[name]; }
  void open_breaker(const std::string& name, Domain& d);
  void close_breaker(const std::string& name, Domain& d);
  void gauge_set(const std::string& name, double value);

  sim::Engine* engine_;
  Params params_;
  std::map<std::string, Domain> domains_;
  Stats stats_;
  telemetry::Telemetry* telemetry_ = nullptr;
};

[[nodiscard]] constexpr const char* to_string(
    EmsHealthTracker::BreakerState s) noexcept {
  switch (s) {
    case EmsHealthTracker::BreakerState::kClosed:
      return "closed";
    case EmsHealthTracker::BreakerState::kOpen:
      return "open";
    case EmsHealthTracker::BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

}  // namespace griphon::core
