#include "core/failure_manager.hpp"

namespace griphon::core {

void FailureManager::ingest(const Alarm& alarm) {
  ++ingested_;
  if (!alarm.link) return;  // only line-side alarms localize fiber faults
  switch (alarm.type) {
    case AlarmType::kLos:
    case AlarmType::kLof:
      pending_los_[*alarm.link].insert(alarm.source);
      if (!failure_window_open_) {
        failure_window_open_ = true;
        engine_->schedule(params_.holddown, [this]() {
          failure_window_open_ = false;
          correlate_failures();
        });
      }
      break;
    case AlarmType::kClear:
      pending_clear_[*alarm.link].insert(alarm.source);
      if (!repair_window_open_) {
        repair_window_open_ = true;
        engine_->schedule(params_.holddown, [this]() {
          repair_window_open_ = false;
          correlate_repairs();
        });
      }
      break;
    default:
      break;
  }
}

void FailureManager::correlate_failures() {
  std::vector<LinkId> localized;
  for (const auto& [link, sources] : pending_los_) {
    // Two independent reporting elements confirm a cut; a single reporter
    // still localizes (the far degree may simply be unequipped), but only
    // links not already believed failed produce a new event.
    if (believed_failed_.contains(link)) continue;
    believed_failed_.insert(link);
    localized.push_back(link);
  }
  pending_los_.clear();
  if (!localized.empty() && failure_handler_) failure_handler_(localized);
}

void FailureManager::correlate_repairs() {
  std::vector<LinkId> repaired;
  for (const auto& [link, sources] : pending_clear_) {
    if (!believed_failed_.contains(link)) continue;
    believed_failed_.erase(link);
    repaired.push_back(link);
  }
  pending_clear_.clear();
  if (!repaired.empty() && repair_handler_) repair_handler_(repaired);
}

}  // namespace griphon::core
