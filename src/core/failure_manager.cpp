#include "core/failure_manager.hpp"

#include "telemetry/telemetry.hpp"

namespace griphon::core {

void FailureManager::ingest(const Alarm& alarm) {
  ++ingested_;
  if (telemetry_ != nullptr)
    telemetry_
        ->metrics()
        .counter("griphon_failure_alarms_ingested_total",
                 "Raw alarms fed to the failure manager")
        ->inc();
  if (!alarm.link) return;  // only line-side alarms localize fiber faults
  switch (alarm.type) {
    case AlarmType::kLos:
    case AlarmType::kLof:
      // First alarm of a cut closes the plant's pending detect note:
      // the `detect` span runs fiber-cut -> first alarm seen here.
      if (telemetry_ != nullptr) telemetry_->close_detect(alarm.link->value());
      pending_los_[*alarm.link].insert(alarm.source);
      if (!failure_window_open_) {
        failure_window_open_ = true;
        failure_window_opened_at_ = engine_->now();
        engine_->schedule(params_.holddown, [this]() {
          failure_window_open_ = false;
          correlate_failures();
        });
      }
      break;
    case AlarmType::kClear:
      pending_clear_[*alarm.link].insert(alarm.source);
      if (!repair_window_open_) {
        repair_window_open_ = true;
        engine_->schedule(params_.holddown, [this]() {
          repair_window_open_ = false;
          correlate_repairs();
        });
      }
      break;
    default:
      break;
  }
}

void FailureManager::correlate_failures() {
  std::vector<LinkId> localized;
  for (const auto& [link, sources] : pending_los_) {
    // Two independent reporting elements confirm a cut; a single reporter
    // still localizes (the far degree may simply be unequipped), but only
    // links not already believed failed produce a new event.
    if (believed_failed_.contains(link)) continue;
    believed_failed_.insert(link);
    localized.push_back(link);
  }
  pending_los_.clear();
  if (telemetry_ != nullptr && !localized.empty()) {
    // Localize = the correlation window: first alarm -> localization fire.
    telemetry_->span_record("localize", "failure-manager", 0, 0,
                            failure_window_opened_at_, engine_->now(), true,
                            std::to_string(localized.size()) + " link(s)");
    auto& m = telemetry_->metrics();
    m.counter("griphon_failure_links_localized_total",
              "Fiber faults localized by alarm correlation")
        ->inc(localized.size());
    m.histogram("griphon_failure_localize_seconds",
                "First alarm to localized root cause")
        ->observe(to_seconds(engine_->now() - failure_window_opened_at_));
  }
  if (!localized.empty() && failure_handler_) failure_handler_(localized);
}

void FailureManager::correlate_repairs() {
  std::vector<LinkId> repaired;
  for (const auto& [link, sources] : pending_clear_) {
    if (!believed_failed_.contains(link)) continue;
    believed_failed_.erase(link);
    repaired.push_back(link);
  }
  pending_clear_.clear();
  if (telemetry_ != nullptr && !repaired.empty())
    telemetry_
        ->metrics()
        .counter("griphon_failure_links_repaired_total",
                 "Repairs confirmed by CLEAR correlation")
        ->inc(repaired.size());
  if (!repaired.empty() && repair_handler_) repair_handler_(repaired);
}

}  // namespace griphon::core
