#include "core/failure_manager.hpp"

#include "telemetry/telemetry.hpp"

namespace griphon::core {

void FailureManager::ingest(const Alarm& alarm) {
  ++ingested_;
  if (telemetry_ != nullptr)
    telemetry_
        ->metrics()
        .counter("griphon_failure_alarms_ingested_total",
                 "Raw alarms fed to the failure manager")
        ->inc();
  if (!alarm.link) return;  // only line-side alarms localize fiber faults
  switch (alarm.type) {
    case AlarmType::kLos:
    case AlarmType::kLof:
      // First alarm of a cut closes the plant's pending detect note:
      // the `detect` span runs fiber-cut -> first alarm seen here.
      if (telemetry_ != nullptr) telemetry_->close_detect(alarm.link->value());
      pending_los_[*alarm.link].insert(alarm.source);
      if (!failure_window_open_) {
        failure_window_open_ = true;
        failure_window_opened_at_ = engine_->now();
        engine_->schedule(params_.holddown, [this]() {
          failure_window_open_ = false;
          correlate_failures();
        });
      }
      break;
    case AlarmType::kClear:
      pending_clear_[*alarm.link].insert(alarm.source);
      if (!repair_window_open_) {
        repair_window_open_ = true;
        engine_->schedule(params_.holddown, [this]() {
          repair_window_open_ = false;
          correlate_repairs();
        });
      }
      break;
    default:
      break;
  }
}

FailureManager::FailureEvent FailureManager::classify(
    std::vector<LinkId> links) const {
  FailureEvent event;
  event.links = std::move(links);
  // Group the localized links by shared risk: two links are conduit-mates
  // when the resolver puts them in each other's sibling sets. A cut link
  // whose group lost >= 2 members in this same window is the SRLG
  // signature of a conduit cut.
  std::set<LinkId> unassigned(event.links.begin(), event.links.end());
  bool correlated = false;
  while (!unassigned.empty()) {
    const LinkId seed = *unassigned.begin();
    unassigned.erase(unassigned.begin());
    ++event.conduits;
    if (!srlg_resolver_) continue;
    std::size_t group_size = 1;
    for (const LinkId sibling : srlg_resolver_(seed)) {
      if (sibling == seed) continue;
      if (unassigned.erase(sibling) != 0) ++group_size;
    }
    if (group_size >= 2) correlated = true;
  }
  event.storm =
      correlated || event.links.size() >= params_.storm_link_threshold;
  return event;
}

void FailureManager::correlate_failures() {
  std::vector<LinkId> localized;
  for (const auto& [link, sources] : pending_los_) {
    // Two independent reporting elements confirm a cut; a single reporter
    // still localizes (the far degree may simply be unequipped), but only
    // links not already believed failed produce a new event.
    if (believed_failed_.contains(link)) continue;
    believed_failed_.insert(link);
    localized.push_back(link);
  }
  pending_los_.clear();
  if (localized.empty()) return;
  FailureEvent event = classify(std::move(localized));
  if (event.storm) ++storms_seen_;
  if (telemetry_ != nullptr) {
    // Localize = the correlation window: first alarm -> localization fire.
    telemetry_->span_record(
        "localize", "failure-manager", 0, 0, failure_window_opened_at_,
        engine_->now(), true,
        std::to_string(event.links.size()) + " link(s), " +
            std::to_string(event.conduits) + " conduit(s)" +
            (event.storm ? ", storm" : ""));
    auto& m = telemetry_->metrics();
    m.counter("griphon_failure_links_localized_total",
              "Fiber faults localized by alarm correlation")
        ->inc(event.links.size());
    m.histogram("griphon_failure_localize_seconds",
                "First alarm to localized root cause")
        ->observe(to_seconds(engine_->now() - failure_window_opened_at_));
    if (event.storm)
      m.counter("griphon_failure_storms_total",
                "Correlated failure storms (SRLG-sibling or wide bursts)")
          ->inc();
  }
  if (failure_handler_) failure_handler_(event);
}

void FailureManager::correlate_repairs() {
  std::vector<LinkId> repaired;
  for (const auto& [link, sources] : pending_clear_) {
    if (!believed_failed_.contains(link)) continue;
    believed_failed_.erase(link);
    repaired.push_back(link);
  }
  pending_clear_.clear();
  if (telemetry_ != nullptr && !repaired.empty())
    telemetry_
        ->metrics()
        .counter("griphon_failure_links_repaired_total",
                 "Repairs confirmed by CLEAR correlation")
        ->inc(repaired.size());
  if (!repaired.empty() && repair_handler_) repair_handler_(repaired);
}

}  // namespace griphon::core
