// Failure detection and localization.
//
// The controller receives raw per-channel alarms from the EMSs (a single
// fiber cut raises one LOS per configured channel per end ROADM). The
// failure manager holds alarms for a correlation window, then localizes:
// a link reported by ROADMs on *both* ends is a confirmed fiber cut; a
// link reported from one end only is still suspected (the far ROADM may
// carry nothing on that degree). CLEAR alarms are correlated the same way
// into repair notifications.
//
// Correlated storms: a backhoe severing one conduit takes down every SRLG
// sibling fiber at once, so the alarms of all siblings land inside the
// same holddown window. With an SRLG resolver attached the manager groups
// the localized links by shared-risk group and classifies the event — one
// FailureEvent per window, flagged as a storm when a conduit lost more
// than one fiber or the window collapsed a wide multi-link burst.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/alarm.hpp"
#include "sim/engine.hpp"

namespace griphon::telemetry {
class Telemetry;
}  // namespace griphon::telemetry

namespace griphon::core {

class FailureManager {
 public:
  /// One localized failure event: the root-cause links of one holddown
  /// window, plus the SRLG view of them. `conduits` counts distinct
  /// shared-risk groups among the links (links without a group count as a
  /// conduit of their own); `storm` is set when the event is correlated —
  /// an SRLG group lost two or more links at once, or the window
  /// collapsed at least `Params::storm_link_threshold` links.
  struct FailureEvent {
    std::vector<LinkId> links;
    std::size_t conduits = 0;
    bool storm = false;
  };

  /// Called once per localized event with the root-cause links.
  using FailureHandler = std::function<void(const FailureEvent&)>;
  using RepairHandler = std::function<void(const std::vector<LinkId>&)>;
  /// Maps a link to every link sharing its SRLG (including itself);
  /// typically Graph::srlg_siblings. Unset = every link is its own risk
  /// group (no storm classification by conduit).
  using SrlgResolver = std::function<std::vector<LinkId>(LinkId)>;

  struct Params {
    SimTime holddown = milliseconds(2500);  ///< alarm correlation window
    /// A window localizing at least this many links is a storm even
    /// without SRLG confirmation (a wide uncorrelated burst stresses the
    /// restoration pipeline exactly like a conduit cut does).
    std::size_t storm_link_threshold = 4;
  };

  FailureManager(sim::Engine* engine, Params params)
      : engine_(engine), params_(params) {}

  void on_failure(FailureHandler handler) {
    failure_handler_ = std::move(handler);
  }
  void on_repair(RepairHandler handler) {
    repair_handler_ = std::move(handler);
  }
  void set_srlg_resolver(SrlgResolver resolver) {
    srlg_resolver_ = std::move(resolver);
  }

  /// Feed a raw alarm (from any EMS event stream).
  void ingest(const Alarm& alarm);

  /// Attach/detach a telemetry sink (idempotent; the controller forwards
  /// the model's sink before each ingest). Enables the detect/localize
  /// spans and griphon_failure_* metrics. Null = fast path.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  [[nodiscard]] std::size_t alarms_ingested() const noexcept {
    return ingested_;
  }
  /// Links this manager currently believes are down.
  [[nodiscard]] const std::set<LinkId>& believed_failed() const noexcept {
    return believed_failed_;
  }
  /// Correlated storm events seen since construction.
  [[nodiscard]] std::size_t storms_seen() const noexcept {
    return storms_seen_;
  }

 private:
  void correlate_failures();
  void correlate_repairs();
  /// Group `links` by SRLG and classify the event (see FailureEvent).
  [[nodiscard]] FailureEvent classify(std::vector<LinkId> links) const;

  sim::Engine* engine_;
  Params params_;
  FailureHandler failure_handler_;
  RepairHandler repair_handler_;
  SrlgResolver srlg_resolver_;

  /// link -> reporting sources, for the window in progress.
  std::map<LinkId, std::set<std::string>> pending_los_;
  std::map<LinkId, std::set<std::string>> pending_clear_;
  bool failure_window_open_ = false;
  bool repair_window_open_ = false;
  SimTime failure_window_opened_at_{};
  std::set<LinkId> believed_failed_;
  std::size_t ingested_ = 0;
  std::size_t storms_seen_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace griphon::core
