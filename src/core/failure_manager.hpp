// Failure detection and localization.
//
// The controller receives raw per-channel alarms from the EMSs (a single
// fiber cut raises one LOS per configured channel per end ROADM). The
// failure manager holds alarms for a correlation window, then localizes:
// a link reported by ROADMs on *both* ends is a confirmed fiber cut; a
// link reported from one end only is still suspected (the far ROADM may
// carry nothing on that degree). CLEAR alarms are correlated the same way
// into repair notifications.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/alarm.hpp"
#include "sim/engine.hpp"

namespace griphon::telemetry {
class Telemetry;
}  // namespace griphon::telemetry

namespace griphon::core {

class FailureManager {
 public:
  /// Called once per localized event with the root-cause links.
  using FailureHandler = std::function<void(const std::vector<LinkId>&)>;
  using RepairHandler = std::function<void(const std::vector<LinkId>&)>;

  struct Params {
    SimTime holddown = milliseconds(2500);  ///< alarm correlation window
  };

  FailureManager(sim::Engine* engine, Params params)
      : engine_(engine), params_(params) {}

  void on_failure(FailureHandler handler) {
    failure_handler_ = std::move(handler);
  }
  void on_repair(RepairHandler handler) {
    repair_handler_ = std::move(handler);
  }

  /// Feed a raw alarm (from any EMS event stream).
  void ingest(const Alarm& alarm);

  /// Attach/detach a telemetry sink (idempotent; the controller forwards
  /// the model's sink before each ingest). Enables the detect/localize
  /// spans and griphon_failure_* metrics. Null = fast path.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  [[nodiscard]] std::size_t alarms_ingested() const noexcept {
    return ingested_;
  }
  /// Links this manager currently believes are down.
  [[nodiscard]] const std::set<LinkId>& believed_failed() const noexcept {
    return believed_failed_;
  }

 private:
  void correlate_failures();
  void correlate_repairs();

  sim::Engine* engine_;
  Params params_;
  FailureHandler failure_handler_;
  RepairHandler repair_handler_;

  /// link -> reporting sources, for the window in progress.
  std::map<LinkId, std::set<std::string>> pending_los_;
  std::map<LinkId, std::set<std::string>> pending_clear_;
  bool failure_window_open_ = false;
  bool repair_window_open_ = false;
  SimTime failure_window_opened_at_{};
  std::set<LinkId> believed_failed_;
  std::size_t ingested_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace griphon::core
