#include "core/inventory.hpp"

#include <algorithm>

namespace griphon::core {

dwdm::ChannelSet& Inventory::reserved_on(LinkId link) {
  if (link.value() >= reserved_by_link_.size())
    reserved_by_link_.resize(link.value() + 1);
  return reserved_by_link_[link.value()];
}

void Inventory::reserve_channel(LinkId link, dwdm::ChannelIndex ch) {
  dwdm::ChannelSet& set = reserved_on(link);
  if (!set.contains(ch)) {
    set.add(ch);
    ++channel_reservation_count_;
  }
}

void Inventory::release_channel(LinkId link, dwdm::ChannelIndex ch) {
  if (link.value() >= reserved_by_link_.size()) return;
  dwdm::ChannelSet& set = reserved_by_link_[link.value()];
  if (set.contains(ch)) {
    set.remove(ch);
    --channel_reservation_count_;
  }
}

bool Inventory::channel_reserved(LinkId link, dwdm::ChannelIndex ch) const {
  return link.value() < reserved_by_link_.size() &&
         reserved_by_link_[link.value()].contains(ch);
}

void Inventory::reserve_ot(TransponderId id) { reserved_ots_.insert(id); }
void Inventory::release_ot(TransponderId id) { reserved_ots_.erase(id); }
bool Inventory::ot_reserved(TransponderId id) const {
  return reserved_ots_.contains(id);
}

void Inventory::reserve_regen(RegenId id) { reserved_regens_.insert(id); }
void Inventory::release_regen(RegenId id) { reserved_regens_.erase(id); }
bool Inventory::regen_reserved(RegenId id) const {
  return reserved_regens_.contains(id);
}

dwdm::ChannelSet Inventory::available_on_link(LinkId link) const {
  if (model_->link_failed(link)) return {};
  const auto& l = model_->graph().link(link);
  const auto& ra = model_->roadm_at(l.a);
  const auto& rb = model_->roadm_at(l.b);
  const auto da = ra.degree_for(link);
  const auto db = rb.degree_for(link);
  if (!da || !db) return {};
  dwdm::ChannelSet set = ra.free_channels(*da);
  set.intersect(rb.free_channels(*db));
  if (link.value() < reserved_by_link_.size())
    set.subtract(reserved_by_link_[link.value()]);
  return set;
}

namespace {
/// Tuned-but-inactive OTs stay in the shared pool (the laser is lit but the
/// transponder carries nothing; it retunes on next use).
bool ot_is_free(const dwdm::Transponder& ot) {
  return ot.state() == dwdm::Transponder::State::kIdle ||
         ot.state() == dwdm::Transponder::State::kTuned;
}
}  // namespace

void Inventory::ensure_site_pools() const {
  const auto& ots = model_->ots();
  const std::size_t sites = model_->graph().nodes().size();
  if (ots_by_site_.size() != sites || indexed_ot_count_ != ots.size()) {
    ots_by_site_.assign(sites, {});
    for (const auto& ot : ots)
      if (ot->site().value() < sites)
        ots_by_site_[ot->site().value()].push_back(ot.get());
    for (auto& pool : ots_by_site_)
      std::sort(pool.begin(), pool.end(),
                [](const dwdm::Transponder* a, const dwdm::Transponder* b) {
                  if (a->line_rate() != b->line_rate())
                    return a->line_rate() < b->line_rate();
                  return a->id() < b->id();
                });
    indexed_ot_count_ = ots.size();
  }
  const auto& regens = model_->regens();
  if (regens_by_site_.size() != sites ||
      indexed_regen_count_ != regens.size()) {
    regens_by_site_.assign(sites, {});
    for (const auto& regen : regens)
      if (regen->site().value() < sites)
        regens_by_site_[regen->site().value()].push_back(regen.get());
    indexed_regen_count_ = regens.size();
  }
}

std::optional<TransponderId> Inventory::find_free_ot(
    NodeId node, DataRate min_rate) const {
  ensure_site_pools();
  if (node.value() >= ots_by_site_.size()) return std::nullopt;
  // The pool is sorted by (line_rate, id): the first free adequate entry
  // is the smallest adequate line rate — don't burn a 40G transponder on
  // a 10G service while a 10G unit sits idle.
  for (const dwdm::Transponder* ot : ots_by_site_[node.value()]) {
    if (ot->line_rate() < min_rate) continue;
    if (!ot_is_free(*ot)) continue;
    if (ot_reserved(ot->id())) continue;
    return ot->id();
  }
  return std::nullopt;
}

std::size_t Inventory::free_ot_count(NodeId node, DataRate min_rate) const {
  ensure_site_pools();
  if (node.value() >= ots_by_site_.size()) return 0;
  std::size_t n = 0;
  for (const dwdm::Transponder* ot : ots_by_site_[node.value()]) {
    if (ot->line_rate() >= min_rate && ot_is_free(*ot) &&
        !ot_reserved(ot->id()))
      ++n;
  }
  return n;
}

std::optional<RegenId> Inventory::find_free_regen(
    NodeId node, DataRate min_rate, const std::set<RegenId>& exclude) const {
  ensure_site_pools();
  if (node.value() >= regens_by_site_.size()) return std::nullopt;
  for (const dwdm::Regenerator* regen : regens_by_site_[node.value()]) {
    if (regen->in_use()) continue;
    if (regen->line_rate() < min_rate) continue;
    if (regen_reserved(regen->id())) continue;
    if (exclude.contains(regen->id())) continue;
    return regen->id();
  }
  return std::nullopt;
}

std::size_t Inventory::free_regen_count(NodeId node,
                                        DataRate min_rate) const {
  ensure_site_pools();
  if (node.value() >= regens_by_site_.size()) return 0;
  std::size_t n = 0;
  for (const dwdm::Regenerator* regen : regens_by_site_[node.value()]) {
    if (!regen->in_use() && regen->line_rate() >= min_rate &&
        !regen_reserved(regen->id()))
      ++n;
  }
  return n;
}

void Inventory::ensure_usage_table() const {
  const std::uint64_t version = model_->plant_version();
  if (usage_valid_ && usage_version_ == version) return;
  usage_.assign(model_->grid().count(), 0);
  for (const auto& link : model_->graph().links()) {
    const auto& roadm = model_->roadm_at(link.a);
    const auto degree = roadm.degree_for(link.id);
    if (!degree) continue;
    roadm.used_channels(*degree).for_each([this](dwdm::ChannelIndex ch) {
      if (static_cast<std::size_t>(ch) < usage_.size()) ++usage_[ch];
    });
  }
  usage_version_ = version;
  usage_valid_ = true;
}

std::size_t Inventory::channel_usage(dwdm::ChannelIndex ch) const {
  ensure_usage_table();
  if (ch < 0 || static_cast<std::size_t>(ch) >= usage_.size()) return 0;
  return usage_[ch];
}

}  // namespace griphon::core
