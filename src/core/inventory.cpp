#include "core/inventory.hpp"

#include <algorithm>

namespace griphon::core {

namespace {
/// Tuned-but-inactive OTs stay in the shared pool (the laser is lit but the
/// transponder carries nothing; it retunes on next use).
bool ot_is_free(const dwdm::Transponder& ot) {
  return ot.state() == dwdm::Transponder::State::kIdle ||
         ot.state() == dwdm::Transponder::State::kTuned;
}
}  // namespace

Inventory::~Inventory() {
  if (listening_ != nullptr) listening_->set_device_observers({}, {});
}

void Inventory::attach_device_listeners(NetworkModel* model) {
  listening_ = model;
  model->set_device_observers(
      [this](const dwdm::Transponder& ot) { on_ot_changed(ot); },
      [this](const dwdm::Regenerator& regen) { on_regen_changed(regen); });
}

void Inventory::on_ot_changed(const dwdm::Transponder& ot) {
  MutexLock lock(&mu_);
  if (!built_) return;  // the next snapshot() scans from scratch anyway
  if (ot_is_free(ot))
    detail::bit_set(ot_device_free_bits_, ot.id().value());
  else
    detail::bit_clear(ot_device_free_bits_, ot.id().value());
  // The observer fires after the model bumped device_version(), so the
  // incrementally-maintained bits are exactly the state at that version
  // and the next snapshot() skips the full rebuild.
  built_device_version_ = model_->device_version();
  overlay_dirty_ = true;
}

void Inventory::on_regen_changed(const dwdm::Regenerator& regen) {
  MutexLock lock(&mu_);
  if (!built_) return;
  if (!regen.in_use())
    detail::bit_set(regen_device_free_bits_, regen.id().value());
  else
    detail::bit_clear(regen_device_free_bits_, regen.id().value());
  built_device_version_ = model_->device_version();
  overlay_dirty_ = true;
}

// --- Snapshot reads ---------------------------------------------------------

std::optional<TransponderId> Inventory::Snapshot::find_free_ot(
    NodeId node, DataRate min_rate) const {
  if (node.value() >= pools_->ots_by_site.size()) return std::nullopt;
  // Sorted by (line_rate, id): first free adequate entry is the smallest
  // adequate rate with the lowest id — identical to the live query.
  for (const OtEntry& e : pools_->ots_by_site[node.value()]) {
    if (e.rate < min_rate) continue;
    if (!detail::bit_test(ot_free_bits_, e.id.value())) continue;
    return e.id;
  }
  return std::nullopt;
}

std::size_t Inventory::Snapshot::free_ot_count(NodeId node,
                                               DataRate min_rate) const {
  if (node.value() >= pools_->ots_by_site.size()) return 0;
  std::size_t n = 0;
  for (const OtEntry& e : pools_->ots_by_site[node.value()])
    if (e.rate >= min_rate && detail::bit_test(ot_free_bits_, e.id.value()))
      ++n;
  return n;
}

std::optional<RegenId> Inventory::Snapshot::find_free_regen(
    NodeId node, DataRate min_rate, const std::set<RegenId>& exclude) const {
  if (node.value() >= pools_->regens_by_site.size()) return std::nullopt;
  for (const RegenEntry& e : pools_->regens_by_site[node.value()]) {
    if (!detail::bit_test(regen_free_bits_, e.id.value())) continue;
    if (e.rate < min_rate) continue;
    if (exclude.contains(e.id)) continue;
    return e.id;
  }
  return std::nullopt;
}

std::size_t Inventory::Snapshot::free_regen_count(NodeId node,
                                                  DataRate min_rate) const {
  if (node.value() >= pools_->regens_by_site.size()) return 0;
  std::size_t n = 0;
  for (const RegenEntry& e : pools_->regens_by_site[node.value()])
    if (e.rate >= min_rate && detail::bit_test(regen_free_bits_, e.id.value()))
      ++n;
  return n;
}

// --- reservation overlay ----------------------------------------------------

dwdm::ChannelSet& Inventory::reserved_on_locked(LinkId link) {
  if (link.value() >= reserved_by_link_.size())
    reserved_by_link_.resize(link.value() + 1);
  return reserved_by_link_[link.value()];
}

void Inventory::reserve_channel(LinkId link, dwdm::ChannelIndex ch) {
  MutexLock lock(&mu_);
  dwdm::ChannelSet& set = reserved_on_locked(link);
  if (!set.contains(ch)) {
    set.add(ch);
    ++channel_reservation_count_;
    if (built_ && link.value() < net_avail_.size())
      net_avail_[link.value()].remove(ch);
    overlay_dirty_ = true;
  }
}

void Inventory::release_channel(LinkId link, dwdm::ChannelIndex ch) {
  MutexLock lock(&mu_);
  if (link.value() >= reserved_by_link_.size()) return;
  dwdm::ChannelSet& set = reserved_by_link_[link.value()];
  if (set.contains(ch)) {
    set.remove(ch);
    --channel_reservation_count_;
    // Back into the net availability iff the device layer still offers it.
    if (built_ && link.value() < net_avail_.size() &&
        device_avail_[link.value()].contains(ch))
      net_avail_[link.value()].add(ch);
    overlay_dirty_ = true;
  }
}

bool Inventory::channel_reserved_locked(LinkId link,
                                        dwdm::ChannelIndex ch) const {
  return link.value() < reserved_by_link_.size() &&
         reserved_by_link_[link.value()].contains(ch);
}

bool Inventory::channel_reserved(LinkId link, dwdm::ChannelIndex ch) const {
  MutexLock lock(&mu_);
  return channel_reserved_locked(link, ch);
}

void Inventory::reserve_ot(TransponderId id) {
  MutexLock lock(&mu_);
  if (!detail::bit_test(reserved_ot_bits_, id.value())) {
    detail::bit_set(reserved_ot_bits_, id.value());
    ++reserved_ot_count_;
    overlay_dirty_ = true;
  }
}

void Inventory::release_ot(TransponderId id) {
  MutexLock lock(&mu_);
  if (detail::bit_test(reserved_ot_bits_, id.value())) {
    detail::bit_clear(reserved_ot_bits_, id.value());
    --reserved_ot_count_;
    overlay_dirty_ = true;
  }
}

bool Inventory::ot_reserved_locked(TransponderId id) const {
  return detail::bit_test(reserved_ot_bits_, id.value());
}

bool Inventory::ot_reserved(TransponderId id) const {
  MutexLock lock(&mu_);
  return ot_reserved_locked(id);
}

void Inventory::reserve_regen(RegenId id) {
  MutexLock lock(&mu_);
  if (!detail::bit_test(reserved_regen_bits_, id.value())) {
    detail::bit_set(reserved_regen_bits_, id.value());
    ++reserved_regen_count_;
    overlay_dirty_ = true;
  }
}

void Inventory::release_regen(RegenId id) {
  MutexLock lock(&mu_);
  if (detail::bit_test(reserved_regen_bits_, id.value())) {
    detail::bit_clear(reserved_regen_bits_, id.value());
    --reserved_regen_count_;
    overlay_dirty_ = true;
  }
}

bool Inventory::regen_reserved_locked(RegenId id) const {
  return detail::bit_test(reserved_regen_bits_, id.value());
}

bool Inventory::regen_reserved(RegenId id) const {
  MutexLock lock(&mu_);
  return regen_reserved_locked(id);
}

std::size_t Inventory::reservations() const {
  MutexLock lock(&mu_);
  return channel_reservation_count_ + reserved_ot_count_ +
         reserved_regen_count_;
}

// --- combined availability --------------------------------------------------

dwdm::ChannelSet Inventory::device_availability(LinkId link) const {
  if (model_->link_failed(link)) return {};
  const auto& l = model_->graph().link(link);
  const auto& ra = model_->roadm_at(l.a);
  const auto& rb = model_->roadm_at(l.b);
  const auto da = ra.degree_for(link);
  const auto db = rb.degree_for(link);
  if (!da || !db) return {};
  dwdm::ChannelSet set = ra.free_channels(*da);
  set.intersect(rb.free_channels(*db));
  return set;
}

dwdm::ChannelSet Inventory::available_on_link(LinkId link) const {
  dwdm::ChannelSet set = device_availability(link);
  MutexLock lock(&mu_);
  if (link.value() < reserved_by_link_.size())
    set.subtract(reserved_by_link_[link.value()]);
  return set;
}

void Inventory::ensure_pools_locked() const {
  const auto& ots = model_->ots();
  const auto& regens = model_->regens();
  const std::size_t sites = model_->graph().nodes().size();
  if (pools_ && pools_->ots_by_site.size() == sites &&
      pools_->ot_count == ots.size() &&
      pools_->regens_by_site.size() == sites &&
      pools_->regen_count == regens.size())
    return;
  auto pools = std::make_shared<PoolIndex>();
  pools->ots_by_site.assign(sites, {});
  for (const auto& ot : ots)
    if (ot->site().value() < sites)
      pools->ots_by_site[ot->site().value()].push_back(
          Snapshot::OtEntry{ot->line_rate(), ot->id(), ot.get()});
  for (auto& pool : pools->ots_by_site)
    std::sort(pool.begin(), pool.end(),
              [](const Snapshot::OtEntry& a, const Snapshot::OtEntry& b) {
                if (a.rate != b.rate) return a.rate < b.rate;
                return a.id < b.id;
              });
  pools->ot_count = ots.size();
  pools->regens_by_site.assign(sites, {});
  for (const auto& regen : regens)
    if (regen->site().value() < sites)
      pools->regens_by_site[regen->site().value()].push_back(
          Snapshot::RegenEntry{regen->line_rate(), regen->id(), regen.get()});
  pools->regen_count = regens.size();
  pools_ = std::move(pools);
}

std::optional<TransponderId> Inventory::find_free_ot(NodeId node,
                                                     DataRate min_rate) const {
  MutexLock lock(&mu_);
  ensure_pools_locked();
  if (node.value() >= pools_->ots_by_site.size()) return std::nullopt;
  // The pool is sorted by (line_rate, id): the first free adequate entry
  // is the smallest adequate line rate — don't burn a 40G transponder on
  // a 10G service while a 10G unit sits idle.
  for (const Snapshot::OtEntry& e : pools_->ots_by_site[node.value()]) {
    if (e.rate < min_rate) continue;
    if (!ot_is_free(*e.dev)) continue;
    if (ot_reserved_locked(e.id)) continue;
    return e.id;
  }
  return std::nullopt;
}

std::size_t Inventory::free_ot_count(NodeId node, DataRate min_rate) const {
  MutexLock lock(&mu_);
  ensure_pools_locked();
  if (node.value() >= pools_->ots_by_site.size()) return 0;
  std::size_t n = 0;
  for (const Snapshot::OtEntry& e : pools_->ots_by_site[node.value()]) {
    if (e.rate >= min_rate && ot_is_free(*e.dev) && !ot_reserved_locked(e.id))
      ++n;
  }
  return n;
}

std::optional<RegenId> Inventory::find_free_regen(
    NodeId node, DataRate min_rate, const std::set<RegenId>& exclude) const {
  MutexLock lock(&mu_);
  ensure_pools_locked();
  if (node.value() >= pools_->regens_by_site.size()) return std::nullopt;
  for (const Snapshot::RegenEntry& e :
       pools_->regens_by_site[node.value()]) {
    if (e.dev->in_use()) continue;
    if (e.rate < min_rate) continue;
    if (regen_reserved_locked(e.id)) continue;
    if (exclude.contains(e.id)) continue;
    return e.id;
  }
  return std::nullopt;
}

std::size_t Inventory::free_regen_count(NodeId node, DataRate min_rate) const {
  MutexLock lock(&mu_);
  ensure_pools_locked();
  if (node.value() >= pools_->regens_by_site.size()) return 0;
  std::size_t n = 0;
  for (const Snapshot::RegenEntry& e :
       pools_->regens_by_site[node.value()]) {
    if (!e.dev->in_use() && e.rate >= min_rate &&
        !regen_reserved_locked(e.id))
      ++n;
  }
  return n;
}

void Inventory::ensure_usage_locked() const {
  const std::uint64_t version = model_->plant_version();
  if (usage_ && usage_version_ == version) return;
  // Build into a local, then swap in: published snapshots share the old
  // table immutably, so it must never be mutated in place.
  std::vector<std::size_t> table(model_->grid().count(), 0);
  for (const auto& link : model_->graph().links()) {
    const auto& roadm = model_->roadm_at(link.a);
    const auto degree = roadm.degree_for(link.id);
    if (!degree) continue;
    roadm.used_channels(*degree).for_each([&table](dwdm::ChannelIndex ch) {
      if (static_cast<std::size_t>(ch) < table.size()) ++table[ch];
    });
  }
  usage_ = std::make_shared<const std::vector<std::size_t>>(std::move(table));
  usage_version_ = version;
}

std::size_t Inventory::channel_usage(dwdm::ChannelIndex ch) const {
  MutexLock lock(&mu_);
  ensure_usage_locked();
  if (ch < 0 || static_cast<std::size_t>(ch) >= usage_->size()) return 0;
  return (*usage_)[static_cast<std::size_t>(ch)];
}

// --- snapshot publish path --------------------------------------------------

void Inventory::rebuild_locked() const {
  ensure_pools_locked();
  ensure_usage_locked();
  const auto& links = model_->graph().links();
  device_avail_.assign(links.size(), {});
  net_avail_.assign(links.size(), {});
  for (const auto& link : links) {
    dwdm::ChannelSet set = device_availability(link.id);
    device_avail_[link.id.value()] = set;
    if (link.id.value() < reserved_by_link_.size())
      set.subtract(reserved_by_link_[link.id.value()]);
    net_avail_[link.id.value()] = set;
  }
  ot_device_free_bits_.clear();
  for (const auto& ot : model_->ots())
    if (ot_is_free(*ot)) detail::bit_set(ot_device_free_bits_, ot->id().value());
  regen_device_free_bits_.clear();
  for (const auto& regen : model_->regens())
    if (!regen->in_use())
      detail::bit_set(regen_device_free_bits_, regen->id().value());
  built_plant_version_ = model_->plant_version();
  built_topology_version_ = model_->topology_version();
  built_device_version_ = model_->device_version();
  built_ = true;
}

void Inventory::publish_locked() const {
  auto snap = std::shared_ptr<Snapshot>(new Snapshot());
  snap->avail_ = net_avail_;
  snap->pools_ = pools_;
  snap->usage_ = usage_;
  // free = device-free AND NOT reserved, word-wise over the id bitmaps.
  snap->ot_free_bits_ = ot_device_free_bits_;
  for (std::size_t w = 0;
       w < snap->ot_free_bits_.size() && w < reserved_ot_bits_.size(); ++w)
    snap->ot_free_bits_[w] &= ~reserved_ot_bits_[w];
  snap->regen_free_bits_ = regen_device_free_bits_;
  for (std::size_t w = 0;
       w < snap->regen_free_bits_.size() && w < reserved_regen_bits_.size();
       ++w)
    snap->regen_free_bits_[w] &= ~reserved_regen_bits_[w];
  snap->topology_version_ = built_topology_version_;
  snap->plant_version_ = built_plant_version_;
  snap->device_version_ = built_device_version_;
  snap->publish_seq_ = ++publish_seq_;
  snap->reservations_ = channel_reservation_count_ + reserved_ot_count_ +
                        reserved_regen_count_;
  published_ = std::move(snap);
  overlay_dirty_ = false;
}

std::shared_ptr<const Inventory::Snapshot> Inventory::snapshot() const {
  MutexLock lock(&mu_);
  const bool pools_current =
      pools_ && pools_->ot_count == model_->ots().size() &&
      pools_->regen_count == model_->regens().size() &&
      pools_->ots_by_site.size() == model_->graph().nodes().size();
  const bool stale = !built_ || !pools_current ||
                     built_plant_version_ != model_->plant_version() ||
                     built_topology_version_ != model_->topology_version() ||
                     built_device_version_ != model_->device_version();
  if (stale) rebuild_locked();
  if (stale || overlay_dirty_ || !published_) publish_locked();
  return published_;
}

std::shared_ptr<const Inventory::Snapshot> Inventory::published_snapshot()
    const {
  MutexLock lock(&mu_);
  return published_;
}

}  // namespace griphon::core
