#include "core/inventory.hpp"

namespace griphon::core {

void Inventory::reserve_channel(LinkId link, dwdm::ChannelIndex ch) {
  reserved_channels_.emplace(link, ch);
}

void Inventory::release_channel(LinkId link, dwdm::ChannelIndex ch) {
  reserved_channels_.erase({link, ch});
}

bool Inventory::channel_reserved(LinkId link, dwdm::ChannelIndex ch) const {
  return reserved_channels_.contains({link, ch});
}

void Inventory::reserve_ot(TransponderId id) { reserved_ots_.insert(id); }
void Inventory::release_ot(TransponderId id) { reserved_ots_.erase(id); }
bool Inventory::ot_reserved(TransponderId id) const {
  return reserved_ots_.contains(id);
}

void Inventory::reserve_regen(RegenId id) { reserved_regens_.insert(id); }
void Inventory::release_regen(RegenId id) { reserved_regens_.erase(id); }
bool Inventory::regen_reserved(RegenId id) const {
  return reserved_regens_.contains(id);
}

dwdm::ChannelSet Inventory::available_on_link(LinkId link) const {
  if (model_->link_failed(link)) return {};
  const auto& l = model_->graph().link(link);
  const auto& ra = model_->roadm_at(l.a);
  const auto& rb = model_->roadm_at(l.b);
  const auto da = ra.degree_for(link);
  const auto db = rb.degree_for(link);
  if (!da || !db) return {};
  dwdm::ChannelSet set = ra.free_channels(*da);
  set.intersect(rb.free_channels(*db));
  for (const auto& [rlink, ch] : reserved_channels_)
    if (rlink == link) set.remove(ch);
  return set;
}

namespace {
/// Tuned-but-inactive OTs stay in the shared pool (the laser is lit but the
/// transponder carries nothing; it retunes on next use).
bool ot_is_free(const dwdm::Transponder& ot) {
  return ot.state() == dwdm::Transponder::State::kIdle ||
         ot.state() == dwdm::Transponder::State::kTuned;
}
}  // namespace

std::optional<TransponderId> Inventory::find_free_ot(
    NodeId node, DataRate min_rate) const {
  // Smallest adequate line rate wins: don't burn a 40G transponder on a
  // 10G service while a 10G unit sits idle.
  std::optional<TransponderId> best;
  DataRate best_rate{};
  for (const auto& ot : model_->ots()) {
    if (ot->site() != node) continue;
    if (!ot_is_free(*ot)) continue;
    if (ot->line_rate() < min_rate) continue;
    if (ot_reserved(ot->id())) continue;
    if (!best || ot->line_rate() < best_rate) {
      best = ot->id();
      best_rate = ot->line_rate();
    }
  }
  return best;
}

std::size_t Inventory::free_ot_count(NodeId node, DataRate min_rate) const {
  std::size_t n = 0;
  for (const auto& ot : model_->ots()) {
    if (ot->site() == node && ot_is_free(*ot) &&
        ot->line_rate() >= min_rate && !ot_reserved(ot->id()))
      ++n;
  }
  return n;
}

std::optional<RegenId> Inventory::find_free_regen(NodeId node,
                                                  DataRate min_rate) const {
  for (const auto& regen : model_->regens()) {
    if (regen->site() != node) continue;
    if (regen->in_use()) continue;
    if (regen->line_rate() < min_rate) continue;
    if (regen_reserved(regen->id())) continue;
    return regen->id();
  }
  return std::nullopt;
}

std::size_t Inventory::channel_usage(dwdm::ChannelIndex ch) const {
  std::size_t n = 0;
  for (const auto& link : model_->graph().links()) {
    const auto& roadm = model_->roadm_at(link.a);
    const auto degree = roadm.degree_for(link.id);
    if (degree && roadm.channel_in_use(*degree, ch)) ++n;
  }
  return n;
}

}  // namespace griphon::core
