// Controller inventory: the GRIPhoN controller's view of network resources.
//
// Device state is authoritative (the ROADMs/OTs know what is configured);
// the inventory adds a *reservation overlay* for resources committed to
// in-flight setups whose EMS commands have not landed yet. RWA queries go
// through here so two concurrent setups never pick the same wavelength,
// OT or regenerator.
#pragma once

#include <optional>
#include <set>

#include "core/network_model.hpp"
#include "dwdm/wavelength.hpp"

namespace griphon::core {

class Inventory {
 public:
  explicit Inventory(const NetworkModel* model) : model_(model) {}

  // --- reservation overlay ------------------------------------------------
  void reserve_channel(LinkId link, dwdm::ChannelIndex ch);
  void release_channel(LinkId link, dwdm::ChannelIndex ch);
  [[nodiscard]] bool channel_reserved(LinkId link,
                                      dwdm::ChannelIndex ch) const;
  void reserve_ot(TransponderId id);
  void release_ot(TransponderId id);
  [[nodiscard]] bool ot_reserved(TransponderId id) const;
  void reserve_regen(RegenId id);
  void release_regen(RegenId id);
  [[nodiscard]] bool regen_reserved(RegenId id) const;

  // --- combined availability (device state minus reservations) -----------
  /// Channels usable on `link`: free on the facing degree of both end
  /// ROADMs and not reserved. Empty if the link is failed.
  [[nodiscard]] dwdm::ChannelSet available_on_link(LinkId link) const;

  /// An idle, unreserved OT at `node` with line rate >= `min_rate`.
  [[nodiscard]] std::optional<TransponderId> find_free_ot(
      NodeId node, DataRate min_rate) const;
  [[nodiscard]] std::size_t free_ot_count(NodeId node,
                                          DataRate min_rate) const;

  /// An unused, unreserved regenerator at `node`.
  [[nodiscard]] std::optional<RegenId> find_free_regen(
      NodeId node, DataRate min_rate) const;

  /// Number of links where channel `ch` is currently configured — input to
  /// the most-used wavelength-assignment policy.
  [[nodiscard]] std::size_t channel_usage(dwdm::ChannelIndex ch) const;

  [[nodiscard]] std::size_t reservations() const noexcept {
    return reserved_channels_.size() + reserved_ots_.size() +
           reserved_regens_.size();
  }

 private:
  const NetworkModel* model_;
  std::set<std::pair<LinkId, dwdm::ChannelIndex>> reserved_channels_;
  std::set<TransponderId> reserved_ots_;
  std::set<RegenId> reserved_regens_;
};

}  // namespace griphon::core
