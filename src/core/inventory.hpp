// Controller inventory: the GRIPhoN controller's view of network resources.
//
// Device state is authoritative (the ROADMs/OTs know what is configured);
// the inventory adds a *reservation overlay* for resources committed to
// in-flight setups whose EMS commands have not landed yet. RWA queries go
// through here so two concurrent setups never pick the same wavelength,
// OT or regenerator.
//
// Everything here sits on the RWA hot path, so the overlay is indexed
// rather than scanned (see DESIGN.md "Inventory indexing invariants"):
//  * channel reservations live in a per-link ChannelSet (O(words) to
//    subtract from link availability instead of scanning every
//    reservation in the network),
//  * OT/regen lookups go through per-site pools built once from the model
//    (O(pool-at-site) instead of O(all devices)),
//  * the per-channel usage table behind the most-/least-used wavelength
//    policies is cached and invalidated by the model's plant version
//    (O(1) amortized instead of O(links) per queried channel).
//
// Concurrency (DESIGN.md §15): every member is guarded by `mu_`, and the
// read side for future parallel RWA workers is the immutable
// `Inventory::Snapshot` — a versioned, copy-on-publish view assembled
// under the lock and handed out as shared_ptr<const>. Mutators keep the
// snapshot ingredients up to date incrementally (O(1) per overlay change);
// `snapshot()` re-publishes only when something actually moved. Readers on
// other threads use `published_snapshot()`, which never touches the
// NetworkModel — only the owner thread (the one mutating the model)
// may call `snapshot()`.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/sync.hpp"
#include "core/network_model.hpp"
#include "dwdm/wavelength.hpp"

namespace griphon::core {

namespace detail {
/// Grow-on-demand bitmaps keyed by device id value; back the O(1)
/// reserved/free checks behind the pool queries and the snapshot.
[[nodiscard]] inline bool bit_test(const std::vector<std::uint64_t>& bits,
                                   std::uint64_t i) noexcept {
  const std::size_t word = static_cast<std::size_t>(i / 64);
  return word < bits.size() && ((bits[word] >> (i % 64)) & 1U) != 0;
}
inline void bit_set(std::vector<std::uint64_t>& bits, std::uint64_t i) {
  const std::size_t word = static_cast<std::size_t>(i / 64);
  if (word >= bits.size()) bits.resize(word + 1, 0);
  bits[word] |= std::uint64_t{1} << (i % 64);
}
inline void bit_clear(std::vector<std::uint64_t>& bits,
                      std::uint64_t i) noexcept {
  const std::size_t word = static_cast<std::size_t>(i / 64);
  if (word < bits.size()) bits[word] &= ~(std::uint64_t{1} << (i % 64));
}
}  // namespace detail

class Inventory {
 public:
  /// Immutable, versioned read view of planning state: per-link channel
  /// availability (device state minus reservations), free-OT/regen
  /// bitmaps over (rate, id)-sorted site pools, and the per-channel usage
  /// table. Built copy-on-publish under the inventory lock; once handed
  /// out it is never written again, so any number of threads may read it
  /// without synchronization, and it never dereferences the NetworkModel.
  class Snapshot {
   public:
    /// Channels usable on `link`: free on the facing degree of both end
    /// ROADMs and not reserved, as of publish time. Empty if failed.
    [[nodiscard]] dwdm::ChannelSet available_on_link(LinkId link) const {
      if (link.value() >= avail_.size()) return {};
      return avail_[link.value()];
    }

    /// An idle, unreserved OT at `node` with line rate >= `min_rate` —
    /// same (rate, id) pick order as Inventory::find_free_ot.
    [[nodiscard]] std::optional<TransponderId> find_free_ot(
        NodeId node, DataRate min_rate) const;
    [[nodiscard]] std::size_t free_ot_count(NodeId node,
                                            DataRate min_rate) const;

    /// An unused, unreserved regenerator at `node`, skipping `exclude`.
    [[nodiscard]] std::optional<RegenId> find_free_regen(
        NodeId node, DataRate min_rate,
        const std::set<RegenId>& exclude = {}) const;
    [[nodiscard]] std::size_t free_regen_count(NodeId node,
                                               DataRate min_rate) const;

    /// Number of links where channel `ch` was configured at publish time.
    [[nodiscard]] std::size_t channel_usage(dwdm::ChannelIndex ch) const {
      if (ch < 0 || static_cast<std::size_t>(ch) >= usage_->size()) return 0;
      return (*usage_)[static_cast<std::size_t>(ch)];
    }

    /// Model version stamps captured at publish time.
    [[nodiscard]] std::uint64_t topology_version() const noexcept {
      return topology_version_;
    }
    [[nodiscard]] std::uint64_t plant_version() const noexcept {
      return plant_version_;
    }
    [[nodiscard]] std::uint64_t device_version() const noexcept {
      return device_version_;
    }
    /// Strictly increasing per publish; readers use it to detect that a
    /// newer view exists and to assert monotonic progress.
    [[nodiscard]] std::uint64_t publish_seq() const noexcept {
      return publish_seq_;
    }
    [[nodiscard]] std::size_t reservations() const noexcept {
      return reservations_;
    }

   private:
    friend class Inventory;
    Snapshot() = default;

    // Site pools shared (immutably) with the inventory; entries carry the
    // immutable device attributes so readers never chase device pointers.
    struct OtEntry {
      DataRate rate{};
      TransponderId id{};
      const dwdm::Transponder* dev = nullptr;  ///< owner-thread use only
    };
    struct RegenEntry {
      DataRate rate{};
      RegenId id{};
      const dwdm::Regenerator* dev = nullptr;  ///< owner-thread use only
    };
    struct PoolIndex {
      std::vector<std::vector<OtEntry>> ots_by_site;
      std::vector<std::vector<RegenEntry>> regens_by_site;
      std::size_t ot_count = 0;
      std::size_t regen_count = 0;
    };

    std::vector<dwdm::ChannelSet> avail_;  // by link index
    std::shared_ptr<const PoolIndex> pools_;
    std::shared_ptr<const std::vector<std::size_t>> usage_;
    std::vector<std::uint64_t> ot_free_bits_;     // by OT id value
    std::vector<std::uint64_t> regen_free_bits_;  // by regen id value
    std::uint64_t topology_version_ = 0;
    std::uint64_t plant_version_ = 0;
    std::uint64_t device_version_ = 0;
    std::uint64_t publish_seq_ = 0;
    std::size_t reservations_ = 0;
  };

  explicit Inventory(const NetworkModel* model) : model_(model) {}
  ~Inventory();

  Inventory(const Inventory&) = delete;
  Inventory& operator=(const Inventory&) = delete;

  /// Register for per-device change callbacks on `model` (the same
  /// deployment this inventory reads). From then on OT/regen lifecycle
  /// transitions update the snapshot free bitmaps in O(1) under the lock
  /// instead of forcing a full pool re-scan on the next snapshot() —
  /// device-only churn (tune/activate/release trains) re-publishes
  /// without ever touching the model. The model has one observer slot;
  /// the controller's inventory claims it, and the destructor detaches.
  void attach_device_listeners(NetworkModel* model) EXCLUDES(mu_);

  // --- reservation overlay ------------------------------------------------
  void reserve_channel(LinkId link, dwdm::ChannelIndex ch) EXCLUDES(mu_);
  void release_channel(LinkId link, dwdm::ChannelIndex ch) EXCLUDES(mu_);
  [[nodiscard]] bool channel_reserved(LinkId link,
                                      dwdm::ChannelIndex ch) const
      EXCLUDES(mu_);
  void reserve_ot(TransponderId id) EXCLUDES(mu_);
  void release_ot(TransponderId id) EXCLUDES(mu_);
  [[nodiscard]] bool ot_reserved(TransponderId id) const EXCLUDES(mu_);
  void reserve_regen(RegenId id) EXCLUDES(mu_);
  void release_regen(RegenId id) EXCLUDES(mu_);
  [[nodiscard]] bool regen_reserved(RegenId id) const EXCLUDES(mu_);

  // --- combined availability (device state minus reservations) -----------
  /// Channels usable on `link`: free on the facing degree of both end
  /// ROADMs and not reserved. Empty if the link is failed.
  [[nodiscard]] dwdm::ChannelSet available_on_link(LinkId link) const
      EXCLUDES(mu_);

  /// An idle, unreserved OT at `node` with line rate >= `min_rate`.
  [[nodiscard]] std::optional<TransponderId> find_free_ot(
      NodeId node, DataRate min_rate) const EXCLUDES(mu_);
  [[nodiscard]] std::size_t free_ot_count(NodeId node, DataRate min_rate) const
      EXCLUDES(mu_);

  /// An unused, unreserved regenerator at `node`, skipping any id in
  /// `exclude` (a plan may place several regens at one site).
  [[nodiscard]] std::optional<RegenId> find_free_regen(
      NodeId node, DataRate min_rate,
      const std::set<RegenId>& exclude = {}) const EXCLUDES(mu_);
  [[nodiscard]] std::size_t free_regen_count(NodeId node,
                                             DataRate min_rate) const
      EXCLUDES(mu_);

  /// Number of links where channel `ch` is currently configured — input to
  /// the most-used wavelength-assignment policy.
  [[nodiscard]] std::size_t channel_usage(dwdm::ChannelIndex ch) const
      EXCLUDES(mu_);

  [[nodiscard]] std::size_t reservations() const EXCLUDES(mu_);

  // --- versioned read snapshot --------------------------------------------
  /// Refresh-if-stale and return the current snapshot. Reads the
  /// NetworkModel when the model's version stamps moved, so it must only
  /// be called from the thread that owns model mutations (the controller
  /// event loop) — the same externally-synchronized contract as every
  /// model accessor. O(1) when nothing changed since the last call;
  /// overlay-only churn re-publishes from incrementally-maintained state
  /// without touching the model.
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const
      EXCLUDES(mu_);

  /// Last published snapshot, or nullptr before the first snapshot()
  /// call. Never reads the NetworkModel — safe from any thread while the
  /// owner thread keeps mutating model and overlay.
  [[nodiscard]] std::shared_ptr<const Snapshot> published_snapshot() const
      EXCLUDES(mu_);

 private:
  using PoolIndex = Snapshot::PoolIndex;

  /// Grow-on-demand access to the per-link reservation set.
  dwdm::ChannelSet& reserved_on_locked(LinkId link) REQUIRES(mu_);
  [[nodiscard]] bool channel_reserved_locked(LinkId link,
                                             dwdm::ChannelIndex ch) const
      REQUIRES(mu_);
  [[nodiscard]] bool ot_reserved_locked(TransponderId id) const
      REQUIRES(mu_);
  [[nodiscard]] bool regen_reserved_locked(RegenId id) const REQUIRES(mu_);

  /// Device-only availability on a link (no reservation overlay) — pure
  /// model read, shared by the live query and the rebuild path.
  [[nodiscard]] dwdm::ChannelSet device_availability(LinkId link) const;

  /// O(1) device-free-bit maintenance off the model's change observers
  /// (attach_device_listeners). Fires on the owner thread, after the
  /// model bumped device_version().
  void on_ot_changed(const dwdm::Transponder& ot) EXCLUDES(mu_);
  void on_regen_changed(const dwdm::Regenerator& regen) EXCLUDES(mu_);

  void ensure_pools_locked() const REQUIRES(mu_);
  void ensure_usage_locked() const REQUIRES(mu_);
  /// Full rebuild of the derived planning state from the model (link
  /// availability, device free bitmaps, pools, usage table).
  void rebuild_locked() const REQUIRES(mu_);
  /// Assemble and publish a fresh immutable Snapshot from current state.
  void publish_locked() const REQUIRES(mu_);

  const NetworkModel* model_;
  /// Non-null while this inventory holds the model's device-observer
  /// slot (owner-thread only; used to detach on destruction).
  NetworkModel* listening_ = nullptr;

  mutable Mutex mu_;

  // Reservation overlay. `reserved_by_link_` is indexed by link id value;
  // `channel_reservation_count_` keeps reservations() O(1). OT/regen
  // reservations are bitmaps keyed by id value with explicit counts.
  std::vector<dwdm::ChannelSet> reserved_by_link_ GUARDED_BY(mu_);
  std::size_t channel_reservation_count_ GUARDED_BY(mu_) = 0;
  std::vector<std::uint64_t> reserved_ot_bits_ GUARDED_BY(mu_);
  std::size_t reserved_ot_count_ GUARDED_BY(mu_) = 0;
  std::vector<std::uint64_t> reserved_regen_bits_ GUARDED_BY(mu_);
  std::size_t reserved_regen_count_ GUARDED_BY(mu_) = 0;

  // Per-site device pools, built lazily from the model (sites are fixed at
  // model construction; pools are rebuilt if devices were added since).
  // OTs are sorted by (line_rate, id) so the first free adequate entry is
  // the smallest adequate rate with the lowest id — the same pick the
  // old full scan made. Regens keep id order. Shared immutably with
  // published snapshots.
  mutable std::shared_ptr<const PoolIndex> pools_ GUARDED_BY(mu_);

  // Per-channel usage table (device state only, reservations excluded),
  // recomputed when the model's plant version moves. Shared immutably
  // with published snapshots.
  mutable std::shared_ptr<const std::vector<std::size_t>> usage_
      GUARDED_BY(mu_);
  mutable std::uint64_t usage_version_ GUARDED_BY(mu_) = 0;

  // Incrementally-maintained snapshot ingredients, valid while the model
  // version stamps below match the model. `device_avail_` is device-only
  // per-link availability; `net_avail_` is device minus reservations and
  // is what publish copies into the snapshot.
  mutable bool built_ GUARDED_BY(mu_) = false;
  mutable std::vector<dwdm::ChannelSet> device_avail_ GUARDED_BY(mu_);
  mutable std::vector<dwdm::ChannelSet> net_avail_ GUARDED_BY(mu_);
  mutable std::vector<std::uint64_t> ot_device_free_bits_ GUARDED_BY(mu_);
  mutable std::vector<std::uint64_t> regen_device_free_bits_ GUARDED_BY(mu_);
  mutable std::uint64_t built_plant_version_ GUARDED_BY(mu_) = 0;
  mutable std::uint64_t built_topology_version_ GUARDED_BY(mu_) = 0;
  mutable std::uint64_t built_device_version_ GUARDED_BY(mu_) = 0;

  // Publish state: set when the overlay changed since the last publish.
  mutable bool overlay_dirty_ GUARDED_BY(mu_) = false;
  mutable std::shared_ptr<const Snapshot> published_ GUARDED_BY(mu_);
  mutable std::uint64_t publish_seq_ GUARDED_BY(mu_) = 0;
};

}  // namespace griphon::core
