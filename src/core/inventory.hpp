// Controller inventory: the GRIPhoN controller's view of network resources.
//
// Device state is authoritative (the ROADMs/OTs know what is configured);
// the inventory adds a *reservation overlay* for resources committed to
// in-flight setups whose EMS commands have not landed yet. RWA queries go
// through here so two concurrent setups never pick the same wavelength,
// OT or regenerator.
//
// Everything here sits on the RWA hot path, so the overlay is indexed
// rather than scanned (see DESIGN.md "Inventory indexing invariants"):
//  * channel reservations live in a per-link ChannelSet (O(words) to
//    subtract from link availability instead of scanning every
//    reservation in the network),
//  * OT/regen lookups go through per-site pools built once from the model
//    (O(pool-at-site) instead of O(all devices)),
//  * the per-channel usage table behind the most-/least-used wavelength
//    policies is cached and invalidated by the model's plant version
//    (O(1) amortized instead of O(links) per queried channel).
#pragma once

#include <optional>
#include <set>
#include <unordered_set>
#include <vector>

#include "core/network_model.hpp"
#include "dwdm/wavelength.hpp"

namespace griphon::core {

class Inventory {
 public:
  explicit Inventory(const NetworkModel* model) : model_(model) {}

  // --- reservation overlay ------------------------------------------------
  void reserve_channel(LinkId link, dwdm::ChannelIndex ch);
  void release_channel(LinkId link, dwdm::ChannelIndex ch);
  [[nodiscard]] bool channel_reserved(LinkId link,
                                      dwdm::ChannelIndex ch) const;
  void reserve_ot(TransponderId id);
  void release_ot(TransponderId id);
  [[nodiscard]] bool ot_reserved(TransponderId id) const;
  void reserve_regen(RegenId id);
  void release_regen(RegenId id);
  [[nodiscard]] bool regen_reserved(RegenId id) const;

  // --- combined availability (device state minus reservations) -----------
  /// Channels usable on `link`: free on the facing degree of both end
  /// ROADMs and not reserved. Empty if the link is failed.
  [[nodiscard]] dwdm::ChannelSet available_on_link(LinkId link) const;

  /// An idle, unreserved OT at `node` with line rate >= `min_rate`.
  [[nodiscard]] std::optional<TransponderId> find_free_ot(
      NodeId node, DataRate min_rate) const;
  [[nodiscard]] std::size_t free_ot_count(NodeId node,
                                          DataRate min_rate) const;

  /// An unused, unreserved regenerator at `node`, skipping any id in
  /// `exclude` (a plan may place several regens at one site).
  [[nodiscard]] std::optional<RegenId> find_free_regen(
      NodeId node, DataRate min_rate,
      const std::set<RegenId>& exclude = {}) const;
  [[nodiscard]] std::size_t free_regen_count(NodeId node,
                                             DataRate min_rate) const;

  /// Number of links where channel `ch` is currently configured — input to
  /// the most-used wavelength-assignment policy.
  [[nodiscard]] std::size_t channel_usage(dwdm::ChannelIndex ch) const;

  [[nodiscard]] std::size_t reservations() const noexcept {
    return channel_reservation_count_ + reserved_ots_.size() +
           reserved_regens_.size();
  }

 private:
  /// Grow-on-demand access to the per-link reservation set.
  dwdm::ChannelSet& reserved_on(LinkId link);
  void ensure_site_pools() const;
  void ensure_usage_table() const;

  const NetworkModel* model_;

  // Reservation overlay. `reserved_by_link_` is indexed by link id value;
  // `channel_reservation_count_` keeps reservations() O(1).
  std::vector<dwdm::ChannelSet> reserved_by_link_;
  std::size_t channel_reservation_count_ = 0;
  std::unordered_set<TransponderId> reserved_ots_;
  std::unordered_set<RegenId> reserved_regens_;

  // Per-site device pools, built lazily from the model (sites are fixed at
  // model construction; pools are rebuilt if devices were added since).
  // OTs are sorted by (line_rate, id) so the first free adequate entry is
  // the smallest adequate rate with the lowest id — the same pick the
  // old full scan made. Regens keep id order.
  mutable std::vector<std::vector<const dwdm::Transponder*>> ots_by_site_;
  mutable std::size_t indexed_ot_count_ = 0;
  mutable std::vector<std::vector<const dwdm::Regenerator*>> regens_by_site_;
  mutable std::size_t indexed_regen_count_ = 0;

  // Per-channel usage table (device state only, reservations excluded),
  // recomputed when the model's plant version moves.
  mutable std::vector<std::size_t> usage_;
  mutable std::uint64_t usage_version_ = 0;
  mutable bool usage_valid_ = false;
};

}  // namespace griphon::core
