#include "core/network_model.hpp"

#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace griphon::core {

NetworkModel::NetworkModel(sim::Engine* engine, topology::Graph graph,
                           Config config)
    : engine_(engine), graph_(std::move(graph)), config_(config),
      grid_(config.channels), reach_(config.reach),
      link_failed_(graph_.links().size(), false) {
  // One ROADM (with degrees matching the node's links) and one FXC per node.
  for (const auto& node : graph_.nodes()) {
    auto roadm = std::make_unique<dwdm::Roadm>(RoadmId{node.id.value()},
                                               node.id, grid_);
    for (const LinkId link : graph_.links_at(node.id))
      roadm->attach_degree(link);
    roadm->set_change_listener([this] { ++plant_version_; });
    roadms_.push_back(std::move(roadm));
    fxcs_.push_back(std::make_unique<fxc::Fxc>(
        FxcId{node.id.value()}, node.id, config_.fxc_ports_per_node));
  }

  if (config_.with_otn) {
    otn_ = std::make_unique<otn::OtnLayer>(&graph_);
    for (const auto& node : graph_.nodes())
      otn_->add_switch(node.id, config_.otn_client_ports);
    restorer_ = std::make_unique<otn::MeshRestorer>(
        engine_, otn_.get(), otn::MeshRestorer::Params{});
  }

  // EMS domains: ROADM (also OTs/regens/power), FXC, OTN, NTE.
  auto make_ems = [&](std::unique_ptr<proto::ControlChannel>& chan,
                      std::unique_ptr<ems::EmsServer>& server,
                      std::unique_ptr<proto::RequestClient>& client,
                      const std::string& name) {
    chan = std::make_unique<proto::ControlChannel>(engine_,
                                                   config_.channel_params);
    server = std::make_unique<ems::EmsServer>(engine_, &chan->b(),
                                              config_.ems_profile, name,
                                              &trace_);
    proto::RequestClient::Params params;
    params.timeout = seconds(30);  // optical tasks run for many seconds
    params.max_attempts = 4;
    client = std::make_unique<proto::RequestClient>(engine_, &chan->a(),
                                                    params);
  };
  make_ems(roadm_chan_, roadm_ems_, roadm_client_, "roadm-ems");
  make_ems(fxc_chan_, fxc_ems_, fxc_client_, "fxc-ems");
  make_ems(otn_chan_, otn_ems_, otn_client_, "otn-ems");
  make_ems(nte_chan_, nte_ems_, nte_client_, "nte-ems");

  for (auto& r : roadms_) roadm_ems_->manage_roadm(r.get());
  for (auto& f : fxcs_) fxc_ems_->manage_fxc(f.get());
  if (otn_) otn_ems_->manage_otn(otn_.get());

  // Default equipment pools ("currently at 10 Gbps, with plans to go to
  // 40 Gbps" — 40G pools are opt-in via config).
  for (const auto& node : graph_.nodes()) {
    for (std::size_t i = 0; i < config_.ots_per_node; ++i)
      add_transponder(node.id, rates::k10G);
    for (std::size_t i = 0; i < config_.ots_40g_per_node; ++i)
      add_transponder(node.id, rates::k40G);
    for (std::size_t i = 0; i < config_.regens_per_node; ++i)
      add_regen(node.id, rates::k10G);
    for (std::size_t i = 0; i < config_.regens_40g_per_node; ++i)
      add_regen(node.id, rates::k40G);
  }
}

dwdm::Roadm& NetworkModel::roadm_at(NodeId node) {
  if (node.value() >= roadms_.size())
    throw std::out_of_range("NetworkModel::roadm_at");
  return *roadms_[node.value()];
}

const dwdm::Roadm& NetworkModel::roadm_at(NodeId node) const {
  if (node.value() >= roadms_.size())
    throw std::out_of_range("NetworkModel::roadm_at");
  return *roadms_[node.value()];
}

fxc::Fxc& NetworkModel::fxc_at(NodeId node) {
  if (node.value() >= fxcs_.size())
    throw std::out_of_range("NetworkModel::fxc_at");
  return *fxcs_[node.value()];
}

dwdm::Transponder& NetworkModel::ot(TransponderId id) {
  if (id.value() >= ots_.size())
    throw std::out_of_range("NetworkModel::ot");
  return *ots_[id.value()];
}

const dwdm::Transponder& NetworkModel::ot(TransponderId id) const {
  if (id.value() >= ots_.size())
    throw std::out_of_range("NetworkModel::ot");
  return *ots_[id.value()];
}

dwdm::Regenerator& NetworkModel::regen(RegenId id) {
  if (id.value() >= regens_.size())
    throw std::out_of_range("NetworkModel::regen");
  return *regens_[id.value()];
}

PortId NetworkModel::roadm_port_of_ot(TransponderId id) const {
  const auto it = ot_roadm_port_.find(id.value());
  if (it == ot_roadm_port_.end())
    throw std::out_of_range("NetworkModel: OT has no ROADM port");
  return it->second;
}

std::pair<PortId, PortId> NetworkModel::roadm_ports_of_regen(
    RegenId id) const {
  const auto it = regen_roadm_ports_.find(id.value());
  if (it == regen_roadm_ports_.end())
    throw std::out_of_range("NetworkModel: regen has no ROADM ports");
  return it->second;
}

dwdm::Muxponder& NetworkModel::nte(MuxponderId id) {
  if (id.value() >= ntes_.size())
    throw std::out_of_range("NetworkModel::nte");
  return *ntes_[id.value()];
}

const CustomerSite* NetworkModel::site_by_nte(MuxponderId nte) const {
  for (const auto& s : sites_)
    if (s.nte == nte) return &s;
  return nullptr;
}

TransponderId NetworkModel::add_transponder(NodeId node, DataRate line_rate) {
  const TransponderId id = ot_ids_.next();
  ots_.push_back(std::make_unique<dwdm::Transponder>(id, node, line_rate));
  ots_.back()->bind_version_counter(&device_version_);
  dwdm::Transponder* dev = ots_.back().get();
  dev->set_change_listener([this, dev] {
    if (ot_observer_) ot_observer_(*dev);
  });
  roadm_ems_->manage_ot(ots_.back().get());
  // Static cabling: OT line side to a dedicated colorless ROADM port, OT
  // client side into the site FXC.
  const PortId roadm_port = roadm_at(node).add_ports(1).front();
  ot_roadm_port_[id.value()] = roadm_port;
  fxc::Fxc& f = fxc_at(node);
  for (std::size_t p = 0; p < f.port_count(); ++p) {
    if (f.wiring(PortId{p}).kind == fxc::Wiring::Kind::kUnwired) {
      f.wire(PortId{p}, fxc::Wiring{fxc::Wiring::Kind::kTransponderClient,
                                    id.value(), 0});
      return id;
    }
  }
  throw std::runtime_error("NetworkModel: FXC out of ports for OT");
}

RegenId NetworkModel::add_regen(NodeId node, DataRate line_rate) {
  const RegenId id = regen_ids_.next();
  regens_.push_back(std::make_unique<dwdm::Regenerator>(id, node, line_rate));
  regens_.back()->bind_version_counter(&device_version_);
  dwdm::Regenerator* dev = regens_.back().get();
  dev->set_change_listener([this, dev] {
    if (regen_observer_) regen_observer_(*dev);
  });
  roadm_ems_->manage_regen(regens_.back().get());
  auto ports = roadm_at(node).add_ports(2);
  regen_roadm_ports_[id.value()] = {ports[0], ports[1]};
  return id;
}

CustomerSite& NetworkModel::add_customer_site(CustomerId customer,
                                              std::string name,
                                              NodeId core_pop) {
  const MuxponderId id = nte_ids_.next();
  ntes_.push_back(std::make_unique<dwdm::Muxponder>(id, customer, core_pop));
  nte_ems_->manage_nte(ntes_.back().get());
  // The NTE's four 10G client channels surface on the core-PoP FXC (the
  // "fat pipe" lands on the COT there).
  fxc::Fxc& f = fxc_at(core_pop);
  for (std::size_t ch = 0; ch < dwdm::Muxponder::kClientPorts; ++ch) {
    bool wired = false;
    for (std::size_t p = 0; p < f.port_count(); ++p) {
      if (f.wiring(PortId{p}).kind == fxc::Wiring::Kind::kUnwired) {
        f.wire(PortId{p}, fxc::Wiring{fxc::Wiring::Kind::kCustomerAccess,
                                      id.value(), ch});
        wired = true;
        break;
      }
    }
    if (!wired)
      throw std::runtime_error("NetworkModel: FXC out of ports for access");
  }
  sites_.push_back(CustomerSite{customer, std::move(name), core_pop, id});
  return sites_.back();
}

Result<CarrierId> NetworkModel::add_otn_carrier(
    NodeId a, NodeId b, DataRate line_rate, const std::vector<LinkId>& route) {
  if (!otn_)
    return Error{ErrorCode::kNotFound, "NetworkModel: OTN layer disabled"};
  // OTN line cards plug straight into dedicated ROADM ports; the wavelength
  // they ride is provisioned by the controller before this call. Wire the
  // OTN switch client ports into the FXC lazily on first carrier.
  auto ensure_otn_fxc_wiring = [&](NodeId node) {
    const otn::OtnSwitch* sw = otn_->switch_at(node);
    fxc::Fxc& f = fxc_at(node);
    for (std::size_t cp = 0; cp < sw->client_port_count(); ++cp) {
      if (f.port_for(fxc::Wiring::Kind::kOtnClientPort, sw->id().value(), cp))
        continue;
      for (std::size_t p = 0; p < f.port_count(); ++p) {
        if (f.wiring(PortId{p}).kind == fxc::Wiring::Kind::kUnwired) {
          f.wire(PortId{p}, fxc::Wiring{fxc::Wiring::Kind::kOtnClientPort,
                                        sw->id().value(), cp});
          break;
        }
      }
    }
  };
  ensure_otn_fxc_wiring(a);
  ensure_otn_fxc_wiring(b);
  return otn_->add_carrier(a, b, line_rate, route);
}

std::vector<ems::EmsServer*> NetworkModel::ems_servers() noexcept {
  return {roadm_ems_.get(), fxc_ems_.get(), otn_ems_.get(), nte_ems_.get()};
}

std::vector<proto::ControlChannel*> NetworkModel::control_channels() noexcept {
  return {roadm_chan_.get(), fxc_chan_.get(), otn_chan_.get(),
          nte_chan_.get()};
}

void NetworkModel::attach_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  roadm_ems_->set_telemetry(telemetry);
  fxc_ems_->set_telemetry(telemetry);
  otn_ems_->set_telemetry(telemetry);
  nte_ems_->set_telemetry(telemetry);
  if (restorer_) restorer_->set_telemetry(telemetry);
}

void NetworkModel::fail_link(LinkId link) {
  if (link.value() >= link_failed_.size())
    throw std::out_of_range("NetworkModel::fail_link");
  if (link_failed_[link.value()]) return;
  link_failed_[link.value()] = true;
  ++topology_version_;
  journal_topology_change(link, /*failed=*/true);
  if (telemetry_ != nullptr) {
    telemetry_
        ->metrics()
        .counter("griphon_plant_fiber_cuts_total", "Fiber cuts injected")
        ->inc();
    telemetry_->note_link_failed(link.value());
  }
  trace_.emit(engine_->now(), sim::TraceLevel::kWarn, "plant", "fiber-cut",
              graph_.link(link).name);
  const auto& l = graph_.link(link);
  roadm_at(l.a).on_link_failed(link, engine_->now());
  roadm_at(l.b).on_link_failed(link, engine_->now());
  if (restorer_) restorer_->link_failed(link);
}

void NetworkModel::repair_link(LinkId link) {
  if (link.value() >= link_failed_.size())
    throw std::out_of_range("NetworkModel::repair_link");
  if (!link_failed_[link.value()]) return;
  link_failed_[link.value()] = false;
  ++topology_version_;
  journal_topology_change(link, /*failed=*/false);
  if (telemetry_ != nullptr)
    telemetry_
        ->metrics()
        .counter("griphon_plant_fiber_repairs_total", "Fiber repairs")
        ->inc();
  trace_.emit(engine_->now(), sim::TraceLevel::kInfo, "plant", "fiber-repair",
              graph_.link(link).name);
  const auto& l = graph_.link(link);
  roadm_at(l.a).on_link_restored(link, engine_->now());
  roadm_at(l.b).on_link_restored(link, engine_->now());
  if (restorer_) restorer_->link_repaired(link);
}

void NetworkModel::journal_topology_change(LinkId link, bool failed) {
  topology_journal_.push_back(
      TopologyChange{topology_version_, link, failed});
  if (topology_journal_.size() > kTopologyJournalCapacity)
    topology_journal_.pop_front();
}

bool NetworkModel::topology_changes_since(
    std::uint64_t since, std::vector<TopologyChange>* out) const {
  out->clear();
  if (since == topology_version_) return true;
  if (since > topology_version_) return false;
  // The journal holds consecutive versions ending at topology_version_;
  // it covers `since` iff its oldest entry is at most since + 1.
  if (topology_journal_.empty() ||
      topology_journal_.front().version > since + 1)
    return false;
  for (const TopologyChange& change : topology_journal_)
    if (change.version > since) out->push_back(change);
  return true;
}

bool NetworkModel::link_failed(LinkId link) const {
  return link.value() < link_failed_.size() && link_failed_[link.value()];
}

std::vector<LinkId> NetworkModel::failed_links() const {
  std::vector<LinkId> out;
  for (std::size_t i = 0; i < link_failed_.size(); ++i)
    if (link_failed_[i]) out.push_back(LinkId{i});
  return out;
}

}  // namespace griphon::core
