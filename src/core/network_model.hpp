// Assembled GRIPhoN plant.
//
// Owns every physical element of one GRIPhoN deployment: the fiber graph,
// one ROADM per node, pools of tunable OTs and REGENs, a client-side FXC
// per site, the OTN layer, customer muxponders (NTEs), the vendor EMSs and
// the control channels between the controller and each EMS. Also provides
// fiber failure injection, which drives alarms through the device models.
//
// The model is deliberately dumb: all intelligence lives in the
// GriphonController. Tests build small models directly; examples and
// benches use the builders.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dwdm/muxponder.hpp"
#include "dwdm/reach.hpp"
#include "dwdm/roadm.hpp"
#include "dwdm/transponder.hpp"
#include "ems/ems_server.hpp"
#include "fxc/fxc.hpp"
#include "otn/layer.hpp"
#include "otn/restorer.hpp"
#include "proto/channel.hpp"
#include "proto/client.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "topology/graph.hpp"

namespace griphon::telemetry {
class Telemetry;
}  // namespace griphon::telemetry

namespace griphon::core {

/// Per-customer premises equipment and its access pipe into a core PoP.
/// The premises itself is off the core graph; the NTE id doubles as the
/// site handle in the service API.
struct CustomerSite {
  CustomerId customer;
  std::string name;     ///< e.g. "DC-Ashburn"
  NodeId core_pop;      ///< ROADM node the access pipe lands on
  MuxponderId nte;      ///< 4x10G->40G muxponder at the premises
};

class NetworkModel {
 public:
  struct Config {
    std::size_t channels = 80;            ///< DWDM grid size
    std::size_t ots_per_node = 8;         ///< 10G tunable OT pool per site
    std::size_t ots_40g_per_node = 0;     ///< 40G OT pool per site
    std::size_t regens_per_node = 2;      ///< 10G regen pool per site
    std::size_t regens_40g_per_node = 0;  ///< 40G regen pool per site
    std::size_t fxc_ports_per_node = 64;
    std::size_t otn_client_ports = 16;    ///< per OTN switch
    bool with_otn = true;
    ems::EmsLatencyProfile ems_profile = ems::EmsLatencyProfile::testbed_2011();
    proto::ControlChannel::Params channel_params{};
    dwdm::ReachModel::Params reach{};
  };

  NetworkModel(sim::Engine* engine, topology::Graph graph, Config config);

  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  // --- plant accessors ---------------------------------------------------
  [[nodiscard]] sim::Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] const topology::Graph& graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] sim::Trace& trace() noexcept { return trace_; }

  /// Attach a telemetry sink to the whole deployment: the plant itself,
  /// the four EMS servers and the OTN mesh restorer start recording;
  /// controller-side components pick the sink up through telemetry().
  /// Pass nullptr to detach. Null by default — the no-sink fast path.
  void attach_telemetry(telemetry::Telemetry* telemetry);
  [[nodiscard]] telemetry::Telemetry* telemetry() const noexcept {
    return telemetry_;
  }
  [[nodiscard]] const dwdm::ReachModel& reach() const noexcept {
    return reach_;
  }
  [[nodiscard]] const dwdm::WavelengthGrid& grid() const noexcept {
    return grid_;
  }

  /// Monotonic counter bumped on every ROADM configuration change.
  /// Caches derived from plant state (e.g. the Inventory's per-channel
  /// usage table) compare against it to know when to recompute.
  [[nodiscard]] std::uint64_t plant_version() const noexcept {
    return plant_version_;
  }

  /// Monotonic counter bumped on every fiber cut/repair. Caches derived
  /// from the *routable* topology (e.g. the RwaEngine's per-pair route
  /// cache) compare against it to know when their routes may be stale.
  [[nodiscard]] std::uint64_t topology_version() const noexcept {
    return topology_version_;
  }

  /// Monotonic counter bumped on every OT/regen lifecycle transition
  /// (tune/activate/deactivate/reset/fail/repair, engage/release).
  /// Caches derived from device state (the Inventory snapshot's free-OT
  /// and free-regen bitmaps) compare against it to know when to rebuild.
  [[nodiscard]] std::uint64_t device_version() const noexcept {
    return device_version_;
  }

  /// Per-device change observers, invoked with the transitioned device
  /// after device_version() has bumped. The controller's Inventory
  /// registers here to maintain its free-OT/free-regen bitmaps in O(1)
  /// per transition instead of re-scanning the pools. One observer each
  /// (last registration wins); set empty to detach.
  using OtObserver = std::function<void(const dwdm::Transponder&)>;
  using RegenObserver = std::function<void(const dwdm::Regenerator&)>;
  void set_device_observers(OtObserver on_ot, RegenObserver on_regen) {
    ot_observer_ = std::move(on_ot);
    regen_observer_ = std::move(on_regen);
  }

  /// One fiber cut or repair, as recorded in the bounded topology journal.
  struct TopologyChange {
    std::uint64_t version = 0;  ///< topology_version() after the change
    LinkId link{};
    bool failed = false;  ///< true = cut, false = repair
  };
  /// Topology changes with version > `since`, oldest first, into `out`.
  /// Returns false when the bounded journal no longer reaches back to
  /// `since` — the caller must then treat every cached route as stale
  /// (full invalidation) instead of replaying the delta.
  [[nodiscard]] bool topology_changes_since(
      std::uint64_t since, std::vector<TopologyChange>* out) const;

  [[nodiscard]] dwdm::Roadm& roadm_at(NodeId node);
  [[nodiscard]] const dwdm::Roadm& roadm_at(NodeId node) const;
  [[nodiscard]] fxc::Fxc& fxc_at(NodeId node);
  [[nodiscard]] otn::OtnLayer& otn() noexcept { return *otn_; }
  [[nodiscard]] const otn::OtnLayer& otn() const noexcept { return *otn_; }
  [[nodiscard]] otn::MeshRestorer& mesh_restorer() noexcept {
    return *restorer_;
  }

  [[nodiscard]] dwdm::Transponder& ot(TransponderId id);
  [[nodiscard]] const dwdm::Transponder& ot(TransponderId id) const;
  [[nodiscard]] const std::vector<std::unique_ptr<dwdm::Transponder>>& ots()
      const noexcept {
    return ots_;
  }
  [[nodiscard]] dwdm::Regenerator& regen(RegenId id);
  [[nodiscard]] const std::vector<std::unique_ptr<dwdm::Regenerator>>&
  regens() const noexcept {
    return regens_;
  }
  /// ROADM add/drop port statically cabled to this OT's line side.
  [[nodiscard]] PortId roadm_port_of_ot(TransponderId id) const;
  /// ROADM ports cabled to a regen's two line sides (upstream, downstream).
  [[nodiscard]] std::pair<PortId, PortId> roadm_ports_of_regen(
      RegenId id) const;

  [[nodiscard]] dwdm::Muxponder& nte(MuxponderId id);
  [[nodiscard]] const std::vector<CustomerSite>& customer_sites()
      const noexcept {
    return sites_;
  }
  [[nodiscard]] const CustomerSite* site_by_nte(MuxponderId nte) const;

  // --- construction helpers ---------------------------------------------
  /// Add an OT to `node`'s shared pool (wired to ROADM + FXC).
  TransponderId add_transponder(NodeId node, DataRate line_rate);
  /// Add a regenerator to `node`'s pool.
  RegenId add_regen(NodeId node, DataRate line_rate);
  /// Connect a customer premises to a core PoP with an NTE + access pipe.
  CustomerSite& add_customer_site(CustomerId customer, std::string name,
                                  NodeId core_pop);
  /// Provision an OTU carrier for the OTN layer over a wavelength route
  /// (consumes one DWDM channel on each route link, outside the OT pools).
  [[nodiscard]] Result<CarrierId> add_otn_carrier(NodeId a, NodeId b, DataRate line_rate,
                                    const std::vector<LinkId>& route);

  // --- EMS access (controller side) ---------------------------------------
  [[nodiscard]] proto::RequestClient& roadm_ems_client() noexcept {
    return *roadm_client_;
  }
  [[nodiscard]] proto::RequestClient& fxc_ems_client() noexcept {
    return *fxc_client_;
  }
  [[nodiscard]] proto::RequestClient& otn_ems_client() noexcept {
    return *otn_client_;
  }
  [[nodiscard]] proto::RequestClient& nte_ems_client() noexcept {
    return *nte_client_;
  }
  [[nodiscard]] ems::EmsServer& roadm_ems() noexcept { return *roadm_ems_; }
  [[nodiscard]] ems::EmsServer& fxc_ems() noexcept { return *fxc_ems_; }
  [[nodiscard]] ems::EmsServer& otn_ems() noexcept { return *otn_ems_; }
  [[nodiscard]] ems::EmsServer& nte_ems() noexcept { return *nte_ems_; }

  /// All vendor EMS servers / DCN control channels, for fleet-wide
  /// operations (chaos injection, resync audits). Stable order: roadm,
  /// fxc, otn, nte.
  [[nodiscard]] std::vector<ems::EmsServer*> ems_servers() noexcept;
  [[nodiscard]] std::vector<proto::ControlChannel*>
  control_channels() noexcept;

  // --- failure injection ---------------------------------------------------
  /// Cut the fiber: ROADMs raise LOS alarms, OTN carriers riding it fail.
  void fail_link(LinkId link);
  void repair_link(LinkId link);
  [[nodiscard]] bool link_failed(LinkId link) const;
  [[nodiscard]] std::vector<LinkId> failed_links() const;

 private:
  static constexpr std::size_t kTopologyJournalCapacity = 64;

  void journal_topology_change(LinkId link, bool failed);

  sim::Engine* engine_;
  topology::Graph graph_;
  Config config_;
  sim::Trace trace_;
  dwdm::WavelengthGrid grid_;
  dwdm::ReachModel reach_;

  std::vector<std::unique_ptr<dwdm::Roadm>> roadms_;  // by node index
  std::vector<std::unique_ptr<fxc::Fxc>> fxcs_;       // by node index
  std::vector<std::unique_ptr<dwdm::Transponder>> ots_;
  std::vector<std::unique_ptr<dwdm::Regenerator>> regens_;
  std::vector<std::unique_ptr<dwdm::Muxponder>> ntes_;
  std::map<std::uint64_t, PortId> ot_roadm_port_;
  std::map<std::uint64_t, std::pair<PortId, PortId>> regen_roadm_ports_;
  std::unique_ptr<otn::OtnLayer> otn_;
  std::unique_ptr<otn::MeshRestorer> restorer_;
  std::vector<CustomerSite> sites_;

  // EMS plumbing: channel + server per vendor domain.
  std::unique_ptr<proto::ControlChannel> roadm_chan_, fxc_chan_, otn_chan_,
      nte_chan_;
  std::unique_ptr<ems::EmsServer> roadm_ems_, fxc_ems_, otn_ems_, nte_ems_;
  std::unique_ptr<proto::RequestClient> roadm_client_, fxc_client_,
      otn_client_, nte_client_;

  telemetry::Telemetry* telemetry_ = nullptr;
  std::vector<bool> link_failed_;  // by link index
  std::uint64_t plant_version_ = 0;
  std::uint64_t topology_version_ = 0;
  std::uint64_t device_version_ = 0;
  OtObserver ot_observer_;
  RegenObserver regen_observer_;
  /// Newest-last ring of fiber cuts/repairs backing incremental
  /// route-cache invalidation; consecutive versions, one entry per
  /// topology_version_ bump.
  std::deque<TopologyChange> topology_journal_;
  IdAllocator<MuxponderId> nte_ids_;
  IdAllocator<TransponderId> ot_ids_;
  IdAllocator<RegenId> regen_ids_;
};

}  // namespace griphon::core
