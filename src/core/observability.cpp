#include "core/observability.hpp"

#include <string>

#include "core/controller.hpp"
#include "core/network_model.hpp"
#include "ems/ems_server.hpp"
#include "telemetry/telemetry.hpp"

namespace griphon::core {

namespace {

/// "roadm-ems" → "roadm": same convention as the griphon_ems_<domain>_*
/// metric prefix.
std::string domain_of(const std::string& server_name) {
  constexpr const char* kSuffix = "-ems";
  constexpr std::size_t kSuffixLen = 4;
  if (server_name.size() > kSuffixLen &&
      server_name.compare(server_name.size() - kSuffixLen, kSuffixLen,
                          kSuffix) == 0)
    return server_name.substr(0, server_name.size() - kSuffixLen);
  return server_name;
}

double breaker_level(EmsHealthTracker::BreakerState s) {
  switch (s) {
    case EmsHealthTracker::BreakerState::kClosed:
      return 0.0;
    case EmsHealthTracker::BreakerState::kHalfOpen:
      return 0.5;
    case EmsHealthTracker::BreakerState::kOpen:
      return 1.0;
  }
  return 0.0;
}

}  // namespace

void install_standard_probes(telemetry::GaugeSampler& sampler,
                             GriphonController& controller,
                             NetworkModel& model) {
  sampler.add_probe("ot_pool_free", "count", [&controller, &model] {
    std::size_t n = 0;
    for (const auto& node : model.graph().nodes())
      n += controller.inventory().free_ot_count(node.id, DataRate{});
    return static_cast<double>(n);
  });
  sampler.add_probe("regen_pool_free", "count", [&controller, &model] {
    std::size_t n = 0;
    for (const auto& node : model.graph().nodes())
      n += controller.inventory().free_regen_count(node.id, DataRate{});
    return static_cast<double>(n);
  });
  sampler.add_probe("inventory_reservations", "count", [&controller] {
    return static_cast<double>(controller.inventory().reservations());
  });

  for (ems::EmsServer* server : model.ems_servers()) {
    const std::string domain = domain_of(server->name());
    sampler.add_probe("ems_" + domain + "_queue_depth", "count", [server] {
      return static_cast<double>(server->queue_depth());
    });
    sampler.add_probe("ems_" + domain + "_breaker_open", "level",
                      [&controller, domain] {
                        return breaker_level(
                            controller.ems_health().state(domain));
                      });
  }

  sampler.add_probe("route_cache_hit_rate", "ratio", [&model] {
    telemetry::Telemetry* t = model.telemetry();
    if (t == nullptr) return 0.0;
    const auto* hits =
        t->metrics().find_counter("griphon_rwa_route_cache_hits_total");
    const auto* misses =
        t->metrics().find_counter("griphon_rwa_route_cache_misses_total");
    const double h = hits == nullptr ? 0 : static_cast<double>(hits->value());
    const double m =
        misses == nullptr ? 0 : static_cast<double>(misses->value());
    return h + m == 0 ? 0.0 : h / (h + m);
  });

  sampler.add_probe("connections_active", "count", [&controller] {
    return static_cast<double>(controller.active_connections());
  });
  sampler.add_probe("connections_blocked", "count", [&controller] {
    return static_cast<double>(controller.stats().setups_failed);
  });

  sampler.add_probe("restoration_backlog", "count", [&controller] {
    return static_cast<double>(controller.restoration_backlog_depth());
  });
  sampler.add_probe("restoration_in_flight", "count", [&controller] {
    return static_cast<double>(controller.restorations_in_flight());
  });
  sampler.add_probe("restoration_storm_active", "level", [&controller] {
    return controller.restoration_storm_active() ? 1.0 : 0.0;
  });
}

}  // namespace griphon::core
