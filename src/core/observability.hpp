// Standard gauge probes for the core layers.
//
// GaugeSampler lives in telemetry and knows nothing about controllers or
// plants; this helper wires the canonical operations dashboard probes —
// pool occupancy, per-EMS queue depth and breaker state, route-cache hit
// rate, connection counts — into a sampler for one deployment. BoD
// calendar probes live in bod/observability.hpp (core cannot see bod).
//
// The probe lambdas capture the controller/model by reference: keep the
// sampler's lifetime inside theirs (true for the shell, benches, and
// tests, which stack-allocate scenario then sampler).
#pragma once

#include "telemetry/sampler.hpp"

namespace griphon::core {

class GriphonController;
class NetworkModel;

/// Register the standard probe set. Probe names (sampler series / CSV
/// columns): ot_pool_free, regen_pool_free, inventory_reservations,
/// ems_<domain>_queue_depth, ems_<domain>_breaker_open,
/// route_cache_hit_rate, connections_active, connections_blocked.
void install_standard_probes(telemetry::GaugeSampler& sampler,
                             GriphonController& controller,
                             NetworkModel& model);

}  // namespace griphon::core
