#include "core/planner.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "topology/path.hpp"

namespace griphon::core {

double erlang_b(double erlangs, int servers) {
  if (erlangs < 0 || servers < 0)
    throw std::invalid_argument("erlang_b: negative input");
  if (erlangs == 0) return 0.0;
  double b = 1.0;
  for (int k = 1; k <= servers; ++k)
    b = erlangs * b / (static_cast<double>(k) + erlangs * b);
  return b;
}

int servers_for_blocking(double erlangs, double target) {
  if (target <= 0 || target >= 1)
    throw std::invalid_argument("servers_for_blocking: target in (0,1)");
  int servers = 0;
  while (erlang_b(erlangs, servers) > target) {
    ++servers;
    if (servers > 100000)
      throw std::runtime_error("servers_for_blocking: diverged");
  }
  return servers;
}

std::vector<ResourcePlanner::Recommendation> ResourcePlanner::plan_ot_pools(
    const topology::Graph& graph, const std::vector<DemandForecast>& demand,
    double target_blocking) {
  std::map<NodeId, double> load;
  for (const auto& d : demand) {
    load[d.src] += d.erlangs;
    load[d.dst] += d.erlangs;
  }
  std::vector<Recommendation> out;
  for (const auto& node : graph.nodes()) {
    Recommendation r;
    r.node = node.id;
    const auto it = load.find(node.id);
    r.offered_erlangs = it == load.end() ? 0.0 : it->second;
    r.ots_needed = servers_for_blocking(r.offered_erlangs, target_blocking);
    r.predicted_blocking = erlang_b(r.offered_erlangs, r.ots_needed);
    out.push_back(r);
  }
  return out;
}

std::vector<ResourcePlanner::Recommendation>
ResourcePlanner::plan_regen_pools(const topology::Graph& graph,
                                  const dwdm::ReachModel& reach,
                                  const std::vector<DemandForecast>& demand,
                                  DataRate rate) {
  const auto profile = dwdm::profile_for(rate);
  std::map<NodeId, double> load;

  // Count regen-load of a route as the Erlangs of demand crossing each
  // regen site on it.
  auto account = [&](const topology::Path& path, double erlangs) {
    for (const NodeId site : reach.regen_sites(graph, path, profile))
      load[site] += erlangs;
  };
  for (const auto& d : demand) {
    const auto home =
        topology::shortest_path(graph, d.src, d.dst,
                                topology::distance_weight());
    if (!home) continue;
    account(*home, d.erlangs);
    // Single-failure margin: if the first link of the home route fails,
    // the restoration route's regen sites carry the demand instead; a
    // conservative pool covers both.
    const LinkId first = home->links.front();
    const auto detour = topology::shortest_path(
        graph, d.src, d.dst, topology::distance_weight(),
        [&](const topology::Link& l) { return l.id != first; });
    if (detour) account(*detour, d.erlangs);
  }

  std::vector<Recommendation> out;
  for (const auto& node : graph.nodes()) {
    Recommendation r;
    r.node = node.id;
    const auto it = load.find(node.id);
    r.offered_erlangs = it == load.end() ? 0.0 : it->second;
    // 1% blocking target for regens (they gate long routes only).
    r.ots_needed = servers_for_blocking(r.offered_erlangs, 0.01);
    r.predicted_blocking = erlang_b(r.offered_erlangs, r.ots_needed);
    out.push_back(r);
  }
  return out;
}

}  // namespace griphon::core
