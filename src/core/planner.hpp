// Network resource planning (paper §4).
//
//   "In order to support rapid connection provisioning and faster
//    restorations, the carrier must plan ahead, where and when to deploy
//    the spare resources (especially OTs). ... they need to forecast
//    demand and carefully manage the pool of GRIPhoN resources."
//
// The planner answers the question the paper poses: given a demand
// forecast (Erlangs per site pair), how many transponders must each PoP
// hold to keep blocking under a target? The queueing core is the Erlang-B
// loss formula — the same POTS-era engineering the paper references, but
// applied to pools of a handful of very expensive servers, where every
// unit matters.
#pragma once

#include <vector>

#include "core/network_model.hpp"

namespace griphon::core {

/// Erlang-B blocking probability for `erlangs` of offered load on
/// `servers` circuits. Uses the numerically stable recurrence
/// B(0) = 1, B(k) = a*B(k-1) / (k + a*B(k-1)).
[[nodiscard]] double erlang_b(double erlangs, int servers);

/// Smallest server count with Erlang-B blocking <= `target`.
[[nodiscard]] int servers_for_blocking(double erlangs, double target);

/// A point-to-point demand forecast.
struct DemandForecast {
  NodeId src;
  NodeId dst;
  double erlangs = 0;  ///< mean concurrent connections (arrivals x holding)
};

class ResourcePlanner {
 public:
  struct Recommendation {
    NodeId node;
    double offered_erlangs = 0;  ///< OT-load terminating at this PoP
    int ots_needed = 0;
    double predicted_blocking = 0;
  };

  /// Per-PoP transponder pool sizes for a demand matrix and a blocking
  /// target. Every connection consumes one OT at each endpoint, so a PoP's
  /// offered OT-load is the sum of the Erlangs of all demands that
  /// terminate there. (Regens for long routes are sized separately.)
  [[nodiscard]] static std::vector<Recommendation> plan_ot_pools(
      const topology::Graph& graph, const std::vector<DemandForecast>& demand,
      double target_blocking);

  /// Spare headroom for single-failure restoration: the extra OT-load a
  /// PoP would terminate if the worst single link failed and every
  /// affected wavelength re-terminated... in GRIPhoN restoration reuses
  /// the original endpoints, so endpoint pools need no failure margin, but
  /// *regen* pools do. Returns per-node regen counts able to cover the
  /// forecast's shortest paths plus any single-link reroute, using the
  /// given reach profile.
  [[nodiscard]] static std::vector<Recommendation> plan_regen_pools(
      const topology::Graph& graph, const dwdm::ReachModel& reach,
      const std::vector<DemandForecast>& demand, DataRate rate);
};

}  // namespace griphon::core
