#include "core/portal.hpp"

#include <iomanip>
#include <memory>
#include <sstream>

#include "telemetry/telemetry.hpp"

namespace griphon::core {

namespace {

/// Count a portal-level rejection, labeled by customer and reason, so the
/// carrier can see per-tenant isolation working (or a tenant hammering
/// its quota) straight from the metrics.
void count_reject(GriphonController* controller, CustomerId customer,
                  const char* reason) {
  if (telemetry::Telemetry* t = controller->model().telemetry())
    t->metrics()
        .counter("griphon_portal_rejects_total",
                 "Customer requests rejected at the portal",
                 {{"customer", std::to_string(customer.value())},
                  {"reason", reason}})
        ->inc();
}

}  // namespace

CustomerPortal::CustomerPortal(GriphonController* controller,
                               CustomerId customer, DataRate bandwidth_quota)
    : controller_(controller), customer_(customer), quota_(bandwidth_quota) {}

DataRate CustomerPortal::provisioned() const {
  DataRate total{};
  for (const ConnectionId id : controller_->connections_of(customer_))
    total += controller_->connection(id).rate;
  return total;
}

void CustomerPortal::connect(MuxponderId src_site, MuxponderId dst_site,
                             DataRate rate, ProtectionMode protection,
                             SetupCallback cb, ServiceTier tier) {
  if (provisioned() + rate > quota_) {
    count_reject(controller_, customer_, "quota");
    cb(Error{ErrorCode::kPermissionDenied,
             "portal: request exceeds bandwidth quota"});
    return;
  }
  ConnectionRequest req;
  req.customer = customer_;
  req.src_site = src_site;
  req.dst_site = dst_site;
  req.rate = rate;
  req.protection = protection;
  req.tier = tier;
  controller_->request_connection(req, std::move(cb));
}

void CustomerPortal::disconnect(ConnectionId id, DoneCallback cb) {
  const Connection* found = controller_->find_connection(id);
  if (found == nullptr) {
    cb(Status{ErrorCode::kNotFound, "portal: unknown connection"});
    return;
  }
  const Connection& c = *found;
  if (c.customer != customer_) {
    count_reject(controller_, customer_, "isolation");
    cb(Status{ErrorCode::kPermissionDenied,
              "portal: connection belongs to another customer"});
    return;
  }
  controller_->release_connection(id, std::move(cb));
}

CustomerPortal::Decomposition CustomerPortal::decompose(DataRate rate) {
  Decomposition d;
  std::int64_t remaining = rate.in_bps();
  const std::int64_t wave = rates::k10G.in_bps();
  const std::int64_t odu = rates::k1G.in_bps();
  d.wavelengths_10g = static_cast<int>(remaining / wave);
  remaining -= static_cast<std::int64_t>(d.wavelengths_10g) * wave;
  if (remaining == 0) return d;
  // A big remainder wastes less as a wave of its own than as 8-9 ODUs that
  // would consume as much OTN capacity as a whole wavelength anyway.
  if (remaining >= 8 * odu) {
    ++d.wavelengths_10g;
    return d;
  }
  if (remaining <= 2 * odu) {
    d.odu_1g = static_cast<int>((remaining + odu - 1) / odu);
    return d;
  }
  d.odu_flex = DataRate{remaining};
  return d;
}

void CustomerPortal::connect_bundle(MuxponderId src_site,
                                    MuxponderId dst_site, DataRate rate,
                                    ProtectionMode protection,
                                    BundleCallback cb) {
  const Decomposition d = decompose(rate);
  if (provisioned() + d.total() > quota_) {
    count_reject(controller_, customer_, "quota");
    cb(Error{ErrorCode::kPermissionDenied,
             "portal: bundle exceeds bandwidth quota"});
    return;
  }

  struct Pending {
    CustomerPortal* portal;
    Bundle bundle;
    std::vector<DataRate> to_request;
    std::size_t next = 0;
    BundleCallback cb;
    MuxponderId src, dst;
    ProtectionMode protection;
  };
  auto state = std::make_shared<Pending>();
  state->portal = this;
  state->bundle.id = bundle_ids_.next();
  state->bundle.requested = rate;
  state->cb = std::move(cb);
  state->src = src_site;
  state->dst = dst_site;
  state->protection = protection;
  for (int i = 0; i < d.wavelengths_10g; ++i)
    state->to_request.push_back(rates::k10G);
  for (int i = 0; i < d.odu_1g; ++i)
    state->to_request.push_back(rates::k1G);
  if (!d.odu_flex.zero()) state->to_request.push_back(d.odu_flex);

  // Parts are requested sequentially so that a quota/capacity failure stops
  // the train early; rollback releases whatever got built.
  struct Driver {
    static void step(std::shared_ptr<Pending> st) {
      if (st->next >= st->to_request.size()) {
        const BundleId id = st->bundle.id;
        st->portal->bundles_[id] = std::move(st->bundle);
        st->cb(id);
        return;
      }
      ConnectionRequest req;
      req.customer = st->portal->customer_;
      req.src_site = st->src;
      req.dst_site = st->dst;
      req.rate = st->to_request[st->next];
      req.protection = st->protection;
      st->portal->controller_->request_connection(
          req, [st](Result<ConnectionId> r) {
            if (r.ok()) {
              st->bundle.parts.push_back(r.value());
              ++st->next;
              step(st);
              return;
            }
            // Unwind the parts already built.
            unwind(st, r.error());
          });
    }
    static void unwind(std::shared_ptr<Pending> st, Error error) {
      if (st->bundle.parts.empty()) {
        st->cb(std::move(error));
        return;
      }
      const ConnectionId id = st->bundle.parts.back();
      st->bundle.parts.pop_back();
      st->portal->controller_->release_connection(
          id, [st, error](Status) { unwind(st, error); });
    }
  };
  Driver::step(state);
}

void CustomerPortal::disconnect_bundle(BundleId id, DoneCallback cb) {
  const auto it = bundles_.find(id);
  if (it == bundles_.end()) {
    cb(Status{ErrorCode::kNotFound, "portal: unknown bundle"});
    return;
  }
  auto parts = std::make_shared<std::vector<ConnectionId>>(it->second.parts);
  bundles_.erase(it);
  auto remaining = std::make_shared<std::size_t>(parts->size());
  auto first_error = std::make_shared<Status>(Status::success());
  if (parts->empty()) {
    cb(Status::success());
    return;
  }
  for (const ConnectionId part : *parts) {
    controller_->release_connection(
        part, [remaining, first_error, cb](Status s) {
          if (!s.ok() && first_error->ok()) *first_error = s;
          if (--*remaining == 0) cb(*first_error);
        });
  }
}

const CustomerPortal::Bundle& CustomerPortal::bundle(BundleId id) const {
  const auto it = bundles_.find(id);
  if (it == bundles_.end())
    throw std::out_of_range("portal: unknown bundle");
  return it->second;
}

std::vector<CustomerPortal::ConnectionView> CustomerPortal::list() const {
  std::vector<ConnectionView> out;
  const auto& model = const_cast<GriphonController*>(controller_)->model();
  for (const ConnectionId id : controller_->connections_of(customer_)) {
    const Connection& c = controller_->connection(id);
    ConnectionView v;
    v.id = id;
    const auto* src = model.site_by_nte(c.src_site);
    const auto* dst = model.site_by_nte(c.dst_site);
    v.src_site = src != nullptr ? src->name : "?";
    v.dst_site = dst != nullptr ? dst->name : "?";
    v.rate = c.rate;
    v.state = to_string(c.state);
    v.service = c.kind == ConnectionKind::kWavelength ? "wavelength"
                                                      : "sub-wavelength";
    v.total_outage_seconds = to_seconds(c.total_outage);
    v.restorations = c.restorations;
    out.push_back(std::move(v));
  }
  return out;
}

std::string CustomerPortal::render_dashboard() const {
  std::ostringstream os;
  os << "+-- GRIPhoN BoD portal -- customer " << customer_.value()
     << " --------------------------------+\n";
  os << "| quota " << std::setw(6) << quota_.in_gbps() << "G   provisioned "
     << std::setw(6) << provisioned().in_gbps() << "G\n";
  os << "+----+----------------+----------------+--------+----------------"
        "+-------+\n";
  os << "| id | from           | to             | rate   | status         "
        "| rest. |\n";
  os << "+----+----------------+----------------+--------+----------------"
        "+-------+\n";
  for (const auto& v : list()) {
    std::string status = v.state;
    if (v.total_outage_seconds > 0)
      status += " (" + std::to_string(static_cast<int>(
                            v.total_outage_seconds)) + "s out)";
    os << "| " << std::setw(2) << v.id.value() << " | " << std::setw(14)
       << std::left << v.src_site.substr(0, 14) << std::right << " | "
       << std::setw(14) << std::left << v.dst_site.substr(0, 14)
       << std::right << " | " << std::setw(5) << v.rate.in_gbps() << "G | "
       << std::setw(14) << std::left << status.substr(0, 14) << std::right
       << " | " << std::setw(5) << v.restorations << " |\n";
  }
  os << "+----+----------------+----------------+--------+----------------"
        "+-------+\n";
  return os.str();
}

}  // namespace griphon::core
