// Customer portal — the paper's "Customer Graphical User Interface" (§2.2)
// as a view-model: per-customer connection management and fault visibility,
// with the network's internals hidden. Adds two service features on top of
// the raw controller API:
//
//  * quota enforcement (carrier isolates customers from each other), and
//  * composite-rate bundles: "they can use lower-speed circuits to augment
//    a high-speed circuit by using a combination of 2 x 1G OTN circuits and
//    one 10G DWDM to achieve a total bandwidth of 12G instead of consuming
//    a second 10G DWDM" (paper §2.2).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/controller.hpp"

namespace griphon::core {

using BundleId = Id<struct BundleTag>;

class CustomerPortal {
 public:
  CustomerPortal(GriphonController* controller, CustomerId customer,
                 DataRate bandwidth_quota);

  [[nodiscard]] CustomerId customer() const noexcept { return customer_; }
  [[nodiscard]] DataRate quota() const noexcept { return quota_; }
  /// Total rate of connections currently held (any live state).
  [[nodiscard]] DataRate provisioned() const;

  // --- single connections -------------------------------------------------
  using SetupCallback = GriphonController::SetupCallback;
  using DoneCallback = GriphonController::DoneCallback;

  /// Set up one connection between two of this customer's sites. Fails
  /// with kPermissionDenied if it would exceed the bandwidth quota.
  void connect(MuxponderId src_site, MuxponderId dst_site, DataRate rate,
               ProtectionMode protection, SetupCallback cb,
               ServiceTier tier = ServiceTier::kSilver);
  void disconnect(ConnectionId id, DoneCallback cb);

  // --- composite bundles ---------------------------------------------------
  /// How an arbitrary rate decomposes into service circuits.
  struct Decomposition {
    int wavelengths_10g = 0;
    int odu_1g = 0;
    DataRate odu_flex{};  ///< one ODUflex circuit for mid-size remainders
    [[nodiscard]] DataRate total() const {
      return rates::k10G * wavelengths_10g + rates::k1G * odu_1g + odu_flex;
    }
  };
  /// Carrier packing policy: fill with 10G waves; remainders of 8G or more
  /// take a wave of their own; remainders up to 2G become 1G ODU circuits
  /// (the paper's "2 x 1G OTN circuits" example); anything between rides a
  /// single ODUflex circuit so it consumes one access port, not several.
  [[nodiscard]] static Decomposition decompose(DataRate rate);

  struct Bundle {
    BundleId id;
    std::vector<ConnectionId> parts;
    DataRate requested;
  };
  using BundleCallback = std::function<void(Result<BundleId>)>;

  /// Set up a composite connection totaling at least `rate`. All parts
  /// succeed or the bundle is rolled back entirely.
  void connect_bundle(MuxponderId src_site, MuxponderId dst_site,
                      DataRate rate, ProtectionMode protection,
                      BundleCallback cb);
  void disconnect_bundle(BundleId id, DoneCallback cb);
  [[nodiscard]] const Bundle& bundle(BundleId id) const;

  // --- customer-facing views ------------------------------------------------
  struct ConnectionView {
    ConnectionId id;
    std::string src_site;
    std::string dst_site;
    DataRate rate;
    std::string state;
    std::string service;  ///< "wavelength" / "sub-wavelength"
    double total_outage_seconds = 0;
    int restorations = 0;
  };
  [[nodiscard]] std::vector<ConnectionView> list() const;

  /// Render the customer dashboard as text — the paper's "Customer GUI"
  /// (§2.2): connection status, rates, faults and restorations, with the
  /// carrier network's internals hidden.
  [[nodiscard]] std::string render_dashboard() const;

 private:
  GriphonController* controller_;
  CustomerId customer_;
  DataRate quota_;
  std::map<BundleId, Bundle> bundles_;
  IdAllocator<BundleId> bundle_ids_;
};

}  // namespace griphon::core
