#include "core/rwa.hpp"

#include <algorithm>

namespace griphon::core {

RwaEngine::RwaEngine(const NetworkModel* model, const Inventory* inventory,
                     Params params)
    : model_(model), inventory_(inventory), params_(params) {}

dwdm::ChannelSet RwaEngine::channels_for_segment(const topology::Path& path,
                                                 std::size_t first_link,
                                                 std::size_t last_link) const {
  dwdm::ChannelSet set =
      dwdm::ChannelSet::all(model_->grid().count());
  for (std::size_t i = first_link; i <= last_link; ++i)
    set.intersect(inventory_->available_on_link(path.links[i]));
  return set;
}

dwdm::ChannelIndex RwaEngine::pick_channel(
    const dwdm::ChannelSet& candidates) const {
  if (candidates.empty()) return dwdm::kNoChannel;
  if (params_.policy == WavelengthPolicy::kFirstFit) return candidates.first();
  // Most-used packs the network-wide hottest channels (maximizing reuse);
  // least-used spreads across the grid (the fragmentation-prone baseline).
  const bool want_most = params_.policy == WavelengthPolicy::kMostUsed;
  dwdm::ChannelIndex best = dwdm::kNoChannel;
  std::size_t best_usage = 0;
  for (const dwdm::ChannelIndex ch : candidates.to_vector()) {
    const std::size_t usage = inventory_->channel_usage(ch);
    if (best == dwdm::kNoChannel ||
        (want_most ? usage > best_usage : usage < best_usage)) {
      best = ch;
      best_usage = usage;
    }
  }
  return best;
}

Result<WavelengthPlan> RwaEngine::plan(NodeId src, NodeId dst, DataRate rate,
                                       const Exclusions& exclude) const {
  if (src == dst)
    return Error{ErrorCode::kInvalidArgument, "rwa: src == dst"};

  const auto profile = dwdm::profile_for(rate);
  const auto filter = [&](const topology::Link& l) {
    if (model_->link_failed(l.id)) return false;
    if (exclude.links.contains(l.id)) return false;
    if (exclude.nodes.contains(l.a) || exclude.nodes.contains(l.b)) {
      // Interior exclusion: allow links touching src/dst themselves.
      const bool endpoint_ok = (l.a == src || l.a == dst || !exclude.nodes.contains(l.a)) &&
                               (l.b == src || l.b == dst || !exclude.nodes.contains(l.b));
      if (!endpoint_ok) return false;
    }
    return true;
  };

  const auto routes = topology::k_shortest_paths(
      model_->graph(), src, dst, params_.route_candidates,
      topology::distance_weight(), filter);
  if (routes.empty())
    return Error{ErrorCode::kUnreachable, "rwa: no route survives exclusions"};

  Error last_error{ErrorCode::kResourceExhausted,
                   "rwa: no wavelength plan on any candidate route"};
  for (const auto& route : routes) {
    // Transparent segmentation by optical reach.
    std::vector<dwdm::ReachModel::Segment> segments;
    try {
      segments = model_->reach().segment(model_->graph(), route, profile);
    } catch (const std::runtime_error&) {
      continue;  // a single span beyond reach at this rate
    }

    WavelengthPlan plan;
    plan.path = route;

    // Endpoint transponders.
    const auto src_ot = inventory_->find_free_ot(src, rate);
    const auto dst_ot = inventory_->find_free_ot(dst, rate);
    if (!src_ot || !dst_ot) {
      last_error = Error{ErrorCode::kResourceExhausted,
                         "rwa: no free transponder at an endpoint"};
      continue;
    }
    plan.src_ot = *src_ot;
    plan.dst_ot = *dst_ot;

    // Wavelength per segment + regen at each boundary.
    bool ok = true;
    std::set<RegenId> used_regens;
    for (std::size_t s = 0; s < segments.size() && ok; ++s) {
      const auto candidates = channels_for_segment(
          route, segments[s].first_link, segments[s].last_link);
      const dwdm::ChannelIndex ch = pick_channel(candidates);
      if (ch == dwdm::kNoChannel) {
        last_error = Error{ErrorCode::kResourceExhausted,
                           "rwa: wavelength continuity violated on segment"};
        ok = false;
        break;
      }
      plan.segments.push_back(
          SegmentPlan{segments[s].first_link, segments[s].last_link, ch});
      if (s + 1 < segments.size()) {
        const NodeId boundary = route.nodes[segments[s].last_link + 1];
        // Several boundaries may share a node only if enough regens exist.
        std::optional<RegenId> regen;
        for (const auto& r : model_->regens()) {
          if (r->site() == boundary && !r->in_use() &&
              r->line_rate() >= rate &&
              !inventory_->regen_reserved(r->id()) &&
              !used_regens.contains(r->id())) {
            regen = r->id();
            break;
          }
        }
        if (!regen) {
          last_error = Error{ErrorCode::kResourceExhausted,
                             "rwa: no free regenerator at segment boundary"};
          ok = false;
          break;
        }
        used_regens.insert(*regen);
        plan.regens.push_back(*regen);
      }
    }
    if (ok) return plan;
  }
  return last_error;
}

}  // namespace griphon::core
