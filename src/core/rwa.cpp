#include "core/rwa.hpp"

#include <algorithm>

#include "core/network_model.hpp"
#include "telemetry/telemetry.hpp"

namespace griphon::core {

RwaEngine::RwaEngine(const NetworkModel* model, const Inventory* inventory,
                     Params params)
    : model_(model), inventory_(inventory), params_(params) {}

dwdm::ChannelSet RwaEngine::channels_for_segment(
    const Inventory::Snapshot& snap, const topology::Path& path,
    std::size_t first_link, std::size_t last_link) const {
  dwdm::ChannelSet set = dwdm::ChannelSet::all(model_->grid().count());
  for (std::size_t i = first_link; i <= last_link; ++i)
    set.intersect(snap.available_on_link(path.links[i]));
  return set;
}

dwdm::ChannelSet RwaEngine::channels_for_segment(const topology::Path& path,
                                                 std::size_t first_link,
                                                 std::size_t last_link) const {
  const auto snap = inventory_->snapshot();
  return channels_for_segment(*snap, path, first_link, last_link);
}

dwdm::ChannelIndex RwaEngine::pick_channel(
    const dwdm::ChannelSet& candidates, const Inventory::Snapshot& snap) const {
  if (candidates.empty()) return dwdm::kNoChannel;
  if (params_.policy == WavelengthPolicy::kFirstFit) return candidates.first();
  // Most-used packs the network-wide hottest channels (maximizing reuse);
  // least-used spreads across the grid (the fragmentation-prone baseline).
  const bool want_most = params_.policy == WavelengthPolicy::kMostUsed;
  dwdm::ChannelIndex best = dwdm::kNoChannel;
  std::size_t best_usage = 0;
  candidates.for_each([&](dwdm::ChannelIndex ch) {
    const std::size_t usage = snap.channel_usage(ch);
    if (best == dwdm::kNoChannel ||
        (want_most ? usage > best_usage : usage < best_usage)) {
      best = ch;
      best_usage = usage;
    }
  });
  return best;
}

RwaEngine::TelemetryHandles RwaEngine::sync_telemetry_locked() const {
  telemetry::Telemetry* t = model_->telemetry();
  if (t == telemetry_seen_) return handles_;
  telemetry_seen_ = t;
  if (t == nullptr) {
    handles_ = TelemetryHandles{};
    return handles_;
  }
  auto& m = t->metrics();
  TelemetryHandles h;
  h.cache_hits = m.counter("griphon_rwa_route_cache_hits_total",
                           "Route-cache hits in cached_routes");
  h.cache_misses = m.counter("griphon_rwa_route_cache_misses_total",
                             "Route-cache misses (Yen's recomputed)");
  h.plans_total =
      m.counter("griphon_rwa_plans_total", "Wavelength plan attempts");
  h.plans_failed = m.counter("griphon_rwa_plans_failed_total",
                             "Plan attempts that found no viable plan");
  h.cache_evictions =
      m.counter("griphon_rwa_route_cache_evicted_total",
                "Route-cache entries evicted by incremental invalidation");
  handles_ = h;
  return handles_;
}

RwaEngine::TelemetryHandles RwaEngine::telemetry_handles() const {
  MutexLock lock(&mu_);
  return sync_telemetry_locked();
}

std::size_t RwaEngine::RouteKeyHash::operator()(
    const RouteKey& k) const noexcept {
  // FNV-1a over the key's words; equality still compares in full, so a
  // collision only costs a probe, never a wrong answer.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) noexcept {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(k.src);
  mix(k.dst);
  mix(k.excluded_links.size());
  for (const std::uint64_t v : k.excluded_links) mix(v);
  for (const std::uint64_t v : k.excluded_nodes) mix(v);
  return static_cast<std::size_t>(h);
}

void RwaEngine::invalidate_cache_locked(const TelemetryHandles& t) const {
  if (route_cache_version_ == model_->topology_version()) return;
  // A fiber cut only *removes* paths: an entry whose cached candidates
  // avoid every cut link is still exactly the k shortest of the reduced
  // graph, so only traversing entries need to go. A repair can surface
  // better routes for any pair, and a journal gap hides unknown changes
  // — both fall back to the old full clear.
  std::vector<NetworkModel::TopologyChange> changes;
  bool selective =
      model_->topology_changes_since(route_cache_version_, &changes);
  for (const NetworkModel::TopologyChange& change : changes)
    if (!change.failed) selective = false;
  if (selective) {
    const auto traverses_cut = [&changes](const topology::Path& p) {
      return std::any_of(
          changes.begin(), changes.end(),
          [&p](const NetworkModel::TopologyChange& change) {
            return std::find(p.links.begin(), p.links.end(), change.link) !=
                   p.links.end();
          });
    };
    for (auto it = route_cache_.begin(); it != route_cache_.end();) {
      if (std::any_of(it->second.begin(), it->second.end(), traverses_cut)) {
        if (t.cache_evictions != nullptr) t.cache_evictions->inc();
        it = route_cache_.erase(it);
      } else {
        ++it;
      }
    }
  } else {
    route_cache_.clear();
  }
  route_cache_version_ = model_->topology_version();
}

const std::vector<topology::Path>& RwaEngine::candidate_routes(
    NodeId src, NodeId dst, const Exclusions& exclude) const {
  MutexLock lock(&mu_);
  // External callers (BoD scheduler) skip plan(), so sync here too.
  const TelemetryHandles t = sync_telemetry_locked();
  invalidate_cache_locked(t);
  RouteKey key;
  key.src = src.value();
  key.dst = dst.value();
  key.excluded_links.reserve(exclude.links.size());
  for (const LinkId l : exclude.links) key.excluded_links.push_back(l.value());
  key.excluded_nodes.reserve(exclude.nodes.size());
  for (const NodeId n : exclude.nodes) key.excluded_nodes.push_back(n.value());
  const auto [it, inserted] = route_cache_.try_emplace(std::move(key));
  if (t.cache_hits != nullptr)
    (inserted ? t.cache_misses : t.cache_hits)->inc();
  if (inserted) {
    // Same query the uncached path used to issue, so cache hits and misses
    // yield byte-identical candidate lists.
    const auto filter = [&](const topology::Link& l) {
      if (model_->link_failed(l.id)) return false;
      if (exclude.links.contains(l.id)) return false;
      if (exclude.nodes.contains(l.a) || exclude.nodes.contains(l.b)) {
        // Interior exclusion: allow links touching src/dst themselves.
        const bool endpoint_ok =
            (l.a == src || l.a == dst || !exclude.nodes.contains(l.a)) &&
            (l.b == src || l.b == dst || !exclude.nodes.contains(l.b));
        if (!endpoint_ok) return false;
      }
      return true;
    };
    it->second = topology::k_shortest_paths(model_->graph(), src, dst,
                                            params_.route_candidates,
                                            topology::distance_weight(), filter);
  }
  return it->second;
}

Result<WavelengthPlan> RwaEngine::plan(NodeId src, NodeId dst, DataRate rate,
                                       const Exclusions& exclude) const {
  const TelemetryHandles t = telemetry_handles();
  if (t.plans_total != nullptr) t.plans_total->inc();
  if (src == dst) {
    if (t.plans_failed != nullptr) t.plans_failed->inc();
    return Error{ErrorCode::kInvalidArgument, "rwa: src == dst"};
  }

  const auto profile = dwdm::profile_for(rate);

  const std::vector<topology::Path>* routes =
      &candidate_routes(src, dst, exclude);
  if (routes->empty()) {
    if (t.plans_failed != nullptr) t.plans_failed->inc();
    return Error{ErrorCode::kUnreachable, "rwa: no route survives exclusions"};
  }

  // One coherent view of availability, pools and usage for the whole
  // planning pass — the seam parallel candidate evaluation will hang off.
  const std::shared_ptr<const Inventory::Snapshot> snap =
      inventory_->snapshot();

  Error last_error{ErrorCode::kResourceExhausted,
                   "rwa: no wavelength plan on any candidate route"};
  for (const auto& route : *routes) {
    // Transparent segmentation by optical reach.
    auto maybe_segments =
        model_->reach().try_segment(model_->graph(), route, profile);
    if (!maybe_segments) continue;  // a single span beyond reach at this rate
    const auto& segments = *maybe_segments;

    WavelengthPlan plan;
    plan.path = route;

    // Endpoint transponders.
    const auto src_ot = snap->find_free_ot(src, rate);
    const auto dst_ot = snap->find_free_ot(dst, rate);
    if (!src_ot || !dst_ot) {
      last_error = Error{ErrorCode::kResourceExhausted,
                         "rwa: no free transponder at an endpoint"};
      continue;
    }
    plan.src_ot = *src_ot;
    plan.dst_ot = *dst_ot;

    // Wavelength per segment + regen at each boundary.
    bool ok = true;
    std::set<RegenId> used_regens;
    for (std::size_t s = 0; s < segments.size() && ok; ++s) {
      const auto candidates = channels_for_segment(
          *snap, route, segments[s].first_link, segments[s].last_link);
      const dwdm::ChannelIndex ch = pick_channel(candidates, *snap);
      if (ch == dwdm::kNoChannel) {
        last_error = Error{ErrorCode::kResourceExhausted,
                           "rwa: wavelength continuity violated on segment"};
        ok = false;
        break;
      }
      plan.segments.push_back(
          SegmentPlan{segments[s].first_link, segments[s].last_link, ch});
      if (s + 1 < segments.size()) {
        const NodeId boundary = route.nodes[segments[s].last_link + 1];
        // Several boundaries may share a node only if enough regens exist;
        // `used_regens` keeps one plan from double-booking a unit.
        const auto regen = snap->find_free_regen(boundary, rate, used_regens);
        if (!regen) {
          last_error = Error{ErrorCode::kResourceExhausted,
                             "rwa: no free regenerator at segment boundary"};
          ok = false;
          break;
        }
        used_regens.insert(*regen);
        plan.regens.push_back(*regen);
      }
    }
    if (ok) return plan;
  }
  if (t.plans_failed != nullptr) t.plans_failed->inc();
  return last_error;
}

}  // namespace griphon::core
