// Routing and Wavelength Assignment (RWA).
//
// Given a connection request between two core PoPs at a wavelength rate,
// produce a full provisioning plan: the fiber route, its division into
// transparent segments (regenerators at boundaries, from the reach model),
// one wavelength per segment honoring wavelength continuity, and the
// concrete OT/regen devices to use.
//
// Route candidates come from Yen's k-shortest paths; wavelength assignment
// is pluggable (first-fit packs the spectrum from the bottom; most-used
// maximizes reuse, the classic blocking-reduction heuristic).
//
// Concurrency (DESIGN.md §15): plan() reads planning state (availability,
// pools, usage) exclusively through one Inventory::Snapshot taken at the
// top of the call, so a future parallel candidate evaluation sees one
// coherent view. The route cache and cached metric handles are guarded by
// `mu_`.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"
#include "core/inventory.hpp"
#include "dwdm/reach.hpp"
#include "topology/path.hpp"

namespace griphon::telemetry {
class Counter;
}  // namespace griphon::telemetry

namespace griphon::core {

enum class WavelengthPolicy {
  kFirstFit,   ///< lowest available channel (packs the spectrum)
  kMostUsed,   ///< channel already busiest network-wide (maximal reuse)
  kLeastUsed,  ///< channel least used network-wide (spreads; the classic
               ///< fragmentation-prone baseline, kept for the ablation)
};

/// One transparent segment of a planned lightpath.
struct SegmentPlan {
  std::size_t first_link = 0;  ///< index into path.links
  std::size_t last_link = 0;   ///< inclusive
  dwdm::ChannelIndex channel = dwdm::kNoChannel;
};

/// Complete provisioning plan for a wavelength connection.
struct WavelengthPlan {
  topology::Path path;
  std::vector<SegmentPlan> segments;   ///< >= 1, in path order
  TransponderId src_ot;
  TransponderId dst_ot;
  std::vector<RegenId> regens;         ///< segments.size() - 1 entries

  [[nodiscard]] std::size_t hops() const noexcept {
    return path.links.size();
  }
};

/// Constraints a plan must avoid (failed plant is excluded automatically).
struct Exclusions {
  std::set<LinkId> links;
  std::set<NodeId> nodes;
};

class RwaEngine {
 public:
  struct Params {
    WavelengthPolicy policy = WavelengthPolicy::kFirstFit;
    std::size_t route_candidates = 4;  ///< k in k-shortest-paths
  };

  RwaEngine(const NetworkModel* model, const Inventory* inventory,
            Params params);

  /// Plan a wavelength connection of `rate` between two core PoPs.
  [[nodiscard]] Result<WavelengthPlan> plan(
      NodeId src, NodeId dst, DataRate rate,
      const Exclusions& exclude = {}) const EXCLUDES(mu_);

  /// Channels usable on every link of `path[first..last]`, as seen by the
  /// given snapshot.
  [[nodiscard]] dwdm::ChannelSet channels_for_segment(
      const Inventory::Snapshot& snap, const topology::Path& path,
      std::size_t first_link, std::size_t last_link) const;

  /// Convenience overload over a fresh snapshot (owner thread only).
  [[nodiscard]] dwdm::ChannelSet channels_for_segment(
      const topology::Path& path, std::size_t first_link,
      std::size_t last_link) const;

  /// Candidate routes for (src, dst) under `exclude`, memoized. Routes
  /// depend only on the graph, the failed-link set, k, the weight function
  /// and the exclusions — the first two are versioned by the model's
  /// topology_version(), k and weights fixed per engine, and the
  /// exclusions are part of the cache key — so steady-state planning
  /// (including restoration and BoD re-scheduling, which plan around the
  /// same failed links repeatedly) skips Yen's entirely. Public so the BoD
  /// TransferScheduler can share routes without planning wavelengths.
  /// The returned reference stays valid until the next topology change
  /// clears the cache — callers use it within one planning pass, on the
  /// thread that owns model mutations.
  [[nodiscard]] const std::vector<topology::Path>& candidate_routes(
      NodeId src, NodeId dst, const Exclusions& exclude = {}) const
      EXCLUDES(mu_);

 private:
  /// Metric handles resolved against the current telemetry sink; passed
  /// around by value so hot-path counting never touches guarded members
  /// without the lock.
  struct TelemetryHandles {
    telemetry::Counter* cache_hits = nullptr;
    telemetry::Counter* cache_misses = nullptr;
    telemetry::Counter* plans_total = nullptr;
    telemetry::Counter* plans_failed = nullptr;
    telemetry::Counter* cache_evictions = nullptr;
  };

  /// Bring the route cache up to the model's topology_version(): replay
  /// the failure journal and evict only entries whose cached candidates
  /// traverse a cut link; fall back to a full clear on repairs or a
  /// journal gap (see the comment in the implementation for why that
  /// split is decision-identical to always clearing).
  void invalidate_cache_locked(const TelemetryHandles& t) const
      REQUIRES(mu_);

  [[nodiscard]] dwdm::ChannelIndex pick_channel(
      const dwdm::ChannelSet& candidates,
      const Inventory::Snapshot& snap) const;

  /// Refresh cached metric handles when the model's telemetry sink changes
  /// (attach/detach). Keeps the steady-state cost of counting at one
  /// pointer comparison + one branch per plan() call.
  TelemetryHandles sync_telemetry_locked() const REQUIRES(mu_);
  [[nodiscard]] TelemetryHandles telemetry_handles() const EXCLUDES(mu_);

  /// Full cache key: pair + exclusions (compared, not just hashed, so a
  /// hash collision can never serve the wrong candidate list).
  struct RouteKey {
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    std::vector<std::uint64_t> excluded_links;  ///< sorted (set order)
    std::vector<std::uint64_t> excluded_nodes;  ///< sorted (set order)
    bool operator==(const RouteKey&) const = default;
  };
  struct RouteKeyHash {
    std::size_t operator()(const RouteKey& k) const noexcept;
  };

  const NetworkModel* model_;
  const Inventory* inventory_;
  Params params_;

  mutable Mutex mu_;

  mutable std::unordered_map<RouteKey, std::vector<topology::Path>,
                             RouteKeyHash>
      route_cache_ GUARDED_BY(mu_);
  mutable std::uint64_t route_cache_version_ GUARDED_BY(mu_) = 0;

  // Metric handles cached against the sink they came from (plan() is the
  // provisioning hot path; see sync_telemetry_locked()).
  mutable const void* telemetry_seen_ GUARDED_BY(mu_) = nullptr;
  mutable TelemetryHandles handles_ GUARDED_BY(mu_);
};

}  // namespace griphon::core
