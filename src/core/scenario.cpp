#include "core/scenario.hpp"

#include <stdexcept>

namespace griphon::core {

namespace {

/// Provision one OTU carrier per physical link (the OTN layer's "ride" on
/// the DWDM layer), so sub-wavelength circuits can groom everywhere and
/// protected circuits can find disjoint backup routes.
void provision_carriers_everywhere(NetworkModel& model, DataRate line_rate) {
  for (const auto& link : model.graph().links()) {
    auto got = model.add_otn_carrier(link.a, link.b, line_rate, {link.id});
    if (!got.ok())
      throw std::runtime_error("scenario: carrier provisioning failed: " +
                               got.error().message());
  }
}

}  // namespace

TestbedScenario::TestbedScenario(std::uint64_t seed,
                                 NetworkModel::Config config,
                                 GriphonController::Params params)
    : engine(seed), topo(topology::paper_testbed()) {
  model = std::make_unique<NetworkModel>(&engine, topo.graph, config);
  if (config.with_otn)
    provision_carriers_everywhere(*model, rates::k10G);
  site_i = model->add_customer_site(csp, "DC-I", topo.i).nte;
  site_iii = model->add_customer_site(csp, "DC-III", topo.iii).nte;
  site_iv = model->add_customer_site(csp, "DC-IV", topo.iv).nte;
  controller = std::make_unique<GriphonController>(model.get(), params);
  portal = std::make_unique<CustomerPortal>(controller.get(), csp,
                                            DataRate::gbps(160));
}

BackboneScenario::BackboneScenario(std::uint64_t seed, Options options)
    : engine(seed) {
  model = std::make_unique<NetworkModel>(&engine, topology::us_backbone(),
                                         options.config);
  if (options.config.with_otn && options.provision_otn_carriers)
    provision_carriers_everywhere(*model, rates::k10G);
  controller = std::make_unique<GriphonController>(model.get(),
                                                   options.params);

  const auto& nodes = model->graph().nodes();
  std::size_t next_pop = 0;
  for (std::size_t c = 0; c < options.customers; ++c) {
    const CustomerId customer{c + 1};
    portals.push_back(std::make_unique<CustomerPortal>(
        controller.get(), customer, options.quota));
    for (std::size_t s = 0; s < options.sites_per_customer; ++s) {
      // Spread sites across the continent, round-robin with a stride that
      // keeps one customer's sites far apart.
      const NodeId pop = nodes[(next_pop * 5 + 2) % nodes.size()].id;
      ++next_pop;
      sites.push_back(model
                          ->add_customer_site(
                              customer,
                              "DC-" + std::to_string(c) + "-" +
                                  std::to_string(s) + "@" +
                                  model->graph().node(pop).name,
                              pop)
                          .nte);
    }
  }
}

MuxponderId BackboneScenario::site(std::size_t customer,
                                   std::size_t index) const {
  const std::size_t per =
      sites.size() / (portals.empty() ? 1 : portals.size());
  const std::size_t i = customer * per + index;
  if (i >= sites.size())
    throw std::out_of_range("BackboneScenario::site");
  return sites[i];
}

}  // namespace griphon::core
