// Canned deployment scenarios shared by examples, tests and benches.
//
//  * TestbedScenario — the paper's Fig. 4 laboratory prototype: four
//    ROADMs (I..IV), three customer premises, OT pools behind client-side
//    FXCs, OTN layer with carriers over every span plus protection routes.
//  * BackboneScenario — a 14-node continental backbone with several cloud
//    customers, for restoration / blocking / grooming studies.
#pragma once

#include <memory>

#include "core/controller.hpp"
#include "core/network_model.hpp"
#include "core/portal.hpp"
#include "topology/builders.hpp"

namespace griphon::core {

struct TestbedScenario {
  sim::Engine engine;
  topology::Testbed topo;
  std::unique_ptr<NetworkModel> model;
  std::unique_ptr<GriphonController> controller;
  std::unique_ptr<CustomerPortal> portal;
  CustomerId csp{1};
  MuxponderId site_i;    ///< premises homed on ROADM I
  MuxponderId site_iii;  ///< premises homed on ROADM III
  MuxponderId site_iv;   ///< premises homed on ROADM IV

  explicit TestbedScenario(std::uint64_t seed,
                           NetworkModel::Config config = {},
                           GriphonController::Params params = {});
};

struct BackboneScenario {
  sim::Engine engine;
  std::unique_ptr<NetworkModel> model;
  std::unique_ptr<GriphonController> controller;
  /// One portal per cloud customer; sites spread over the continent.
  std::vector<std::unique_ptr<CustomerPortal>> portals;
  std::vector<MuxponderId> sites;  ///< all sites, grouped by customer

  struct Options {
    std::size_t customers = 2;
    std::size_t sites_per_customer = 3;
    DataRate quota = DataRate::gbps(200);
    bool provision_otn_carriers = true;
    NetworkModel::Config config{};
    GriphonController::Params params{};
  };
  BackboneScenario(std::uint64_t seed, Options options);

  [[nodiscard]] MuxponderId site(std::size_t customer,
                                 std::size_t index) const;
};

}  // namespace griphon::core
