#include "core/step_dag.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace griphon::core {

StepDag::StepDag(const StepList& steps) {
  deps_.resize(steps.size());
  dependents_.resize(steps.size());
  // Explicit builder edges plus implicit per-element serialization: each
  // command depends on the previous command addressed to the same managed
  // element, so same-device order never depends on queue arrival.
  std::map<std::uint64_t, std::size_t> last_on_element;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    std::set<std::size_t> deps(steps[i].deps.begin(), steps[i].deps.end());
    const std::uint64_t key = proto::element_key(steps[i].forward);
    if (const auto it = last_on_element.find(key);
        it != last_on_element.end())
      deps.insert(it->second);
    last_on_element[key] = i;
    deps.erase(i);  // self-edges would deadlock; drop them defensively
    for (const std::size_t d : deps) {
      if (d >= i) continue;  // edges only point backwards in list order
      deps_[i].push_back(d);
      dependents_[d].push_back(i);
    }
  }
}

StepList build_undo_steps(const StepList& steps,
                          const std::vector<std::size_t>& succeeded) {
  const StepDag dag(steps);
  std::vector<std::size_t> order = succeeded;
  std::sort(order.begin(), order.end());
  std::set<std::size_t> ok(order.begin(), order.end());

  // Undo list in reverse completion order; remember where each forward
  // step's undo landed.
  StepList undo;
  std::map<std::size_t, std::size_t> undo_index;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Step& s = steps[*it];
    if (!s.undo) continue;
    undo_index[*it] = undo.size();
    undo.push_back(Step{s.client, *s.undo, std::nullopt, {}});
  }

  // Reverse edges: forward "i before j" becomes "undo(j) before undo(i)".
  // Succeeded steps without an undo are pass-throughs — their dependents'
  // undos still gate the undos of their dependencies.
  for (const std::size_t i : order) {
    const auto ui = undo_index.find(i);
    if (ui == undo_index.end()) continue;
    std::set<std::size_t> blockers;
    std::set<std::size_t> visited;
    std::vector<std::size_t> frontier(dag.dependents_of(i).begin(),
                                      dag.dependents_of(i).end());
    while (!frontier.empty()) {
      const std::size_t j = frontier.back();
      frontier.pop_back();
      if (!visited.insert(j).second) continue;
      if (!ok.contains(j)) continue;  // never ran; nothing to wait for
      if (const auto uj = undo_index.find(j); uj != undo_index.end()) {
        blockers.insert(uj->second);
      } else {
        frontier.insert(frontier.end(), dag.dependents_of(j).begin(),
                        dag.dependents_of(j).end());
      }
    }
    undo[ui->second].deps.assign(blockers.begin(), blockers.end());
  }
  return undo;
}

// --------------------------------------------------------------------------
// DagScheduler
// --------------------------------------------------------------------------

DagScheduler::DagScheduler(const StepDag* dag,
                           std::vector<std::string> domains,
                           std::size_t domain_window)
    : dag_(dag), domains_(std::move(domains)),
      window_(domain_window == 0 ? 1 : domain_window),
      indegree_(dag->size(), 0), issued_(dag->size(), false),
      completed_(dag->size(), false) {
  for (std::size_t i = 0; i < dag_->size(); ++i)
    indegree_[i] = dag_->deps_of(i).size();
  for (std::size_t i = 0; i < dag_->size(); ++i)
    if (indegree_[i] == 0) ready_[domains_[i]].push_back(i);
}

std::optional<std::size_t> DagScheduler::acquire() {
  for (auto& [domain, queue] : ready_) {
    if (queue.empty() || in_flight_[domain] >= window_) continue;
    const std::size_t i = queue.front();
    queue.pop_front();
    issued_[i] = true;
    ++in_flight_[domain];
    ++in_flight_total_;
    return i;
  }
  return std::nullopt;
}

std::vector<std::size_t> DagScheduler::drain_ready(
    const std::string& domain,
    const std::function<bool(std::size_t)>& pred) {
  std::vector<std::size_t> taken;
  const auto it = ready_.find(domain);
  if (it == ready_.end()) return taken;
  std::deque<std::size_t> keep;
  for (const std::size_t i : it->second) {
    if (pred(i)) {
      issued_[i] = true;
      taken.push_back(i);
    } else {
      keep.push_back(i);
    }
  }
  it->second = std::move(keep);
  return taken;
}

void DagScheduler::release(std::size_t i) {
  if (completed_[i]) return;
  completed_[i] = true;
  for (const std::size_t j : dag_->dependents_of(i)) {
    if (indegree_[j] == 0) continue;  // defensive; graph edges are unique
    if (--indegree_[j] == 0 && !aborted_) {
      // Keep each ready queue sorted so dispatch is lowest-index first.
      auto& queue = ready_[domains_[j]];
      queue.insert(std::lower_bound(queue.begin(), queue.end(), j), j);
    }
  }
}

void DagScheduler::slot_done(std::size_t i) {
  auto& count = in_flight_[domains_[i]];
  if (count > 0) --count;
  if (in_flight_total_ > 0) --in_flight_total_;
}

void DagScheduler::abort() {
  aborted_ = true;
  ready_.clear();
}

bool DagScheduler::finished() const {
  if (!idle()) return false;
  if (aborted_) return true;
  for (const auto& [domain, queue] : ready_)
    if (!queue.empty()) return false;
  return true;
}

std::size_t DagScheduler::stuck() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < issued_.size(); ++i)
    if (!issued_[i] && indegree_[i] > 0) ++n;
  return n;
}

// --------------------------------------------------------------------------
// Report
// --------------------------------------------------------------------------

void mark_critical_path(StepDagReport& report) {
  for (auto& s : report.steps) s.critical = false;
  if (report.steps.empty()) return;
  // Tail of the chain: the step that finished last.
  std::size_t at = report.steps.size();
  double best_end = -1.0;
  for (std::size_t i = 0; i < report.steps.size(); ++i) {
    if (report.steps[i].end_s > best_end) {
      best_end = report.steps[i].end_s;
      at = i;
    }
  }
  if (at == report.steps.size() || best_end < 0.0) return;
  // Walk back through whichever dependency completed last — the edge that
  // actually gated each step.
  while (true) {
    report.steps[at].critical = true;
    std::size_t pred = report.steps.size();
    double pred_end = -1.0;
    for (const std::size_t d : report.steps[at].deps) {
      if (d >= report.steps.size()) continue;
      if (report.steps[d].end_s > pred_end) {
        pred_end = report.steps[d].end_s;
        pred = d;
      }
    }
    if (pred == report.steps.size()) break;
    at = pred;
  }
}

std::string render_dag(const StepDagReport& report) {
  std::ostringstream out;
  out << "step DAG: " << report.steps.size() << " steps, "
      << report.total_s << " s critical-path makespan ('*' = critical path, "
      << "'B' = batched dialogue)\n";
  constexpr int kBarWidth = 32;
  const double scale =
      report.total_s > 0.0 ? kBarWidth / report.total_s : 0.0;
  for (std::size_t i = 0; i < report.steps.size(); ++i) {
    const DagStepRecord& s = report.steps[i];
    out << (s.critical ? '*' : ' ') << (s.batched ? 'B' : ' ');
    char idx[8];
    std::snprintf(idx, sizeof idx, "%3zu ", i);
    out << idx;
    // Timeline bar: offset + extent in run time.
    std::string bar(kBarWidth, '.');
    if (s.end_s >= 0.0 && s.start_s >= 0.0) {
      const int from = std::min(kBarWidth - 1,
                                static_cast<int>(s.start_s * scale));
      const int to = std::min(kBarWidth - 1,
                              static_cast<int>(s.end_s * scale));
      for (int b = from; b <= to; ++b) bar[static_cast<std::size_t>(b)] = '#';
    }
    out << '[' << bar << "] ";
    char timing[64];
    if (s.end_s >= 0.0)
      std::snprintf(timing, sizeof timing, "%7.2f -> %7.2f  %-18s",
                    s.start_s, s.end_s, s.name.c_str());
    else
      std::snprintf(timing, sizeof timing, "%7s    %7s  %-18s", "-", "-",
                    s.name.c_str());
    out << timing << ' ' << s.domain;
    if (!s.deps.empty()) {
      out << "  deps:";
      for (const std::size_t d : s.deps) out << ' ' << d;
    }
    if (s.end_s >= 0.0 && !s.ok) out << "  FAILED";
    out << '\n';
  }
  return out.str();
}

}  // namespace griphon::core
