// Dependency-DAG execution planning for EMS command trains.
//
// A Step is one EMS command (plus its rollback command, if any) with
// explicit dependency edges on earlier steps. The builders in the
// controller emit the real ordering constraints — an NTE port must be up
// before the FXC cross-connect that steers it, a transponder must be tuned
// before the ROADM add/drop that references it, a regenerator engages only
// after both of its add/drops — and everything the edges do not relate is
// free to run concurrently. StepDag materializes those edges (adding
// implicit per-element serialization so two commands to one device never
// race) and DagScheduler hands out ready steps under a bounded per-domain
// in-flight window. The controller drives the actual issuing; everything
// here is pure bookkeeping and therefore unit-testable without a network.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "proto/messages.hpp"

namespace griphon::proto {
class RequestClient;
}  // namespace griphon::proto

namespace griphon::core {

/// One EMS command in a train, with its rollback and its predecessors.
struct Step {
  proto::RequestClient* client = nullptr;
  proto::Message forward;              ///< command to run
  std::optional<proto::Message> undo;  ///< rollback command, if any
  /// Indices (into the same StepList) of steps that must complete before
  /// this one may be issued. Empty = runnable immediately.
  std::vector<std::size_t> deps;
};
using StepList = std::vector<Step>;

/// The dependency graph of one StepList: explicit builder edges merged
/// with implicit same-element edges (each command depends on the previous
/// command addressed to the same element, preserving list order per
/// device). Indices are positions in the originating StepList.
class StepDag {
 public:
  explicit StepDag(const StepList& steps);

  [[nodiscard]] std::size_t size() const noexcept { return deps_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& deps_of(
      std::size_t i) const {
    return deps_.at(i);
  }
  [[nodiscard]] const std::vector<std::size_t>& dependents_of(
      std::size_t i) const {
    return dependents_.at(i);
  }

 private:
  std::vector<std::vector<std::size_t>> deps_;
  std::vector<std::vector<std::size_t>> dependents_;
};

/// Rollback command list for the succeeded steps of a train, in reverse
/// completion order and carrying reverse dependency edges: if forward step
/// j depended on step i, then i's undo depends on j's undo (transitively
/// across succeeded steps that have no undo of their own). Executing this
/// list under any executor that honors deps reproduces the strict reverse
/// teardown a sequential rollback gives.
[[nodiscard]] StepList build_undo_steps(
    const StepList& steps, const std::vector<std::size_t>& succeeded);

/// Ready-set scheduler over a StepDag with a bounded in-flight window per
/// EMS domain. Deterministic: ready steps are handed out lowest-index
/// first within each domain, domains in lexicographic order.
class DagScheduler {
 public:
  DagScheduler(const StepDag* dag, std::vector<std::string> domains,
               std::size_t domain_window);

  /// Claim the next issuable step (respecting windows); marks it in
  /// flight. nullopt when nothing is currently issuable.
  [[nodiscard]] std::optional<std::size_t> acquire();

  /// Remove every currently-ready step of `domain` matching `pred` and
  /// return them (lowest index first). They ride an already-acquired
  /// window slot (command batching); callers must still release() each.
  [[nodiscard]] std::vector<std::size_t> drain_ready(
      const std::string& domain,
      const std::function<bool(std::size_t)>& pred);

  /// Step `i` completed: unblock its dependents.
  void release(std::size_t i);
  /// The window slot `i` was issued under is free again.
  void slot_done(std::size_t i);
  /// Stop handing out new steps (first failure in a strict run). Already
  /// in-flight steps drain normally.
  void abort();

  [[nodiscard]] bool aborted() const noexcept { return aborted_; }
  /// No slots in flight.
  [[nodiscard]] bool idle() const noexcept { return in_flight_total_ == 0; }
  /// Nothing in flight and nothing will become issuable: the run is over.
  [[nodiscard]] bool finished() const;
  /// Steps that can never run because the graph is cyclic (defensive; a
  /// builder bug). finished() turns true so the run ends instead of
  /// hanging, and the controller surfaces this count as an error.
  [[nodiscard]] std::size_t stuck() const;

 private:
  const StepDag* dag_;
  std::vector<std::string> domains_;
  std::size_t window_;
  std::vector<std::size_t> indegree_;
  std::vector<bool> issued_;
  std::vector<bool> completed_;
  std::map<std::string, std::deque<std::size_t>> ready_;
  std::map<std::string, std::size_t> in_flight_;
  std::size_t in_flight_total_ = 0;
  bool aborted_ = false;
};

/// Execution record of one DAG run, kept for the shell's `dag` command.
struct DagStepRecord {
  std::string name;    ///< span label, e.g. "ot.tune"
  std::string domain;  ///< e.g. "roadm-ems"
  std::vector<std::size_t> deps;  ///< merged (explicit + per-element) edges
  double start_s = -1.0;  ///< seconds since run start; -1 = never issued
  double end_s = -1.0;
  bool ok = false;
  bool batched = false;  ///< coalesced into a shared batch dialogue
  bool critical = false; ///< on the longest dependency chain
};

struct StepDagReport {
  double started_at_s = 0.0;  ///< absolute sim time of the run start
  double total_s = 0.0;       ///< run duration (issue of first to last done)
  std::vector<DagStepRecord> steps;
};

/// Mark report.steps[i].critical along the longest finish-time chain
/// (each step's predecessor is the dependency that completed last).
void mark_critical_path(StepDagReport& report);

/// ASCII rendering of the DAG run: one row per step with timing bars,
/// dependency lists and a '*' on the critical path.
[[nodiscard]] std::string render_dag(const StepDagReport& report);

}  // namespace griphon::core
