#include "dwdm/muxponder.hpp"

#include <algorithm>

namespace griphon::dwdm {

Result<std::size_t> Muxponder::allocate_client_port() {
  for (std::size_t i = 0; i < kClientPorts; ++i) {
    if (!in_use_[i]) {
      in_use_[i] = true;
      return i;
    }
  }
  return Error{ErrorCode::kResourceExhausted,
               name() + ": all client ports in use"};
}

Status Muxponder::claim_client_port(std::size_t port) {
  if (port >= kClientPorts)
    return Status{ErrorCode::kInvalidArgument, name() + ": bad port"};
  if (in_use_[port])
    return Status{ErrorCode::kBusy, name() + ": port in use"};
  in_use_[port] = true;
  return Status::success();
}

Status Muxponder::release_client_port(std::size_t port) {
  if (port >= kClientPorts)
    return Status{ErrorCode::kInvalidArgument, name() + ": bad port"};
  if (!in_use_[port])
    return Status{ErrorCode::kConflict, name() + ": port not in use"};
  in_use_[port] = false;
  return Status::success();
}

bool Muxponder::port_in_use(std::size_t port) const {
  return port < kClientPorts && in_use_[port];
}

std::size_t Muxponder::ports_in_use() const noexcept {
  return static_cast<std::size_t>(
      std::count(in_use_.begin(), in_use_.end(), true));
}

}  // namespace griphon::dwdm
