// 10G/40G muxponder — the paper's emulated Network Terminating Equipment
// (NTE): "four 10Gbps ports on the client side and a 40Gbps transmission
// rate on the line side (towards the carrier)". One muxponder sits at each
// customer premises; its line side is the dedicated access "fat pipe" into
// the carrier's central office.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace griphon::dwdm {

class Muxponder {
 public:
  static constexpr std::size_t kClientPorts = 4;

  Muxponder(MuxponderId id, CustomerId owner, NodeId premises)
      : id_(id), owner_(owner), premises_(premises) {}

  [[nodiscard]] MuxponderId id() const noexcept { return id_; }
  [[nodiscard]] CustomerId owner() const noexcept { return owner_; }
  [[nodiscard]] NodeId premises() const noexcept { return premises_; }
  [[nodiscard]] DataRate line_rate() const noexcept { return rates::k40G; }
  [[nodiscard]] DataRate client_rate() const noexcept { return rates::k10G; }
  [[nodiscard]] std::string name() const {
    return "nte/" + std::to_string(id_.value());
  }

  /// Claim a free 10G client port; returns its index.
  [[nodiscard]] Result<std::size_t> allocate_client_port();
  /// Claim one specific client port (controller-selected).
  [[nodiscard]] Status claim_client_port(std::size_t port);
  [[nodiscard]] Status release_client_port(std::size_t port);
  [[nodiscard]] bool port_in_use(std::size_t port) const;
  [[nodiscard]] std::size_t ports_in_use() const noexcept;
  /// Aggregate client-side bandwidth currently provisioned.
  [[nodiscard]] DataRate provisioned() const noexcept {
    return client_rate() * static_cast<std::int64_t>(ports_in_use());
  }

 private:
  MuxponderId id_;
  CustomerId owner_;
  NodeId premises_;
  std::array<bool, kClientPorts> in_use_{};
};

}  // namespace griphon::dwdm
