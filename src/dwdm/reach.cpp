#include "dwdm/reach.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace griphon::dwdm {

ReachModel::ReachModel() : params_(Params{}) {}

LineRateProfile profile_10g() {
  return LineRateProfile{rates::k10G, 12.0, Distance::km(2800)};
}
LineRateProfile profile_40g() {
  return LineRateProfile{rates::k40G, 16.0, Distance::km(1800)};
}
LineRateProfile profile_100g() {
  return LineRateProfile{rates::k100G, 18.0, Distance::km(1500)};
}

LineRateProfile profile_for(DataRate rate) {
  if (rate <= rates::k10G) return profile_10g();
  if (rate <= rates::k40G) return profile_40g();
  return profile_100g();
}

double ReachModel::osnr_at_end(const topology::Graph& g,
                               const topology::Path& path) const {
  double osnr = params_.launch_osnr_db;
  for (const LinkId lid : path.links) {
    for (const auto& span : g.link(lid).spans) {
      // Penalty scales with span length relative to the nominal 100 km.
      osnr -= params_.span_penalty_db * (span.length.in_km() / 100.0);
    }
  }
  // Each intermediate ROADM the signal expresses through narrows the
  // passband and adds loss.
  if (path.nodes.size() > 2)
    osnr -= params_.roadm_pass_penalty_db *
            static_cast<double>(path.nodes.size() - 2);
  return osnr;
}

bool ReachModel::feasible(const topology::Graph& g, const topology::Path& path,
                          const LineRateProfile& profile) const {
  if (path.length(g) > profile.max_reach) return false;
  return osnr_at_end(g, path) >= profile.required_osnr_db;
}

std::optional<std::vector<ReachModel::Segment>> ReachModel::try_segment(
    const topology::Graph& g, const topology::Path& path,
    const LineRateProfile& profile) const {
  std::vector<Segment> segments;
  if (path.empty()) return segments;

  std::size_t start = 0;
  while (start < path.links.size()) {
    // Greedily extend the transparent segment while it stays feasible.
    // Length and OSNR accumulate link by link in the same order feasible()
    // sums them over a rebuilt sub-path, so the decisions are identical —
    // without materializing O(segment-length) sub-paths per trial.
    std::size_t end = start;
    bool first_link_feasible = false;
    Distance length{};
    double osnr = params_.launch_osnr_db;
    for (std::size_t trial = start; trial < path.links.size(); ++trial) {
      const topology::Link& l = g.link(path.links[trial]);
      length += l.length();
      for (const auto& span : l.spans)
        osnr -= params_.span_penalty_db * (span.length.in_km() / 100.0);
      double osnr_end = osnr;
      const std::size_t sub_nodes = trial - start + 2;
      if (sub_nodes > 2)
        osnr_end -= params_.roadm_pass_penalty_db *
                    static_cast<double>(sub_nodes - 2);
      if (length > profile.max_reach || osnr_end < profile.required_osnr_db)
        break;
      end = trial;
      if (trial == start) first_link_feasible = true;
    }
    // A single link that is itself infeasible means the route cannot be
    // built at this rate at all (regens only help between links).
    if (end == start && !first_link_feasible) return std::nullopt;
    segments.push_back(Segment{start, end});
    start = end + 1;
  }
  return segments;
}

std::vector<ReachModel::Segment> ReachModel::segment(
    const topology::Graph& g, const topology::Path& path,
    const LineRateProfile& profile) const {
  auto segments = try_segment(g, path, profile);
  if (!segments)
    throw std::runtime_error(
        "ReachModel::segment: single span exceeds reach at this rate");
  return *std::move(segments);
}

ReachModel::Admission ReachModel::admit(
    const topology::Graph& g, const topology::Path& path,
    const std::vector<Segment>& segments,
    const LineRateProfile& profile) const {
  Admission verdict;
  verdict.admitted = true;
  verdict.worst_margin_db = std::numeric_limits<double>::infinity();
  for (const Segment& seg : segments) {
    Distance length{};
    double osnr = params_.launch_osnr_db;
    for (std::size_t li = seg.first_link;
         li <= seg.last_link && li < path.links.size(); ++li) {
      const topology::Link& l = g.link(path.links[li]);
      length += l.length();
      for (const auto& span : l.spans)
        osnr -= params_.span_penalty_db * (span.length.in_km() / 100.0);
    }
    const std::size_t seg_nodes = seg.last_link - seg.first_link + 2;
    if (seg_nodes > 2)
      osnr -= params_.roadm_pass_penalty_db *
              static_cast<double>(seg_nodes - 2);
    double margin = osnr - profile.required_osnr_db;
    if (length > profile.max_reach)
      margin = -std::numeric_limits<double>::infinity();
    verdict.segment_margins_db.push_back(margin);
    verdict.worst_margin_db = std::min(verdict.worst_margin_db, margin);
    if (margin < 0.0) verdict.admitted = false;
  }
  if (verdict.segment_margins_db.empty()) verdict.worst_margin_db = 0.0;
  return verdict;
}

std::vector<NodeId> ReachModel::regen_sites(
    const topology::Graph& g, const topology::Path& path,
    const LineRateProfile& profile) const {
  std::vector<NodeId> sites;
  const auto segments = segment(g, path, profile);
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    // Boundary node after the last link of segment i.
    sites.push_back(path.nodes[segments[i].last_link + 1]);
  }
  return sites;
}

}  // namespace griphon::dwdm
