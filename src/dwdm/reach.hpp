// Optical reach and signal-quality budget.
//
// "OEO regeneration is needed when the distance between terminating nodes
// exceeds a limit for adequate signal quality, known as the optical reach"
// (paper §2.1). We model reach with a simple OSNR budget: launch OSNR minus
// per-span and per-ROADM-pass penalties must stay above the receiver
// requirement for the line rate. From the budget we derive where along a
// route regenerators must be placed.
#pragma once

#include <optional>
#include <vector>

#include "common/units.hpp"
#include "topology/graph.hpp"
#include "topology/path.hpp"

namespace griphon::dwdm {

/// Modulation/rate-dependent receiver requirements.
struct LineRateProfile {
  DataRate rate;
  double required_osnr_db;  ///< minimum OSNR at the receiver
  Distance max_reach;       ///< engineering-rule cap independent of OSNR
};

/// Engineering profiles for the rates GRIPhoN provisions. 40G needs more
/// OSNR (shorter reach) than 10G, matching deployed systems.
[[nodiscard]] LineRateProfile profile_10g();
[[nodiscard]] LineRateProfile profile_40g();
[[nodiscard]] LineRateProfile profile_100g();
[[nodiscard]] LineRateProfile profile_for(DataRate rate);

class ReachModel {
 public:
  struct Params {
    double launch_osnr_db = 35.0;   ///< after the transmit amplifier
    double span_penalty_db = 0.35;  ///< noise added per ~100 km span
    double roadm_pass_penalty_db = 0.4;  ///< filter narrowing per express hop
  };

  ReachModel();
  explicit ReachModel(Params params) : params_(params) {}

  /// OSNR at the receiver after traversing `path` transparently.
  [[nodiscard]] double osnr_at_end(const topology::Graph& g,
                                   const topology::Path& path) const;

  /// Whether `path` can be crossed without regeneration at `rate`.
  [[nodiscard]] bool feasible(const topology::Graph& g,
                              const topology::Path& path,
                              const LineRateProfile& profile) const;

  /// Split `path` into maximal transparent segments; regenerators go at the
  /// boundary nodes between consecutive segments. Each segment is expressed
  /// as the index range [first_link, last_link] into path.links.
  struct Segment {
    std::size_t first_link;
    std::size_t last_link;  // inclusive
  };
  [[nodiscard]] std::vector<Segment> segment(
      const topology::Graph& g, const topology::Path& path,
      const LineRateProfile& profile) const;

  /// Non-throwing variant of segment() for hot paths: returns nullopt where
  /// segment() would throw (a single link infeasible at this rate).
  [[nodiscard]] std::optional<std::vector<Segment>> try_segment(
      const topology::Graph& g, const topology::Path& path,
      const LineRateProfile& profile) const;

  /// Nodes (interior to the path) where a regenerator is required.
  [[nodiscard]] std::vector<NodeId> regen_sites(
      const topology::Graph& g, const topology::Path& path,
      const LineRateProfile& profile) const;

  /// Up-front admission verdict for a segmented route. Instead of probing
  /// signal quality per segment during setup (a round of management
  /// dialogues before any cross-connects), the controller decides
  /// admissibility from the same OSNR budget the RWA used — one model, no
  /// probes. A segment's margin is its receiver OSNR minus the profile
  /// requirement; a negative margin (or a reach-cap violation, reported as
  /// -inf margin) rejects the route.
  struct Admission {
    bool admitted = false;
    double worst_margin_db = 0.0;
    std::vector<double> segment_margins_db;  ///< one per transparent segment
  };
  [[nodiscard]] Admission admit(const topology::Graph& g,
                                const topology::Path& path,
                                const std::vector<Segment>& segments,
                                const LineRateProfile& profile) const;

 private:
  Params params_;
};

}  // namespace griphon::dwdm
