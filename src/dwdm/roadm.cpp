#include "dwdm/roadm.hpp"

#include <stdexcept>

namespace griphon::dwdm {

DegreeIndex Roadm::attach_degree(LinkId link) {
  if (degree_for(link))
    throw std::invalid_argument("Roadm: degree already faces this link");
  degree_links_.push_back(link);
  uses_.emplace_back();
  used_sets_.emplace_back();
  return static_cast<DegreeIndex>(degree_links_.size() - 1);
}

std::optional<DegreeIndex> Roadm::degree_for(LinkId link) const {
  for (std::size_t i = 0; i < degree_links_.size(); ++i)
    if (degree_links_[i] == link) return static_cast<DegreeIndex>(i);
  return std::nullopt;
}

LinkId Roadm::link_of(DegreeIndex degree) const {
  if (!valid_degree(degree))
    throw std::out_of_range("Roadm::link_of: bad degree");
  return degree_links_[static_cast<std::size_t>(degree)];
}

std::vector<PortId> Roadm::add_ports(std::size_t count) {
  std::vector<PortId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ports_.push_back(PortState{});
    out.push_back(PortId{ports_.size() - 1});
  }
  return out;
}

PortId Roadm::add_fixed_port(DegreeIndex degree, ChannelIndex channel) {
  if (!valid_degree(degree) || !grid_.contains(channel))
    throw std::invalid_argument("Roadm::add_fixed_port: bad binding");
  PortState st;
  st.mode = PortMode::kFixed;
  st.fixed_degree = degree;
  st.fixed_channel = channel;
  ports_.push_back(st);
  return PortId{ports_.size() - 1};
}

const Roadm::PortState& Roadm::port(PortId p) const {
  if (p.value() >= ports_.size())
    throw std::out_of_range("Roadm::port: unknown port");
  return ports_[p.value()];
}

Status Roadm::configure_express(ChannelIndex ch, DegreeIndex in,
                                DegreeIndex out) {
  if (!grid_.contains(ch))
    return Status{ErrorCode::kInvalidArgument, name() + ": bad channel"};
  if (!valid_degree(in) || !valid_degree(out) || in == out)
    return Status{ErrorCode::kInvalidArgument, name() + ": bad degrees"};
  if (channel_in_use(in, ch) || channel_in_use(out, ch))
    return Status{ErrorCode::kBusy,
                  name() + ": " + grid_.name(ch) + " already in use"};
  Use use;
  use.is_express = true;
  use.other_degree = out;
  uses_[static_cast<std::size_t>(in)][ch] = use;
  use.other_degree = in;
  uses_[static_cast<std::size_t>(out)][ch] = use;
  used_sets_[static_cast<std::size_t>(in)].add(ch);
  used_sets_[static_cast<std::size_t>(out)].add(ch);
  changed();
  return Status::success();
}

Status Roadm::release_express(ChannelIndex ch, DegreeIndex in,
                              DegreeIndex out) {
  if (!valid_degree(in) || !valid_degree(out))
    return Status{ErrorCode::kInvalidArgument, name() + ": bad degrees"};
  auto& min = uses_[static_cast<std::size_t>(in)];
  auto& mout = uses_[static_cast<std::size_t>(out)];
  const auto ii = min.find(ch);
  const auto oi = mout.find(ch);
  if (ii == min.end() || oi == mout.end() || !ii->second.is_express ||
      ii->second.other_degree != out)
    return Status{ErrorCode::kConflict,
                  name() + ": no such express cross-connect"};
  min.erase(ii);
  mout.erase(oi);
  used_sets_[static_cast<std::size_t>(in)].remove(ch);
  used_sets_[static_cast<std::size_t>(out)].remove(ch);
  changed();
  return Status::success();
}

Status Roadm::configure_add_drop(PortId p, DegreeIndex degree,
                                 ChannelIndex ch) {
  if (p.value() >= ports_.size())
    return Status{ErrorCode::kNotFound, name() + ": unknown port"};
  if (!grid_.contains(ch) || !valid_degree(degree))
    return Status{ErrorCode::kInvalidArgument, name() + ": bad target"};
  PortState& st = ports_[p.value()];
  if (st.active)
    return Status{ErrorCode::kBusy, name() + ": port already configured"};
  if (st.mode == PortMode::kFixed &&
      (st.fixed_degree != degree || st.fixed_channel != ch))
    return Status{ErrorCode::kConflict,
                  name() + ": fixed port cannot steer/retune"};
  if (channel_in_use(degree, ch))
    return Status{ErrorCode::kBusy,
                  name() + ": " + grid_.name(ch) + " already in use"};
  st.active = true;
  st.degree = degree;
  st.channel = ch;
  Use use;
  use.is_express = false;
  use.port = p;
  uses_[static_cast<std::size_t>(degree)][ch] = use;
  used_sets_[static_cast<std::size_t>(degree)].add(ch);
  changed();
  return Status::success();
}

Status Roadm::release_add_drop(PortId p) {
  if (p.value() >= ports_.size())
    return Status{ErrorCode::kNotFound, name() + ": unknown port"};
  PortState& st = ports_[p.value()];
  if (!st.active)
    return Status{ErrorCode::kConflict, name() + ": port not configured"};
  uses_[static_cast<std::size_t>(st.degree)].erase(st.channel);
  used_sets_[static_cast<std::size_t>(st.degree)].remove(st.channel);
  st.active = false;
  st.degree = -1;
  st.channel = kNoChannel;
  changed();
  return Status::success();
}

bool Roadm::channel_in_use(DegreeIndex degree, ChannelIndex ch) const {
  if (!valid_degree(degree))
    throw std::out_of_range("Roadm::channel_in_use: bad degree");
  return grid_.contains(ch) &&
         used_sets_[static_cast<std::size_t>(degree)].contains(ch);
}

ChannelSet Roadm::free_channels(DegreeIndex degree) const {
  if (!valid_degree(degree))
    throw std::out_of_range("Roadm::free_channels: bad degree");
  ChannelSet s = ChannelSet::all(grid_.count());
  s.subtract(used_sets_[static_cast<std::size_t>(degree)]);
  return s;
}

const ChannelSet& Roadm::used_channels(DegreeIndex degree) const {
  if (!valid_degree(degree))
    throw std::out_of_range("Roadm::used_channels: bad degree");
  return used_sets_[static_cast<std::size_t>(degree)];
}

std::size_t Roadm::active_uses() const {
  std::size_t n = 0;
  for (const auto& m : uses_) n += m.size();
  return n;
}

std::vector<Roadm::ActiveUse> Roadm::uses() const {
  std::vector<ActiveUse> out;
  out.reserve(active_uses());
  for (std::size_t d = 0; d < uses_.size(); ++d)
    for (const auto& [ch, use] : uses_[d])
      out.push_back(ActiveUse{static_cast<DegreeIndex>(d), ch, use.is_express,
                              use.other_degree, use.port});
  return out;
}

void Roadm::raise(AlarmType type, LinkId link, ChannelIndex ch, SimTime now,
                  std::string detail) {
  if (!alarm_sink_) return;
  Alarm a;
  a.id = alarm_ids_.next();
  a.type = type;
  a.raised_at = now;
  a.source = name();
  a.node = site_;
  a.link = link;
  if (ch != kNoChannel) a.channel = ch;
  a.detail = std::move(detail);
  alarm_sink_(a);
}

void Roadm::on_link_failed(LinkId link, SimTime now) {
  const auto degree = degree_for(link);
  if (!degree) return;
  // The optical supervisory channel watches the span itself, so a degree
  // reports loss of signal even when no traffic channel is configured yet.
  raise(AlarmType::kLos, link, kNoChannel, now, "osc");
  for (const auto& [ch, use] : uses_[static_cast<std::size_t>(*degree)]) {
    raise(AlarmType::kLos, link, ch, now,
          use.is_express ? "express" : "add-drop");
  }
}

void Roadm::on_link_restored(LinkId link, SimTime now) {
  const auto degree = degree_for(link);
  if (!degree) return;
  raise(AlarmType::kClear, link, kNoChannel, now, "osc");
  for (const auto& [ch, use] : uses_[static_cast<std::size_t>(*degree)])
    raise(AlarmType::kClear, link, ch, now, "link repaired");
}

}  // namespace griphon::dwdm
