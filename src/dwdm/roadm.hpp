// ROADM network element.
//
// A multi-degree ROADM sits at a node; each *degree* faces one inter-node
// fiber link. Traffic on a wavelength may be expressed between two degrees
// or added/dropped at a local port. Ports are *colorless* (any channel) and
// *non-directional* (any degree) as the paper requires, with an optional
// fixed mode kept for ablation studies.
//
// The ROADM is a passive state machine: configuration latency lives in the
// EMS layer; validity rules (one use per channel per degree) live here.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/alarm.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "dwdm/wavelength.hpp"
#include "topology/graph.hpp"

namespace griphon::dwdm {

/// Degree index within one ROADM.
using DegreeIndex = int;

class Roadm {
 public:
  /// How add/drop ports may be used.
  enum class PortMode {
    kColorlessSteerable,  ///< any channel, any degree (GRIPhoN hardware)
    kFixed,               ///< bound to one (degree, channel) at install time
  };

  struct PortState {
    PortMode mode = PortMode::kColorlessSteerable;
    // For kFixed ports: the binding chosen at install time.
    DegreeIndex fixed_degree = -1;
    ChannelIndex fixed_channel = kNoChannel;
    // Current configuration (valid when active).
    bool active = false;
    DegreeIndex degree = -1;
    ChannelIndex channel = kNoChannel;
  };

  Roadm(RoadmId id, NodeId site, WavelengthGrid grid)
      : id_(id), site_(site), grid_(grid) {}

  [[nodiscard]] RoadmId id() const noexcept { return id_; }
  [[nodiscard]] NodeId site() const noexcept { return site_; }
  [[nodiscard]] const WavelengthGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] std::string name() const {
    return "roadm/" + std::to_string(id_.value());
  }

  /// Attach a new degree facing `link`. Returns the degree index.
  DegreeIndex attach_degree(LinkId link);
  [[nodiscard]] std::optional<DegreeIndex> degree_for(LinkId link) const;
  [[nodiscard]] LinkId link_of(DegreeIndex degree) const;
  [[nodiscard]] std::size_t degree_count() const noexcept {
    return degree_links_.size();
  }

  /// Install `count` colorless/steerable add-drop ports; returns their ids.
  std::vector<PortId> add_ports(std::size_t count);
  /// Install one fixed port bound to (degree, channel).
  PortId add_fixed_port(DegreeIndex degree, ChannelIndex channel);
  [[nodiscard]] std::size_t port_count() const noexcept {
    return ports_.size();
  }
  [[nodiscard]] const PortState& port(PortId p) const;

  // --- configuration (EMS-invoked) ------------------------------------
  /// Express a channel between two degrees.
  [[nodiscard]] Status configure_express(ChannelIndex ch, DegreeIndex in, DegreeIndex out);
  [[nodiscard]] Status release_express(ChannelIndex ch, DegreeIndex in, DegreeIndex out);
  /// Add/drop `ch` on `degree` at local port `p`.
  [[nodiscard]] Status configure_add_drop(PortId p, DegreeIndex degree, ChannelIndex ch);
  [[nodiscard]] Status release_add_drop(PortId p);

  // --- queries ---------------------------------------------------------
  /// True if `ch` has any use (express or add/drop) on `degree`.
  [[nodiscard]] bool channel_in_use(DegreeIndex degree, ChannelIndex ch) const;
  /// Channels free on `degree`.
  [[nodiscard]] ChannelSet free_channels(DegreeIndex degree) const;
  /// Channels with any use on `degree` (the complement of free_channels
  /// within the grid), maintained incrementally on configure/release.
  [[nodiscard]] const ChannelSet& used_channels(DegreeIndex degree) const;
  /// Number of active uses across all degrees.
  [[nodiscard]] std::size_t active_uses() const;

  /// One active use, flattened for reconciliation audits.
  struct ActiveUse {
    DegreeIndex degree = -1;
    ChannelIndex channel = kNoChannel;
    bool is_express = false;
    DegreeIndex other_degree = -1;  ///< express peer (is_express only)
    PortId port;                    ///< add/drop port (!is_express only)
  };
  /// Every active use. Express uses are recorded on both member degrees;
  /// keep `degree < other_degree` to visit each cross-connect once.
  [[nodiscard]] std::vector<ActiveUse> uses() const;

  /// Invoked after every successful configuration change (express or
  /// add/drop, configure or release). The NetworkModel uses this to bump a
  /// plant-wide version counter that caches (e.g. the Inventory's
  /// per-channel usage table) key their invalidation on.
  using ChangeListener = std::function<void()>;
  void set_change_listener(ChangeListener listener) {
    change_listener_ = std::move(listener);
  }

  // --- failure propagation ---------------------------------------------
  using AlarmSink = std::function<void(const Alarm&)>;
  void set_alarm_sink(AlarmSink sink) { alarm_sink_ = std::move(sink); }

  /// A fiber link on one of our degrees failed: raise per-channel LOS for
  /// every configured use on that degree. `now` stamps the alarms.
  void on_link_failed(LinkId link, SimTime now);
  void on_link_restored(LinkId link, SimTime now);

 private:
  struct Use {
    bool is_express = false;
    DegreeIndex other_degree = -1;  // express peer
    PortId port;                    // add/drop port
  };

  [[nodiscard]] bool valid_degree(DegreeIndex d) const noexcept {
    return d >= 0 && static_cast<std::size_t>(d) < degree_links_.size();
  }
  void raise(AlarmType type, LinkId link, ChannelIndex ch, SimTime now,
             std::string detail);
  void changed() {
    if (change_listener_) change_listener_();
  }

  RoadmId id_;
  NodeId site_;
  WavelengthGrid grid_;
  std::vector<LinkId> degree_links_;
  std::vector<PortState> ports_;
  /// Per degree: channel -> use. `used_sets_` mirrors the key sets as
  /// bitmaps so free/used-channel queries are word ops, not map walks.
  std::vector<std::map<ChannelIndex, Use>> uses_;
  std::vector<ChannelSet> used_sets_;
  AlarmSink alarm_sink_;
  ChangeListener change_listener_;
  IdAllocator<AlarmId> alarm_ids_;
};

}  // namespace griphon::dwdm
