#include "dwdm/transponder.hpp"

namespace griphon::dwdm {

Status Transponder::tune(ChannelIndex ch) {
  if (state_ == State::kFailed)
    return Status{ErrorCode::kDeviceFault, name() + ": failed"};
  if (state_ == State::kActive)
    return Status{ErrorCode::kConflict, name() + ": cannot retune while active"};
  if (ch == kNoChannel)
    return Status{ErrorCode::kInvalidArgument, name() + ": bad channel"};
  channel_ = ch;
  state_ = State::kTuned;
  bump_version();
  return Status::success();
}

Status Transponder::activate() {
  if (state_ == State::kFailed)
    return Status{ErrorCode::kDeviceFault, name() + ": failed"};
  if (state_ != State::kTuned)
    return Status{ErrorCode::kConflict, name() + ": activate requires tuned"};
  state_ = State::kActive;
  bump_version();
  return Status::success();
}

Status Transponder::deactivate() {
  if (state_ != State::kActive)
    return Status{ErrorCode::kConflict, name() + ": not active"};
  state_ = State::kTuned;
  bump_version();
  return Status::success();
}

Status Transponder::reset() {
  if (state_ == State::kFailed)
    return Status{ErrorCode::kDeviceFault, name() + ": failed"};
  if (state_ == State::kActive)
    return Status{ErrorCode::kConflict, name() + ": deactivate first"};
  state_ = State::kIdle;
  channel_ = kNoChannel;
  bump_version();
  return Status::success();
}

Status Regenerator::engage(ChannelIndex upstream, ChannelIndex downstream) {
  if (in_use_)
    return Status{ErrorCode::kBusy, name() + ": already engaged"};
  if (upstream == kNoChannel || downstream == kNoChannel)
    return Status{ErrorCode::kInvalidArgument, name() + ": bad channels"};
  in_use_ = true;
  upstream_ = upstream;
  downstream_ = downstream;
  bump_version();
  return Status::success();
}

Status Regenerator::release() {
  if (!in_use_)
    return Status{ErrorCode::kConflict, name() + ": not engaged"};
  in_use_ = false;
  upstream_ = kNoChannel;
  downstream_ = kNoChannel;
  bump_version();
  return Status::success();
}

}  // namespace griphon::dwdm
