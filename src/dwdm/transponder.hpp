// Optical transponders (OT) and regenerators (REGEN).
//
// An OT converts a client-side signal to a tunable line-side wavelength.
// GRIPhoN shares OTs across customers via the client-side FXC, so an OT is
// a pooled resource with a small lifecycle: Idle -> Tuned -> Active.
// A REGEN is modeled as what it physically is — back-to-back OTs at an
// intermediate site — with both "halves" tuned independently (the two
// transparent segments it joins may use different wavelengths).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"
#include "dwdm/wavelength.hpp"

namespace griphon::dwdm {

class Transponder {
 public:
  enum class State { kIdle, kTuned, kActive, kFailed };

  Transponder(TransponderId id, NodeId site, DataRate line_rate)
      : id_(id), site_(site), line_rate_(line_rate) {}

  [[nodiscard]] TransponderId id() const noexcept { return id_; }
  [[nodiscard]] NodeId site() const noexcept { return site_; }
  [[nodiscard]] DataRate line_rate() const noexcept { return line_rate_; }
  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] ChannelIndex channel() const noexcept { return channel_; }
  [[nodiscard]] std::string name() const {
    return "ot/" + std::to_string(id_.value());
  }

  /// Tune the laser to `ch`. Allowed from Idle or Tuned (retune).
  [[nodiscard]] Status tune(ChannelIndex ch);
  /// Begin carrying traffic. Requires Tuned.
  [[nodiscard]] Status activate();
  /// Stop carrying traffic but stay tuned (fast reuse).
  [[nodiscard]] Status deactivate();
  /// Return to pool: laser off.
  [[nodiscard]] Status reset();

  void fail() {
    state_ = State::kFailed;
    bump_version();
  }
  void repair() {
    state_ = State::kIdle;
    channel_ = kNoChannel;
    bump_version();
  }

  /// Caches derived from device state (the Inventory snapshot's OT free
  /// bitmap, DESIGN.md §15) key their invalidation on a model-owned
  /// counter; the NetworkModel binds it here so every lifecycle
  /// transition bumps it. Null (the default, for bare devices in unit
  /// tests) makes transitions silent.
  void bind_version_counter(std::uint64_t* counter) noexcept {
    version_counter_ = counter;
  }

  /// Listener invoked after every lifecycle transition (and after the
  /// bound version counter bumps). Mirrors Roadm::set_change_listener:
  /// the Inventory maintains its free-OT bitmap in O(1) off this hook
  /// instead of re-scanning the pool. Null by default; set empty to
  /// detach.
  using ChangeListener = std::function<void()>;
  void set_change_listener(ChangeListener listener) {
    listener_ = std::move(listener);
  }

 private:
  void bump_version() {
    if (version_counter_ != nullptr) ++*version_counter_;
    if (listener_) listener_();
  }

  TransponderId id_;
  NodeId site_;
  DataRate line_rate_;
  State state_ = State::kIdle;
  ChannelIndex channel_ = kNoChannel;
  std::uint64_t* version_counter_ = nullptr;
  ChangeListener listener_;
};

[[nodiscard]] constexpr const char* to_string(Transponder::State s) noexcept {
  switch (s) {
    case Transponder::State::kIdle:
      return "idle";
    case Transponder::State::kTuned:
      return "tuned";
    case Transponder::State::kActive:
      return "active";
    case Transponder::State::kFailed:
      return "failed";
  }
  return "?";
}

/// Regenerator: joins two transparent segments at an intermediate node.
class Regenerator {
 public:
  Regenerator(RegenId id, NodeId site, DataRate line_rate)
      : id_(id), site_(site), line_rate_(line_rate) {}

  [[nodiscard]] RegenId id() const noexcept { return id_; }
  [[nodiscard]] NodeId site() const noexcept { return site_; }
  [[nodiscard]] DataRate line_rate() const noexcept { return line_rate_; }
  [[nodiscard]] bool in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::string name() const {
    return "regen/" + std::to_string(id_.value());
  }
  [[nodiscard]] ChannelIndex upstream_channel() const noexcept {
    return upstream_;
  }
  [[nodiscard]] ChannelIndex downstream_channel() const noexcept {
    return downstream_;
  }

  /// Claim and tune both halves.
  [[nodiscard]] Status engage(ChannelIndex upstream, ChannelIndex downstream);
  [[nodiscard]] Status release();

  /// Same device-state version hook as Transponder::bind_version_counter.
  void bind_version_counter(std::uint64_t* counter) noexcept {
    version_counter_ = counter;
  }

  /// Same per-transition hook as Transponder::set_change_listener.
  using ChangeListener = std::function<void()>;
  void set_change_listener(ChangeListener listener) {
    listener_ = std::move(listener);
  }

 private:
  void bump_version() {
    if (version_counter_ != nullptr) ++*version_counter_;
    if (listener_) listener_();
  }

  RegenId id_;
  NodeId site_;
  DataRate line_rate_;
  bool in_use_ = false;
  ChannelIndex upstream_ = kNoChannel;
  ChannelIndex downstream_ = kNoChannel;
  std::uint64_t* version_counter_ = nullptr;
  ChangeListener listener_;
};

}  // namespace griphon::dwdm
