// DWDM wavelength grid.
//
// A modern system carries 40-100 channels per fiber pair (paper §2.1). We
// model the ITU C-band 50 GHz grid: channel index -> frequency, plus a
// ChannelSet bitmap used throughout RWA for availability arithmetic.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace griphon::dwdm {

/// Index into the wavelength grid. -1 (kNone) means "unassigned".
using ChannelIndex = int;
inline constexpr ChannelIndex kNoChannel = -1;

class WavelengthGrid {
 public:
  static constexpr std::size_t kMaxChannels = 128;

  /// `count` channels on a 50 GHz grid anchored at 193.1 THz.
  explicit WavelengthGrid(std::size_t count = 80)
      : count_(count) {
    if (count == 0 || count > kMaxChannels)
      throw std::invalid_argument("WavelengthGrid: bad channel count");
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool contains(ChannelIndex ch) const noexcept {
    return ch >= 0 && static_cast<std::size_t>(ch) < count_;
  }
  /// ITU frequency of a channel in THz.
  [[nodiscard]] double frequency_thz(ChannelIndex ch) const {
    if (!contains(ch)) throw std::out_of_range("WavelengthGrid: channel");
    return 193.1 + 0.05 * static_cast<double>(ch);
  }
  [[nodiscard]] std::string name(ChannelIndex ch) const {
    return "ch" + std::to_string(ch);
  }

 private:
  std::size_t count_;
};

/// Set of channels, used for per-link availability and continuity
/// intersection in RWA. Stored as machine words so set algebra, first()
/// and iteration are word-scans rather than per-bit tests — these sit on
/// the RWA hot path (one intersection per link per segment per plan).
class ChannelSet {
 public:
  ChannelSet() = default;

  /// All channels [0, count) present.
  static ChannelSet all(std::size_t count) {
    if (count > WavelengthGrid::kMaxChannels)
      throw std::out_of_range("ChannelSet: channel count");
    ChannelSet s;
    for (std::size_t w = 0; w < kWords && count > 0; ++w) {
      const std::size_t in_word = count < 64 ? count : 64;
      s.words_[w] = in_word == 64 ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << in_word) - 1;
      count -= in_word;
    }
    return s;
  }

  void add(ChannelIndex ch) {
    const std::size_t i = index(ch);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void remove(ChannelIndex ch) {
    const std::size_t i = index(ch);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  [[nodiscard]] bool contains(ChannelIndex ch) const {
    const std::size_t i = index(ch);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const std::uint64_t w : words_)
      n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }
  [[nodiscard]] bool empty() const noexcept {
    for (const std::uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  /// First (lowest-index) channel present, or kNoChannel.
  [[nodiscard]] ChannelIndex first() const noexcept {
    for (std::size_t w = 0; w < kWords; ++w)
      if (words_[w] != 0)
        return static_cast<ChannelIndex>(w * 64 +
                                         std::countr_zero(words_[w]));
    return kNoChannel;
  }

  /// Visit every channel present, in increasing index order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t w = 0; w < kWords; ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        f(static_cast<ChannelIndex>(w * 64 + static_cast<std::size_t>(b)));
        bits &= bits - 1;  // clear lowest set bit
      }
    }
  }

  [[nodiscard]] std::vector<ChannelIndex> to_vector() const {
    std::vector<ChannelIndex> out;
    out.reserve(size());
    for_each([&](ChannelIndex ch) { out.push_back(ch); });
    return out;
  }

  ChannelSet& intersect(const ChannelSet& other) noexcept {
    for (std::size_t w = 0; w < kWords; ++w) words_[w] &= other.words_[w];
    return *this;
  }
  /// Remove every channel present in `other`.
  ChannelSet& subtract(const ChannelSet& other) noexcept {
    for (std::size_t w = 0; w < kWords; ++w) words_[w] &= ~other.words_[w];
    return *this;
  }
  friend ChannelSet operator&(ChannelSet a, const ChannelSet& b) noexcept {
    a.intersect(b);
    return a;
  }
  friend bool operator==(const ChannelSet& a, const ChannelSet& b) noexcept {
    return a.words_ == b.words_;
  }

 private:
  static constexpr std::size_t kWords = WavelengthGrid::kMaxChannels / 64;
  static_assert(WavelengthGrid::kMaxChannels % 64 == 0);

  static std::size_t index(ChannelIndex ch) {
    if (ch < 0 || static_cast<std::size_t>(ch) >= WavelengthGrid::kMaxChannels)
      throw std::out_of_range("ChannelSet: channel index");
    return static_cast<std::size_t>(ch);
  }
  std::array<std::uint64_t, kWords> words_{};
};

}  // namespace griphon::dwdm
