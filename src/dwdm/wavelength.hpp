// DWDM wavelength grid.
//
// A modern system carries 40-100 channels per fiber pair (paper §2.1). We
// model the ITU C-band 50 GHz grid: channel index -> frequency, plus a
// ChannelSet bitmap used throughout RWA for availability arithmetic.
#pragma once

#include <bitset>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace griphon::dwdm {

/// Index into the wavelength grid. -1 (kNone) means "unassigned".
using ChannelIndex = int;
inline constexpr ChannelIndex kNoChannel = -1;

class WavelengthGrid {
 public:
  static constexpr std::size_t kMaxChannels = 128;

  /// `count` channels on a 50 GHz grid anchored at 193.1 THz.
  explicit WavelengthGrid(std::size_t count = 80)
      : count_(count) {
    if (count == 0 || count > kMaxChannels)
      throw std::invalid_argument("WavelengthGrid: bad channel count");
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool contains(ChannelIndex ch) const noexcept {
    return ch >= 0 && static_cast<std::size_t>(ch) < count_;
  }
  /// ITU frequency of a channel in THz.
  [[nodiscard]] double frequency_thz(ChannelIndex ch) const {
    if (!contains(ch)) throw std::out_of_range("WavelengthGrid: channel");
    return 193.1 + 0.05 * static_cast<double>(ch);
  }
  [[nodiscard]] std::string name(ChannelIndex ch) const {
    return "ch" + std::to_string(ch);
  }

 private:
  std::size_t count_;
};

/// Set of channels, used for per-link availability and continuity
/// intersection in RWA.
class ChannelSet {
 public:
  ChannelSet() = default;

  /// All channels [0, count) present.
  static ChannelSet all(std::size_t count) {
    ChannelSet s;
    for (std::size_t i = 0; i < count; ++i) s.bits_.set(i);
    return s;
  }

  void add(ChannelIndex ch) { bits_.set(index(ch)); }
  void remove(ChannelIndex ch) { bits_.reset(index(ch)); }
  [[nodiscard]] bool contains(ChannelIndex ch) const {
    return bits_.test(index(ch));
  }
  [[nodiscard]] std::size_t size() const noexcept { return bits_.count(); }
  [[nodiscard]] bool empty() const noexcept { return bits_.none(); }

  /// First (lowest-index) channel present, or kNoChannel.
  [[nodiscard]] ChannelIndex first() const noexcept {
    for (std::size_t i = 0; i < bits_.size(); ++i)
      if (bits_.test(i)) return static_cast<ChannelIndex>(i);
    return kNoChannel;
  }

  [[nodiscard]] std::vector<ChannelIndex> to_vector() const {
    std::vector<ChannelIndex> out;
    out.reserve(size());
    for (std::size_t i = 0; i < bits_.size(); ++i)
      if (bits_.test(i)) out.push_back(static_cast<ChannelIndex>(i));
    return out;
  }

  ChannelSet& intersect(const ChannelSet& other) noexcept {
    bits_ &= other.bits_;
    return *this;
  }
  friend ChannelSet operator&(ChannelSet a, const ChannelSet& b) noexcept {
    a.bits_ &= b.bits_;
    return a;
  }
  friend bool operator==(const ChannelSet& a, const ChannelSet& b) noexcept {
    return a.bits_ == b.bits_;
  }

 private:
  static std::size_t index(ChannelIndex ch) {
    if (ch < 0 || static_cast<std::size_t>(ch) >= WavelengthGrid::kMaxChannels)
      throw std::out_of_range("ChannelSet: channel index");
    return static_cast<std::size_t>(ch);
  }
  std::bitset<WavelengthGrid::kMaxChannels> bits_;
};

}  // namespace griphon::dwdm
