#include "ems/ems_server.hpp"

#include <utility>

#include "telemetry/telemetry.hpp"

namespace griphon::ems {

namespace {

template <typename MapT>
auto* find_device(MapT& map, std::uint64_t id) {
  const auto it = map.find(id);
  return it == map.end() ? nullptr : it->second;
}

}  // namespace

EmsServer::EmsServer(sim::Engine* engine, proto::Endpoint* endpoint,
                     EmsLatencyProfile profile, std::string name,
                     sim::Trace* trace)
    : engine_(engine), endpoint_(endpoint), profile_(profile),
      name_(std::move(name)), trace_(trace) {
  endpoint_->on_receive(
      [this](const proto::Bytes& bytes) { handle_frame(bytes); });
}

void EmsServer::manage_fxc(fxc::Fxc* device) {
  fxcs_[device->id().value()] = device;
}

void EmsServer::manage_roadm(dwdm::Roadm* device) {
  roadms_[device->id().value()] = device;
  device->set_alarm_sink([this](const Alarm& a) { forward_alarm(a); });
}

void EmsServer::manage_ot(dwdm::Transponder* device) {
  ots_[device->id().value()] = device;
}

void EmsServer::manage_regen(dwdm::Regenerator* device) {
  regens_[device->id().value()] = device;
}

void EmsServer::manage_nte(dwdm::Muxponder* device) {
  ntes_[device->id().value()] = device;
}

void EmsServer::manage_otn(otn::OtnLayer* layer) { otn_ = layer; }

void EmsServer::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    commands_total_ = nullptr;
    alarms_forwarded_total_ = nullptr;
    cache_evictions_total_ = nullptr;
    crashes_total_ = nullptr;
    queue_wait_seconds_ = nullptr;
    task_seconds_ = nullptr;
    return;
  }
  // "roadm-ems" -> griphon_ems_roadm_*; any '-' becomes '_'.
  std::string domain = name_;
  if (domain.size() > 4 && domain.compare(domain.size() - 4, 4, "-ems") == 0)
    domain.resize(domain.size() - 4);
  for (char& c : domain)
    if (c == '-') c = '_';
  const std::string prefix = "griphon_ems_" + domain + "_";
  auto& m = telemetry_->metrics();
  commands_total_ =
      m.counter(prefix + "commands_total", "Commands executed by this EMS");
  alarms_forwarded_total_ = m.counter(prefix + "alarms_forwarded_total",
                                      "Device alarms forwarded upstream");
  cache_evictions_total_ =
      m.counter(prefix + "cache_evictions_total",
                "Response-cache entries evicted (LRU past capacity)");
  crashes_total_ =
      m.counter(prefix + "crashes_total", "EMS crash/restart events");
  queue_wait_seconds_ =
      m.histogram(prefix + "queue_wait_seconds",
                  "Time a command waits for its element dialogue");
  task_seconds_ = m.histogram(prefix + "task_seconds",
                              "Management overhead + optical task time");
}

void EmsServer::trace(const std::string& event, const std::string& detail) {
  if (trace_ != nullptr)
    trace_->emit(engine_->now(), sim::TraceLevel::kDebug, name_, event,
                 detail);
}

void EmsServer::forward_alarm(const Alarm& alarm) {
  const SimTime delay = profile_.alarm_notify.sample(engine_->rng());
  const proto::Bytes frame =
      proto::encode_frame(0, proto::Message{proto::AlarmEvent{alarm}});
  engine_->schedule(delay, [this, frame]() {
    if (down_) return;  // a crashed EMS notifies no one
    endpoint_->send(frame);
  });
  if (alarms_forwarded_total_ != nullptr) alarms_forwarded_total_->inc();
  trace("alarm-forwarded", alarm.source);
}

void EmsServer::crash_restart(SimTime restart_after) {
  down_ = true;
  ++crashes_;
  ++boot_epoch_;  // mid-dialogue completions from before the crash evaporate
  queues_.clear();
  busy_devices_.clear();
  in_flight_requests_.clear();
  cache_flush();
  if (crashes_total_ != nullptr) crashes_total_->inc();
  trace("crash", "restart in " + std::to_string(to_seconds(restart_after)) +
                     "s");
  engine_->schedule(restart_after, [this]() {
    down_ = false;
    trace("restart", name_);
    Alarm a;
    a.type = AlarmType::kEmsRestart;
    a.raised_at = engine_->now();
    a.source = name_;
    a.detail = "ems restarted; device state may have drifted";
    forward_alarm(a);
  });
}

void EmsServer::set_response_cache_capacity(std::size_t capacity) {
  MutexLock lock(&cache_mu_);
  cache_capacity_ = capacity;
  while (response_cache_.size() > cache_capacity_) {
    response_cache_.erase(cache_lru_.front());
    cache_lru_.pop_front();
    ++cache_evictions_;
    if (cache_evictions_total_ != nullptr) cache_evictions_total_->inc();
  }
}

std::optional<proto::Response> EmsServer::cache_lookup(std::uint64_t id) {
  MutexLock lock(&cache_mu_);
  const auto it = response_cache_.find(id);
  if (it == response_cache_.end()) return std::nullopt;
  // Refresh the entry's LRU recency — a retrying id is a hot id.
  cache_lru_.splice(cache_lru_.end(), cache_lru_, it->second.second);
  return it->second.first;
}

void EmsServer::cache_insert(std::uint64_t id, const proto::Response& r) {
  MutexLock lock(&cache_mu_);
  cache_lru_.push_back(id);
  response_cache_[id] = {r, std::prev(cache_lru_.end())};
  while (response_cache_.size() > cache_capacity_) {
    response_cache_.erase(cache_lru_.front());
    cache_lru_.pop_front();
    ++cache_evictions_;
    if (cache_evictions_total_ != nullptr) cache_evictions_total_->inc();
  }
}

void EmsServer::cache_flush() {
  MutexLock lock(&cache_mu_);
  response_cache_.clear();
  cache_lru_.clear();
}

std::uint64_t EmsServer::device_key(const proto::Message& m) {
  // Shared with the controller's DAG executor, which pre-orders
  // same-element commands using the same key.
  return proto::element_key(m);
}

void EmsServer::handle_frame(const proto::Bytes& bytes) {
  if (down_) return;  // crashed: frames fall on the floor, clients time out
  auto frame = proto::decode_frame(bytes);
  if (!frame.ok()) {
    trace("bad-frame", frame.error().message());
    return;
  }
  const std::uint64_t id = frame.value().request_id;
  // Retransmission? Replay the cached response without re-executing.
  if (const auto cached = cache_lookup(id)) {
    endpoint_->send(proto::encode_frame(id, proto::Message{*cached}));
    trace("replayed-response", std::to_string(id));
    return;
  }
  // Already queued or executing (retry raced the dialogue)? Drop it.
  if (in_flight_requests_.contains(id)) return;
  const std::uint64_t dev = device_key(frame.value().message);
  for (const auto& q : queues_[dev])
    if (q.request_id == id) return;
  queues_[dev].push_back(
      QueuedCommand{id, std::move(frame.value().message), engine_->now()});
  pump(dev);
}

void EmsServer::pump(std::uint64_t device) {
  auto& queue = queues_[device];
  if (busy_devices_.contains(device) || queue.empty()) return;
  busy_devices_.insert(device);
  const QueuedCommand cmd = std::move(queue.front());
  queue.pop_front();
  in_flight_requests_.insert(cmd.request_id);
  // Management-plane overhead, then the optical task, then the reply.
  SimTime overhead = profile_.command_overhead.sample(engine_->rng());
  SimTime task = task_latency(cmd.message);
  const std::uint64_t epoch = boot_epoch_;
  if (fault_hook_ != nullptr) {
    const double scale = fault_hook_->latency_scale(name_);
    if (scale != 1.0) {
      overhead = from_seconds(to_seconds(overhead) * scale);
      task = from_seconds(to_seconds(task) * scale);
    }
    const Status injected = fault_hook_->on_command(name_, cmd.message);
    if (!injected.ok()) {
      // Transient NACK: the management plane rejects after its overhead,
      // without touching the device.
      trace("nack-injected", injected.error().message());
      engine_->schedule(overhead, [this, cmd, device, epoch, injected]() {
        if (epoch != boot_epoch_) return;  // EMS crashed meanwhile
        respond(cmd.request_id, injected, 0);
        busy_devices_.erase(device);
        in_flight_requests_.erase(cmd.request_id);
        pump(device);
      });
      return;
    }
  }
  if (queue_wait_seconds_ != nullptr) {
    queue_wait_seconds_->observe(to_seconds(engine_->now() - cmd.enqueued_at));
    task_seconds_->observe(to_seconds(overhead + task));
  }
  trace("execute", std::string(proto::name_of(proto::type_of(cmd.message))));
  engine_->schedule(overhead + task, [this, cmd, device, epoch]() {
    if (epoch != boot_epoch_) return;  // EMS crashed mid-dialogue
    execute(cmd);
    busy_devices_.erase(device);
    in_flight_requests_.erase(cmd.request_id);
    pump(device);
  });
}

void EmsServer::execute(const QueuedCommand& cmd) {
  std::uint64_t aux = 0;
  const Status status = apply(cmd.message, &aux);
  ++executed_;
  if (commands_total_ != nullptr) commands_total_->inc();
  respond(cmd.request_id, status, aux);
}

SimTime EmsServer::task_latency(const proto::Message& m) {
  auto& rng = engine_->rng();
  struct Visitor {
    EmsLatencyProfile& p;
    Rng& rng;
    SimTime operator()(const proto::Response&) { return SimTime{}; }
    SimTime operator()(const proto::FxcConnect&) {
      return p.fxc_connect.sample(rng);
    }
    SimTime operator()(const proto::FxcDisconnect&) {
      return p.fxc_disconnect.sample(rng);
    }
    SimTime operator()(const proto::RoadmExpress& m) {
      return m.engage ? p.roadm_express.sample(rng)
                      : p.roadm_express_release.sample(rng);
    }
    SimTime operator()(const proto::RoadmAddDrop& m) {
      return m.engage ? p.roadm_add_drop.sample(rng)
                      : p.roadm_add_drop_release.sample(rng);
    }
    SimTime operator()(const proto::OtTune&) { return p.ot_tune.sample(rng); }
    SimTime operator()(const proto::OtSetState& m) {
      return m.action == proto::OtSetState::Action::kActivate
                 ? p.ot_state.sample(rng)
                 : p.ot_release.sample(rng);
    }
    SimTime operator()(const proto::RegenEngage& m) {
      return m.engage ? p.regen_engage.sample(rng)
                      : p.regen_release.sample(rng);
    }
    SimTime operator()(const proto::PowerBalance&) {
      return p.power_balance.sample(rng);
    }
    SimTime operator()(const proto::OtnOp&) { return p.otn_op.sample(rng); }
    SimTime operator()(const proto::NtePort& m) {
      return m.engage ? p.nte_port.sample(rng)
                      : p.nte_port_release.sample(rng);
    }
    SimTime operator()(const proto::AlarmEvent&) { return SimTime{}; }
    SimTime operator()(const proto::EmsBatch& m) {
      // One dialogue covers the whole batch: the items' optical tasks run
      // concurrently on their (disjoint) elements, so the batch costs the
      // slowest item, not the sum — that is the point of batching.
      SimTime worst{};
      for (const auto& bytes : m.items) {
        auto frame = proto::decode_frame(bytes);
        if (!frame.ok()) continue;
        worst = std::max(worst, ems->task_latency(frame.value().message));
      }
      return worst;
    }
    EmsServer* ems;
  };
  return std::visit(Visitor{profile_, rng, this}, m);
}

Status EmsServer::apply(const proto::Message& m, std::uint64_t* aux) {
  struct Visitor {
    EmsServer& ems;
    std::uint64_t* aux;

    Status operator()(const proto::Response&) {
      return Status{ErrorCode::kInvalidArgument, "ems: response as request"};
    }
    Status operator()(const proto::AlarmEvent&) {
      return Status{ErrorCode::kInvalidArgument, "ems: alarm as request"};
    }
    Status operator()(const proto::FxcConnect& m) {
      auto* d = find_device(ems.fxcs_, m.fxc.value());
      if (d == nullptr)
        return Status{ErrorCode::kNotFound, "ems: unknown FXC"};
      return d->connect(m.port_a, m.port_b);
    }
    Status operator()(const proto::FxcDisconnect& m) {
      auto* d = find_device(ems.fxcs_, m.fxc.value());
      if (d == nullptr)
        return Status{ErrorCode::kNotFound, "ems: unknown FXC"};
      return d->disconnect(m.port);
    }
    Status operator()(const proto::RoadmExpress& m) {
      auto* d = find_device(ems.roadms_, m.roadm.value());
      if (d == nullptr)
        return Status{ErrorCode::kNotFound, "ems: unknown ROADM"};
      return m.engage
                 ? d->configure_express(m.channel, m.degree_in, m.degree_out)
                 : d->release_express(m.channel, m.degree_in, m.degree_out);
    }
    Status operator()(const proto::RoadmAddDrop& m) {
      auto* d = find_device(ems.roadms_, m.roadm.value());
      if (d == nullptr)
        return Status{ErrorCode::kNotFound, "ems: unknown ROADM"};
      return m.engage ? d->configure_add_drop(m.port, m.degree, m.channel)
                      : d->release_add_drop(m.port);
    }
    Status operator()(const proto::OtTune& m) {
      auto* d = find_device(ems.ots_, m.ot.value());
      if (d == nullptr)
        return Status{ErrorCode::kNotFound, "ems: unknown OT"};
      return d->tune(m.channel);
    }
    Status operator()(const proto::OtSetState& m) {
      auto* d = find_device(ems.ots_, m.ot.value());
      if (d == nullptr)
        return Status{ErrorCode::kNotFound, "ems: unknown OT"};
      switch (m.action) {
        case proto::OtSetState::Action::kActivate:
          return d->activate();
        case proto::OtSetState::Action::kDeactivate:
          return d->deactivate();
        case proto::OtSetState::Action::kReset:
          return d->reset();
      }
      return Status{ErrorCode::kInvalidArgument, "ems: bad OT action"};
    }
    Status operator()(const proto::RegenEngage& m) {
      auto* d = find_device(ems.regens_, m.regen.value());
      if (d == nullptr)
        return Status{ErrorCode::kNotFound, "ems: unknown REGEN"};
      return m.engage
                 ? d->engage(m.upstream_channel, m.downstream_channel)
                 : d->release();
    }
    Status operator()(const proto::PowerBalance&) {
      // Pure optical task: the latency *is* the operation.
      return Status::success();
    }
    Status operator()(const proto::OtnOp& m) {
      if (ems.otn_ == nullptr)
        return Status{ErrorCode::kNotFound, "ems: no OTN layer managed"};
      switch (m.op) {
        case proto::OtnOp::Op::kCreate: {
          otn::OtnLayer::CircuitSpec spec;
          spec.customer = m.customer;
          spec.src = m.src;
          spec.dst = m.dst;
          spec.rate = DataRate{m.rate_bps};
          spec.protect = m.protect;
          auto got = ems.otn_->create_circuit(spec);
          if (!got.ok()) return got.error();
          *aux = got.value().value();
          return Status::success();
        }
        case proto::OtnOp::Op::kRelease:
          return ems.otn_->release_circuit(m.circuit);
        case proto::OtnOp::Op::kActivateBackup:
          return ems.otn_->activate_backup(m.circuit);
        case proto::OtnOp::Op::kRevert:
          return ems.otn_->revert_to_primary(m.circuit);
      }
      return Status{ErrorCode::kInvalidArgument, "ems: bad OTN op"};
    }
    Status operator()(const proto::NtePort& m) {
      auto* d = find_device(ems.ntes_, m.nte.value());
      if (d == nullptr)
        return Status{ErrorCode::kNotFound, "ems: unknown NTE"};
      return m.engage ? d->claim_client_port(m.port)
                      : d->release_client_port(m.port);
    }
    Status operator()(const proto::EmsBatch& m) {
      // Apply every coalesced item; the aggregated response carries the
      // first failure (items are stateless, so no partial-state concern).
      Status first = Status::success();
      for (const auto& bytes : m.items) {
        auto frame = proto::decode_frame(bytes);
        if (!frame.ok()) {
          if (first.ok()) first = Status{frame.error()};
          continue;
        }
        if (std::holds_alternative<proto::EmsBatch>(frame.value().message)) {
          if (first.ok())
            first = Status{ErrorCode::kInvalidArgument,
                           "ems: nested batch rejected"};
          continue;
        }
        const Status s = ems.apply(frame.value().message, aux);
        if (first.ok() && !s.ok()) first = s;
      }
      return first;
    }
  };
  return std::visit(Visitor{*this, aux}, m);
}

void EmsServer::respond(std::uint64_t request_id, const Status& status,
                        std::uint64_t aux) {
  proto::Response r;
  r.code = static_cast<std::uint16_t>(status.ok() ? ErrorCode::kNone
                                                  : status.error().code());
  r.message = status.ok() ? std::string{} : status.error().message();
  r.aux = aux;
  cache_insert(request_id, r);
  endpoint_->send(proto::encode_frame(request_id, proto::Message{r}));
}

}  // namespace griphon::ems
