// Element Management System (EMS) emulation.
//
// One EmsServer stands in for a vendor EMS (ROADM EMS, OTN switch EMS, FXC
// controller, NTE controller — paper §2.2). It terminates the control
// protocol, executes commands against the device models it manages, and
// forwards device alarms to the controller as unsolicited events.
//
// Realism constraints that matter for the reproduced numbers:
//  * commands are executed strictly one at a time per EMS (vendor EMSs
//    serialize element dialogues) — a queued command waits;
//  * each command costs management overhead + the optical task time from
//    the latency profile;
//  * duplicate requests (client retransmissions) are answered from a
//    response cache instead of re-executing the operation.
#pragma once

#include <deque>
#include <list>
#include <set>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "common/alarm.hpp"
#include "common/sync.hpp"
#include "dwdm/muxponder.hpp"
#include "dwdm/roadm.hpp"
#include "dwdm/transponder.hpp"
#include "ems/latency_profile.hpp"
#include "fxc/fxc.hpp"
#include "otn/layer.hpp"
#include "proto/channel.hpp"
#include "proto/messages.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace griphon::telemetry {
class Telemetry;
class Counter;
class Histogram;
}  // namespace griphon::telemetry

namespace griphon::ems {

/// Chaos interface: consulted as each command leaves the dialogue queue.
/// A non-ok status makes the EMS NACK the command (after its management
/// overhead) instead of executing it; `latency_scale` stretches the
/// command's dialogue time (slow-command fault). Implemented by the fault
/// injector; null (the default) keeps the dialogue path on a one-pointer-
/// test fast path.
class EmsFaultHook {
 public:
  virtual ~EmsFaultHook() = default;
  [[nodiscard]] virtual Status on_command(const std::string& ems,
                                          const proto::Message& message) = 0;
  [[nodiscard]] virtual double latency_scale(const std::string& ems) = 0;
};

class EmsServer {
 public:
  EmsServer(sim::Engine* engine, proto::Endpoint* endpoint,
            EmsLatencyProfile profile, std::string name,
            sim::Trace* trace = nullptr);

  // --- device inventory (non-owning; devices outlive the EMS) -----------
  void manage_fxc(fxc::Fxc* device);
  void manage_roadm(dwdm::Roadm* device);
  void manage_ot(dwdm::Transponder* device);
  void manage_regen(dwdm::Regenerator* device);
  void manage_nte(dwdm::Muxponder* device);
  void manage_otn(otn::OtnLayer* layer);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t commands_executed() const noexcept {
    return executed_;
  }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    std::size_t n = 0;
    for (const auto& [dev, q] : queues_) n += q.size();
    return n;
  }

  /// Forward a device alarm to the controller (with notify latency).
  void forward_alarm(const Alarm& alarm);

  // --- chaos surface ----------------------------------------------------
  /// Attach/detach the chaos hook (null detaches).
  void set_fault_hook(EmsFaultHook* hook) noexcept { fault_hook_ = hook; }

  /// Crash the EMS process: every queued and mid-dialogue command is
  /// dropped on the floor (no response — the client times out), the
  /// response cache is flushed (a restarted EMS cannot deduplicate
  /// requests from before the crash), and incoming frames are ignored for
  /// `restart_after`. On restart the EMS announces itself with an
  /// unsolicited kEmsRestart alarm so the controller can reconcile its
  /// inventory against device state.
  void crash_restart(SimTime restart_after);
  [[nodiscard]] bool down() const noexcept { return down_; }
  [[nodiscard]] std::size_t crashes() const noexcept { return crashes_; }

  /// Response-cache introspection (LRU keyed by request id; replay hits
  /// refresh recency). Capacity is tunable for tests.
  void set_response_cache_capacity(std::size_t capacity) EXCLUDES(cache_mu_);
  [[nodiscard]] std::size_t response_cache_size() const EXCLUDES(cache_mu_) {
    MutexLock lock(&cache_mu_);
    return response_cache_.size();
  }
  [[nodiscard]] std::size_t cache_evictions() const EXCLUDES(cache_mu_) {
    MutexLock lock(&cache_mu_);
    return cache_evictions_;
  }

  /// Attach/detach a telemetry sink. Metrics are registered under
  /// griphon_ems_<domain>_* where <domain> is the server name minus the
  /// "-ems" suffix ("roadm-ems" -> roadm). Null = no-sink fast path.
  void set_telemetry(telemetry::Telemetry* telemetry);

 private:
  struct QueuedCommand {
    std::uint64_t request_id = 0;
    proto::Message message;
    SimTime enqueued_at{};
  };

  void handle_frame(const proto::Bytes& bytes);
  /// Dialogue key: which element a command talks to.
  [[nodiscard]] static std::uint64_t device_key(const proto::Message& m);
  void pump(std::uint64_t device);
  void execute(const QueuedCommand& cmd);
  /// Optical-task latency for this message type.
  [[nodiscard]] SimTime task_latency(const proto::Message& m);
  /// Run the device operation; fills `aux` for ops that return a handle.
  [[nodiscard]] Status apply(const proto::Message& m, std::uint64_t* aux);
  void respond(std::uint64_t request_id, const Status& status,
               std::uint64_t aux);
  void trace(const std::string& event, const std::string& detail);

  /// Cached response for a request id, refreshing its LRU recency.
  [[nodiscard]] std::optional<proto::Response> cache_lookup(std::uint64_t id)
      EXCLUDES(cache_mu_);
  /// Insert a response, evicting least-recently-used ids past capacity.
  void cache_insert(std::uint64_t id, const proto::Response& r)
      EXCLUDES(cache_mu_);
  void cache_flush() EXCLUDES(cache_mu_);

  sim::Engine* engine_;
  proto::Endpoint* endpoint_;
  EmsLatencyProfile profile_;
  std::string name_;
  sim::Trace* trace_;

  std::map<std::uint64_t, fxc::Fxc*> fxcs_;
  std::map<std::uint64_t, dwdm::Roadm*> roadms_;
  std::map<std::uint64_t, dwdm::Transponder*> ots_;
  std::map<std::uint64_t, dwdm::Regenerator*> regens_;
  std::map<std::uint64_t, dwdm::Muxponder*> ntes_;
  otn::OtnLayer* otn_ = nullptr;

  /// One dialogue at a time *per managed element*: commands to distinct
  /// devices proceed concurrently, commands to one device queue up.
  std::map<std::uint64_t, std::deque<QueuedCommand>> queues_;
  std::set<std::uint64_t> busy_devices_;
  std::set<std::uint64_t> in_flight_requests_;
  /// Response cache: request id -> (response, position in the LRU list).
  /// Bounded; least-recently-used id evicted past capacity. Guarded by its
  /// own mutex (DESIGN.md §15): the replay path is where a future
  /// multi-threaded control plane first meets EMS state.
  mutable Mutex cache_mu_;
  std::map<std::uint64_t,
           std::pair<proto::Response, std::list<std::uint64_t>::iterator>>
      response_cache_ GUARDED_BY(cache_mu_);
  std::list<std::uint64_t> cache_lru_ GUARDED_BY(cache_mu_);  // front=coldest
  std::size_t cache_capacity_ GUARDED_BY(cache_mu_) = 256;
  std::size_t cache_evictions_ GUARDED_BY(cache_mu_) = 0;
  std::size_t executed_ = 0;

  EmsFaultHook* fault_hook_ = nullptr;
  bool down_ = false;
  std::size_t crashes_ = 0;
  /// Bumped on every crash; dialogue completions from before the crash
  /// compare against it and evaporate instead of responding.
  std::uint64_t boot_epoch_ = 0;

  // Telemetry handles, cached at attach time so the dialogue path costs
  // one pointer test when telemetry is off and no lookups when it is on.
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter* commands_total_ = nullptr;
  telemetry::Counter* alarms_forwarded_total_ = nullptr;
  telemetry::Counter* cache_evictions_total_ = nullptr;
  telemetry::Counter* crashes_total_ = nullptr;
  telemetry::Histogram* queue_wait_seconds_ = nullptr;
  telemetry::Histogram* task_seconds_ = nullptr;
};

}  // namespace griphon::ems
