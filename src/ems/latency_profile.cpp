#include "ems/latency_profile.hpp"

namespace griphon::ems {

EmsLatencyProfile EmsLatencyProfile::testbed_2011() {
  EmsLatencyProfile p;
  auto jitter = [](std::int64_t mean_ms, std::int64_t sigma_ms) {
    return LatencyModel::normal(milliseconds(0), milliseconds(mean_ms),
                                milliseconds(sigma_ms));
  };
  // Means are chosen so the sequential setup workflow reproduces Table 2:
  //   total(h hops) ~ 58.3 s + 4.2 s/hop.
  // Per-command sigma gives run-to-run spread like the testbed's.
  p.command_overhead = jitter(800, 60);
  p.nte_port = jitter(1500, 100);
  p.fxc_connect = jitter(2000, 120);
  p.fxc_disconnect = jitter(400, 40);
  p.ot_tune = jitter(9000, 450);          // laser tuning + locking
  p.ot_state = jitter(1550, 100);
  p.ot_release = jitter(400, 40);
  p.roadm_add_drop = jitter(12000, 600);  // WSS steering, colorless port
  p.roadm_add_drop_release = jitter(800, 60);
  p.roadm_express = jitter(1000, 80);
  p.roadm_express_release = jitter(400, 40);
  p.regen_engage = jitter(9000, 450);
  p.regen_release = jitter(400, 40);
  p.power_balance = jitter(1600, 130);    // amplifier gain retrim per link
  p.otn_op = jitter(500, 40);
  p.nte_port_release = jitter(400, 40);
  p.alarm_notify = jitter(150, 20);
  return p;
}

EmsLatencyProfile EmsLatencyProfile::fast_hardware() {
  EmsLatencyProfile p;
  auto jitter = [](std::int64_t mean_ms, std::int64_t sigma_ms) {
    return LatencyModel::normal(milliseconds(0), milliseconds(mean_ms),
                                milliseconds(sigma_ms));
  };
  // ~20x across the board: EMS pipelines its database work, lasers use
  // fast-tunable designs, amplifiers ride through transients.
  p.command_overhead = jitter(50, 5);
  p.nte_port = jitter(80, 8);
  p.fxc_connect = jitter(100, 10);
  p.fxc_disconnect = jitter(40, 4);
  p.ot_tune = jitter(450, 40);
  p.ot_state = jitter(80, 8);
  p.ot_release = jitter(40, 4);
  p.roadm_add_drop = jitter(600, 50);
  p.roadm_add_drop_release = jitter(60, 6);
  p.roadm_express = jitter(60, 6);
  p.roadm_express_release = jitter(40, 4);
  p.regen_engage = jitter(450, 40);
  p.regen_release = jitter(40, 4);
  p.power_balance = jitter(90, 9);
  p.otn_op = jitter(50, 5);
  p.nte_port_release = jitter(40, 4);
  p.alarm_notify = jitter(20, 2);
  return p;
}

}  // namespace griphon::ems
