// EMS / hardware latency profiles.
//
// The paper attributes the measured 60-70 s wavelength setup to two
// components: "(i) ROADM Element Management System (EMS) configuration
// steps, and (ii) optical tasks, such as ROADM reconfiguration, laser
// tuning, power balancing and link equalization", and notes these times
// reflect "a lack of current carrier requirements for speed", not physics.
//
// testbed_2011() encodes that decomposition, calibrated so the sequential
// setup workflow lands in the paper's band (Table 2: 62.48 / 65.67 /
// 70.94 s for 1/2/3-hop paths, teardown ~10 s). fast_hardware() is the §4
// "DWDM layer management" what-if: same workflow on hardware and EMS
// engineered for speed.
#pragma once

#include "common/rng.hpp"

namespace griphon::ems {

struct EmsLatencyProfile {
  /// Management-plane overhead added to every command (order entry,
  /// database writes, EMS-to-element dialogue).
  LatencyModel command_overhead = LatencyModel::fixed(milliseconds(800));

  // Optical / hardware task times per command type.
  LatencyModel nte_port = LatencyModel::fixed(milliseconds(1500));
  LatencyModel fxc_connect = LatencyModel::fixed(milliseconds(2000));
  LatencyModel fxc_disconnect = LatencyModel::fixed(milliseconds(400));
  LatencyModel ot_tune = LatencyModel::fixed(seconds(9));
  LatencyModel ot_state = LatencyModel::fixed(milliseconds(1550));
  LatencyModel ot_release = LatencyModel::fixed(milliseconds(400));
  LatencyModel roadm_add_drop = LatencyModel::fixed(seconds(12));
  LatencyModel roadm_add_drop_release = LatencyModel::fixed(milliseconds(800));
  LatencyModel roadm_express = LatencyModel::fixed(milliseconds(1000));
  LatencyModel roadm_express_release = LatencyModel::fixed(milliseconds(400));
  LatencyModel regen_engage = LatencyModel::fixed(seconds(9));
  LatencyModel regen_release = LatencyModel::fixed(milliseconds(400));
  /// Per-link power balancing + link equalization after add/remove.
  LatencyModel power_balance = LatencyModel::fixed(milliseconds(1600));
  LatencyModel otn_op = LatencyModel::fixed(milliseconds(500));
  LatencyModel nte_port_release = LatencyModel::fixed(milliseconds(400));

  /// How long a device failure takes to surface as an alarm at the EMS.
  LatencyModel alarm_notify = LatencyModel::fixed(milliseconds(150));

  /// The laboratory prototype of the paper (§3).
  [[nodiscard]] static EmsLatencyProfile testbed_2011();
  /// Hypothetical speed-optimized hardware/EMS (§4 research challenge).
  [[nodiscard]] static EmsLatencyProfile fast_hardware();
};

}  // namespace griphon::ems
