#include "fxc/fxc.hpp"

#include <stdexcept>

namespace griphon::fxc {

Fxc::Fxc(FxcId id, NodeId site, std::size_t port_count)
    : id_(id), site_(site), wiring_(port_count) {
  if (port_count == 0)
    throw std::invalid_argument("Fxc: need at least one port");
}

void Fxc::wire(PortId port, Wiring wiring) {
  if (!valid(port)) throw std::out_of_range("Fxc::wire: bad port");
  wiring_[port.value()] = wiring;
}

const Wiring& Fxc::wiring(PortId port) const {
  if (!valid(port)) throw std::out_of_range("Fxc::wiring: bad port");
  return wiring_[port.value()];
}

std::optional<PortId> Fxc::port_for(Wiring::Kind kind, std::uint64_t device,
                                    std::uint64_t index) const {
  for (std::size_t i = 0; i < wiring_.size(); ++i) {
    const Wiring& w = wiring_[i];
    if (w.kind == kind && w.device == device && w.index == index)
      return PortId{i};
  }
  return std::nullopt;
}

Status Fxc::connect(PortId a, PortId b) {
  if (!valid(a) || !valid(b))
    return Status{ErrorCode::kNotFound, name() + ": unknown port"};
  if (a == b)
    return Status{ErrorCode::kInvalidArgument, name() + ": loopback"};
  if (stuck_.contains(a) || stuck_.contains(b))
    return Status{ErrorCode::kDeviceFault, name() + ": port stuck"};
  if (cross_.contains(a) || cross_.contains(b))
    return Status{ErrorCode::kBusy, name() + ": port already connected"};
  cross_[a] = b;
  cross_[b] = a;
  return Status::success();
}

Status Fxc::disconnect(PortId port) {
  const auto it = cross_.find(port);
  if (it == cross_.end())
    return Status{ErrorCode::kConflict, name() + ": port not connected"};
  const PortId other = it->second;
  if (stuck_.contains(port) || stuck_.contains(other))
    return Status{ErrorCode::kDeviceFault, name() + ": port stuck"};
  cross_.erase(it);
  cross_.erase(other);
  return Status::success();
}

void Fxc::set_stuck(PortId port, bool stuck) {
  if (!valid(port)) throw std::out_of_range("Fxc::set_stuck: bad port");
  if (stuck)
    stuck_.insert(port);
  else
    stuck_.erase(port);
}

std::vector<std::pair<PortId, PortId>> Fxc::cross_connects() const {
  std::vector<std::pair<PortId, PortId>> out;
  out.reserve(cross_.size() / 2);
  for (const auto& [a, b] : cross_)
    if (a < b) out.emplace_back(a, b);
  return out;
}

std::optional<PortId> Fxc::peer(PortId port) const {
  const auto it = cross_.find(port);
  if (it == cross_.end()) return std::nullopt;
  return it->second;
}

}  // namespace griphon::fxc
