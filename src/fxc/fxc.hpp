// Fiber cross-connect (FXC).
//
// A photonic patch-panel robot: strictly non-blocking, any free port to any
// free port, no grooming and no wavelength awareness (paper §2.2: low cost,
// small footprint, low power — but "incapable of grooming traffic").
// GRIPhoN puts one on the client side of the OT pool at each site so that
// customer signals can be steered to an OT (wavelength service) or to an
// OTN switch port (sub-wavelength service), and so OTs/REGENs are shared.
//
// Ports carry a static wiring label describing the device port patched into
// them at install time; the controller resolves endpoints through these.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"

namespace griphon::fxc {

/// What is physically patched into an FXC port (install-time wiring).
struct Wiring {
  enum class Kind {
    kUnwired,
    kTransponderClient,  ///< OT client side
    kOtnClientPort,      ///< OTN switch client port
    kCustomerAccess,     ///< channel of the customer's access pipe (COT side)
    kRegenClient,        ///< regenerator client-side loop
  };
  Kind kind = Kind::kUnwired;
  std::uint64_t device = 0;  ///< id value of the wired device
  std::uint64_t index = 0;   ///< port/channel index on that device
};

class Fxc {
 public:
  Fxc(FxcId id, NodeId site, std::size_t port_count);

  [[nodiscard]] FxcId id() const noexcept { return id_; }
  [[nodiscard]] NodeId site() const noexcept { return site_; }
  [[nodiscard]] std::size_t port_count() const noexcept {
    return wiring_.size();
  }
  [[nodiscard]] std::string name() const {
    return "fxc/" + std::to_string(id_.value());
  }

  /// Record install-time wiring of a port.
  void wire(PortId port, Wiring wiring);
  [[nodiscard]] const Wiring& wiring(PortId port) const;
  /// Find the port a given device endpoint is patched into.
  [[nodiscard]] std::optional<PortId> port_for(Wiring::Kind kind,
                                               std::uint64_t device,
                                               std::uint64_t index) const;

  /// Cross-connect two free ports (bidirectional light path).
  [[nodiscard]] Status connect(PortId a, PortId b);
  /// Remove the cross-connect involving `port`.
  [[nodiscard]] Status disconnect(PortId port);
  [[nodiscard]] std::optional<PortId> peer(PortId port) const;
  [[nodiscard]] bool connected(PortId port) const {
    return peer(port).has_value();
  }
  [[nodiscard]] std::size_t active_connections() const noexcept {
    return cross_.size() / 2;
  }
  /// All cross-connects, one entry per pair (first < second). For
  /// reconciliation audits.
  [[nodiscard]] std::vector<std::pair<PortId, PortId>> cross_connects() const;

  // --- faults -----------------------------------------------------------
  /// Chaos: mark a port stuck (the patch robot cannot move it). connect/
  /// disconnect involving a stuck port fail with kDeviceFault; an existing
  /// cross-connect through it keeps passing light until the port is freed
  /// and released.
  void set_stuck(PortId port, bool stuck);
  [[nodiscard]] bool stuck(PortId port) const noexcept {
    return stuck_.contains(port);
  }
  [[nodiscard]] const std::set<PortId>& stuck_ports() const noexcept {
    return stuck_;
  }

 private:
  [[nodiscard]] bool valid(PortId p) const noexcept {
    return p.value() < wiring_.size();
  }

  FxcId id_;
  NodeId site_;
  std::vector<Wiring> wiring_;
  std::map<PortId, PortId> cross_;  // symmetric: both directions present
  std::set<PortId> stuck_;
};

}  // namespace griphon::fxc
