#include "otn/carrier.hpp"

#include <algorithm>
#include <set>

#include "otn/odu.hpp"

namespace griphon::otn {

OtuCarrier::OtuCarrier(CarrierId id, NodeId a, NodeId b, DataRate line_rate,
                       std::vector<LinkId> physical_route)
    : id_(id), a_(a), b_(b), line_rate_(line_rate),
      route_(std::move(physical_route)),
      slots_(static_cast<std::size_t>(carrier_slots(line_rate))) {}

bool OtuCarrier::rides_link(LinkId link) const noexcept {
  return std::find(route_.begin(), route_.end(), link) != route_.end();
}

Result<std::vector<int>> OtuCarrier::allocate(OduCircuitId circuit, int n,
                                              bool restoration) {
  if (n <= 0)
    return Error{ErrorCode::kInvalidArgument, "carrier: bad slot count"};
  if (failed_)
    return Error{ErrorCode::kDeviceFault, "carrier: failed"};
  if (retired_)
    return Error{ErrorCode::kConflict, "carrier: retired"};
  const int available = restoration ? total_slots() - allocated_slots()
                                    : usable_free_slots();
  if (available < n)
    return Error{ErrorCode::kResourceExhausted,
                 "carrier: insufficient free tributary slots"};
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < slots_.size() && out.size() < std::size_t(n);
       ++i) {
    if (!slots_[i].valid()) {
      slots_[i] = circuit;
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

Status OtuCarrier::release(OduCircuitId circuit) {
  bool any = false;
  for (auto& s : slots_) {
    if (s == circuit) {
      s = OduCircuitId{};
      any = true;
    }
  }
  if (!any)
    return Status{ErrorCode::kConflict, "carrier: circuit holds no slots"};
  return Status::success();
}

int OtuCarrier::allocated_slots() const noexcept {
  return static_cast<int>(std::count_if(
      slots_.begin(), slots_.end(), [](OduCircuitId c) { return c.valid(); }));
}

int OtuCarrier::usable_free_slots() const noexcept {
  return total_slots() - allocated_slots() - shared_reserved_slots();
}

bool OtuCarrier::carries(OduCircuitId circuit) const noexcept {
  return std::find(slots_.begin(), slots_.end(), circuit) != slots_.end();
}

int OtuCarrier::demand_if_fails(LinkId risk) const noexcept {
  int demand = 0;
  for (const auto& [circuit, res] : backups_) {
    if (std::find(res.risks.begin(), res.risks.end(), risk) !=
        res.risks.end())
      demand += res.slots;
  }
  return demand;
}

int OtuCarrier::shared_reserved_slots() const noexcept {
  // Single-failure assumption: headroom is the worst case over individual
  // physical risks, which is what lets disjoint primaries share backup
  // capacity (the cost advantage over 1+1).
  std::set<LinkId> risks;
  for (const auto& [circuit, res] : backups_)
    risks.insert(res.risks.begin(), res.risks.end());
  int worst = 0;
  for (const LinkId r : risks) worst = std::max(worst, demand_if_fails(r));
  return worst;
}

bool OtuCarrier::can_reserve_backup(const std::vector<LinkId>& risks,
                                    int n) const noexcept {
  if (failed_ || retired_) return false;
  // Worst-case demand after adding this reservation.
  std::set<LinkId> all_risks(risks.begin(), risks.end());
  for (const auto& [circuit, res] : backups_)
    all_risks.insert(res.risks.begin(), res.risks.end());
  int worst = 0;
  for (const LinkId r : all_risks) {
    int demand = demand_if_fails(r);
    if (std::find(risks.begin(), risks.end(), r) != risks.end()) demand += n;
    worst = std::max(worst, demand);
  }
  return allocated_slots() + worst <= total_slots();
}

Status OtuCarrier::reserve_backup(OduCircuitId circuit,
                                  const std::vector<LinkId>& risks, int n) {
  if (backups_.contains(circuit))
    return Status{ErrorCode::kConflict, "carrier: backup already reserved"};
  if (!can_reserve_backup(risks, n))
    return Status{ErrorCode::kResourceExhausted,
                  "carrier: shared backup pool exhausted"};
  backups_[circuit] = BackupReservation{risks, n};
  return Status::success();
}

Status OtuCarrier::release_backup(OduCircuitId circuit) {
  if (backups_.erase(circuit) == 0)
    return Status{ErrorCode::kConflict, "carrier: no backup reservation"};
  return Status::success();
}

}  // namespace griphon::otn
