// OTU carrier: a wavelength between two OTN switches, divided into 1.25G
// tributary slots.
//
// Carriers are the links of the OTN layer's own topology. Each carrier
// rides a DWDM wavelength whose physical route is recorded so that fiber
// failures can be mapped onto carrier failures (and so that shared-mesh
// backup reservations can be grouped by the physical risk they protect
// against).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace griphon::otn {

class OtuCarrier {
 public:
  OtuCarrier(CarrierId id, NodeId a, NodeId b, DataRate line_rate,
             std::vector<LinkId> physical_route);

  [[nodiscard]] CarrierId id() const noexcept { return id_; }
  [[nodiscard]] NodeId a() const noexcept { return a_; }
  [[nodiscard]] NodeId b() const noexcept { return b_; }
  [[nodiscard]] NodeId peer(NodeId n) const noexcept {
    return n == a_ ? b_ : a_;
  }
  [[nodiscard]] bool touches(NodeId n) const noexcept {
    return n == a_ || n == b_;
  }
  [[nodiscard]] DataRate line_rate() const noexcept { return line_rate_; }
  [[nodiscard]] int total_slots() const noexcept {
    return static_cast<int>(slots_.size());
  }
  [[nodiscard]] const std::vector<LinkId>& physical_route() const noexcept {
    return route_;
  }
  [[nodiscard]] bool rides_link(LinkId link) const noexcept;

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  void set_failed(bool failed) noexcept { failed_ = failed; }
  /// Retired carriers are withdrawn from service (their wavelength has
  /// been or is being decommissioned); they accept no new allocations.
  [[nodiscard]] bool retired() const noexcept { return retired_; }
  void set_retired(bool retired) noexcept { retired_ = retired; }

  // --- working-slot allocation ----------------------------------------
  /// Allocate `n` slots to `circuit`; returns the slot indices. Normal
  /// admission honors the shared-backup headroom; `restoration = true`
  /// lets a failover dip into the shared pool (that pool exists precisely
  /// to serve the activation), bounded only by physical slots.
  [[nodiscard]] Result<std::vector<int>> allocate(OduCircuitId circuit, int n,
                                    bool restoration = false);
  /// Release all working slots held by `circuit`.
  [[nodiscard]] Status release(OduCircuitId circuit);
  [[nodiscard]] int allocated_slots() const noexcept;
  /// Working slots still free after honoring shared-backup headroom.
  [[nodiscard]] int usable_free_slots() const noexcept;
  [[nodiscard]] bool carries(OduCircuitId circuit) const noexcept;

  // --- shared-mesh backup reservations ----------------------------------
  /// Slots that must stay free so that reserved backups can activate:
  /// max over single physical-risk failures of the demand on this carrier.
  [[nodiscard]] int shared_reserved_slots() const noexcept;
  /// Whether a backup of `n` slots protecting against `risks` (the links of
  /// the circuit's primary route) can be reserved without oversubscribing.
  [[nodiscard]] bool can_reserve_backup(const std::vector<LinkId>& risks,
                                        int n) const noexcept;
  [[nodiscard]] Status reserve_backup(OduCircuitId circuit,
                        const std::vector<LinkId>& risks, int n);
  [[nodiscard]] Status release_backup(OduCircuitId circuit);
  [[nodiscard]] bool has_backup_reservation(OduCircuitId circuit) const {
    return backups_.contains(circuit);
  }

 private:
  struct BackupReservation {
    std::vector<LinkId> risks;
    int slots = 0;
  };

  [[nodiscard]] int demand_if_fails(LinkId risk) const noexcept;

  CarrierId id_;
  NodeId a_;
  NodeId b_;
  DataRate line_rate_;
  std::vector<LinkId> route_;
  std::vector<OduCircuitId> slots_;  // per-slot owner; invalid id == free
  std::map<OduCircuitId, BackupReservation> backups_;
  bool failed_ = false;
  bool retired_ = false;
};

}  // namespace griphon::otn
