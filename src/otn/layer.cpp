#include "otn/layer.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>

#include "otn/odu.hpp"

namespace griphon::otn {

OtnSwitchId OtnLayer::add_switch(NodeId site, std::size_t client_ports) {
  if (switch_at(site) != nullptr)
    throw std::invalid_argument("OtnLayer: switch already at site");
  const OtnSwitchId id = switch_ids_.next();
  switches_.emplace_back(id, site, client_ports);
  return id;
}

OtnSwitch* OtnLayer::switch_at(NodeId site) {
  for (auto& sw : switches_)
    if (sw.site() == site) return &sw;
  return nullptr;
}

const OtnSwitch* OtnLayer::switch_at(NodeId site) const {
  for (const auto& sw : switches_)
    if (sw.site() == site) return &sw;
  return nullptr;
}

Result<CarrierId> OtnLayer::add_carrier(NodeId a, NodeId b,
                                        DataRate line_rate,
                                        std::vector<LinkId> physical_route) {
  OtnSwitch* sa = switch_at(a);
  OtnSwitch* sb = switch_at(b);
  if (sa == nullptr || sb == nullptr)
    return Error{ErrorCode::kNotFound, "OtnLayer: no switch at endpoint"};
  const CarrierId id = carrier_ids_.next();
  carriers_.emplace_back(id, a, b, line_rate, std::move(physical_route));
  sa->attach_carrier(id);
  sb->attach_carrier(id);
  return id;
}

const OtuCarrier& OtnLayer::carrier(CarrierId id) const {
  if (id.value() >= carriers_.size())
    throw std::out_of_range("OtnLayer::carrier: unknown id");
  return carriers_[id.value()];
}

OtuCarrier& OtnLayer::carrier(CarrierId id) {
  if (id.value() >= carriers_.size())
    throw std::out_of_range("OtnLayer::carrier: unknown id");
  return carriers_[id.value()];
}

Status OtnLayer::retire_carrier(CarrierId id) {
  if (id.value() >= carriers_.size())
    return Status{ErrorCode::kNotFound, "OtnLayer: unknown carrier"};
  OtuCarrier& c = carriers_[id.value()];
  if (c.allocated_slots() > 0 || c.shared_reserved_slots() > 0)
    return Status{ErrorCode::kBusy, "OtnLayer: carrier still in use"};
  c.set_retired(true);
  return Status::success();
}

std::optional<std::vector<CarrierId>> OtnLayer::find_carrier_path(
    NodeId src, NodeId dst, const CarrierFilter& filter) const {
  // BFS over nodes; carriers are the edges. Min-hop keeps grooming local.
  std::map<NodeId, CarrierId> via;
  std::set<NodeId> seen{src};
  std::queue<NodeId> frontier;
  frontier.push(src);
  while (!frontier.empty() && !seen.contains(dst)) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const auto& c : carriers_) {
      if (!c.touches(u) || c.failed() || c.retired()) continue;
      if (filter && !filter(c)) continue;
      const NodeId v = c.peer(u);
      if (seen.contains(v)) continue;
      seen.insert(v);
      via[v] = c.id();
      frontier.push(v);
    }
  }
  if (!seen.contains(dst)) return std::nullopt;
  std::vector<CarrierId> path;
  for (NodeId at = dst; at != src;) {
    const CarrierId c = via.at(at);
    path.push_back(c);
    at = carriers_[c.value()].peer(at);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<LinkId> OtnLayer::risk_set(
    const std::vector<CarrierId>& path) const {
  std::set<LinkId> risks;
  for (const CarrierId c : path) {
    const auto& route = carriers_[c.value()].physical_route();
    risks.insert(route.begin(), route.end());
  }
  return {risks.begin(), risks.end()};
}

Status OtnLayer::install_xconnects(OduCircuit& c,
                                   const std::vector<CarrierId>& path) {
  // src: client -> first carrier; intermediates: carrier -> carrier;
  // dst: last carrier -> client.
  auto line = [&](CarrierId id) {
    return Endpoint{LineEndpoint{id, c.slot_map.at(id)}};
  };
  OtnSwitch* ssw = switch_at(c.src);
  OtnSwitch* dsw = switch_at(c.dst);
  if (const Status s = ssw->xconnect(
          c.id, Endpoint{ClientEndpoint{c.src_port}}, line(path.front()));
      !s.ok())
    return s;
  NodeId at = carriers_[path.front().value()].peer(c.src);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    OtnSwitch* sw = switch_at(at);
    if (const Status s = sw->xconnect(c.id, line(path[i]), line(path[i + 1]));
        !s.ok())
      return s;
    at = carriers_[path[i + 1].value()].peer(at);
  }
  return dsw->xconnect(c.id, line(path.back()),
                       Endpoint{ClientEndpoint{c.dst_port}});
}

void OtnLayer::remove_xconnects(OduCircuit& c,
                                const std::vector<CarrierId>& path) {
  // Visit every switch along the path; release_xconnect is per-circuit.
  std::set<NodeId> sites{c.src, c.dst};
  NodeId at = c.src;
  for (const CarrierId cid : path) {
    at = carriers_[cid.value()].peer(at);
    sites.insert(at);
  }
  for (const NodeId site : sites) {
    OtnSwitch* sw = switch_at(site);
    if (sw != nullptr && sw->has_xconnect(c.id))
      (void)sw->release_xconnect(c.id);
  }
}

Result<OduCircuitId> OtnLayer::create_circuit(const CircuitSpec& spec) {
  OtnSwitch* ssw = switch_at(spec.src);
  OtnSwitch* dsw = switch_at(spec.dst);
  if (ssw == nullptr || dsw == nullptr)
    return Error{ErrorCode::kNotFound, "OtnLayer: no switch at endpoint"};
  if (spec.src == spec.dst)
    return Error{ErrorCode::kInvalidArgument, "OtnLayer: src == dst"};
  const int slots = slots_for_rate(spec.rate);

  auto primary = find_carrier_path(
      spec.src, spec.dst,
      [&](const OtuCarrier& c) { return c.usable_free_slots() >= slots; });
  // A circuit through k carriers burns k x slots of transport capacity, so
  // long groomed detours can cost more wavelengths than they save. Beyond
  // two carrier hops, report no-capacity and let the controller groom a
  // more direct carrier instead.
  constexpr std::size_t kMaxPrimaryCarrierHops = 2;
  if (primary && primary->size() > kMaxPrimaryCarrierHops) primary.reset();
  if (!primary)
    return Error{ErrorCode::kUnreachable,
                 "OtnLayer: no carrier path with free capacity"};

  OduCircuit c;
  c.id = circuit_ids_alloc_.next();
  c.customer = spec.customer;
  c.src = spec.src;
  c.dst = spec.dst;
  c.rate = spec.rate;
  c.slots = slots;
  c.is_protected = spec.protect;
  c.primary = *primary;

  // Backup first (pure reservation, easy to abort without unwinding).
  if (spec.protect) {
    const auto risks = risk_set(c.primary);
    auto disjoint_ok = [&](const OtuCarrier& cand) {
      for (const LinkId r : risks)
        if (cand.rides_link(r)) return false;
      return cand.can_reserve_backup(risks, slots);
    };
    const auto backup = find_carrier_path(spec.src, spec.dst, disjoint_ok);
    if (!backup)
      return Error{ErrorCode::kUnreachable,
                   "OtnLayer: no disjoint backup path available"};
    c.backup = *backup;
    for (const CarrierId cid : c.backup) {
      const Status s = carriers_[cid.value()].reserve_backup(c.id, risks,
                                                             slots);
      if (!s.ok()) {
        for (const CarrierId done : c.backup) {
          if (done == cid) break;
          (void)carriers_[done.value()].release_backup(c.id);
        }
        return s.error();
      }
    }
  }

  // Working slots along the primary.
  for (const CarrierId cid : c.primary) {
    auto got = carriers_[cid.value()].allocate(c.id, slots);
    if (!got.ok()) {
      for (const CarrierId done : c.primary) {
        if (done == cid) break;
        (void)carriers_[done.value()].release(c.id);
      }
      for (const CarrierId bid : c.backup)
        (void)carriers_[bid.value()].release_backup(c.id);
      return got.error();
    }
    c.slot_map[cid] = std::move(got).value();
  }

  auto sport = ssw->allocate_client_port();
  auto dport = dsw->allocate_client_port();
  if (!sport.ok() || !dport.ok()) {
    if (sport.ok()) (void)ssw->release_client_port(sport.value());
    if (dport.ok()) (void)dsw->release_client_port(dport.value());
    for (const CarrierId cid : c.primary)
      (void)carriers_[cid.value()].release(c.id);
    for (const CarrierId bid : c.backup)
      (void)carriers_[bid.value()].release_backup(c.id);
    return Error{ErrorCode::kResourceExhausted,
                 "OtnLayer: no free client port"};
  }
  c.src_port = sport.value();
  c.dst_port = dport.value();

  if (const Status s = install_xconnects(c, c.primary); !s.ok()) {
    remove_xconnects(c, c.primary);
    (void)ssw->release_client_port(c.src_port);
    (void)dsw->release_client_port(c.dst_port);
    for (const CarrierId cid : c.primary)
      (void)carriers_[cid.value()].release(c.id);
    for (const CarrierId bid : c.backup)
      (void)carriers_[bid.value()].release_backup(c.id);
    return s.error();
  }

  const OduCircuitId id = c.id;
  circuits_[id] = std::move(c);
  return id;
}

Status OtnLayer::release_circuit(OduCircuitId id) {
  const auto it = circuits_.find(id);
  if (it == circuits_.end())
    return Status{ErrorCode::kNotFound, "OtnLayer: unknown circuit"};
  OduCircuit& c = it->second;
  const auto& active_path =
      c.state == OduCircuit::State::kOnBackup ? c.backup : c.primary;
  remove_xconnects(c, active_path);
  for (const auto& [cid, slots] : c.slot_map)
    (void)carriers_[cid.value()].release(c.id);
  for (const CarrierId bid : c.backup)
    if (carriers_[bid.value()].has_backup_reservation(c.id))
      (void)carriers_[bid.value()].release_backup(c.id);
  (void)switch_at(c.src)->release_client_port(c.src_port);
  (void)switch_at(c.dst)->release_client_port(c.dst_port);
  circuits_.erase(it);
  return Status::success();
}

const OduCircuit& OtnLayer::circuit(OduCircuitId id) const {
  const auto it = circuits_.find(id);
  if (it == circuits_.end())
    throw std::out_of_range("OtnLayer::circuit: unknown id");
  return it->second;
}

std::vector<OduCircuitId> OtnLayer::circuit_ids() const {
  std::vector<OduCircuitId> out;
  out.reserve(circuits_.size());
  for (const auto& [id, c] : circuits_) out.push_back(id);
  return out;
}

std::vector<OduCircuitId> OtnLayer::on_link_failed(LinkId link) {
  for (auto& c : carriers_)
    if (c.rides_link(link)) c.set_failed(true);
  std::vector<OduCircuitId> affected;
  for (auto& [id, c] : circuits_) {
    const auto& active =
        c.state == OduCircuit::State::kOnBackup ? c.backup : c.primary;
    const bool hit = std::any_of(
        active.begin(), active.end(),
        [&](CarrierId cid) { return carriers_[cid.value()].failed(); });
    if (hit && c.state != OduCircuit::State::kFailed) {
      c.state = OduCircuit::State::kFailed;
      affected.push_back(id);
    }
  }
  return affected;
}

std::vector<OduCircuitId> OtnLayer::on_link_repaired(LinkId link) {
  for (auto& c : carriers_) {
    if (!c.rides_link(link)) continue;
    // Only clear if no *other* failed link remains on the route. The layer
    // does not track per-link state; ask the circuit owner (core) when
    // multiple simultaneous failures matter. Single-failure assumption.
    c.set_failed(false);
  }
  std::vector<OduCircuitId> eligible;
  for (auto& [id, c] : circuits_) {
    if (c.state != OduCircuit::State::kOnBackup &&
        c.state != OduCircuit::State::kFailed)
      continue;
    const bool primary_ok = std::none_of(
        c.primary.begin(), c.primary.end(),
        [&](CarrierId cid) { return carriers_[cid.value()].failed(); });
    if (primary_ok) eligible.push_back(id);
  }
  return eligible;
}

Status OtnLayer::activate_backup(OduCircuitId id) {
  const auto it = circuits_.find(id);
  if (it == circuits_.end())
    return Status{ErrorCode::kNotFound, "OtnLayer: unknown circuit"};
  OduCircuit& c = it->second;
  if (!c.is_protected)
    return Status{ErrorCode::kConflict, "OtnLayer: circuit is unprotected"};
  if (c.state != OduCircuit::State::kFailed)
    return Status{ErrorCode::kConflict, "OtnLayer: circuit not in failed state"};
  for (const CarrierId cid : c.backup)
    if (carriers_[cid.value()].failed())
      return Status{ErrorCode::kDeviceFault,
                    "OtnLayer: backup path also failed"};

  // Tear down what remains of the primary, then claim real slots on the
  // backup. Our own shared reservation converts into the working slots, so
  // release it first — otherwise the pool headroom double-counts us.
  remove_xconnects(c, c.primary);
  for (const CarrierId cid : c.primary)
    (void)carriers_[cid.value()].release(c.id);
  c.slot_map.clear();
  for (const CarrierId cid : c.backup)
    if (carriers_[cid.value()].has_backup_reservation(c.id))
      (void)carriers_[cid.value()].release_backup(c.id);
  for (const CarrierId cid : c.backup) {
    auto got = carriers_[cid.value()].allocate(c.id, c.slots,
                                               /*restoration=*/true);
    if (!got.ok()) {
      // Shared pool contention (multiple failures): restoration fails.
      for (const CarrierId done : c.backup) {
        if (done == cid) break;
        (void)carriers_[done.value()].release(c.id);
      }
      c.slot_map.clear();
      return got.error();
    }
    c.slot_map[cid] = std::move(got).value();
  }
  if (const Status s = install_xconnects(c, c.backup); !s.ok()) return s;
  c.state = OduCircuit::State::kOnBackup;
  return Status::success();
}

Status OtnLayer::preemptive_switch(OduCircuitId id) {
  const auto it = circuits_.find(id);
  if (it == circuits_.end())
    return Status{ErrorCode::kNotFound, "OtnLayer: unknown circuit"};
  OduCircuit& c = it->second;
  if (!c.is_protected)
    return Status{ErrorCode::kConflict, "OtnLayer: circuit is unprotected"};
  if (c.state != OduCircuit::State::kActive)
    return Status{ErrorCode::kConflict, "OtnLayer: circuit not on primary"};
  c.state = OduCircuit::State::kFailed;  // borrow the failover machinery
  const Status s = activate_backup(id);
  // Early rejection leaves the primary untouched (slots still held): undo
  // the marker. A failure after the primary was torn down is a real outage.
  if (!s.ok() && c.state == OduCircuit::State::kFailed && !c.slot_map.empty())
    c.state = OduCircuit::State::kActive;
  return s;
}

Status OtnLayer::revert_to_primary(OduCircuitId id) {
  const auto it = circuits_.find(id);
  if (it == circuits_.end())
    return Status{ErrorCode::kNotFound, "OtnLayer: unknown circuit"};
  OduCircuit& c = it->second;
  if (c.state == OduCircuit::State::kActive)
    return Status{ErrorCode::kConflict, "OtnLayer: already on primary"};
  for (const CarrierId cid : c.primary)
    if (carriers_[cid.value()].failed())
      return Status{ErrorCode::kDeviceFault,
                    "OtnLayer: primary path still failed"};

  const auto holds_all = [&](const std::vector<CarrierId>& path) {
    if (path.empty()) return false;
    return std::all_of(path.begin(), path.end(), [&](CarrierId cid) {
      return c.slot_map.contains(cid);
    });
  };
  if (c.state == OduCircuit::State::kFailed && holds_all(c.primary)) {
    // Backup was never activated, so the primary's slots and fabric
    // cross-connects are all still in place; service resumes with the fiber.
    c.state = OduCircuit::State::kActive;
    return Status::success();
  }
  if (c.state == OduCircuit::State::kFailed && holds_all(c.backup)) {
    // The circuit died *on its backup path*: vacate it before rebuilding
    // the primary, exactly as in the normal reversion flow.
    remove_xconnects(c, c.backup);
    for (const CarrierId cid : c.backup)
      (void)carriers_[cid.value()].release(c.id);
    c.slot_map.clear();
    const auto risks = risk_set(c.primary);
    for (const CarrierId cid : c.backup)
      (void)carriers_[cid.value()].reserve_backup(c.id, risks, c.slots);
  }
  if (c.state == OduCircuit::State::kOnBackup) {
    remove_xconnects(c, c.backup);
    for (const CarrierId cid : c.backup)
      (void)carriers_[cid.value()].release(c.id);
    c.slot_map.clear();
    // Re-arm the shared protection we consumed at failover. Best effort:
    // capacity taken by others meanwhile can leave the circuit unprotected
    // until the layer is re-groomed.
    const auto risks = risk_set(c.primary);
    for (const CarrierId cid : c.backup)
      (void)carriers_[cid.value()].reserve_backup(c.id, risks, c.slots);
  }
  for (const CarrierId cid : c.primary) {
    auto got = carriers_[cid.value()].allocate(c.id, c.slots);
    if (!got.ok()) {
      // Unwind the partial allocation: the circuit is now in full outage
      // (backup already vacated), but no slots may leak.
      for (const CarrierId done : c.primary) {
        if (done == cid) break;
        (void)carriers_[done.value()].release(c.id);
      }
      c.slot_map.clear();
      c.state = OduCircuit::State::kFailed;
      return got.error();
    }
    c.slot_map[cid] = std::move(got).value();
  }
  if (const Status s = install_xconnects(c, c.primary); !s.ok()) return s;
  c.state = OduCircuit::State::kActive;
  return Status::success();
}

OtnLayer::SlotStats OtnLayer::slot_stats() const noexcept {
  SlotStats stats;
  for (const auto& c : carriers_) {
    if (c.retired()) continue;
    stats.total += c.total_slots();
    stats.working += c.allocated_slots();
    stats.shared_reserved += c.shared_reserved_slots();
  }
  return stats;
}

}  // namespace griphon::otn
