// OTN layer manager.
//
// Owns the OTN switches and OTU carriers, routes sub-wavelength ODU
// circuits over the carrier topology, and implements shared-mesh
// restoration ("automatic sub-second shared-mesh restoration similar to
// today's SONET layer", paper §2.1).
//
// The layer is a synchronous state machine: it computes and applies
// transitions but does not advance time. The GRIPhoN controller (core)
// owns sequencing and applies restoration latencies.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"
#include "otn/carrier.hpp"
#include "otn/otn_switch.hpp"
#include "topology/graph.hpp"

namespace griphon::otn {

/// End-to-end sub-wavelength circuit.
struct OduCircuit {
  enum class State {
    kActive,    ///< carrying traffic on the primary path
    kFailed,    ///< primary down, backup not (yet) activated
    kOnBackup,  ///< carrying traffic on the backup path
  };

  OduCircuitId id;
  CustomerId customer;
  NodeId src;
  NodeId dst;
  DataRate rate;
  int slots = 0;
  bool is_protected = false;
  State state = State::kActive;
  std::vector<CarrierId> primary;
  std::vector<CarrierId> backup;  ///< empty when unprotected
  std::size_t src_port = 0;       ///< client port on the src switch
  std::size_t dst_port = 0;
  /// Slot indices held on each carrier of the *active* path.
  std::map<CarrierId, std::vector<int>> slot_map;
};

class OtnLayer {
 public:
  explicit OtnLayer(const topology::Graph* graph) : graph_(graph) {}

  // --- plant construction ----------------------------------------------
  OtnSwitchId add_switch(NodeId site, std::size_t client_ports);
  [[nodiscard]] OtnSwitch* switch_at(NodeId site);
  [[nodiscard]] const OtnSwitch* switch_at(NodeId site) const;

  /// Install a carrier between the switches at `a` and `b`, riding a
  /// wavelength whose physical route is `physical_route`.
  [[nodiscard]] Result<CarrierId> add_carrier(NodeId a, NodeId b, DataRate line_rate,
                                std::vector<LinkId> physical_route);
  [[nodiscard]] const OtuCarrier& carrier(CarrierId id) const;
  [[nodiscard]] OtuCarrier& carrier(CarrierId id);
  [[nodiscard]] const std::vector<OtuCarrier>& carriers() const noexcept {
    return carriers_;
  }
  /// Withdraw an idle carrier from service. Fails with kBusy while any
  /// circuit holds working slots or a backup reservation on it.
  [[nodiscard]] Status retire_carrier(CarrierId id);

  // --- circuits ----------------------------------------------------------
  struct CircuitSpec {
    CustomerId customer;
    NodeId src;
    NodeId dst;
    DataRate rate;
    bool protect = false;  ///< reserve a shared-mesh backup path
  };
  [[nodiscard]] Result<OduCircuitId> create_circuit(const CircuitSpec& spec);
  [[nodiscard]] Status release_circuit(OduCircuitId id);
  [[nodiscard]] const OduCircuit& circuit(OduCircuitId id) const;
  [[nodiscard]] std::vector<OduCircuitId> circuit_ids() const;
  [[nodiscard]] std::size_t circuit_count() const noexcept {
    return circuits_.size();
  }

  // --- failure handling ---------------------------------------------------
  /// Fiber link failed: fail carriers riding it; returns circuits whose
  /// *active* path just went down.
  std::vector<OduCircuitId> on_link_failed(LinkId link);
  /// Fiber link repaired: un-fail carriers (circuits stay on backup until
  /// reverted); returns circuits eligible for reversion.
  std::vector<OduCircuitId> on_link_repaired(LinkId link);

  /// Move a failed protected circuit onto its reserved backup path.
  [[nodiscard]] Status activate_backup(OduCircuitId id);
  /// Maintenance: move a *healthy* protected circuit onto its backup before
  /// its primary span is taken down (make-before-break at the ODU layer).
  [[nodiscard]] Status preemptive_switch(OduCircuitId id);
  /// Move a circuit back to its (repaired) primary path.
  [[nodiscard]] Status revert_to_primary(OduCircuitId id);

  // --- capacity statistics (benches) --------------------------------------
  struct SlotStats {
    int total = 0;
    int working = 0;
    int shared_reserved = 0;
  };
  [[nodiscard]] SlotStats slot_stats() const noexcept;

 private:
  using CarrierFilter = std::function<bool(const OtuCarrier&)>;
  /// Min-hop path over the carrier graph.
  [[nodiscard]] std::optional<std::vector<CarrierId>> find_carrier_path(
      NodeId src, NodeId dst, const CarrierFilter& filter) const;

  [[nodiscard]] Status install_xconnects(OduCircuit& c, const std::vector<CarrierId>& path);
  void remove_xconnects(OduCircuit& c, const std::vector<CarrierId>& path);
  /// All physical links any carrier of `path` rides (the risk set).
  [[nodiscard]] std::vector<LinkId> risk_set(
      const std::vector<CarrierId>& path) const;

  const topology::Graph* graph_;
  std::vector<OtnSwitch> switches_;
  std::vector<OtuCarrier> carriers_;
  std::map<OduCircuitId, OduCircuit> circuits_;
  IdAllocator<OtnSwitchId> switch_ids_;
  IdAllocator<CarrierId> carrier_ids_;
  IdAllocator<OduCircuitId> circuit_ids_alloc_;
};

}  // namespace griphon::otn
