// ITU-T G.709 ODU hierarchy.
//
// The OTN layer cross-connects at ODU0 (1.25 Gbps) granularity (paper
// §2.1: "The OTN switches cross-connect at an ODU0 rate (1.25Gbps)").
// Higher-order carriers (OTU2/3/4 riding a wavelength) are divided into
// 1.25G tributary slots; a lower-order ODU occupies a fixed number of
// slots.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/units.hpp"

namespace griphon::otn {

enum class OduLevel : std::uint8_t {
  kOdu0,   ///< 1.25G  (1 slot)  — carries 1GbE
  kOdu1,   ///< 2.5G   (2 slots)
  kOdu2,   ///< 10G    (8 slots) — carries 10GbE
  kOdu3,   ///< 40G    (32 slots)
  kOdu4,   ///< 100G   (80 slots)
  kOduFlex ///< n x 1.25G
};

[[nodiscard]] constexpr const char* to_string(OduLevel l) noexcept {
  switch (l) {
    case OduLevel::kOdu0:
      return "ODU0";
    case OduLevel::kOdu1:
      return "ODU1";
    case OduLevel::kOdu2:
      return "ODU2";
    case OduLevel::kOdu3:
      return "ODU3";
    case OduLevel::kOdu4:
      return "ODU4";
    case OduLevel::kOduFlex:
      return "ODUflex";
  }
  return "?";
}

/// Payload rate of a fixed ODU level.
[[nodiscard]] constexpr DataRate rate_of(OduLevel l) {
  switch (l) {
    case OduLevel::kOdu0:
      return rates::kOdu0;
    case OduLevel::kOdu1:
      return rates::kOdu1;
    case OduLevel::kOdu2:
      return rates::kOdu2;
    case OduLevel::kOdu3:
      return rates::kOdu3;
    case OduLevel::kOdu4:
      return rates::kOdu4;
    case OduLevel::kOduFlex:
      throw std::invalid_argument("rate_of: ODUflex rate is per-instance");
  }
  throw std::invalid_argument("rate_of: bad level");
}

/// 1.25G tributary slots occupied by a fixed ODU level inside a carrier.
[[nodiscard]] constexpr int slots_of(OduLevel l) {
  switch (l) {
    case OduLevel::kOdu0:
      return 1;
    case OduLevel::kOdu1:
      return 2;
    case OduLevel::kOdu2:
      return 8;
    case OduLevel::kOdu3:
      return 32;
    case OduLevel::kOdu4:
      return 80;
    case OduLevel::kOduFlex:
      throw std::invalid_argument("slots_of: ODUflex is per-instance");
  }
  throw std::invalid_argument("slots_of: bad level");
}

/// Tributary slots for an arbitrary client rate (ODUflex sizing).
[[nodiscard]] constexpr int slots_for_rate(DataRate rate) {
  const auto slot = rates::kOdu0.in_bps();
  const auto n = (rate.in_bps() + slot - 1) / slot;
  return static_cast<int>(n);
}

/// Smallest fixed ODU level that carries `rate`, preferring tight fits
/// (1GbE -> ODU0, 10GbE -> ODU2).
[[nodiscard]] constexpr OduLevel level_for_rate(DataRate rate) {
  if (rate <= rates::kOdu0) return OduLevel::kOdu0;
  if (rate <= rates::kOdu1) return OduLevel::kOdu1;
  if (rate <= rates::kOdu2) return OduLevel::kOdu2;
  if (rate <= rates::kOdu3) return OduLevel::kOdu3;
  if (rate <= rates::kOdu4) return OduLevel::kOdu4;
  throw std::invalid_argument("level_for_rate: rate above ODU4");
}

/// Tributary-slot capacity of an OTU carrier at a given line rate.
[[nodiscard]] constexpr int carrier_slots(DataRate line_rate) {
  if (line_rate <= rates::k10G) return 8;    // OTU2
  if (line_rate <= rates::k40G) return 32;   // OTU3
  return 80;                                 // OTU4
}

}  // namespace griphon::otn
