#include "otn/otn_switch.hpp"

#include <algorithm>

namespace griphon::otn {

void OtnSwitch::attach_carrier(CarrierId carrier) {
  if (!has_carrier(carrier)) carriers_.push_back(carrier);
}

bool OtnSwitch::has_carrier(CarrierId carrier) const noexcept {
  return std::find(carriers_.begin(), carriers_.end(), carrier) !=
         carriers_.end();
}

Result<std::size_t> OtnSwitch::allocate_client_port() {
  for (std::size_t i = 0; i < client_in_use_.size(); ++i) {
    if (!client_in_use_[i]) {
      client_in_use_[i] = true;
      return i;
    }
  }
  return Error{ErrorCode::kResourceExhausted,
               name() + ": all client ports in use"};
}

Status OtnSwitch::release_client_port(std::size_t port) {
  if (port >= client_in_use_.size())
    return Status{ErrorCode::kInvalidArgument, name() + ": bad port"};
  if (!client_in_use_[port])
    return Status{ErrorCode::kConflict, name() + ": port not in use"};
  client_in_use_[port] = false;
  return Status::success();
}

bool OtnSwitch::client_port_in_use(std::size_t port) const {
  return port < client_in_use_.size() && client_in_use_[port];
}

std::size_t OtnSwitch::client_ports_in_use() const noexcept {
  return static_cast<std::size_t>(
      std::count(client_in_use_.begin(), client_in_use_.end(), true));
}

Status OtnSwitch::validate(const Endpoint& e) const {
  if (const auto* client = std::get_if<ClientEndpoint>(&e)) {
    if (client->port >= client_in_use_.size())
      return Status{ErrorCode::kInvalidArgument, name() + ": bad client port"};
    if (!client_in_use_[client->port])
      return Status{ErrorCode::kConflict,
                    name() + ": client port not allocated"};
    return Status::success();
  }
  const auto& line = std::get<LineEndpoint>(e);
  if (!has_carrier(line.carrier))
    return Status{ErrorCode::kNotFound,
                  name() + ": carrier not attached here"};
  if (line.slots.empty())
    return Status{ErrorCode::kInvalidArgument, name() + ": no slots given"};
  return Status::success();
}

Status OtnSwitch::xconnect(OduCircuitId circuit, Endpoint from, Endpoint to) {
  if (xconnects_.contains(circuit))
    return Status{ErrorCode::kConflict,
                  name() + ": circuit already cross-connected"};
  if (const Status s = validate(from); !s.ok()) return s;
  if (const Status s = validate(to); !s.ok()) return s;
  xconnects_[circuit] = {std::move(from), std::move(to)};
  return Status::success();
}

Status OtnSwitch::release_xconnect(OduCircuitId circuit) {
  if (xconnects_.erase(circuit) == 0)
    return Status{ErrorCode::kConflict, name() + ": no such cross-connect"};
  return Status::success();
}

}  // namespace griphon::otn
