// OTN switch element.
//
// One per GRIPhoN site (core PoP). Client ports accept customer signals
// (1GbE / 10GbE through the FXC); line ports are the OTU carriers attached
// to this switch. The fabric cross-connects ODUs between client ports and
// carrier tributary slots, and between carriers (intermediate hops of a
// multi-hop sub-wavelength circuit).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace griphon::otn {

/// One side of an ODU cross-connect.
struct ClientEndpoint {
  std::size_t port = 0;
  friend bool operator==(const ClientEndpoint&,
                         const ClientEndpoint&) = default;
};
struct LineEndpoint {
  CarrierId carrier;
  std::vector<int> slots;
  friend bool operator==(const LineEndpoint&, const LineEndpoint&) = default;
};
using Endpoint = std::variant<ClientEndpoint, LineEndpoint>;

class OtnSwitch {
 public:
  OtnSwitch(OtnSwitchId id, NodeId site, std::size_t client_ports)
      : id_(id), site_(site), client_in_use_(client_ports, false) {}

  [[nodiscard]] OtnSwitchId id() const noexcept { return id_; }
  [[nodiscard]] NodeId site() const noexcept { return site_; }
  [[nodiscard]] std::string name() const {
    return "otnsw/" + std::to_string(id_.value());
  }
  [[nodiscard]] std::size_t client_port_count() const noexcept {
    return client_in_use_.size();
  }

  /// Record that a carrier terminates here (line port).
  void attach_carrier(CarrierId carrier);
  [[nodiscard]] bool has_carrier(CarrierId carrier) const noexcept;
  [[nodiscard]] const std::vector<CarrierId>& carriers() const noexcept {
    return carriers_;
  }

  /// Claim a free client port for a circuit end.
  [[nodiscard]] Result<std::size_t> allocate_client_port();
  [[nodiscard]] Status release_client_port(std::size_t port);
  [[nodiscard]] bool client_port_in_use(std::size_t port) const;
  [[nodiscard]] std::size_t client_ports_in_use() const noexcept;

  /// Install the fabric cross-connect for `circuit` between two endpoints.
  /// Line endpoints must reference carriers attached to this switch.
  [[nodiscard]] Status xconnect(OduCircuitId circuit, Endpoint from, Endpoint to);
  [[nodiscard]] Status release_xconnect(OduCircuitId circuit);
  [[nodiscard]] bool has_xconnect(OduCircuitId circuit) const noexcept {
    return xconnects_.contains(circuit);
  }
  [[nodiscard]] std::size_t xconnect_count() const noexcept {
    return xconnects_.size();
  }

 private:
  [[nodiscard]] Status validate(const Endpoint& e) const;

  OtnSwitchId id_;
  NodeId site_;
  std::vector<bool> client_in_use_;
  std::vector<CarrierId> carriers_;
  std::map<OduCircuitId, std::pair<Endpoint, Endpoint>> xconnects_;
};

}  // namespace griphon::otn
