#include "otn/restorer.hpp"

#include "telemetry/telemetry.hpp"

namespace griphon::otn {

void MeshRestorer::link_failed(LinkId link) {
  const SimTime failed_at = engine_->now();
  const auto affected = layer_->on_link_failed(link);
  for (const OduCircuitId id : affected) {
    const auto& c = layer_->circuit(id);
    if (!c.is_protected) continue;
    const SimTime delay = params_.activation.sample(engine_->rng());
    engine_->schedule(delay, [this, id, failed_at]() {
      // The circuit may have been released or repaired meanwhile.
      Status status{ErrorCode::kNotFound, "restorer: circuit gone"};
      bool still_failed = false;
      for (const OduCircuitId cid : layer_->circuit_ids()) {
        if (cid == id) {
          still_failed =
              layer_->circuit(id).state == OduCircuit::State::kFailed;
          break;
        }
      }
      if (still_failed) status = layer_->activate_backup(id);
      if (status.ok()) {
        ++restored_ok_;
        times_[id] = engine_->now() - failed_at;
      } else {
        ++restored_failed_;
      }
      if (telemetry_ != nullptr) {
        auto& m = telemetry_->metrics();
        m.counter(status.ok() ? "griphon_otn_mesh_restorations_ok_total"
                              : "griphon_otn_mesh_restorations_failed_total",
                  status.ok() ? "Successful mesh backup activations"
                              : "Failed mesh backup activations")
            ->inc();
        if (status.ok())
          m.histogram("griphon_otn_mesh_restore_seconds",
                      "Fiber cut to traffic-restored, per circuit")
              ->observe(to_seconds(engine_->now() - failed_at));
        telemetry_->span_record(
            "mesh_restore", "mesh-restorer", 0, 0, failed_at,
            engine_->now(), status.ok(),
            "circuit " + std::to_string(id.value()));
      }
      if (restore_cb_) restore_cb_(id, status);
    });
  }
}

void MeshRestorer::link_repaired(LinkId link) {
  const auto eligible = layer_->on_link_repaired(link);
  for (const OduCircuitId id : eligible)
    if (revert_cb_) revert_cb_(id);
}

}  // namespace griphon::otn
