// Autonomous shared-mesh restoration driver.
//
// In OTN deployments, mesh restoration is executed by the switches
// themselves from preplanned backup routes — it does not wait for the
// central controller (that is how it achieves "automatic sub-second
// shared-mesh restoration", paper §2.1). MeshRestorer models that
// distributed behaviour: the plant notifies it of fiber events and it
// activates backups after a per-circuit signaling latency.
#pragma once

#include <functional>
#include <map>

#include "common/rng.hpp"
#include "otn/layer.hpp"
#include "sim/engine.hpp"

namespace griphon::telemetry {
class Telemetry;
}  // namespace griphon::telemetry

namespace griphon::otn {

class MeshRestorer {
 public:
  struct Params {
    /// Per-circuit failover signaling + switch fabric time.
    LatencyModel activation =
        LatencyModel::normal(milliseconds(40), milliseconds(110),
                             milliseconds(25));
  };

  /// Fired when a circuit's restoration attempt finishes.
  using RestoreCallback = std::function<void(OduCircuitId, Status)>;
  /// Fired when a circuit becomes eligible for reversion after repair.
  using RevertEligibleCallback = std::function<void(OduCircuitId)>;

  MeshRestorer(sim::Engine* engine, OtnLayer* layer, Params params)
      : engine_(engine), layer_(layer), params_(params) {}

  void on_restore(RestoreCallback cb) { restore_cb_ = std::move(cb); }
  void on_revert_eligible(RevertEligibleCallback cb) {
    revert_cb_ = std::move(cb);
  }

  /// Attach/detach a telemetry sink (griphon_otn_mesh_* metrics plus a
  /// retroactive mesh_restore span per attempt). Null = fast path.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }

  /// Plant event: fiber down. Fails carriers and schedules backup
  /// activation for every affected protected circuit.
  void link_failed(LinkId link);
  /// Plant event: fiber repaired. Reports circuits eligible to revert.
  void link_repaired(LinkId link);

  [[nodiscard]] std::size_t restorations_ok() const noexcept {
    return restored_ok_;
  }
  [[nodiscard]] std::size_t restorations_failed() const noexcept {
    return restored_failed_;
  }
  /// Failure-to-traffic-restored time of the last event, per circuit.
  [[nodiscard]] const std::map<OduCircuitId, SimTime>& restoration_times()
      const noexcept {
    return times_;
  }

 private:
  sim::Engine* engine_;
  OtnLayer* layer_;
  Params params_;
  RestoreCallback restore_cb_;
  RevertEligibleCallback revert_cb_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::size_t restored_ok_ = 0;
  std::size_t restored_failed_ = 0;
  std::map<OduCircuitId, SimTime> times_;
};

}  // namespace griphon::otn
