#include "proto/channel.hpp"

#include <cassert>
#include <utility>

namespace griphon::proto {

void Endpoint::send(Bytes frame) {
  assert(channel_ != nullptr && "endpoint not attached to a channel");
  channel_->transmit(peer_, std::move(frame));
}

ControlChannel::ControlChannel(sim::Engine* engine, Params params)
    : engine_(engine), params_(params) {
  a_.channel_ = this;
  a_.peer_ = &b_;
  b_.channel_ = this;
  b_.peer_ = &a_;
}

void ControlChannel::transmit(Endpoint* to, Bytes frame) {
  ++sent_;
  if (params_.loss_probability > 0 &&
      engine_->rng().chance(params_.loss_probability)) {
    ++dropped_;
    return;
  }
  FaultDecision fault;
  if (fault_hook_ != nullptr) {
    fault = fault_hook_->on_frame();
    if (fault.drop) {
      ++dropped_;
      return;
    }
  }
  const SimTime delay =
      params_.latency.sample(engine_->rng()) + fault.extra_delay;
  // Clamp so deliveries in one direction never reorder (FIFO channel).
  SimTime when = engine_->now() + delay;
  SimTime& last = (to == &a_) ? last_to_a_ : last_to_b_;
  when = std::max(when, last);
  last = when;
  engine_->schedule_at(when, [to, frame]() { to->deliver(frame); });
  if (fault.duplicate) {
    // The copy trails the original by another latency sample (still FIFO).
    SimTime dup_when = when + params_.latency.sample(engine_->rng());
    dup_when = std::max(dup_when, last);
    last = dup_when;
    engine_->schedule_at(dup_when, [to, frame = std::move(frame)]() {
      to->deliver(frame);
    });
  }
}

}  // namespace griphon::proto
