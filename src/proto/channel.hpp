// Simulated control channel.
//
// A bidirectional message channel between the GRIPhoN controller and one
// EMS, carried over the carrier's DCN (data communications network). The
// channel delivers whole frames with a propagation+processing latency and
// an optional loss probability (DCN links do drop; the request client
// retries). Delivery order per direction is FIFO.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "proto/wire.hpp"
#include "sim/engine.hpp"

namespace griphon::proto {

class ControlChannel;

/// One end of a channel. Handlers receive whole frames (Bytes).
class Endpoint {
 public:
  using Handler = std::function<void(const Bytes&)>;

  void on_receive(Handler handler) { handler_ = std::move(handler); }
  /// Send a frame to the peer endpoint.
  void send(Bytes frame);

 private:
  friend class ControlChannel;
  void deliver(const Bytes& frame) {
    if (handler_) handler_(frame);
  }

  ControlChannel* channel_ = nullptr;
  Endpoint* peer_ = nullptr;
  Handler handler_;
};

/// What a fault hook decided for one frame: lose it, deliver it twice, or
/// hold it back before the normal latency sample. Discarding a decision
/// would silently skip an injected fault, so the producer must consume it.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  SimTime extra_delay{};
};

/// Chaos interface: consulted once per transmitted frame. Implemented by
/// the fault injector; null (the default) keeps transmit() on a one-pointer-
/// test fast path.
class ChannelFaultHook {
 public:
  virtual ~ChannelFaultHook() = default;
  [[nodiscard]] virtual FaultDecision on_frame() = 0;
};

class ControlChannel {
 public:
  struct Params {
    LatencyModel latency = LatencyModel::fixed(milliseconds(5));
    double loss_probability = 0.0;
  };

  ControlChannel(sim::Engine* engine, Params params);

  [[nodiscard]] Endpoint& a() noexcept { return a_; }
  [[nodiscard]] Endpoint& b() noexcept { return b_; }

  [[nodiscard]] std::size_t frames_sent() const noexcept { return sent_; }
  [[nodiscard]] std::size_t frames_dropped() const noexcept {
    return dropped_;
  }

  /// Attach/detach the chaos hook (null detaches).
  void set_fault_hook(ChannelFaultHook* hook) noexcept { fault_hook_ = hook; }

 private:
  friend class Endpoint;
  void transmit(Endpoint* to, Bytes frame);

  sim::Engine* engine_;
  Params params_;
  ChannelFaultHook* fault_hook_ = nullptr;
  Endpoint a_;
  Endpoint b_;
  SimTime last_to_a_{};
  SimTime last_to_b_{};
  std::size_t sent_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace griphon::proto
