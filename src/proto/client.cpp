#include "proto/client.hpp"

#include <cassert>
#include <utility>

namespace griphon::proto {

RequestClient::RequestClient(sim::Engine* engine, Endpoint* endpoint,
                             Params params)
    : engine_(engine), endpoint_(endpoint), params_(params) {
  endpoint_->on_receive([this](const Bytes& bytes) { handle_frame(bytes); });
}

std::uint64_t RequestClient::request(Message message, ResponseCallback cb,
                                     std::uint64_t reuse_id) {
  const std::uint64_t id = (reuse_id != 0 && !pending_.contains(reuse_id))
                               ? reuse_id
                               : next_request_id_++;
  Pending p;
  p.frame = encode_frame(id, message);
  p.cb = std::move(cb);
  p.attempts_left = params_.max_attempts - 1;
  pending_[id] = std::move(p);
  endpoint_->send(pending_[id].frame);
  arm_timer(id);
  return id;
}

void RequestClient::arm_timer(std::uint64_t request_id) {
  pending_[request_id].timer = engine_->schedule(
      params_.timeout, [this, request_id]() { on_timeout(request_id); });
}

void RequestClient::on_timeout(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // response raced the timer
  Pending& p = it->second;
  if (p.attempts_left > 0) {
    --p.attempts_left;
    ++retransmissions_;
    endpoint_->send(p.frame);
    arm_timer(request_id);
    return;
  }
  ++timeouts_;
  ResponseCallback cb = std::move(p.cb);
  pending_.erase(it);
  cb(Error{ErrorCode::kTimeout, "proto: request timed out after retries"});
}

void RequestClient::handle_frame(const Bytes& bytes) {
  auto frame = decode_frame(bytes);
  if (!frame.ok()) return;  // corrupt frame: ignore, retry will recover
  if (const auto* resp = std::get_if<Response>(&frame.value().message)) {
    const auto it = pending_.find(frame.value().request_id);
    if (it == pending_.end()) return;  // duplicate response after retry
    engine_->cancel(it->second.timer);
    ResponseCallback cb = std::move(it->second.cb);
    const Response r = *resp;
    pending_.erase(it);
    cb(r);
    return;
  }
  if (event_handler_) event_handler_(frame.value());
}

}  // namespace griphon::proto
