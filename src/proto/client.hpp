// Request/response client over a control channel.
//
// The controller-side protocol stack: correlates responses to requests by
// frame id, enforces per-request deadlines, and retries lost frames.
// Retransmissions reuse the original request id so the EMS can deduplicate
// (EMS servers cache recent responses and replay them).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "common/result.hpp"
#include "proto/channel.hpp"
#include "proto/messages.hpp"
#include "sim/engine.hpp"

namespace griphon::proto {

class RequestClient {
 public:
  using ResponseCallback = std::function<void(Result<Response>)>;
  using EventHandler = std::function<void(const Frame&)>;

  struct Params {
    SimTime timeout = seconds(5);
    int max_attempts = 4;  ///< 1 original + 3 retries
  };

  RequestClient(sim::Engine* engine, Endpoint* endpoint, Params params);

  /// Issue a request; `cb` fires exactly once with the response or with a
  /// kTimeout error after all attempts are exhausted. Returns the request
  /// id the frame was sent under.
  ///
  /// `reuse_id` (an id previously returned by this client, no longer
  /// pending) reissues under that id instead of allocating a fresh one:
  /// the application-level idempotency key for retry-after-timeout. The
  /// EMS answers a reused id from its response cache when the original
  /// execution did complete, so retrying cannot double-execute. Pass 0
  /// (the default) for a new id; a reuse_id that is still pending is
  /// ignored (a fresh id is allocated) rather than orphaning the earlier
  /// callback.
  std::uint64_t request(Message message, ResponseCallback cb,
                        std::uint64_t reuse_id = 0);

  /// Handler for unsolicited frames (alarm events).
  void on_event(EventHandler handler) { event_handler_ = std::move(handler); }

  [[nodiscard]] std::size_t retransmissions() const noexcept {
    return retransmissions_;
  }
  [[nodiscard]] std::size_t timeouts() const noexcept { return timeouts_; }
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.size();
  }

 private:
  struct Pending {
    Bytes frame;  // retained for retransmission
    ResponseCallback cb;
    int attempts_left = 0;
    sim::EventHandle timer;
  };

  void handle_frame(const Bytes& bytes);
  void arm_timer(std::uint64_t request_id);
  void on_timeout(std::uint64_t request_id);

  sim::Engine* engine_;
  Endpoint* endpoint_;
  Params params_;
  EventHandler event_handler_;
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_request_id_ = 1;
  std::size_t retransmissions_ = 0;
  std::size_t timeouts_ = 0;
};

}  // namespace griphon::proto
