#include "proto/messages.hpp"

#include <cassert>

namespace griphon::proto {

namespace {

constexpr std::uint32_t kMagic = 0x47525048;  // "GRPH"
constexpr std::uint16_t kVersion = 1;

void put_id(ByteWriter& w, std::uint64_t v) { w.u64(v); }

template <typename IdT>
Result<IdT> get_id(ByteReader& r) {
  auto v = r.u64();
  if (!v.ok()) return v.error();
  return IdT{v.value()};
}

// --- per-message payload codecs ---------------------------------------

void encode(ByteWriter& w, const Response& m) {
  w.u16(m.code);
  w.str(m.message);
  w.u64(m.aux);
}
Result<Message> decode_response(ByteReader& r) {
  Response m;
  auto code = r.u16();
  if (!code.ok()) return code.error();
  m.code = code.value();
  auto msg = r.str();
  if (!msg.ok()) return msg.error();
  m.message = msg.value();
  auto aux = r.u64();
  if (!aux.ok()) return aux.error();
  m.aux = aux.value();
  return Message{m};
}

void encode(ByteWriter& w, const FxcConnect& m) {
  put_id(w, m.fxc.value());
  put_id(w, m.port_a.value());
  put_id(w, m.port_b.value());
}
Result<Message> decode_fxc_connect(ByteReader& r) {
  FxcConnect m;
  auto f = get_id<FxcId>(r);
  if (!f.ok()) return f.error();
  m.fxc = f.value();
  auto a = get_id<PortId>(r);
  if (!a.ok()) return a.error();
  m.port_a = a.value();
  auto b = get_id<PortId>(r);
  if (!b.ok()) return b.error();
  m.port_b = b.value();
  return Message{m};
}

void encode(ByteWriter& w, const FxcDisconnect& m) {
  put_id(w, m.fxc.value());
  put_id(w, m.port.value());
}
Result<Message> decode_fxc_disconnect(ByteReader& r) {
  FxcDisconnect m;
  auto f = get_id<FxcId>(r);
  if (!f.ok()) return f.error();
  m.fxc = f.value();
  auto p = get_id<PortId>(r);
  if (!p.ok()) return p.error();
  m.port = p.value();
  return Message{m};
}

void encode(ByteWriter& w, const RoadmExpress& m) {
  put_id(w, m.roadm.value());
  w.i32(m.channel);
  w.i32(m.degree_in);
  w.i32(m.degree_out);
  w.boolean(m.engage);
}
Result<Message> decode_roadm_express(ByteReader& r) {
  RoadmExpress m;
  auto id = get_id<RoadmId>(r);
  if (!id.ok()) return id.error();
  m.roadm = id.value();
  auto ch = r.i32();
  if (!ch.ok()) return ch.error();
  m.channel = ch.value();
  auto di = r.i32();
  if (!di.ok()) return di.error();
  m.degree_in = di.value();
  auto dout = r.i32();
  if (!dout.ok()) return dout.error();
  m.degree_out = dout.value();
  auto e = r.boolean();
  if (!e.ok()) return e.error();
  m.engage = e.value();
  return Message{m};
}

void encode(ByteWriter& w, const RoadmAddDrop& m) {
  put_id(w, m.roadm.value());
  put_id(w, m.port.value());
  w.i32(m.degree);
  w.i32(m.channel);
  w.boolean(m.engage);
}
Result<Message> decode_roadm_add_drop(ByteReader& r) {
  RoadmAddDrop m;
  auto id = get_id<RoadmId>(r);
  if (!id.ok()) return id.error();
  m.roadm = id.value();
  auto p = get_id<PortId>(r);
  if (!p.ok()) return p.error();
  m.port = p.value();
  auto d = r.i32();
  if (!d.ok()) return d.error();
  m.degree = d.value();
  auto ch = r.i32();
  if (!ch.ok()) return ch.error();
  m.channel = ch.value();
  auto e = r.boolean();
  if (!e.ok()) return e.error();
  m.engage = e.value();
  return Message{m};
}

void encode(ByteWriter& w, const OtTune& m) {
  put_id(w, m.ot.value());
  w.i32(m.channel);
}
Result<Message> decode_ot_tune(ByteReader& r) {
  OtTune m;
  auto id = get_id<TransponderId>(r);
  if (!id.ok()) return id.error();
  m.ot = id.value();
  auto ch = r.i32();
  if (!ch.ok()) return ch.error();
  m.channel = ch.value();
  return Message{m};
}

void encode(ByteWriter& w, const OtSetState& m) {
  put_id(w, m.ot.value());
  w.u8(static_cast<std::uint8_t>(m.action));
}
Result<Message> decode_ot_set_state(ByteReader& r) {
  OtSetState m;
  auto id = get_id<TransponderId>(r);
  if (!id.ok()) return id.error();
  m.ot = id.value();
  auto a = r.u8();
  if (!a.ok()) return a.error();
  if (a.value() > 2)
    return Error{ErrorCode::kInvalidArgument, "proto: bad OT action"};
  m.action = static_cast<OtSetState::Action>(a.value());
  return Message{m};
}

void encode(ByteWriter& w, const RegenEngage& m) {
  put_id(w, m.regen.value());
  w.i32(m.upstream_channel);
  w.i32(m.downstream_channel);
  w.boolean(m.engage);
}
Result<Message> decode_regen_engage(ByteReader& r) {
  RegenEngage m;
  auto id = get_id<RegenId>(r);
  if (!id.ok()) return id.error();
  m.regen = id.value();
  auto up = r.i32();
  if (!up.ok()) return up.error();
  m.upstream_channel = up.value();
  auto down = r.i32();
  if (!down.ok()) return down.error();
  m.downstream_channel = down.value();
  auto e = r.boolean();
  if (!e.ok()) return e.error();
  m.engage = e.value();
  return Message{m};
}

void encode(ByteWriter& w, const PowerBalance& m) {
  put_id(w, m.link.value());
  w.i32(m.channel);
}
Result<Message> decode_power_balance(ByteReader& r) {
  PowerBalance m;
  auto id = get_id<LinkId>(r);
  if (!id.ok()) return id.error();
  m.link = id.value();
  auto ch = r.i32();
  if (!ch.ok()) return ch.error();
  m.channel = ch.value();
  return Message{m};
}

void encode(ByteWriter& w, const OtnOp& m) {
  w.u8(static_cast<std::uint8_t>(m.op));
  put_id(w, m.customer.value());
  put_id(w, m.src.value());
  put_id(w, m.dst.value());
  w.i64(m.rate_bps);
  w.boolean(m.protect);
  put_id(w, m.circuit.value());
}
Result<Message> decode_otn_op(ByteReader& r) {
  OtnOp m;
  auto op = r.u8();
  if (!op.ok()) return op.error();
  if (op.value() > 3)
    return Error{ErrorCode::kInvalidArgument, "proto: bad OTN op"};
  m.op = static_cast<OtnOp::Op>(op.value());
  auto cust = get_id<CustomerId>(r);
  if (!cust.ok()) return cust.error();
  m.customer = cust.value();
  auto src = get_id<NodeId>(r);
  if (!src.ok()) return src.error();
  m.src = src.value();
  auto dst = get_id<NodeId>(r);
  if (!dst.ok()) return dst.error();
  m.dst = dst.value();
  auto rate = r.i64();
  if (!rate.ok()) return rate.error();
  m.rate_bps = rate.value();
  auto prot = r.boolean();
  if (!prot.ok()) return prot.error();
  m.protect = prot.value();
  auto ct = get_id<OduCircuitId>(r);
  if (!ct.ok()) return ct.error();
  m.circuit = ct.value();
  return Message{m};
}

void encode(ByteWriter& w, const NtePort& m) {
  put_id(w, m.nte.value());
  w.u32(m.port);
  w.boolean(m.engage);
}
Result<Message> decode_nte_port(ByteReader& r) {
  NtePort m;
  auto id = get_id<MuxponderId>(r);
  if (!id.ok()) return id.error();
  m.nte = id.value();
  auto p = r.u32();
  if (!p.ok()) return p.error();
  m.port = p.value();
  auto e = r.boolean();
  if (!e.ok()) return e.error();
  m.engage = e.value();
  return Message{m};
}

void encode(ByteWriter& w, const EmsBatch& m) {
  w.u32(static_cast<std::uint32_t>(m.items.size()));
  for (const Bytes& item : m.items) {
    w.u32(static_cast<std::uint32_t>(item.size()));
    w.raw(item);
  }
}
Result<Message> decode_ems_batch(ByteReader& r) {
  EmsBatch m;
  auto count = r.u32();
  if (!count.ok()) return count.error();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto len = r.u32();
    if (!len.ok()) return len.error();
    if (r.remaining() < len.value())
      return Error{ErrorCode::kInvalidArgument,
                   "proto: truncated batch item"};
    Bytes item;
    item.reserve(len.value());
    for (std::uint32_t b = 0; b < len.value(); ++b) {
      auto byte = r.u8();
      if (!byte.ok()) return byte.error();
      item.push_back(byte.value());
    }
    m.items.push_back(std::move(item));
  }
  return Message{m};
}

void encode(ByteWriter& w, const AlarmEvent& m) {
  const Alarm& a = m.alarm;
  put_id(w, a.id.value());
  w.u8(static_cast<std::uint8_t>(a.type));
  w.i64(a.raised_at.count());
  w.str(a.source);
  w.boolean(a.node.has_value());
  put_id(w, a.node ? a.node->value() : 0);
  w.boolean(a.link.has_value());
  put_id(w, a.link ? a.link->value() : 0);
  w.boolean(a.channel.has_value());
  w.i32(a.channel.value_or(0));
  w.boolean(a.connection.has_value());
  put_id(w, a.connection ? a.connection->value() : 0);
  w.str(a.detail);
}
Result<Message> decode_alarm_event(ByteReader& r) {
  AlarmEvent m;
  Alarm& a = m.alarm;
  auto id = get_id<AlarmId>(r);
  if (!id.ok()) return id.error();
  a.id = id.value();
  auto ty = r.u8();
  if (!ty.ok()) return ty.error();
  if (ty.value() > static_cast<std::uint8_t>(AlarmType::kEmsRestart))
    return Error{ErrorCode::kInvalidArgument, "proto: bad alarm type"};
  a.type = static_cast<AlarmType>(ty.value());
  auto at = r.i64();
  if (!at.ok()) return at.error();
  a.raised_at = SimTime{at.value()};
  auto src = r.str();
  if (!src.ok()) return src.error();
  a.source = src.value();
  auto read_opt = [&](auto& out, auto make) -> Status {
    auto has = r.boolean();
    if (!has.ok()) return has.error();
    auto v = r.u64();
    if (!v.ok()) return v.error();
    if (has.value()) out = make(v.value());
    return Status::success();
  };
  if (auto s = read_opt(a.node, [](std::uint64_t v) { return NodeId{v}; });
      !s.ok())
    return s.error();
  if (auto s = read_opt(a.link, [](std::uint64_t v) { return LinkId{v}; });
      !s.ok())
    return s.error();
  auto has_ch = r.boolean();
  if (!has_ch.ok()) return has_ch.error();
  auto ch = r.i32();
  if (!ch.ok()) return ch.error();
  if (has_ch.value()) a.channel = ch.value();
  if (auto s = read_opt(a.connection,
                        [](std::uint64_t v) { return ConnectionId{v}; });
      !s.ok())
    return s.error();
  auto det = r.str();
  if (!det.ok()) return det.error();
  a.detail = det.value();
  return Message{m};
}

}  // namespace

MessageType type_of(const Message& m) noexcept {
  struct Visitor {
    MessageType operator()(const Response&) { return MessageType::kResponse; }
    MessageType operator()(const FxcConnect&) {
      return MessageType::kFxcConnect;
    }
    MessageType operator()(const FxcDisconnect&) {
      return MessageType::kFxcDisconnect;
    }
    MessageType operator()(const RoadmExpress&) {
      return MessageType::kRoadmExpress;
    }
    MessageType operator()(const RoadmAddDrop&) {
      return MessageType::kRoadmAddDrop;
    }
    MessageType operator()(const OtTune&) { return MessageType::kOtTune; }
    MessageType operator()(const OtSetState&) {
      return MessageType::kOtSetState;
    }
    MessageType operator()(const RegenEngage&) {
      return MessageType::kRegenEngage;
    }
    MessageType operator()(const PowerBalance&) {
      return MessageType::kPowerBalance;
    }
    MessageType operator()(const OtnOp&) { return MessageType::kOtnOp; }
    MessageType operator()(const NtePort&) { return MessageType::kNtePort; }
    MessageType operator()(const AlarmEvent&) {
      return MessageType::kAlarmEvent;
    }
    MessageType operator()(const EmsBatch&) { return MessageType::kEmsBatch; }
  };
  return std::visit(Visitor{}, m);
}

const char* name_of(MessageType t) noexcept {
  switch (t) {
    case MessageType::kResponse:
      return "response";
    case MessageType::kFxcConnect:
      return "fxc-connect";
    case MessageType::kFxcDisconnect:
      return "fxc-disconnect";
    case MessageType::kRoadmExpress:
      return "roadm-express";
    case MessageType::kRoadmAddDrop:
      return "roadm-add-drop";
    case MessageType::kOtTune:
      return "ot-tune";
    case MessageType::kOtSetState:
      return "ot-set-state";
    case MessageType::kRegenEngage:
      return "regen-engage";
    case MessageType::kPowerBalance:
      return "power-balance";
    case MessageType::kOtnOp:
      return "otn-op";
    case MessageType::kNtePort:
      return "nte-port";
    case MessageType::kAlarmEvent:
      return "alarm-event";
    case MessageType::kEmsBatch:
      return "ems-batch";
  }
  return "?";
}

std::uint64_t element_key(const Message& m) {
  struct Visitor {
    std::uint64_t operator()(const Response&) { return 0; }
    std::uint64_t operator()(const AlarmEvent&) { return 0; }
    std::uint64_t operator()(const FxcConnect& v) {
      return (1ull << 56) | v.fxc.value();
    }
    std::uint64_t operator()(const FxcDisconnect& v) {
      return (1ull << 56) | v.fxc.value();
    }
    std::uint64_t operator()(const RoadmExpress& v) {
      return (2ull << 56) | v.roadm.value();
    }
    std::uint64_t operator()(const RoadmAddDrop& v) {
      return (2ull << 56) | v.roadm.value();
    }
    std::uint64_t operator()(const OtTune& v) {
      return (3ull << 56) | v.ot.value();
    }
    std::uint64_t operator()(const OtSetState& v) {
      return (3ull << 56) | v.ot.value();
    }
    std::uint64_t operator()(const RegenEngage& v) {
      return (4ull << 56) | v.regen.value();
    }
    std::uint64_t operator()(const PowerBalance& v) {
      // The line system of one link is the shared element being retrimmed.
      return (5ull << 56) | v.link.value();
    }
    std::uint64_t operator()(const OtnOp&) { return 6ull << 56; }
    std::uint64_t operator()(const NtePort& v) {
      return (7ull << 56) | v.nte.value();
    }
    std::uint64_t operator()(const EmsBatch& v) {
      // A batch dialogues with the line system shared by its items; key it
      // off the first item so batches over disjoint elements interleave.
      if (v.items.empty()) return 8ull << 56;
      auto item = decode_frame(v.items.front());
      if (!item.ok()) return 8ull << 56;
      return (8ull << 56) |
             (element_key(item.value().message) & ((1ull << 56) - 1));
    }
  };
  return std::visit(Visitor{}, m);
}

Bytes encode_frame(std::uint64_t request_id, const Message& m) {
  ByteWriter payload;
  std::visit([&](const auto& msg) { encode(payload, msg); }, m);

  ByteWriter frame;
  frame.u32(kMagic);
  frame.u16(kVersion);
  frame.u16(static_cast<std::uint16_t>(type_of(m)));
  frame.u64(request_id);
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.raw(payload.bytes());
  return frame.take();
}

Result<Frame> decode_frame(const Bytes& bytes) {
  ByteReader r(bytes);
  auto magic = r.u32();
  if (!magic.ok() || magic.value() != kMagic)
    return Error{ErrorCode::kInvalidArgument, "proto: bad magic"};
  auto version = r.u16();
  if (!version.ok() || version.value() != kVersion)
    return Error{ErrorCode::kInvalidArgument, "proto: bad version"};
  auto type = r.u16();
  if (!type.ok()) return type.error();
  auto request_id = r.u64();
  if (!request_id.ok()) return request_id.error();
  auto len = r.u32();
  if (!len.ok()) return len.error();
  if (r.remaining() != len.value())
    return Error{ErrorCode::kInvalidArgument, "proto: length mismatch"};

  Result<Message> msg = [&]() -> Result<Message> {
    switch (static_cast<MessageType>(type.value())) {
      case MessageType::kResponse:
        return decode_response(r);
      case MessageType::kFxcConnect:
        return decode_fxc_connect(r);
      case MessageType::kFxcDisconnect:
        return decode_fxc_disconnect(r);
      case MessageType::kRoadmExpress:
        return decode_roadm_express(r);
      case MessageType::kRoadmAddDrop:
        return decode_roadm_add_drop(r);
      case MessageType::kOtTune:
        return decode_ot_tune(r);
      case MessageType::kOtSetState:
        return decode_ot_set_state(r);
      case MessageType::kRegenEngage:
        return decode_regen_engage(r);
      case MessageType::kPowerBalance:
        return decode_power_balance(r);
      case MessageType::kOtnOp:
        return decode_otn_op(r);
      case MessageType::kNtePort:
        return decode_nte_port(r);
      case MessageType::kAlarmEvent:
        return decode_alarm_event(r);
      case MessageType::kEmsBatch:
        return decode_ems_batch(r);
    }
    return Error{ErrorCode::kInvalidArgument, "proto: unknown message type"};
  }();
  if (!msg.ok()) return msg.error();
  if (!r.exhausted())
    return Error{ErrorCode::kInvalidArgument, "proto: trailing bytes"};
  return Frame{request_id.value(), std::move(msg).value()};
}

}  // namespace griphon::proto
