// Controller <-> EMS message set.
//
// One request message per element-management operation the GRIPhoN
// controller performs during connection setup/teardown/restoration, plus a
// generic Response and the unsolicited AlarmEvent. Messages travel inside
// a fixed frame header (magic, version, type, request id, length) so that
// a stream can be parsed without knowing the payload type in advance.
#pragma once

#include <optional>
#include <string>
#include <variant>

#include "common/alarm.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"
#include "proto/wire.hpp"

namespace griphon::proto {

enum class MessageType : std::uint16_t {
  kResponse = 1,
  kFxcConnect = 10,
  kFxcDisconnect = 11,
  kRoadmExpress = 20,
  kRoadmAddDrop = 21,
  kOtTune = 30,
  kOtSetState = 31,
  kRegenEngage = 32,
  kPowerBalance = 40,
  kOtnOp = 50,
  kNtePort = 60,
  kAlarmEvent = 70,
  kEmsBatch = 80,
};

// --- requests ------------------------------------------------------------

struct FxcConnect {
  FxcId fxc;
  PortId port_a;
  PortId port_b;
};

struct FxcDisconnect {
  FxcId fxc;
  PortId port;
};

struct RoadmExpress {
  RoadmId roadm;
  std::int32_t channel = 0;
  std::int32_t degree_in = 0;
  std::int32_t degree_out = 0;
  bool engage = true;  ///< false = release
};

struct RoadmAddDrop {
  RoadmId roadm;
  PortId port;
  std::int32_t degree = 0;
  std::int32_t channel = 0;
  bool engage = true;
};

struct OtTune {
  TransponderId ot;
  std::int32_t channel = 0;
};

struct OtSetState {
  enum class Action : std::uint8_t { kActivate = 0, kDeactivate = 1,
                                     kReset = 2 };
  TransponderId ot;
  Action action = Action::kActivate;
};

struct RegenEngage {
  RegenId regen;
  std::int32_t upstream_channel = 0;
  std::int32_t downstream_channel = 0;
  bool engage = true;
};

/// Optical task on one line segment: amplifier power balancing and link
/// equalization after a channel is added/removed. This is the per-hop cost
/// that makes Table 2's times grow with path length.
struct PowerBalance {
  LinkId link;
  std::int32_t channel = 0;
};

/// Operation forwarded to the OTN switch EMS.
struct OtnOp {
  enum class Op : std::uint8_t {
    kCreate = 0,
    kRelease = 1,
    kActivateBackup = 2,
    kRevert = 3,
  };
  Op op = Op::kCreate;
  // kCreate fields:
  CustomerId customer;
  NodeId src;
  NodeId dst;
  std::int64_t rate_bps = 0;
  bool protect = false;
  // other ops:
  OduCircuitId circuit;
};

/// NTE (muxponder) client-port configuration at the customer premises.
struct NtePort {
  MuxponderId nte;
  std::uint32_t port = 0;
  bool engage = true;
};

/// Several same-EMS commands coalesced into one management dialogue. Items
/// are full encoded frames (request id 0 — correlation rides the batch's
/// own id) so the payload codec needs no recursive variant. The EMS pays
/// one management overhead for the whole batch and runs the items'
/// optical tasks concurrently; the aggregated Response carries the first
/// item error (success otherwise). Only commands without device state —
/// today power balancing — are safe to coalesce, since a batch retried
/// after a timeout replays or re-executes as one unit.
struct EmsBatch {
  std::vector<Bytes> items;
};

// --- response & events ----------------------------------------------------

struct Response {
  std::uint16_t code = 0;  ///< ErrorCode as integer; 0 == success
  std::string message;
  std::uint64_t aux = 0;  ///< operation-specific (e.g. created circuit id)

  [[nodiscard]] bool ok() const noexcept { return code == 0; }
};

struct AlarmEvent {
  Alarm alarm;
};

using Message =
    std::variant<Response, FxcConnect, FxcDisconnect, RoadmExpress,
                 RoadmAddDrop, OtTune, OtSetState, RegenEngage, PowerBalance,
                 OtnOp, NtePort, AlarmEvent, EmsBatch>;

[[nodiscard]] MessageType type_of(const Message& m) noexcept;
[[nodiscard]] const char* name_of(MessageType t) noexcept;

/// Which managed element a command dialogues with: the EMS serializes
/// dialogues per element, and the controller's DAG executor uses the same
/// key to order same-element commands by construction. High byte is a
/// device-type tag so ids of different device families never collide.
/// Responses/alarms (and batches, which address the shared line system of
/// their first item) key as documented in the implementation.
[[nodiscard]] std::uint64_t element_key(const Message& m);

/// A parsed frame: correlation id + payload.
struct Frame {
  std::uint64_t request_id = 0;
  Message message;
};

/// Serialize a frame (header + payload).
[[nodiscard]] Bytes encode_frame(std::uint64_t request_id, const Message& m);
/// Parse a frame; fails on bad magic/version/type or truncated payload.
[[nodiscard]] Result<Frame> decode_frame(const Bytes& bytes);

}  // namespace griphon::proto
