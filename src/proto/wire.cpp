#include "proto/wire.hpp"

namespace griphon::proto {

namespace {
Error truncated() {
  return Error{ErrorCode::kInvalidArgument, "wire: truncated buffer"};
}
}  // namespace

Result<std::uint8_t> ByteReader::u8() {
  if (!have(1)) return truncated();
  return buf_[pos_++];
}

Result<std::uint16_t> ByteReader::u16() {
  if (!have(2)) return truncated();
  const auto hi = buf_[pos_];
  const auto lo = buf_[pos_ + 1];
  pos_ += 2;
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

Result<std::uint32_t> ByteReader::u32() {
  if (!have(4)) return truncated();
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | buf_[pos_++];
  return v;
}

Result<std::uint64_t> ByteReader::u64() {
  if (!have(8)) return truncated();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | buf_[pos_++];
  return v;
}

Result<std::int32_t> ByteReader::i32() {
  auto v = u32();
  if (!v.ok()) return v.error();
  return static_cast<std::int32_t>(v.value());
}

Result<std::int64_t> ByteReader::i64() {
  auto v = u64();
  if (!v.ok()) return v.error();
  return static_cast<std::int64_t>(v.value());
}

Result<double> ByteReader::f64() {
  auto v = u64();
  if (!v.ok()) return v.error();
  double d;
  const std::uint64_t bits = v.value();
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

Result<bool> ByteReader::boolean() {
  auto v = u8();
  if (!v.ok()) return v.error();
  if (v.value() > 1)
    return Error{ErrorCode::kInvalidArgument, "wire: bad boolean"};
  return v.value() == 1;
}

Result<std::string> ByteReader::str() {
  auto len = u16();
  if (!len.ok()) return len.error();
  if (!have(len.value())) return truncated();
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                len.value());
  pos_ += len.value();
  return s;
}

}  // namespace griphon::proto
