// Byte-level wire encoding.
//
// The GRIPhoN controller talks to element managers over a binary protocol.
// All integers are big-endian (network order); strings are u16
// length-prefixed UTF-8. ByteReader is bounds-checked and never reads past
// the buffer — malformed frames produce errors, not UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace griphon::proto {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u16(static_cast<std::uint16_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void raw(const Bytes& b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : buf_(buf) {}

  [[nodiscard]] Result<std::uint8_t> u8();
  [[nodiscard]] Result<std::uint16_t> u16();
  [[nodiscard]] Result<std::uint32_t> u32();
  [[nodiscard]] Result<std::uint64_t> u64();
  [[nodiscard]] Result<std::int32_t> i32();
  [[nodiscard]] Result<std::int64_t> i64();
  [[nodiscard]] Result<double> f64();
  [[nodiscard]] Result<bool> boolean();
  [[nodiscard]] Result<std::string> str();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return buf_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  [[nodiscard]] bool have(std::size_t n) const noexcept {
    return remaining() >= n;
  }

  const Bytes& buf_;
  std::size_t pos_ = 0;
};

}  // namespace griphon::proto
