#include "reopt/executor.hpp"

#include <unordered_map>
#include <utility>

#include "core/network_model.hpp"
#include "telemetry/telemetry.hpp"

namespace griphon::reopt {

namespace {

/// Every EMS domain whose circuit breaker can veto a campaign.
constexpr const char* kEmsDomains[] = {"roadm-ems", "fxc-ems", "otn-ems",
                                       "nte-ems"};

/// Highest channel present, or kNoChannel. Cycle-break bridge channels
/// live at the top of the spectrum, away from the compaction target zone.
dwdm::ChannelIndex highest(const dwdm::ChannelSet& set) {
  dwdm::ChannelIndex best = dwdm::kNoChannel;
  set.for_each([&best](dwdm::ChannelIndex ch) { best = ch; });
  return best;
}

}  // namespace

MigrationExecutor::MigrationExecutor(sim::Engine* engine,
                                     core::GriphonController* controller,
                                     Params params)
    : engine_(engine), controller_(controller), params_(params) {}

void MigrationExecutor::run(MigrationPlan plan, DoneCallback done) {
  if (campaign_ != nullptr) {
    CampaignReport busy;
    busy.aborted = true;
    busy.abort_reason = "a migration campaign is already running";
    engine_->schedule(SimTime{},
                      [done = std::move(done), busy]() { done(busy); });
    return;
  }
  campaign_ = std::make_unique<Campaign>();
  Campaign& c = *campaign_;
  c.done = std::move(done);
  c.start_topology_version = controller_->model().topology_version();
  if (telemetry::Telemetry* t = controller_->model().telemetry())
    c.span = t->span_start("reopt_campaign", "reopt");

  c.nodes.reserve(plan.moves.size());
  for (Move& move : plan.moves) {
    Node node;
    node.move = std::move(move);
    const core::Connection* conn = controller_->find_connection(node.move.id);
    if (conn != nullptr && conn->state == core::ConnectionState::kActive) {
      node.current = conn->plan;
    } else {
      node.phase = Phase::kDone;
      node.freed = true;  // no cells captured, nothing to release
      node.outcome.result = MoveResult::kSkipped;
      node.outcome.detail = "connection not active at campaign start";
    }
    node.outcome.id = node.move.id;
    c.nodes.push_back(std::move(node));
  }
  c.report.moves_planned = c.nodes.size();

  // Dependency edges off current occupancy: node A waits on node B when
  // one of A's target (link, channel) cells is lit by B's current plan.
  std::unordered_map<std::uint64_t, std::unordered_map<int, std::size_t>>
      cell_owner;  // link -> channel -> node index
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    const Node& n = c.nodes[i];
    if (n.phase == Phase::kDone) continue;
    for (const core::SegmentPlan& seg : n.current.segments)
      for (std::size_t k = seg.first_link; k <= seg.last_link; ++k)
        cell_owner[n.current.path.links[k].value()][seg.channel] = i;
  }
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    Node& n = c.nodes[i];
    if (n.phase == Phase::kDone) continue;
    std::set<std::size_t> deps;
    for (const core::SegmentPlan& seg : n.move.target.segments) {
      for (std::size_t k = seg.first_link; k <= seg.last_link; ++k) {
        const auto by_link =
            cell_owner.find(n.move.target.path.links[k].value());
        if (by_link == cell_owner.end()) continue;
        const auto owner = by_link->second.find(seg.channel);
        if (owner != by_link->second.end() && owner->second != i)
          deps.insert(owner->second);
      }
    }
    n.deps_remaining = deps.size();
    for (const std::size_t d : deps) c.nodes[d].dependents.push_back(i);
  }
  for (const Node& n : c.nodes)
    if (n.phase != Phase::kDone) ++c.open;
  for (const Node& n : c.nodes) {
    if (n.phase == Phase::kDone) ++c.report.moves_skipped;
  }
  schedule_pump(SimTime{});
}

void MigrationExecutor::schedule_pump(SimTime delay) {
  if (campaign_ == nullptr || campaign_->pump_scheduled) return;
  campaign_->pump_scheduled = true;
  engine_->schedule(delay, [this]() { pump(); });
}

void MigrationExecutor::pump() {
  if (campaign_ == nullptr) return;
  Campaign& c = *campaign_;
  c.pump_scheduled = false;
  if (c.open == 0) {
    if (c.in_flight == 0) finish();
    return;
  }
  if (!c.report.aborted) {
    std::string why;
    if (should_abort(&why)) {
      c.report.aborted = true;
      c.report.abort_reason = std::move(why);
      if (telemetry::Telemetry* t = controller_->model().telemetry())
        t->event(telemetry::Severity::kWarn, "reopt", "reopt",
                 "campaign aborted: " + c.report.abort_reason);
    }
  }
  if (c.report.aborted) {
    // Drain: nothing new launches, pending moves resolve as skipped, and
    // the report fires once the in-flight rolls land.
    for (std::size_t i = 0; i < c.nodes.size(); ++i) {
      if (c.nodes[i].phase == Phase::kWaiting ||
          c.nodes[i].phase == Phase::kWaitingFinal) {
        mark_freed(i);
        mark_done(i, MoveResult::kSkipped,
                  "campaign aborted: " + c.report.abort_reason);
      }
    }
    if (c.in_flight == 0) finish();
    return;
  }
  if (c.in_flight >= params_.max_concurrent_rolls) return;
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    Node& n = c.nodes[i];
    if ((n.phase != Phase::kWaiting && n.phase != Phase::kWaitingFinal) ||
        n.deps_remaining != 0)
      continue;
    const bool launched = launch(i, n.move.target, /*scratch_hop=*/false);
    // One launch per pump keeps launches paced even when several moves
    // are ready; a refused launch (skip) costs no pacing delay.
    schedule_pump(launched ? params_.launch_spacing : SimTime{});
    return;
  }
  // Nothing ready. In-flight rolls will re-pump; a standstill with moves
  // still pending is a dependency cycle.
  if (c.in_flight == 0 && try_break_cycle()) schedule_pump(SimTime{});
}

bool MigrationExecutor::should_abort(std::string* reason) const {
  if (controller_->model().topology_version() !=
      campaign_->start_topology_version) {
    *reason = "topology changed under the campaign (fiber cut or repair)";
    return true;
  }
  for (const char* domain : kEmsDomains) {
    if (controller_->ems_health().state(domain) ==
        core::EmsHealthTracker::BreakerState::kOpen) {
      *reason = std::string("EMS circuit breaker open: ") + domain;
      return true;
    }
  }
  return false;
}

bool MigrationExecutor::resolve_devices(core::WavelengthPlan* plan,
                                        DataRate rate,
                                        const core::Inventory::Snapshot& snap,
                                        std::string* why) const {
  // The bridge lights both paths at once, so the roll needs a *second*
  // set of endpoint optics; the in-service devices are busy in `snap` and
  // are therefore never picked here.
  const auto src_ot = snap.find_free_ot(plan->path.nodes.front(), rate);
  if (!src_ot) {
    *why = "no spare transponder at source";
    return false;
  }
  const auto dst_ot = snap.find_free_ot(plan->path.nodes.back(), rate);
  if (!dst_ot) {
    *why = "no spare transponder at destination";
    return false;
  }
  plan->src_ot = *src_ot;
  plan->dst_ot = *dst_ot;
  plan->regens.clear();
  std::set<RegenId> used;
  for (std::size_t s = 0; s + 1 < plan->segments.size(); ++s) {
    const NodeId boundary = plan->path.nodes[plan->segments[s].last_link + 1];
    const auto regen = snap.find_free_regen(boundary, rate, used);
    if (!regen) {
      *why = "no spare regenerator at segment boundary";
      return false;
    }
    used.insert(*regen);
    plan->regens.push_back(*regen);
  }
  return true;
}

bool MigrationExecutor::launch(std::size_t i,
                               const core::WavelengthPlan& target,
                               bool scratch_hop) {
  Campaign& c = *campaign_;
  Node& n = c.nodes[i];
  const core::Connection* conn = controller_->find_connection(n.move.id);
  if (conn == nullptr || conn->state != core::ConnectionState::kActive) {
    mark_freed(i);
    mark_done(i, MoveResult::kSkipped, "connection no longer active");
    return false;
  }
  // Fresh-snapshot verification: the plan was computed against an older
  // view; if anything grabbed the target cells since, skip — the
  // connection stays where it is, which is always safe.
  const auto snap = controller_->inventory().snapshot();
  for (const core::SegmentPlan& seg : target.segments) {
    for (std::size_t k = seg.first_link; k <= seg.last_link; ++k) {
      if (!snap->available_on_link(target.path.links[k])
               .contains(seg.channel)) {
        mark_freed(i);
        mark_done(i, MoveResult::kSkipped, "target cells no longer free");
        return false;
      }
    }
  }
  core::WavelengthPlan plan = target;
  std::string why;
  if (!resolve_devices(&plan, conn->rate, *snap, &why)) {
    mark_freed(i);
    mark_done(i, MoveResult::kSkipped, why);
    return false;
  }
  n.phase = scratch_hop ? Phase::kScratchInFlight : Phase::kInFlight;
  if (n.outcome.launched_at == SimTime{}) n.outcome.launched_at = engine_->now();
  ++c.in_flight;
  controller_->roll_to(n.move.id, plan,
                       [this, i, scratch_hop, plan](Status status) {
                         on_roll_done(i, scratch_hop, status);
                         if (status.ok() && scratch_hop &&
                             campaign_ != nullptr)
                           campaign_->nodes[i].current = plan;
                       });
  return true;
}

void MigrationExecutor::on_roll_done(std::size_t i, bool scratch_hop,
                                     const Status& status) {
  if (campaign_ == nullptr) return;
  Campaign& c = *campaign_;
  --c.in_flight;
  Node& n = c.nodes[i];
  if (status.ok()) {
    ++c.report.rolls_ok;
    mark_freed(i);  // the old cells are genuinely free now
    if (scratch_hop) {
      n.phase = Phase::kWaitingFinal;
      n.outcome.via_scratch = true;
    } else {
      mark_done(i, MoveResult::kRolled, {});
    }
  } else {
    ++c.report.rolls_failed;
    // bridge-and-roll rolled the connection back onto its old path, so
    // its cells are NOT free — but dependents re-verify against a fresh
    // snapshot at launch, so releasing them here cannot mis-roll anyone;
    // it only lets the campaign drain instead of deadlocking.
    mark_freed(i);
    mark_done(i, MoveResult::kFailed, status.error().message());
  }
  schedule_pump(SimTime{});
}

void MigrationExecutor::mark_freed(std::size_t i) {
  Campaign& c = *campaign_;
  Node& n = c.nodes[i];
  if (n.freed) return;
  n.freed = true;
  for (const std::size_t d : n.dependents) {
    if (c.nodes[d].deps_remaining > 0) --c.nodes[d].deps_remaining;
  }
}

void MigrationExecutor::mark_done(std::size_t i, MoveResult result,
                                  std::string detail) {
  Campaign& c = *campaign_;
  Node& n = c.nodes[i];
  if (n.phase == Phase::kDone) return;
  n.phase = Phase::kDone;
  n.outcome.result = result;
  n.outcome.detail = std::move(detail);
  n.outcome.finished_at = engine_->now();
  if (c.open > 0) --c.open;
  switch (result) {
    case MoveResult::kRolled:
      ++c.report.moves_rolled;
      break;
    case MoveResult::kSkipped:
      ++c.report.moves_skipped;
      break;
    case MoveResult::kFailed:
      ++c.report.moves_failed;
      break;
  }
}

bool MigrationExecutor::try_break_cycle() {
  Campaign& c = *campaign_;
  std::size_t pick = c.nodes.size();
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    if (c.nodes[i].phase == Phase::kWaiting) {
      pick = i;
      break;
    }
  }
  if (pick == c.nodes.size()) return false;
  Node& n = c.nodes[pick];
  // Bridge channel per segment: free right now, not the target cell of
  // any unfinished move (including this one's own), as high in the
  // spectrum as possible so the compaction zone stays clear.
  const std::size_t channels = controller_->model().grid().count();
  const auto snap = controller_->inventory().snapshot();
  std::unordered_map<std::uint64_t, dwdm::ChannelSet> reserved_targets;
  for (const Node& other : c.nodes) {
    if (other.phase == Phase::kDone) continue;
    for (const core::SegmentPlan& seg : other.move.target.segments)
      for (std::size_t k = seg.first_link; k <= seg.last_link; ++k)
        reserved_targets[other.move.target.path.links[k].value()].add(
            seg.channel);
  }
  core::WavelengthPlan scratch = n.current;
  bool feasible = true;
  for (core::SegmentPlan& seg : scratch.segments) {
    dwdm::ChannelSet free = dwdm::ChannelSet::all(channels);
    for (std::size_t k = seg.first_link; k <= seg.last_link; ++k) {
      dwdm::ChannelSet avail =
          snap->available_on_link(scratch.path.links[k]);
      const auto it = reserved_targets.find(scratch.path.links[k].value());
      if (it != reserved_targets.end()) avail.subtract(it->second);
      free.intersect(avail);
    }
    const dwdm::ChannelIndex bridge = highest(free);
    if (bridge == dwdm::kNoChannel) {
      feasible = false;
      break;
    }
    seg.channel = bridge;
  }
  if (!feasible) {
    mark_freed(pick);
    mark_done(pick, MoveResult::kSkipped,
              "no bridge channel available to break dependency cycle");
    return true;
  }
  if (launch(pick, scratch, /*scratch_hop=*/true)) {
    ++c.report.cycle_breaks;
    if (telemetry::Telemetry* t = controller_->model().telemetry())
      t->event(telemetry::Severity::kInfo, "reopt", "reopt",
               "breaking dependency cycle via bridge channel, connection " +
                   std::to_string(c.nodes[pick].move.id.value()));
  }
  return true;
}

void MigrationExecutor::finish() {
  std::unique_ptr<Campaign> c = std::move(campaign_);
  for (const Node& n : c->nodes) c->report.outcomes.push_back(n.outcome);
  if (telemetry::Telemetry* t = controller_->model().telemetry())
    t->span_end(c->span,
                !c->report.aborted && c->report.moves_failed == 0,
                c->report.abort_reason);
  if (c->done) c->done(c->report);
}

}  // namespace griphon::reopt
