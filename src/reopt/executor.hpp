// Hitless execution of a migration delta.
//
// The planner's delta is simultaneous ("final state: connection 3 on
// channel 0, connection 7 on channel 1...") but rolls happen one at a
// time on live hardware, and a move's target cells may currently be
// occupied by another mover. The executor orders the delta by that
// dependency — "my target channel is freed by your move" — and walks it
// topologically, so every roll finds its target spectrum free when it
// launches. Dependency cycles (A wants B's cells, B wants A's) are broken
// by first rolling one member to a temporary *bridge channel* high in the
// spectrum, which frees its cells for the others; it rolls again onto its
// real target once its own dependencies drain. Both hops are ordinary
// bridge-and-rolls, so the cycle break is as hitless as any other move.
//
// Safety over progress, in three layers:
//  - every launch re-verifies against a fresh Inventory snapshot (target
//    cells still free, spare endpoint optics available) and skips the
//    move otherwise — a skipped move leaves its connection untouched;
//  - the campaign aborts cleanly when the plan has gone stale under it: a
//    topology change (fiber cut/repair) or an EMS circuit breaker opening
//    stops new launches, in-flight rolls finish, and the report says why;
//  - launches are paced on the sim clock (`launch_spacing`) and bounded
//    (`max_concurrent_rolls`) so a campaign never floods the EMS queues
//    that production traffic is using.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "core/controller.hpp"
#include "reopt/planner.hpp"
#include "sim/engine.hpp"

namespace griphon::reopt {

class MigrationExecutor {
 public:
  struct Params {
    std::size_t max_concurrent_rolls = 2;
    /// Minimum sim-time spacing between roll launches.
    SimTime launch_spacing = seconds(1);
  };

  enum class MoveResult {
    kRolled,   ///< reached its target channels
    kSkipped,  ///< left untouched (stale verification, no spare optics...)
    kFailed,   ///< a roll failed; bridge-and-roll rolled the service back
  };

  struct MoveOutcome {
    ConnectionId id{};
    MoveResult result = MoveResult::kSkipped;
    bool via_scratch = false;  ///< moved through a cycle-break bridge channel
    SimTime launched_at{};
    SimTime finished_at{};
    std::string detail;
  };

  struct CampaignReport {
    std::size_t moves_planned = 0;
    std::size_t moves_rolled = 0;
    std::size_t moves_skipped = 0;
    std::size_t moves_failed = 0;
    std::size_t rolls_ok = 0;  ///< completed rolls, scratch hops included
    std::size_t rolls_failed = 0;
    std::size_t cycle_breaks = 0;
    bool aborted = false;
    std::string abort_reason;
    std::vector<MoveOutcome> outcomes;  ///< plan order
  };

  using DoneCallback = std::function<void(const CampaignReport&)>;

  MigrationExecutor(sim::Engine* engine, core::GriphonController* controller,
                    Params params);

  MigrationExecutor(const MigrationExecutor&) = delete;
  MigrationExecutor& operator=(const MigrationExecutor&) = delete;

  /// Execute one campaign; `done` fires (on the sim clock) when every move
  /// finished, was skipped, or the campaign aborted and drained. One
  /// campaign at a time — a second run() while one is live reports an
  /// immediately-aborted empty campaign.
  void run(MigrationPlan plan, DoneCallback done);

  [[nodiscard]] bool running() const noexcept { return campaign_ != nullptr; }

 private:
  enum class Phase {
    kWaiting,          ///< dependencies not drained yet
    kScratchInFlight,  ///< rolling onto the cycle-break bridge channel
    kWaitingFinal,     ///< on the bridge channel, waiting for dependencies
    kInFlight,         ///< rolling onto the target
    kDone,
  };

  struct Node {
    Move move;
    core::WavelengthPlan current;  ///< plan at campaign start / after scratch
    Phase phase = Phase::kWaiting;
    std::size_t deps_remaining = 0;
    std::vector<std::size_t> dependents;
    bool freed = false;  ///< dependents already notified
    MoveOutcome outcome;
  };

  struct Campaign {
    CampaignReport report;
    DoneCallback done;
    std::vector<Node> nodes;
    std::uint64_t span = 0;  ///< campaign tracer span (0 = telemetry off)
    std::uint64_t start_topology_version = 0;
    std::size_t in_flight = 0;
    std::size_t open = 0;  ///< nodes not yet kDone
    bool pump_scheduled = false;
  };

  void pump();
  void schedule_pump(SimTime delay);
  /// Launch node `i` toward `target`; returns false when the launch was
  /// refused (abort tripped or verification skipped the node).
  bool launch(std::size_t i, const core::WavelengthPlan& target,
              bool scratch_hop);
  void on_roll_done(std::size_t i, bool scratch_hop, const Status& status);
  void mark_freed(std::size_t i);
  void mark_done(std::size_t i, MoveResult result, std::string detail);
  bool try_break_cycle();
  /// Abort trip-wire: topology drifted from campaign start, or any EMS
  /// domain breaker is open.
  [[nodiscard]] bool should_abort(std::string* reason) const;
  /// Fill the plan's device fields with spare optics from `snap`; false
  /// when an endpoint OT or boundary regen is not available.
  bool resolve_devices(core::WavelengthPlan* plan, DataRate rate,
                       const core::Inventory::Snapshot& snap,
                       std::string* why) const;
  void finish();

  sim::Engine* engine_;
  core::GriphonController* controller_;
  Params params_;
  std::unique_ptr<Campaign> campaign_;
};

}  // namespace griphon::reopt
