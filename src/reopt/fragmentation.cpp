#include "reopt/fragmentation.hpp"

#include <algorithm>

#include "core/network_model.hpp"

namespace griphon::reopt {

namespace {

/// Longest run of consecutive free channels in [0, count).
std::size_t largest_block(const dwdm::ChannelSet& avail, std::size_t count) {
  std::size_t best = 0;
  std::size_t run = 0;
  for (std::size_t ch = 0; ch < count; ++ch) {
    if (avail.contains(static_cast<dwdm::ChannelIndex>(ch))) {
      ++run;
      best = std::max(best, run);
    } else {
      run = 0;
    }
  }
  return best;
}

}  // namespace

FragmentationReport FragmentationAnalyzer::analyze_links(
    const core::Inventory::Snapshot& snap) const {
  FragmentationReport report;
  const std::size_t channels = model_->grid().count();
  double sum = 0;
  for (const topology::Link& link : model_->graph().links()) {
    if (model_->link_failed(link.id)) continue;  // no spectrum to score
    const dwdm::ChannelSet avail = snap.available_on_link(link.id);
    LinkFragmentation lf;
    lf.link = link.id;
    lf.free = avail.size();
    lf.used = channels >= lf.free ? channels - lf.free : 0;
    lf.largest_free_block = largest_block(avail, channels);
    // free == 0 means nothing left to fragment — score 0, never 0/0.
    lf.score = lf.free == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(lf.largest_free_block) /
                               static_cast<double>(lf.free);
    sum += lf.score;
    report.max_score = std::max(report.max_score, lf.score);
    if (lf.score > 0) ++report.fragmented_links;
    report.total_free += lf.free;
    report.total_used += lf.used;
    report.links.push_back(lf);
  }
  report.mean_score =
      report.links.empty() ? 0.0 : sum / static_cast<double>(report.links.size());
  return report;
}

FragmentationReport FragmentationAnalyzer::analyze(
    const core::Inventory::Snapshot& snap, const core::RwaEngine& rwa,
    const std::vector<std::pair<NodeId, NodeId>>& pairs) const {
  FragmentationReport report = analyze_links(snap);
  const std::size_t channels = model_->grid().count();
  for (const auto& [src, dst] : pairs) {
    if (src == dst) continue;
    ++report.pairs_scored;
    const std::vector<topology::Path>& routes = rwa.candidate_routes(src, dst);
    std::size_t feasible = 0;
    std::size_t blocked = 0;
    for (const topology::Path& route : routes) {
      bool every_hop_has_free = true;
      dwdm::ChannelSet intersection = dwdm::ChannelSet::all(channels);
      for (const LinkId l : route.links) {
        const dwdm::ChannelSet avail = snap.available_on_link(l);
        if (avail.empty()) every_hop_has_free = false;
        intersection.intersect(avail);
      }
      if (!intersection.empty()) {
        ++feasible;
      } else if (every_hop_has_free) {
        // Capacity on every hop, yet no channel clears the whole route:
        // the continuity constraint — not load — is what blocks it.
        ++blocked;
      }
    }
    report.blocked_candidates += blocked;
    if (feasible == 0 && blocked > 0) ++report.stranded_pairs;
  }
  return report;
}

}  // namespace griphon::reopt
