// Wavelength-plane fragmentation analysis.
//
// First-fit keeps the spectrum packed at setup time, but churn (releases,
// restorations, BoD windows) punches holes: a link can have plenty of free
// channels yet no *contiguous* low block, and a route can have capacity on
// every hop yet no single channel free end-to-end (wavelength continuity).
// The analyzer scores both effects from one Inventory::Snapshot:
//
//  - per-link external fragmentation: 1 - largest_free_block / free
//    (0 when the link is full or its free space is one contiguous block);
//  - per-pair stranding: a candidate route is continuity-blocked when the
//    intersection of its links' availability is empty although every link
//    individually has spare channels; a pair is stranded when all of its
//    candidates are blocked and none is feasible.
//
// The report is pure data — the ReoptService turns it into griphon_reopt_*
// gauges and the campaign trip decision. All scores are defined (no NaN)
// on degenerate inputs: empty topologies, single links, zero connections.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/inventory.hpp"
#include "core/rwa.hpp"

namespace griphon::reopt {

/// Spectral state of one live (non-failed) link.
struct LinkFragmentation {
  LinkId link{};
  std::size_t free = 0;                ///< channels available
  std::size_t used = 0;                ///< grid size minus free
  std::size_t largest_free_block = 0;  ///< longest contiguous free run
  /// External fragmentation: 1 - largest_free_block / free. Zero when the
  /// link is completely full (nothing to defragment) or completely
  /// coalesced (one free block).
  double score = 0;
};

struct FragmentationReport {
  std::vector<LinkFragmentation> links;  ///< live links, ascending id
  double mean_score = 0;                 ///< over live links; 0 when none
  double max_score = 0;
  std::size_t fragmented_links = 0;  ///< links with score > 0
  std::size_t total_free = 0;
  std::size_t total_used = 0;

  std::size_t pairs_scored = 0;
  /// Candidate routes with per-hop capacity but empty end-to-end
  /// intersection (wavelength continuity is what blocks them).
  std::size_t blocked_candidates = 0;
  /// Pairs where no candidate is feasible and at least one is
  /// continuity-blocked — demand that defragmentation could admit.
  std::size_t stranded_pairs = 0;
};

class FragmentationAnalyzer {
 public:
  explicit FragmentationAnalyzer(const core::NetworkModel* model)
      : model_(model) {}

  /// Score the wavelength plane as seen by `snap`. `rwa` supplies the
  /// candidate routes used for pair stranding (sharing its route cache
  /// with provisioning); `pairs` is the demand set to probe — typically
  /// the data-center site pairs. Owner thread only (candidate_routes).
  [[nodiscard]] FragmentationReport analyze(
      const core::Inventory::Snapshot& snap, const core::RwaEngine& rwa,
      const std::vector<std::pair<NodeId, NodeId>>& pairs) const;

  /// Link-plane half of the report only (no route probing) — safe from
  /// any thread holding a published snapshot.
  [[nodiscard]] FragmentationReport analyze_links(
      const core::Inventory::Snapshot& snap) const;

 private:
  const core::NetworkModel* model_;
};

}  // namespace griphon::reopt
