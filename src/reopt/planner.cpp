#include "reopt/planner.hpp"

#include <algorithm>
#include <utility>

#include "core/network_model.hpp"

namespace griphon::reopt {

bool move_improves(const core::WavelengthPlan& current,
                   const core::WavelengthPlan& target) {
  if (target.path.nodes != current.path.nodes ||
      target.path.links != current.path.links)
    return false;
  if (target.segments.size() != current.segments.size()) return false;
  for (std::size_t s = 0; s < target.segments.size(); ++s) {
    const core::SegmentPlan& cur = current.segments[s];
    const core::SegmentPlan& tgt = target.segments[s];
    if (tgt.first_link != cur.first_link || tgt.last_link != cur.last_link)
      return false;
    if (tgt.channel < 0 || tgt.channel >= cur.channel) return false;
  }
  return !target.segments.empty();
}

MigrationPlan FirstFitCompactionSolver::solve(const PlanInput& input) const {
  MigrationPlan out;
  out.items_considered = input.items.size();
  if (input.model == nullptr || input.snap == nullptr) return out;
  const std::size_t channels = input.model->grid().count();
  const std::size_t link_count = input.model->graph().links().size();

  // Final-state occupancy, seeded with everything the snapshot considers
  // busy (lit cells of every connection — migratable or not — plus
  // reservations). Each decided move edits it in place: old cells free,
  // new cells busy.
  std::vector<dwdm::ChannelSet> occ(link_count);
  for (std::size_t l = 0; l < link_count; ++l) {
    occ[l] = dwdm::ChannelSet::all(channels);
    occ[l].subtract(input.snap->available_on_link(LinkId{l}));
  }

  // Longest routes first: they have the fewest placement options, so they
  // get first pick of the low blocks; ties by id for determinism.
  std::vector<const MoveItem*> order;
  order.reserve(input.items.size());
  for (const MoveItem& item : input.items) order.push_back(&item);
  std::sort(order.begin(), order.end(),
            [](const MoveItem* a, const MoveItem* b) {
              if (a->current.hops() != b->current.hops())
                return a->current.hops() > b->current.hops();
              return a->id.value() < b->id.value();
            });

  for (const MoveItem* item : order) {
    const core::WavelengthPlan& cur = item->current;
    bool all_strictly_lower = true;
    std::vector<dwdm::ChannelIndex> chosen;
    chosen.reserve(cur.segments.size());
    for (const core::SegmentPlan& seg : cur.segments) {
      dwdm::ChannelSet seg_free = dwdm::ChannelSet::all(channels);
      for (std::size_t i = seg.first_link; i <= seg.last_link; ++i) {
        const std::size_t l = cur.path.links[i].value();
        if (l >= occ.size()) {
          seg_free = dwdm::ChannelSet{};
          break;
        }
        dwdm::ChannelSet free = dwdm::ChannelSet::all(channels);
        free.subtract(occ[l]);
        // The item's own cell is movable, so it is always a candidate —
        // which guarantees seg_free is non-empty and first() <= current.
        free.add(seg.channel);
        seg_free.intersect(free);
      }
      const dwdm::ChannelIndex ch = seg_free.first();
      if (ch == dwdm::kNoChannel || ch >= seg.channel)
        all_strictly_lower = false;
      chosen.push_back(ch);
    }
    if (all_strictly_lower && !cur.segments.empty()) {
      Move move;
      move.id = item->id;
      move.target = cur;
      for (std::size_t s = 0; s < cur.segments.size(); ++s) {
        move.target.segments[s].channel = chosen[s];
        const core::SegmentPlan& seg = cur.segments[s];
        for (std::size_t i = seg.first_link; i <= seg.last_link; ++i) {
          const std::size_t l = cur.path.links[i].value();
          occ[l].remove(seg.channel);
          occ[l].add(chosen[s]);
        }
      }
      out.moves.push_back(std::move(move));
    }
    // A kept item's cells were already busy in `occ` — nothing to update.
  }
  return out;
}

GlobalPlanner::GlobalPlanner(core::GriphonController* controller)
    : controller_(controller),
      solver_(std::make_unique<FirstFitCompactionSolver>()) {}

void GlobalPlanner::set_solver(std::unique_ptr<ReoptSolver> solver) {
  if (solver != nullptr) solver_ = std::move(solver);
}

PlanInput GlobalPlanner::gather(
    const std::set<ConnectionId>& exempt) const {
  PlanInput input;
  input.model = &controller_->model();
  input.snap = controller_->inventory().snapshot();
  for (const ConnectionId id :
       controller_->live_wavelength_connections()) {
    if (exempt.count(id) != 0) continue;
    const core::Connection* c = controller_->find_connection(id);
    // Only steady Active connections migrate: one already rolling has a
    // bridge up, and anything transitional belongs to its own state
    // machine.
    if (c == nullptr || c->state != core::ConnectionState::kActive) continue;
    MoveItem item;
    item.id = id;
    item.rate = c->rate;
    item.current = c->plan;
    input.items.push_back(std::move(item));
  }
  return input;
}

MigrationPlan GlobalPlanner::plan(const std::set<ConnectionId>& exempt,
                                  std::size_t max_moves) const {
  const PlanInput input = gather(exempt);
  MigrationPlan plan = solver_->solve(input);
  // Defensive never-worsen pass: whatever the solver did, nothing that
  // would degrade (or even sideways-shuffle) a connection leaves here.
  std::vector<Move> kept;
  kept.reserve(plan.moves.size());
  for (Move& move : plan.moves) {
    const auto it =
        std::find_if(input.items.begin(), input.items.end(),
                     [&move](const MoveItem& i) { return i.id == move.id; });
    if (it == input.items.end() || !move_improves(it->current, move.target)) {
      ++plan.rejected_by_invariant;
      continue;
    }
    kept.push_back(std::move(move));
    if (kept.size() >= max_moves) break;
  }
  plan.moves = std::move(kept);
  return plan;
}

}  // namespace griphon::reopt
