// Global wavelength re-assignment planning.
//
// The GlobalPlanner periodically re-solves the wavelength assignment of
// the *live* connection set and emits a migration delta: which connections
// should move to which channels, on the same routes, to re-pack the
// spectrum first-fit-tight. Solving is pluggable (ReoptSolver); the
// default FirstFitCompactionSolver walks connections longest-route-first
// and slides each one down to the lowest channel block that is free in
// the *final* state (treating every migratable connection's own channels
// as movable).
//
// The never-worsen contract — enforced here defensively, whatever the
// solver returned — is that a move must
//   1. keep the connection's route and transparent segmentation unchanged,
//   2. move every segment to a strictly lower channel (strict, because
//      bridge-and-roll lights both plans at once: a shared (link, channel)
//      cell would self-collide, and "lower" is what makes the pass a
//      compaction rather than a shuffle).
// A connection the solver cannot strictly improve simply stays put, so no
// plan ever degrades any connection.
//
// Moves carry route + channels only; the MigrationExecutor resolves spare
// transponders/regenerators at launch time from a fresh snapshot (the
// bridge needs a second set of endpoint optics while both paths are lit).
#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <vector>

#include "core/controller.hpp"
#include "core/inventory.hpp"
#include "core/rwa.hpp"

namespace griphon::reopt {

/// One migratable live connection, as captured for the solver.
struct MoveItem {
  ConnectionId id{};
  DataRate rate{};
  core::WavelengthPlan current;  ///< in-service plan at capture time
};

/// Everything a solver sees: one coherent snapshot plus the migratable set.
struct PlanInput {
  const core::NetworkModel* model = nullptr;
  std::shared_ptr<const core::Inventory::Snapshot> snap;
  std::vector<MoveItem> items;
};

/// One element of the migration delta. `target` keeps the item's route and
/// segmentation and changes only segment channels; its device fields are
/// placeholders until the executor resolves them at launch.
struct Move {
  ConnectionId id{};
  core::WavelengthPlan target;
};

struct MigrationPlan {
  std::vector<Move> moves;  ///< solver order (longest routes first)
  std::size_t items_considered = 0;
  /// Solver output dropped by the never-worsen check — nonzero only for a
  /// buggy or adversarial solver; the default solver never trips it.
  std::size_t rejected_by_invariant = 0;
};

/// Strategy interface: map the live set to a migration delta.
class ReoptSolver {
 public:
  virtual ~ReoptSolver() = default;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual MigrationPlan solve(const PlanInput& input) const = 0;
};

/// Default heuristic: first-fit re-assignment over the final state.
/// Occupancy starts as "everything currently lit or reserved, including
/// every migratable connection where it stands"; items are processed
/// longest-route-first (ties by id), each choosing per segment the lowest
/// channel free on all of the segment's links. An item moves only when
/// every segment lands strictly lower; a move frees its old cells for the
/// items processed after it (the executor's dependency order realizes
/// that temporal chain at run time).
class FirstFitCompactionSolver : public ReoptSolver {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "first-fit-compaction";
  }
  [[nodiscard]] MigrationPlan solve(const PlanInput& input) const override;
};

class GlobalPlanner {
 public:
  explicit GlobalPlanner(core::GriphonController* controller);

  /// Replace the solver (default: FirstFitCompactionSolver). Non-null.
  void set_solver(std::unique_ptr<ReoptSolver> solver);
  [[nodiscard]] const ReoptSolver& solver() const noexcept { return *solver_; }

  /// Capture the migratable live set: wavelength connections in state
  /// Active (mid-roll ones are already moving), minus `exempt` — the BoD
  /// layer exempts connections inside calendar-committed windows.
  [[nodiscard]] PlanInput gather(
      const std::set<ConnectionId>& exempt) const;

  /// gather() + solve + never-worsen enforcement, truncated to
  /// `max_moves` (solver order keeps the longest routes).
  [[nodiscard]] MigrationPlan plan(const std::set<ConnectionId>& exempt,
                                   std::size_t max_moves) const;

 private:
  core::GriphonController* controller_;
  std::unique_ptr<ReoptSolver> solver_;
};

/// True iff `move` satisfies the never-worsen contract against `current`
/// (same route, same segmentation, every segment strictly lower). Shared
/// by the planner's enforcement pass and the tests.
[[nodiscard]] bool move_improves(const core::WavelengthPlan& current,
                                 const core::WavelengthPlan& target);

}  // namespace griphon::reopt
