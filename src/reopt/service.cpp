#include "reopt/service.hpp"

#include <cmath>
#include <utility>

#include "core/network_model.hpp"
#include "telemetry/telemetry.hpp"

namespace griphon::reopt {

ReoptService::ReoptService(core::GriphonController* controller, Params params)
    : controller_(controller),
      params_(std::move(params)),
      analyzer_(&controller->model()),
      planner_(controller),
      executor_(&controller->model().engine(), controller, params_.executor) {}

void ReoptService::start() {
  if (running_) return;
  running_ = true;
  schedule_tick();
}

void ReoptService::stop() {
  if (!running_) return;
  running_ = false;
  controller_->model().engine().cancel(pending_);
}

void ReoptService::schedule_tick() {
  pending_ = controller_->model().engine().schedule(params_.period,
                                                    [this]() { on_tick(); });
}

void ReoptService::on_tick() {
  if (!running_) return;
  // Hold the trip during a restoration storm: campaign rolls would
  // compete with restorations for wavelengths and EMS dialogue slots,
  // and capacity freed by a move is better spent re-arming the
  // restoration backlog than chasing a fragmentation score mid-crisis.
  if (controller_->restoration_storm_active()) {
    ++stats_.campaigns_held_storm;
    if (telemetry::Telemetry* t = controller_->model().telemetry())
      t->event(telemetry::Severity::kInfo, "reopt", "reopt",
               "tick held: restoration storm active");
    sync_metrics();
    if (running_) schedule_tick();
    return;
  }
  const FragmentationReport& report = analyze();
  // One campaign at a time; a still-draining campaign just defers the
  // decision to the next tick.
  if (report.mean_score > params_.trip_threshold && !executor_.running()) {
    MigrationPlan plan = plan_now();
    if (plan.moves.size() >= params_.min_moves) {
      if (telemetry::Telemetry* t = controller_->model().telemetry())
        t->event(telemetry::Severity::kInfo, "reopt", "reopt",
                 "fragmentation " + std::to_string(report.mean_score) +
                     " tripped threshold; campaign of " +
                     std::to_string(plan.moves.size()) + " moves");
      ++stats_.campaigns_started;
      executor_.run(std::move(plan),
                    [this](const MigrationExecutor::CampaignReport& r) {
                      ++stats_.campaigns_completed;
                      if (r.aborted) ++stats_.campaigns_aborted;
                      stats_.moves_rolled += r.moves_rolled;
                      stats_.moves_skipped += r.moves_skipped;
                      stats_.moves_failed += r.moves_failed;
                      stats_.cycle_breaks += r.cycle_breaks;
                      last_campaign_ = r;
                      sync_metrics();
                    });
    }
  }
  if (running_) schedule_tick();
}

const FragmentationReport& ReoptService::analyze() {
  const auto snap = controller_->inventory().snapshot();
  last_report_ = analyzer_.analyze(*snap, controller_->rwa(), params_.pairs);
  ++stats_.analyses;
  sync_metrics();
  return *last_report_;
}

MigrationPlan ReoptService::plan_now() const {
  const std::set<ConnectionId> exempt =
      exempt_ ? exempt_() : std::set<ConnectionId>{};
  return planner_.plan(exempt, params_.max_moves_per_campaign);
}

void ReoptService::run_campaign(MigrationExecutor::DoneCallback done) {
  ++stats_.campaigns_started;
  executor_.run(plan_now(),
                [this, done = std::move(done)](
                    const MigrationExecutor::CampaignReport& r) {
                  ++stats_.campaigns_completed;
                  if (r.aborted) ++stats_.campaigns_aborted;
                  stats_.moves_rolled += r.moves_rolled;
                  stats_.moves_skipped += r.moves_skipped;
                  stats_.moves_failed += r.moves_failed;
                  stats_.cycle_breaks += r.cycle_breaks;
                  last_campaign_ = r;
                  sync_metrics();
                  if (done) done(r);
                });
}

void ReoptService::sync_metrics() {
  telemetry::Telemetry* t = controller_->model().telemetry();
  if (t == nullptr) return;
  auto& m = t->metrics();
  m.gauge("griphon_reopt_fragmentation_mean",
          "Mean per-link external fragmentation score (last analysis)")
      ->set(last_report_ ? last_report_->mean_score : 0.0);
  m.gauge("griphon_reopt_fragmentation_max",
          "Worst per-link external fragmentation score (last analysis)")
      ->set(last_report_ ? last_report_->max_score : 0.0);
  m.gauge("griphon_reopt_stranded_pairs",
          "Pairs with demand blocked purely by wavelength continuity")
      ->set(last_report_ ? static_cast<double>(last_report_->stranded_pairs)
                         : 0.0);
  m.gauge("griphon_reopt_blocked_candidates",
          "Candidate routes blocked by continuity despite per-hop capacity")
      ->set(last_report_
                ? static_cast<double>(last_report_->blocked_candidates)
                : 0.0);
  m.gauge("griphon_reopt_campaigns_total", "Migration campaigns started")
      ->set(static_cast<double>(stats_.campaigns_started));
  m.gauge("griphon_reopt_moves_rolled_total",
          "Connections moved to their re-optimized channels")
      ->set(static_cast<double>(stats_.moves_rolled));
  m.gauge("griphon_reopt_moves_skipped_total",
          "Planned moves skipped by launch-time verification")
      ->set(static_cast<double>(stats_.moves_skipped));
  m.gauge("griphon_reopt_moves_failed_total",
          "Planned moves whose roll failed (service rolled back safely)")
      ->set(static_cast<double>(stats_.moves_failed));
  m.gauge("griphon_reopt_cycle_breaks_total",
          "Dependency cycles broken via a temporary bridge channel")
      ->set(static_cast<double>(stats_.cycle_breaks));
  m.gauge("griphon_reopt_campaigns_held_storm_total",
          "Periodic reopt ticks deferred by an active restoration storm")
      ->set(static_cast<double>(stats_.campaigns_held_storm));
}

void ReoptService::install_probes(telemetry::GaugeSampler& sampler) {
  sampler.add_probe("reopt_fragmentation_mean", "ratio", [this] {
    return last_report_ ? last_report_->mean_score : 0.0;
  });
  sampler.add_probe("reopt_fragmentation_max", "ratio", [this] {
    return last_report_ ? last_report_->max_score : 0.0;
  });
  sampler.add_probe("reopt_stranded_pairs", "count", [this] {
    return last_report_ ? static_cast<double>(last_report_->stranded_pairs)
                        : 0.0;
  });
  sampler.add_probe("reopt_moves_rolled", "count", [this] {
    return static_cast<double>(stats_.moves_rolled);
  });
  sampler.add_probe("reopt_campaigns", "count", [this] {
    return static_cast<double>(stats_.campaigns_started);
  });
}

telemetry::Objective fragmentation_objective(const ReoptService& service,
                                             double bound) {
  telemetry::Objective o;
  o.name = "reopt_fragmentation";
  o.description = "mean wavelength fragmentation under control";
  o.bound = bound;
  // NaN before the first analysis: the SLO monitor's hysteresis streaks
  // stay frozen instead of tripping on an idle, never-analyzed plane.
  o.value = [&service] {
    const FragmentationReport* r = service.last_report();
    return r == nullptr ? std::nan("") : r->mean_score;
  };
  return o;
}

}  // namespace griphon::reopt
