// Re-optimization driver: analysis cadence, trip policy, campaigns.
//
// The ReoptService owns the analyzer, the planner, and the executor, and
// wires them to the sim clock: every `period` it scores the wavelength
// plane; when the mean fragmentation score trips `trip_threshold` (and at
// least `min_moves` strictly-improving moves exist) it runs a migration
// campaign. Campaigns never overlap, and connections the exempt provider
// names — the BoD layer supplies connections inside calendar-committed
// transfer windows — are never touched. While the controller is in a
// restoration storm the periodic trip is held: defragmentation competes
// with restorations for the same wavelengths and EMS dialogue budget, so
// the tick defers until the storm clears (explicit run_campaign() is an
// operator override and still runs).
//
// Observability: griphon_reopt_* counters on the deployment's telemetry,
// bare-named gauges for the GaugeSampler (fragmentation mean/max,
// stranded pairs, campaign totals), and fragmentation_objective() for the
// SloMonitor. The objective reads NaN until the first analysis has run,
// which freezes the SLO hysteresis streaks — a monitor that starts before
// traffic must not trip on "no data".
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "reopt/executor.hpp"
#include "reopt/fragmentation.hpp"
#include "reopt/planner.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/slo.hpp"

namespace griphon::reopt {

class ReoptService {
 public:
  struct Params {
    SimTime period = hours(1);    ///< analysis cadence once start()ed
    double trip_threshold = 0.3;  ///< mean fragmentation score tripping a run
    std::size_t min_moves = 1;    ///< don't campaign for fewer moves
    std::size_t max_moves_per_campaign = 64;
    MigrationExecutor::Params executor{};
    /// Demand pairs probed for stranded capacity (typically the DC sites).
    std::vector<std::pair<NodeId, NodeId>> pairs;
  };

  /// Connections a campaign must not touch (queried at planning time).
  using ExemptProvider = std::function<std::set<ConnectionId>()>;

  ReoptService(core::GriphonController* controller, Params params);
  ~ReoptService() { stop(); }

  ReoptService(const ReoptService&) = delete;
  ReoptService& operator=(const ReoptService&) = delete;

  void set_exempt_provider(ExemptProvider provider) {
    exempt_ = std::move(provider);
  }

  /// Begin the periodic analyze-and-maybe-campaign loop.
  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Score the wavelength plane now; retained as last_report().
  const FragmentationReport& analyze();
  /// Compute a migration delta for the current live set (no execution).
  [[nodiscard]] MigrationPlan plan_now() const;
  /// Run one campaign now regardless of the trip threshold. `done` may be
  /// null; fires after the campaign drains.
  void run_campaign(MigrationExecutor::DoneCallback done);

  struct Stats {
    std::size_t analyses = 0;
    std::size_t campaigns_started = 0;
    std::size_t campaigns_completed = 0;
    std::size_t campaigns_aborted = 0;
    std::size_t moves_rolled = 0;
    std::size_t moves_skipped = 0;
    std::size_t moves_failed = 0;
    std::size_t cycle_breaks = 0;
    std::size_t campaigns_held_storm = 0;  ///< ticks deferred by a storm
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Null until the first analyze().
  [[nodiscard]] const FragmentationReport* last_report() const noexcept {
    return last_report_ ? &*last_report_ : nullptr;
  }
  /// Null until the first campaign completes.
  [[nodiscard]] const MigrationExecutor::CampaignReport* last_campaign()
      const noexcept {
    return last_campaign_ ? &*last_campaign_ : nullptr;
  }
  [[nodiscard]] bool campaign_in_progress() const noexcept {
    return executor_.running();
  }
  [[nodiscard]] GlobalPlanner& planner() noexcept { return planner_; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

  /// Register reopt gauges (fragmentation mean/max, stranded pairs,
  /// campaign totals) on the deployment's sampler.
  void install_probes(telemetry::GaugeSampler& sampler);

 private:
  void schedule_tick();
  void on_tick();
  void sync_metrics();

  core::GriphonController* controller_;
  Params params_;
  FragmentationAnalyzer analyzer_;
  GlobalPlanner planner_;
  MigrationExecutor executor_;
  ExemptProvider exempt_;
  Stats stats_;
  std::optional<FragmentationReport> last_report_;
  std::optional<MigrationExecutor::CampaignReport> last_campaign_;
  bool running_ = false;
  sim::EventHandle pending_{};
};

/// SLO objective: mean fragmentation score <= bound. NaN (streak-freezing)
/// until the service has produced its first report — see slo.hpp.
[[nodiscard]] telemetry::Objective fragmentation_objective(
    const ReoptService& service, double bound);

}  // namespace griphon::reopt
