#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>

namespace griphon::sim {

EventHandle Engine::schedule(SimTime delay, Callback fn) {
  return schedule_at(now_ + std::max(SimTime{}, delay), std::move(fn));
}

EventHandle Engine::schedule_at(SimTime when, Callback fn) {
  assert(fn && "scheduling an empty callback");
  const auto seq = next_seq_++;
  queue_.push(Event{std::max(when, now_), seq, std::move(fn)});
  return EventHandle{seq};
}

void Engine::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  cancelled_.push_back(handle.seq_);
  ++cancelled_pending_;
}

bool Engine::pop_one() {
  while (!queue_.empty()) {
    // priority_queue has no non-const top-move; copy of the std::function is
    // unavoidable without a custom heap, and event rates here are low.
    Event ev = queue_.top();
    queue_.pop();
    const auto it =
        std::find(cancelled_.begin(), cancelled_.end(), ev.seq);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_pending_;
      continue;
    }
    now_ = ev.when;
    ++fired_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  while (pop_one()) ++n;
  return n;
}

std::size_t Engine::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    // Discard cancelled entries at the head first: the deadline check
    // must see the next event that would actually fire, or a stale
    // cancelled entry inside the horizon lets pop_one() fire a live
    // event from far beyond it.
    const auto it =
        std::find(cancelled_.begin(), cancelled_.end(), queue_.top().seq);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_pending_;
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    if (pop_one()) ++n;
  }
  now_ = std::max(now_, deadline);
  return n;
}

bool Engine::step() { return pop_one(); }

std::size_t Engine::pending() const noexcept {
  return queue_.size() - cancelled_pending_;
}

}  // namespace griphon::sim
