// Discrete-event simulation engine.
//
// A single-threaded event loop with a simulated clock. Every active entity
// in GRIPhoN (EMS, device, controller, protocol channel, workload source)
// schedules callbacks on one Engine. Events at equal timestamps fire in
// scheduling order (FIFO tie-break), which makes runs fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace griphon::sim {

/// Handle used to cancel a scheduled event. Cancellation is lazy: the slot
/// stays in the queue but fires as a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return seq_ != 0; }

 private:
  friend class Engine;
  explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Engine {
 public:
  using Callback = std::function<void()>;

  explicit Engine(std::uint64_t seed = 1) : rng_(seed) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Engine-owned RNG; all stochastic models should draw from it (or from
  /// forks of it) for reproducibility.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Schedule `fn` to run `delay` from now. Negative delays are clamped to
  /// zero (i.e. "run as soon as possible, after already-queued events at
  /// the current instant").
  EventHandle schedule(SimTime delay, Callback fn);

  /// Schedule at an absolute simulated time (>= now).
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Cancel a pending event. No-op if it already fired or was cancelled.
  void cancel(EventHandle handle);

  /// Run until the queue is empty. Returns the number of events fired.
  std::size_t run();

  /// Run until the queue is empty or simulated time would exceed
  /// `deadline`; events after the deadline stay queued and `now()` is
  /// advanced to exactly `deadline`.
  std::size_t run_until(SimTime deadline);

  /// Fire at most one event. Returns false when the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending() const noexcept;
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break + cancellation key
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_one();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::uint64_t> cancelled_;  // sorted insertion not needed; small
  SimTime now_{};
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t cancelled_pending_ = 0;
  Rng rng_;
};

}  // namespace griphon::sim
