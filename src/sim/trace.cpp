#include "sim/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace griphon::sim {

const char* to_string(TraceLevel level) noexcept {
  switch (level) {
    case TraceLevel::kDebug:
      return "DEBUG";
    case TraceLevel::kInfo:
      return "INFO";
    case TraceLevel::kWarn:
      return "WARN";
    case TraceLevel::kError:
      return "ERROR";
  }
  return "?";
}

void Trace::emit_locked(SimTime when, TraceLevel level, std::string actor,
                        std::string event, std::string detail) {
  if (level < min_level_) return;
  TraceRecord record{when, level, std::move(actor), std::move(event),
                     std::move(detail)};
  if (echo_ != nullptr) *echo_ << record << '\n';
  if (capacity_ != 0 && records_.size() == capacity_) {
    // Ring full: overwrite the oldest slot in place instead of shifting.
    records_[head_] = std::move(record);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
    if (!overflow_warned_) {
      // One warning so silent truncation of long soaks stays visible;
      // the warning itself goes through the ring (evicting one more
      // record, which dropped_ counts). Re-enters the locked variant —
      // the mutex is not recursive.
      overflow_warned_ = true;
      emit_locked(when, TraceLevel::kWarn, "trace", "ring-full",
                  "capacity " + std::to_string(capacity_) +
                      " reached; oldest records are being dropped");
    }
    return;
  }
  records_.push_back(std::move(record));
}

void Trace::emit(SimTime when, TraceLevel level, std::string actor,
                 std::string event, std::string detail) {
  MutexLock lock(&mu_);
  emit_locked(when, level, std::move(actor), std::move(event),
              std::move(detail));
}

void Trace::set_capacity(std::size_t capacity) {
  MutexLock lock(&mu_);
  normalize_locked();
  capacity_ = capacity;
  if (capacity_ != 0 && records_.size() > capacity_) {
    const std::size_t excess = records_.size() - capacity_;
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(excess));
    dropped_ += excess;
  }
}

void Trace::normalize_locked() const {
  if (head_ != 0) {
    std::rotate(records_.begin(),
                records_.begin() + static_cast<std::ptrdiff_t>(head_),
                records_.end());
    head_ = 0;
  }
}

const std::vector<TraceRecord>& Trace::records() const {
  MutexLock lock(&mu_);
  normalize_locked();
  return records_;
}

std::size_t Trace::count(std::string_view event) const {
  MutexLock lock(&mu_);
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [&](const TraceRecord& r) { return r.event == event; }));
}

namespace {
void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
}
}  // namespace

std::string Trace::to_json() const {
  MutexLock lock(&mu_);
  normalize_locked();
  std::ostringstream os;
  os << "{\"dropped\":" << dropped_ << ",\"records\":[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const TraceRecord& r = records_[i];
    if (i > 0) os << ",";
    os << "{\"t\":" << std::fixed << std::setprecision(6)
       << to_seconds(r.when) << ",\"level\":\"" << to_string(r.level)
       << "\",\"actor\":\"";
    json_escape(os, r.actor);
    os << "\",\"event\":\"";
    json_escape(os, r.event);
    os << "\",\"detail\":\"";
    json_escape(os, r.detail);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TraceRecord& r) {
  os << '[' << std::fixed << std::setprecision(3) << to_seconds(r.when)
     << "s] " << to_string(r.level) << ' ' << r.actor << ' ' << r.event;
  if (!r.detail.empty()) os << " (" << r.detail << ')';
  return os;
}

}  // namespace griphon::sim
