// Structured trace log for the simulator.
//
// Components append records (time, actor, event, detail). Tests assert on
// the sequence; benches and examples can print it. Kept as values, not
// formatted strings, so consumers can filter cheaply.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "common/units.hpp"

namespace griphon::sim {

enum class TraceLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] const char* to_string(TraceLevel level) noexcept;

struct TraceRecord {
  SimTime when{};
  TraceLevel level = TraceLevel::kInfo;
  std::string actor;   ///< e.g. "roadm-ems/2", "controller"
  std::string event;   ///< e.g. "xconnect", "alarm", "setup-done"
  std::string detail;  ///< free-form context
};

/// Concurrency (DESIGN.md §15): the ring is guarded by one mutex.
/// records() returns a reference into guarded storage for the owner
/// thread's assertion/export path; cross-thread consumers use the
/// value-returning to_json().
class Trace {
 public:
  void emit(SimTime when, TraceLevel level, std::string actor,
            std::string event, std::string detail = {}) EXCLUDES(mu_);

  /// Retained records, oldest first. With a capacity set, only the newest
  /// `capacity` records survive (see set_capacity).
  [[nodiscard]] const std::vector<TraceRecord>& records() const
      EXCLUDES(mu_);
  void clear() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    records_.clear();
    head_ = 0;
    dropped_ = 0;
    overflow_warned_ = false;
  }

  /// Number of retained records whose event name matches exactly.
  [[nodiscard]] std::size_t count(std::string_view event) const
      EXCLUDES(mu_);

  /// Minimum level retained; below it emit() is a no-op.
  void set_min_level(TraceLevel level) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    min_level_ = level;
  }

  /// Bound the trace to a ring of the newest `capacity` records; 0 (the
  /// default) keeps everything. Soak runs and long benches set a bound so
  /// the trace cannot grow without limit; shrinking below the current size
  /// drops the oldest records immediately.
  void set_capacity(std::size_t capacity) EXCLUDES(mu_);
  [[nodiscard]] std::size_t capacity() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return capacity_;
  }
  /// Records evicted by the ring so far (0 while unbounded).
  [[nodiscard]] std::size_t dropped_count() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return dropped_;
  }

  /// Mirror records to a stream as they are emitted (for examples/demos).
  void echo_to(std::ostream* os) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    echo_ = os;
  }

  /// Serialize retained records for offline tooling:
  /// {"dropped": N, "records": [...]} — `dropped` makes ring truncation
  /// visible in the dump. Strings are escaped per RFC 8259.
  [[nodiscard]] std::string to_json() const EXCLUDES(mu_);

 private:
  /// Append one record, evicting through the ring when full. The
  /// ring-full warning re-enters here (never the locking emit()).
  void emit_locked(SimTime when, TraceLevel level, std::string actor,
                   std::string event, std::string detail) REQUIRES(mu_);

  /// Rotate the ring so records_ is oldest-first and head_ is 0. Logically
  /// const: the record sequence is unchanged, only storage order.
  void normalize_locked() const REQUIRES(mu_);

  mutable Mutex mu_;
  mutable std::vector<TraceRecord> records_ GUARDED_BY(mu_);
  /// Ring start when size == capacity.
  mutable std::size_t head_ GUARDED_BY(mu_) = 0;
  std::size_t capacity_ GUARDED_BY(mu_) = 0;  ///< 0 = unbounded
  std::size_t dropped_ GUARDED_BY(mu_) = 0;
  /// First-drop warning already emitted.
  bool overflow_warned_ GUARDED_BY(mu_) = false;
  TraceLevel min_level_ GUARDED_BY(mu_) = TraceLevel::kDebug;
  std::ostream* echo_ GUARDED_BY(mu_) = nullptr;
};

std::ostream& operator<<(std::ostream& os, const TraceRecord& r);

}  // namespace griphon::sim
