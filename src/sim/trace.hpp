// Structured trace log for the simulator.
//
// Components append records (time, actor, event, detail). Tests assert on
// the sequence; benches and examples can print it. Kept as values, not
// formatted strings, so consumers can filter cheaply.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace griphon::sim {

enum class TraceLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] const char* to_string(TraceLevel level) noexcept;

struct TraceRecord {
  SimTime when{};
  TraceLevel level = TraceLevel::kInfo;
  std::string actor;   ///< e.g. "roadm-ems/2", "controller"
  std::string event;   ///< e.g. "xconnect", "alarm", "setup-done"
  std::string detail;  ///< free-form context
};

class Trace {
 public:
  void emit(SimTime when, TraceLevel level, std::string actor,
            std::string event, std::string detail = {});

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  void clear() { records_.clear(); }

  /// Number of records whose event name matches exactly.
  [[nodiscard]] std::size_t count(std::string_view event) const noexcept;

  /// Minimum level retained; below it emit() is a no-op.
  void set_min_level(TraceLevel level) noexcept { min_level_ = level; }

  /// Mirror records to a stream as they are emitted (for examples/demos).
  void echo_to(std::ostream* os) noexcept { echo_ = os; }

  /// Serialize all records as a JSON array (for offline tooling); strings
  /// are escaped per RFC 8259.
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<TraceRecord> records_;
  TraceLevel min_level_ = TraceLevel::kDebug;
  std::ostream* echo_ = nullptr;
};

std::ostream& operator<<(std::ostream& os, const TraceRecord& r);

}  // namespace griphon::sim
