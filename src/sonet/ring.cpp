#include "sonet/ring.hpp"

#include <algorithm>
#include <stdexcept>

#include "sonet/sts.hpp"

namespace griphon::sonet {

SonetRing::SonetRing(std::vector<NodeId> nodes, int oc_level)
    : nodes_(std::move(nodes)), capacity_(oc_capacity(oc_level)),
      failed_(nodes_.size(), false) {
  if (nodes_.size() < 3)
    throw std::invalid_argument("SonetRing: need >= 3 nodes");
}

bool SonetRing::on_ring(NodeId n) const noexcept {
  return std::find(nodes_.begin(), nodes_.end(), n) != nodes_.end();
}

std::size_t SonetRing::position(NodeId n) const {
  const auto it = std::find(nodes_.begin(), nodes_.end(), n);
  if (it == nodes_.end())
    throw std::out_of_range("SonetRing: node not on ring");
  return static_cast<std::size_t>(it - nodes_.begin());
}

std::vector<std::size_t> SonetRing::arc(NodeId src, NodeId dst,
                                        bool clockwise) const {
  std::vector<std::size_t> spans;
  const std::size_t n = nodes_.size();
  std::size_t at = position(src);
  const std::size_t end = position(dst);
  while (at != end) {
    if (clockwise) {
      spans.push_back(at);  // span i joins node i and i+1
      at = (at + 1) % n;
    } else {
      at = (at + n - 1) % n;
      spans.push_back(at);
    }
  }
  return spans;
}

int SonetRing::used_on_span(std::size_t span) const {
  // Working traffic on its arc plus protection reservations on the
  // opposite arc: a UPSR ring dedicates capacity both ways.
  int used = 0;
  for (const auto& [id, c] : circuits_) {
    const auto working = arc(c.src, c.dst, c.clockwise);
    const auto protect = arc(c.src, c.dst, !c.clockwise);
    if (std::find(working.begin(), working.end(), span) != working.end() ||
        std::find(protect.begin(), protect.end(), span) != protect.end())
      used += c.sts1;
  }
  return used;
}

Result<StsCircuitId> SonetRing::provision(NodeId src, NodeId dst, int sts1) {
  if (!on_ring(src) || !on_ring(dst))
    return Error{ErrorCode::kNotFound, "ring: endpoint not on ring"};
  if (src == dst || sts1 <= 0)
    return Error{ErrorCode::kInvalidArgument, "ring: bad circuit spec"};
  // UPSR consumes `sts1` on *every* span (working one way, protection the
  // other), so admission is simply against the worst span.
  for (std::size_t s = 0; s < nodes_.size(); ++s)
    if (used_on_span(s) + sts1 > capacity_)
      return Error{ErrorCode::kResourceExhausted,
                   "ring: insufficient STS-1 timeslots"};

  Circuit c;
  c.id = ids_.next();
  c.src = src;
  c.dst = dst;
  c.sts1 = sts1;
  // Work on the shorter arc.
  c.clockwise = arc(src, dst, true).size() <= arc(src, dst, false).size();
  circuits_[c.id] = c;
  return c.id;
}

Status SonetRing::release(StsCircuitId id) {
  if (circuits_.erase(id) == 0)
    return Status{ErrorCode::kNotFound, "ring: unknown circuit"};
  return Status::success();
}

const SonetRing::Circuit& SonetRing::circuit(StsCircuitId id) const {
  const auto it = circuits_.find(id);
  if (it == circuits_.end())
    throw std::out_of_range("SonetRing::circuit: unknown id");
  return it->second;
}

std::vector<StsCircuitId> SonetRing::fail_span(std::size_t span_index) {
  if (span_index >= failed_.size())
    throw std::out_of_range("SonetRing::fail_span: bad span");
  failed_[span_index] = true;
  std::vector<StsCircuitId> switched;
  for (auto& [id, c] : circuits_) {
    if (c.on_protection) continue;
    const auto working = arc(c.src, c.dst, c.clockwise);
    if (std::find(working.begin(), working.end(), span_index) !=
        working.end()) {
      c.on_protection = true;
      switched.push_back(id);
    }
  }
  return switched;
}

void SonetRing::repair_span(std::size_t span_index) {
  if (span_index >= failed_.size())
    throw std::out_of_range("SonetRing::repair_span: bad span");
  failed_[span_index] = false;
  for (auto& [id, c] : circuits_) {
    if (!c.on_protection) continue;
    const auto working = arc(c.src, c.dst, c.clockwise);
    const bool still_down =
        std::any_of(working.begin(), working.end(),
                    [&](std::size_t s) { return failed_[s]; });
    if (!still_down) c.on_protection = false;  // revertive switching
  }
}

bool SonetRing::span_failed(std::size_t span_index) const {
  return span_index < failed_.size() && failed_[span_index];
}

int SonetRing::bottleneck_free() const {
  int worst = capacity_;
  for (std::size_t s = 0; s < nodes_.size(); ++s)
    worst = std::min(worst, capacity_ - used_on_span(s));
  return worst;
}

}  // namespace griphon::sonet
