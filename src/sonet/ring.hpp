// SONET ring with ADMs and sub-second path protection.
//
// Models the legacy transport the paper contrasts GRIPhoN against: circuits
// ride one way around the ring (working) with the other way reserved
// (protection); on a span failure the ADMs switch to protection in tens of
// milliseconds ("an automatic protection/restoration mechanism ... in less
// than a second", paper §2.1). Capacity is counted in STS-1 timeslots per
// span.
#pragma once

#include <map>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace griphon::sonet {

class SonetRing {
 public:
  /// `nodes` in ring order; each adjacent pair (and last-first) is a span
  /// of an OC-`oc_level` line.
  SonetRing(std::vector<NodeId> nodes, int oc_level);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] int capacity_sts1() const noexcept { return capacity_; }
  [[nodiscard]] bool on_ring(NodeId n) const noexcept;

  struct Circuit {
    StsCircuitId id;
    NodeId src;
    NodeId dst;
    int sts1 = 0;
    bool clockwise = true;  ///< working direction
    bool on_protection = false;
  };

  /// Provision a VCAT circuit of `sts1` STS-1s between two ring nodes.
  /// Working capacity is taken on the shorter arc; the same amount is
  /// reserved on the opposite arc for protection (UPSR-style 1+1 ring).
  [[nodiscard]] Result<StsCircuitId> provision(NodeId src, NodeId dst, int sts1);
  [[nodiscard]] Status release(StsCircuitId id);
  [[nodiscard]] const Circuit& circuit(StsCircuitId id) const;
  [[nodiscard]] std::size_t circuit_count() const noexcept {
    return circuits_.size();
  }

  /// Span between ring position i and i+1 fails; circuits whose working
  /// arc crosses it switch to protection. Returns the switched circuits.
  std::vector<StsCircuitId> fail_span(std::size_t span_index);
  void repair_span(std::size_t span_index);
  [[nodiscard]] bool span_failed(std::size_t span_index) const;

  /// Free STS-1s on the most loaded span (the ring's admission bottleneck).
  [[nodiscard]] int bottleneck_free() const;

  /// Protection switch time for ring ADMs — the "today" number GRIPhoN's
  /// restoration is compared against for low-rate services.
  [[nodiscard]] static SimTime protection_switch_time() {
    return milliseconds(50);
  }

 private:
  /// Spans crossed going clockwise from src to dst.
  [[nodiscard]] std::vector<std::size_t> arc(NodeId src, NodeId dst,
                                             bool clockwise) const;
  [[nodiscard]] std::size_t position(NodeId n) const;
  [[nodiscard]] int used_on_span(std::size_t span) const;

  std::vector<NodeId> nodes_;
  int capacity_;
  std::vector<bool> failed_;  // per span
  std::map<StsCircuitId, Circuit> circuits_;
  IdAllocator<StsCircuitId> ids_;
};

}  // namespace griphon::sonet
