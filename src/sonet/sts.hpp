// SONET STS hierarchy and virtual concatenation.
//
// The legacy layer of the paper's Fig. 1: Broadband DCS/ADM equipment
// cross-connecting at STS-1 (~52 Mbps). Ethernet private lines are
// "encapsulated and rate-limited into pipes consisting of virtually
// concatenated SONET STS-1s"; circuit-based BoD today rides this layer and
// tops out around OC-12 (622 Mbps).
#pragma once

#include <stdexcept>

#include "common/units.hpp"

namespace griphon::sonet {

/// Number of STS-1s in a virtually concatenated group carrying `rate`.
[[nodiscard]] constexpr int sts1_count_for(DataRate rate) {
  const auto sts1 = rates::kSts1.in_bps();
  const auto n = (rate.in_bps() + sts1 - 1) / sts1;
  if (n <= 0) throw std::invalid_argument("sts1_count_for: zero rate");
  return static_cast<int>(n);
}

/// Payload of an STS-1-nv VCAT group.
[[nodiscard]] constexpr DataRate vcat_rate(int n) {
  return DataRate{rates::kSts1.in_bps() * n};
}

/// Capacity of an OC-N line in STS-1 units.
[[nodiscard]] constexpr int oc_capacity(int oc_level) {
  if (oc_level <= 0) throw std::invalid_argument("oc_capacity: bad level");
  return oc_level;  // OC-N carries N STS-1s by definition
}

/// The ceiling of today's circuit BoD offerings (paper §1: "usually at
/// rates <= 622 Mbps").
inline constexpr DataRate kLegacyBodCeiling = rates::kOc12;

}  // namespace griphon::sonet
