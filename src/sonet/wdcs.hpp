// Wide-band Digital Cross-connect System (W-DCS) — the top of the paper's
// Fig. 1 legacy stack: "consists of DCS-3/1s and other DCS that
// cross-connect at greater than DS0 but below DS3 rates. It provides
// nxDS1 (1.5Mbps) TDM connections."
//
// Modeled as a DS3-interfaced cross-connect fabric allocating DS1
// tributaries (28 DS1 per DS3). Included for completeness of the layer
// stack; GRIPhoN itself never touches this layer, which is exactly the
// point — its rates are three orders of magnitude below inter-DC needs.
#pragma once

#include <map>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace griphon::sonet {

namespace legacy_rates {
inline constexpr DataRate kDs0 = DataRate::bps(64'000);
inline constexpr DataRate kDs1 = DataRate::bps(1'544'000);
inline constexpr DataRate kDs3 = DataRate::bps(44'736'000);
}  // namespace legacy_rates

/// DS1 tributaries in one DS3 (M13 multiplexing).
inline constexpr int kDs1PerDs3 = 28;

/// Number of DS1s needed to carry `rate` (the nxDS1 service).
[[nodiscard]] constexpr int ds1_count_for(DataRate rate) {
  const auto ds1 = legacy_rates::kDs1.in_bps();
  return static_cast<int>((rate.in_bps() + ds1 - 1) / ds1);
}

class WdcsCircuitTag {};
using WdcsCircuitId = Id<WdcsCircuitTag>;

/// One W-DCS node: `ds3_ports` DS3 interfaces, cross-connecting DS1s
/// between them.
class Wdcs {
 public:
  explicit Wdcs(std::size_t ds3_ports)
      : used_per_port_(ds3_ports, 0) {}

  [[nodiscard]] std::size_t ds3_port_count() const noexcept {
    return used_per_port_.size();
  }
  [[nodiscard]] int free_ds1_on(std::size_t port) const {
    return kDs1PerDs3 - used_per_port_.at(port);
  }

  /// Provision an nxDS1 circuit between two DS3 ports.
  [[nodiscard]] Result<WdcsCircuitId> provision(std::size_t port_a, std::size_t port_b,
                                  DataRate rate) {
    if (port_a >= used_per_port_.size() || port_b >= used_per_port_.size())
      return Error{ErrorCode::kNotFound, "wdcs: unknown DS3 port"};
    if (port_a == port_b)
      return Error{ErrorCode::kInvalidArgument, "wdcs: hairpin"};
    if (rate > legacy_rates::kDs3)
      return Error{ErrorCode::kInvalidArgument,
                   "wdcs: rate above DS3 (use the SONET layer)"};
    const int n = ds1_count_for(rate);
    if (free_ds1_on(port_a) < n || free_ds1_on(port_b) < n)
      return Error{ErrorCode::kResourceExhausted,
                   "wdcs: insufficient DS1 tributaries"};
    used_per_port_[port_a] += n;
    used_per_port_[port_b] += n;
    const WdcsCircuitId id = ids_.next();
    circuits_[id] = Circuit{port_a, port_b, n};
    return id;
  }

  [[nodiscard]] Status release(WdcsCircuitId id) {
    const auto it = circuits_.find(id);
    if (it == circuits_.end())
      return Status{ErrorCode::kNotFound, "wdcs: unknown circuit"};
    used_per_port_[it->second.port_a] -= it->second.ds1;
    used_per_port_[it->second.port_b] -= it->second.ds1;
    circuits_.erase(it);
    return Status::success();
  }

  [[nodiscard]] std::size_t circuit_count() const noexcept {
    return circuits_.size();
  }

 private:
  struct Circuit {
    std::size_t port_a = 0;
    std::size_t port_b = 0;
    int ds1 = 0;
  };
  std::vector<int> used_per_port_;
  std::map<WdcsCircuitId, Circuit> circuits_;
  IdAllocator<WdcsCircuitId> ids_;
};

}  // namespace griphon::sonet
