#include "telemetry/event_log.hpp"

#include <iomanip>
#include <sstream>

#include "telemetry/json_util.hpp"

namespace griphon::telemetry {

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kDebug:
      return "debug";
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "?";
}

void EventLog::set_capacity(std::size_t capacity) {
  MutexLock lock(&mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

void EventLog::log(SimTime when, Severity severity, std::string category,
                   std::string actor, std::string message,
                   CorrelationTag tag) {
  MutexLock lock(&mu_);
  if (events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  Event e;
  e.when = when;
  e.severity = severity;
  e.category = std::move(category);
  e.actor = std::move(actor);
  e.message = std::move(message);
  e.tag = tag;
  events_.push_back(std::move(e));
}

std::vector<const Event*> EventLog::at_least(Severity floor) const {
  MutexLock lock(&mu_);
  std::vector<const Event*> out;
  for (const Event& e : events_)
    if (e.severity >= floor) out.push_back(&e);
  return out;
}

std::vector<const Event*> EventLog::for_category(
    const std::string& category) const {
  MutexLock lock(&mu_);
  std::vector<const Event*> out;
  for (const Event& e : events_)
    if (e.category == category) out.push_back(&e);
  return out;
}

void EventLog::clear() {
  MutexLock lock(&mu_);
  events_.clear();
  dropped_ = 0;
}

std::string EventLog::to_json() const {
  MutexLock lock(&mu_);
  std::ostringstream os;
  os << "{\"dropped\":" << dropped_ << ",\"events\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) os << ",";
    first = false;
    os << "{\"t\":" << std::fixed << std::setprecision(6)
       << to_seconds(e.when) << ",\"severity\":\"" << to_string(e.severity)
       << "\",\"category\":" << json_quote(e.category)
       << ",\"actor\":" << json_quote(e.actor)
       << ",\"message\":" << json_quote(e.message) << ",\"tag\":" << e.tag
       << "}";
  }
  os << "]}";
  return os.str();
}

std::string EventLog::render(std::size_t last_n) const {
  MutexLock lock(&mu_);
  std::ostringstream os;
  os << "event log: " << events_.size() << " event(s)";
  if (dropped_ > 0) os << " (" << dropped_ << " dropped)";
  os << "\n";
  const std::size_t skip =
      events_.size() > last_n ? events_.size() - last_n : 0;
  std::size_t i = 0;
  for (const Event& e : events_) {
    if (i++ < skip) continue;
    os << "  " << std::fixed << std::setprecision(3) << std::setw(10)
       << to_seconds(e.when) << "s [" << std::setw(5) << to_string(e.severity)
       << "] " << std::setw(9) << e.category << "  " << e.actor << ": "
       << e.message;
    if (e.tag != 0) os << " (tag " << e.tag << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace griphon::telemetry
