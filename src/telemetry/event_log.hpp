// Structured operations event log: the "what happened and when" record
// that counters flatten away and spans scatter across trees.
//
// Components append severity-tagged events at notable transitions —
// connection lifecycle changes, EMS command retries, breaker open/close,
// resync audits, injected faults, SLO alerts — through the Telemetry
// facade (one pointer test when telemetry is off, same as metrics/spans).
//
// The log is a bounded ring: when full, the oldest event is dropped and
// `dropped_count` grows, so long soaks stay O(capacity) in memory while
// truncation remains visible. Events also become Chrome-trace instant
// events through TraceExporter, which is why they carry a correlation
// tag and an actor alongside the message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "telemetry/span.hpp"

namespace griphon::telemetry {

enum class Severity : std::uint8_t { kDebug, kInfo, kWarn, kError };

[[nodiscard]] const char* to_string(Severity s) noexcept;

struct Event {
  SimTime when{};
  Severity severity = Severity::kInfo;
  std::string category;  ///< "lifecycle", "retry", "breaker", "resync",
                         ///< "fault", "slo", ...
  std::string actor;     ///< e.g. "controller", "roadm-ems", "chaos"
  std::string message;
  CorrelationTag tag = 0;  ///< connection correlation (0 = untagged)
};

/// Concurrency (DESIGN.md §15): the ring is guarded by one mutex.
/// Accessors handing out references/pointers into the ring (events(),
/// at_least(), for_category()) serve the owner thread's export path —
/// concurrent log() calls may evict the pointees. Cross-thread consumers
/// use the value-returning to_json()/render().
class EventLog {
 public:
  explicit EventLog(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Shrinking below the current size drops the oldest events (counted).
  void set_capacity(std::size_t capacity) EXCLUDES(mu_);
  [[nodiscard]] std::size_t capacity() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return capacity_;
  }

  void log(SimTime when, Severity severity, std::string category,
           std::string actor, std::string message, CorrelationTag tag = 0)
      EXCLUDES(mu_);

  [[nodiscard]] const std::deque<Event>& events() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return events_;
  }
  [[nodiscard]] std::size_t size() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return events_.size();
  }
  /// Events evicted by the ring bound since construction/clear().
  [[nodiscard]] std::uint64_t dropped_count() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return dropped_;
  }
  /// Events at severity >= `floor` (insertion order preserved).
  [[nodiscard]] std::vector<const Event*> at_least(Severity floor) const
      EXCLUDES(mu_);
  [[nodiscard]] std::vector<const Event*> for_category(
      const std::string& category) const EXCLUDES(mu_);

  void clear() EXCLUDES(mu_);

  /// {"dropped":N,"events":[{...},...]} — times in seconds, newest last.
  [[nodiscard]] std::string to_json() const EXCLUDES(mu_);
  /// Human-readable tail (newest `last_n` events) for the shell.
  [[nodiscard]] std::string render(std::size_t last_n = 20) const
      EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::deque<Event> events_ GUARDED_BY(mu_);
  std::size_t capacity_ GUARDED_BY(mu_);
  std::uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

}  // namespace griphon::telemetry
