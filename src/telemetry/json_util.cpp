#include "telemetry/json_util.hpp"

#include <iomanip>
#include <sstream>

namespace griphon::telemetry {

void json_escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
}

std::string json_quote(std::string_view s) {
  std::ostringstream os;
  os << '"';
  json_escape(os, s);
  os << '"';
  return os.str();
}

}  // namespace griphon::telemetry
