// Small JSON emission helpers shared by the telemetry exporters
// (SpanTracer::to_json, TraceExporter, EventLog, GaugeSampler).
//
// This is deliberately not a JSON library: telemetry only ever *writes*
// JSON, and writing through an ostream keeps the exporters allocation-lean
// and byte-deterministic (fixed formatting, no map iteration ambiguity).
#pragma once

#include <ostream>
#include <string>
#include <string_view>

namespace griphon::telemetry {

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// included): ", \, newline, tab, and other control characters.
void json_escape(std::ostream& os, std::string_view s);

/// `s` escaped and wrapped in double quotes.
[[nodiscard]] std::string json_quote(std::string_view s);

}  // namespace griphon::telemetry
