#include "telemetry/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace griphon::telemetry {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty() || !std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::logic_error("telemetry: histogram bounds must be ascending");
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, rounded up as in nearest-rank).
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (static_cast<double>(cum) >= rank && buckets_[i] > 0) {
      if (i >= bounds_.size()) return bounds_.back();  // overflow bucket
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const auto below = static_cast<double>(cum - buckets_[i]);
      const double frac =
          (rank - below) / static_cast<double>(buckets_[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return bounds_.back();
}

std::vector<double> duration_buckets() {
  return {0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
          2.5,   5.0,   10.0, 20.0,  30.0, 45.0, 60.0, 75.0, 90.0,
          120.0, 180.0, 300.0};
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  auto& e = entries_[name];
  if (e.c == nullptr && e.g == nullptr && e.h == nullptr) {
    e.kind = Kind::kCounter;
    e.help = help;
    e.c = std::make_unique<Counter>();
  }
  if (e.kind != Kind::kCounter)
    throw std::logic_error("telemetry: " + name +
                           " already registered as a different kind");
  return e.c.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  auto& e = entries_[name];
  if (e.c == nullptr && e.g == nullptr && e.h == nullptr) {
    e.kind = Kind::kGauge;
    e.help = help;
    e.g = std::make_unique<Gauge>();
  }
  if (e.kind != Kind::kGauge)
    throw std::logic_error("telemetry: " + name +
                           " already registered as a different kind");
  return e.g.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds) {
  auto& e = entries_[name];
  if (e.c == nullptr && e.g == nullptr && e.h == nullptr) {
    e.kind = Kind::kHistogram;
    e.help = help;
    e.h = std::make_unique<Histogram>(std::move(bounds));
  }
  if (e.kind != Kind::kHistogram)
    throw std::logic_error("telemetry: " + name +
                           " already registered as a different kind");
  return e.h.get();
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.c.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.g.get();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.h.get();
}

namespace {

/// Plain decimal formatting (no exponent surprises for small counts).
std::string num(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::ostringstream os;
  for (const auto& [name, e] : entries_) {
    os << "# HELP " << name << ' ' << e.help << '\n';
    switch (e.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << ' ' << e.c->value() << '\n';
        break;
      case Kind::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << ' ' << num(e.g->value()) << '\n';
        break;
      case Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < e.h->bounds().size(); ++i) {
          cum += e.h->buckets()[i];
          os << name << "_bucket{le=\"" << num(e.h->bounds()[i]) << "\"} "
             << cum << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << e.h->count() << '\n';
        os << name << "_sum " << num(e.h->sum()) << '\n';
        os << name << "_count " << e.h->count() << '\n';
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::to_json_rows(const std::string& bench) const {
  std::ostringstream os;
  bool first = true;
  const auto row = [&](const std::string& metric, double value,
                       const std::string& unit) {
    os << (first ? "" : ",") << "\n  {\"bench\": \"" << bench
       << "\", \"metric\": \"" << metric << "\", \"value\": " << num(value)
       << ", \"unit\": \"" << unit << "\"}";
    first = false;
  };
  os << "[";
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        row(name, static_cast<double>(e.c->value()), "count");
        break;
      case Kind::kGauge:
        row(name, e.g->value(), "value");
        break;
      case Kind::kHistogram: {
        const bool secs = name.size() > 8 &&
                          name.compare(name.size() - 8, 8, "_seconds") == 0;
        const std::string unit = secs ? "s" : "value";
        row(name + "_count", static_cast<double>(e.h->count()), "count");
        row(name + "_sum", e.h->sum(), unit);
        row(name + "_p50", e.h->quantile(0.50), unit);
        row(name + "_p95", e.h->quantile(0.95), unit);
        row(name + "_p99", e.h->quantile(0.99), unit);
        break;
      }
    }
  }
  os << "\n]\n";
  return os.str();
}

bool MetricsRegistry::name_ok(const std::string& name) noexcept {
  constexpr const char* kPrefix = "griphon_";
  if (name.rfind(kPrefix, 0) != 0) return false;
  std::size_t tokens = 0;
  std::size_t token_len = 0;
  for (const char c : name) {
    if (c == '_') {
      if (token_len == 0) return false;  // empty token ("__" or leading '_')
      ++tokens;
      token_len = 0;
      continue;
    }
    if ((c < 'a' || c > 'z') && (c < '0' || c > '9')) return false;
    ++token_len;
  }
  if (token_len == 0) return false;  // trailing '_'
  ++tokens;
  return tokens >= 3;  // griphon + layer + name
}

std::vector<std::string> MetricsRegistry::invalid_names() const {
  std::vector<std::string> bad;
  for (const auto& [name, e] : entries_)
    if (!name_ok(name)) bad.push_back(name);
  return bad;
}

}  // namespace griphon::telemetry
