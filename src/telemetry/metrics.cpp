#include "telemetry/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace griphon::telemetry {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty() || !std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::logic_error("telemetry: histogram bounds must be ascending");
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  MutexLock lock(&mu_);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
}

std::uint64_t Histogram::count() const noexcept {
  MutexLock lock(&mu_);
  return count_;
}

double Histogram::sum() const noexcept {
  MutexLock lock(&mu_);
  return sum_;
}

std::vector<std::uint64_t> Histogram::buckets() const {
  MutexLock lock(&mu_);
  return buckets_;
}

double Histogram::quantile(double q) const noexcept {
  MutexLock lock(&mu_);
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, rounded up as in nearest-rank).
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (static_cast<double>(cum) >= rank && buckets_[i] > 0) {
      if (i >= bounds_.size()) return bounds_.back();  // overflow bucket
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const auto below = static_cast<double>(cum - buckets_[i]);
      const double frac =
          (rank - below) / static_cast<double>(buckets_[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return bounds_.back();
}

std::vector<double> duration_buckets() {
  return {0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
          2.5,   5.0,   10.0, 20.0,  30.0, 45.0, 60.0, 75.0, 90.0,
          120.0, 180.0, 300.0};
}

std::string MetricsRegistry::label_key(const Labels& labels) {
  if (labels.empty()) return {};
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first;
    out += "=\"";
    for (const char c : sorted[i].second) {
      if (c == '\n') {  // literal newline would break the exposition format
        out += "\\n";
        continue;
      }
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

MetricsRegistry::Family& MetricsRegistry::family_for_locked(
    const std::string& name, const std::string& help, Kind kind) {
  auto& f = families_[name];
  if (f.samples.empty()) {
    f.kind = kind;
    f.help = help;
  }
  if (f.kind != kind)
    throw std::logic_error("telemetry: " + name +
                           " already registered as a different kind");
  return f;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  MutexLock lock(&mu_);
  auto& s =
      family_for_locked(name, help, Kind::kCounter).samples[label_key(labels)];
  if (s.c == nullptr) {
    s.c = std::make_unique<Counter>();
    ++series_;
  }
  return s.c.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  MutexLock lock(&mu_);
  auto& s =
      family_for_locked(name, help, Kind::kGauge).samples[label_key(labels)];
  if (s.g == nullptr) {
    s.g = std::make_unique<Gauge>();
    ++series_;
  }
  return s.g.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds,
                                      const Labels& labels) {
  MutexLock lock(&mu_);
  auto& s = family_for_locked(name, help, Kind::kHistogram)
                .samples[label_key(labels)];
  if (s.h == nullptr) {
    s.h = std::make_unique<Histogram>(std::move(bounds));
    ++series_;
  }
  return s.h.get();
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(&mu_);
  return series_;
}

const MetricsRegistry::Sample* MetricsRegistry::find_sample_locked(
    const std::string& name, const Labels& labels) const {
  const auto it = families_.find(name);
  if (it == families_.end()) return nullptr;
  const auto sit = it->second.samples.find(label_key(labels));
  return sit == it->second.samples.end() ? nullptr : &sit->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const Labels& labels) const {
  MutexLock lock(&mu_);
  const Sample* s = find_sample_locked(name, labels);
  return s == nullptr ? nullptr : s->c.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         const Labels& labels) const {
  MutexLock lock(&mu_);
  const Sample* s = find_sample_locked(name, labels);
  return s == nullptr ? nullptr : s->g.get();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const Labels& labels) const {
  MutexLock lock(&mu_);
  const Sample* s = find_sample_locked(name, labels);
  return s == nullptr ? nullptr : s->h.get();
}

double MetricsRegistry::counter_family_sum(const std::string& name) const {
  MutexLock lock(&mu_);
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kCounter) return 0;
  double sum = 0;
  for (const auto& [labels, s] : it->second.samples)
    sum += static_cast<double>(s.c->value());
  return sum;
}

namespace {

/// Plain decimal formatting (no exponent surprises for small counts).
std::string num(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

namespace {

/// Merge an `le` bucket label into an existing label block ("" or
/// `{k="v",...}`), keeping Prometheus exposition syntax.
std::string with_le(const std::string& labels, const std::string& le) {
  if (labels.empty()) return "{le=\"" + le + "\"}";
  return labels.substr(0, labels.size() - 1) + ",le=\"" + le + "\"}";
}

/// HELP text escaping per the exposition format: backslash and newline
/// only (quotes are legal in HELP).
std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::ostringstream os;
  // Lock order (DESIGN.md §15): registry mu_ first, then each histogram's
  // internal lock via its accessors.
  MutexLock lock(&mu_);
  for (const auto& [name, f] : families_) {
    os << "# HELP " << name << ' ' << escape_help(f.help) << '\n';
    switch (f.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n";
        for (const auto& [labels, s] : f.samples)
          os << name << labels << ' ' << s.c->value() << '\n';
        break;
      case Kind::kGauge:
        os << "# TYPE " << name << " gauge\n";
        for (const auto& [labels, s] : f.samples)
          os << name << labels << ' ' << num(s.g->value()) << '\n';
        break;
      case Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        for (const auto& [labels, s] : f.samples) {
          // One coherent copy per series: buckets/count/sum must agree
          // within a single exposition even under concurrent observe().
          const std::vector<std::uint64_t> buckets = s.h->buckets();
          const std::vector<double>& bounds = s.h->bounds();
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < bounds.size(); ++i) {
            cum += buckets[i];
            os << name << "_bucket" << with_le(labels, num(bounds[i]))
               << ' ' << cum << '\n';
          }
          cum += buckets.back();  // overflow
          os << name << "_bucket" << with_le(labels, "+Inf") << ' ' << cum
             << '\n';
          os << name << "_sum" << labels << ' ' << num(s.h->sum()) << '\n';
          os << name << "_count" << labels << ' ' << cum << '\n';
        }
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::to_json_rows(const std::string& bench) const {
  std::ostringstream os;
  bool first = true;
  const auto esc = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  const auto row = [&](const std::string& metric, double value,
                       const std::string& unit) {
    os << (first ? "" : ",") << "\n  {\"bench\": \"" << bench
       << "\", \"metric\": \"" << esc(metric)
       << "\", \"value\": " << num(value) << ", \"unit\": \"" << unit
       << "\"}";
    first = false;
  };
  os << "[";
  MutexLock lock(&mu_);
  for (const auto& [name, f] : families_) {
    for (const auto& [labels, s] : f.samples) {
      switch (f.kind) {
        case Kind::kCounter:
          row(name + labels, static_cast<double>(s.c->value()), "count");
          break;
        case Kind::kGauge:
          row(name + labels, s.g->value(), "value");
          break;
        case Kind::kHistogram: {
          const bool secs = name.size() > 8 &&
                            name.compare(name.size() - 8, 8, "_seconds") == 0;
          const std::string unit = secs ? "s" : "value";
          row(name + "_count" + labels, static_cast<double>(s.h->count()),
              "count");
          row(name + "_sum" + labels, s.h->sum(), unit);
          row(name + "_p50" + labels, s.h->quantile(0.50), unit);
          row(name + "_p95" + labels, s.h->quantile(0.95), unit);
          row(name + "_p99" + labels, s.h->quantile(0.99), unit);
          break;
        }
      }
    }
  }
  os << "\n]\n";
  return os.str();
}

bool MetricsRegistry::name_ok(const std::string& name) noexcept {
  constexpr const char* kPrefix = "griphon_";
  if (name.rfind(kPrefix, 0) != 0) return false;
  std::size_t tokens = 0;
  std::size_t token_len = 0;
  for (const char c : name) {
    if (c == '_') {
      if (token_len == 0) return false;  // empty token ("__" or leading '_')
      ++tokens;
      token_len = 0;
      continue;
    }
    if ((c < 'a' || c > 'z') && (c < '0' || c > '9')) return false;
    ++token_len;
  }
  if (token_len == 0) return false;  // trailing '_'
  ++tokens;
  return tokens >= 3;  // griphon + layer + name
}

std::vector<std::string> MetricsRegistry::invalid_names() const {
  // The scheme governs family names; label blocks are free-form.
  MutexLock lock(&mu_);
  std::vector<std::string> bad;
  for (const auto& [name, f] : families_)
    if (!name_ok(name)) bad.push_back(name);
  return bad;
}

}  // namespace griphon::telemetry
