// Metrics registry: counters, gauges and fixed-bucket histograms.
//
// Every instrumented layer registers metrics under the naming scheme
// `griphon_<layer>_<name>` (lower-case, underscore-separated; duration
// histograms end in `_seconds`). The registry exports two formats:
//  * Prometheus text exposition (to_prometheus) for scraping/diffing, and
//  * the bench emit_json.hpp row format (to_json_rows) so telemetry feeds
//    the same BENCH_*.json perf trajectory the benches write.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime, so hot paths register once and increment through a
// cached pointer. A component whose deployment has no telemetry attached
// never touches the registry at all — that is the no-sink fast path.
//
// Metrics may carry labels (e.g. {customer="3"}): each distinct label set
// is its own independently incremented series under the family name. The
// naming scheme applies to the family name; labels are free-form key/value
// pairs rendered in Prometheus exposition syntax.
// Concurrency (DESIGN.md §15): Counter/Gauge are single machine words and
// use relaxed atomics — any thread may bump them through a cached handle
// with no lock. Histogram and the registry itself are multi-word and take
// a Mutex; exposition (to_prometheus / to_json_rows) locks the registry
// first, then each histogram (that is the documented lock order).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.hpp"

namespace griphon::telemetry {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram. Bounds are ascending upper bounds; observations
/// above the last bound land in an implicit +Inf overflow bucket.
/// Quantiles are estimated by linear interpolation inside the bucket that
/// holds the target rank (0 is assumed to be the lower edge of the first
/// bucket — observations are non-negative durations/sizes).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x) noexcept EXCLUDES(mu_);

  [[nodiscard]] std::uint64_t count() const noexcept EXCLUDES(mu_);
  [[nodiscard]] double sum() const noexcept EXCLUDES(mu_);
  /// q in [0, 1]. Returns 0 on an empty histogram; ranks falling in the
  /// overflow bucket are clamped to the last finite bound.
  [[nodiscard]] double quantile(double q) const noexcept EXCLUDES(mu_);

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket (non-cumulative) count; index bounds_.size() = overflow.
  /// Returned by value: a coherent copy taken under the lock.
  [[nodiscard]] std::vector<std::uint64_t> buckets() const EXCLUDES(mu_);

 private:
  const std::vector<double> bounds_;  ///< immutable after construction

  mutable Mutex mu_;
  // bounds_.size() + 1 entries (overflow last).
  std::vector<std::uint64_t> buckets_ GUARDED_BY(mu_);
  std::uint64_t count_ GUARDED_BY(mu_) = 0;
  double sum_ GUARDED_BY(mu_) = 0;
};

/// Default buckets for duration histograms, in seconds: 1 ms .. 300 s,
/// dense through the paper's 60-70 s setup band.
[[nodiscard]] std::vector<double> duration_buckets();

/// One metric label, e.g. {"customer", "3"}. A label set identifies a
/// series within a metric family; it is canonicalized (sorted by key) at
/// registration so argument order never splits a series.
using Labels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  /// Register (or fetch) a metric series. Registration is idempotent: the
  /// same (name, labels) always returns the same handle. Registering a
  /// name twice with a different metric kind throws std::logic_error.
  /// Handles stay valid for the registry's lifetime (series are
  /// unique_ptr-owned, so rehash/rebalance never moves them).
  Counter* counter(const std::string& name, const std::string& help,
                   const Labels& labels = {}) EXCLUDES(mu_);
  Gauge* gauge(const std::string& name, const std::string& help,
               const Labels& labels = {}) EXCLUDES(mu_);
  Histogram* histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds = duration_buckets(),
                       const Labels& labels = {}) EXCLUDES(mu_);

  /// Number of registered series (each label set counts separately).
  [[nodiscard]] std::size_t size() const EXCLUDES(mu_);
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const Labels& labels = {}) const
      EXCLUDES(mu_);
  [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                        const Labels& labels = {}) const
      EXCLUDES(mu_);
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name, const Labels& labels = {}) const EXCLUDES(mu_);
  /// Sum of every series' value in a counter family (0 if the family is
  /// absent or not a counter family) — the fleet-wide total for families
  /// that only register labeled series.
  [[nodiscard]] double counter_family_sum(const std::string& name) const
      EXCLUDES(mu_);

  /// Prometheus text exposition format (# HELP / # TYPE / samples).
  [[nodiscard]] std::string to_prometheus() const EXCLUDES(mu_);
  /// emit_json.hpp row format: a JSON array of {bench, metric, value, unit}
  /// rows. Histograms expand to _count/_sum/_p50/_p95/_p99 rows.
  [[nodiscard]] std::string to_json_rows(const std::string& bench) const
      EXCLUDES(mu_);

  /// True iff `name` matches the scheme griphon_<layer>_<name>: lower-case
  /// [a-z0-9_], `griphon_` prefix, at least three `_`-separated tokens,
  /// no empty token.
  [[nodiscard]] static bool name_ok(const std::string& name) noexcept;
  /// Registered names violating the scheme (empty = all conform).
  [[nodiscard]] std::vector<std::string> invalid_names() const EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Sample {
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    /// Series keyed by rendered label block ("" = unlabeled).
    std::map<std::string, Sample> samples;
  };

  /// Canonical `{k="v",...}` block (sorted by key; "" for no labels).
  [[nodiscard]] static std::string label_key(const Labels& labels);
  Family& family_for_locked(const std::string& name, const std::string& help,
                            Kind kind) REQUIRES(mu_);
  [[nodiscard]] const Sample* find_sample_locked(const std::string& name,
                                                 const Labels& labels) const
      REQUIRES(mu_);

  mutable Mutex mu_;
  // Ordered map: exposition output is sorted and therefore diffable.
  std::map<std::string, Family> families_ GUARDED_BY(mu_);
  std::size_t series_ GUARDED_BY(mu_) = 0;
};

}  // namespace griphon::telemetry
