#include "telemetry/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "telemetry/json_util.hpp"
#include "telemetry/telemetry.hpp"

namespace griphon::telemetry {

void TimeSeries::push(SimTime at, double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  last_ = value;
  if (points_.size() == capacity_) {
    points_.pop_front();
    ++dropped_;
  }
  points_.push_back({at, value});
}

TimeSeries::Rollup TimeSeries::rollup() const noexcept {
  Rollup r;
  r.count = count_;
  r.min = min_;
  r.max = max_;
  r.mean = count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  r.last = last_;
  return r;
}

std::vector<double> TimeSeries::window(SimTime from, SimTime until) const {
  std::vector<double> out;
  for (const Point& p : points_)
    if (p.at >= from && p.at <= until) out.push_back(p.value);
  return out;
}

std::string TimeSeries::spark(std::size_t width) const {
  // 9 ASCII levels, low to high.
  static constexpr char kRamp[] = {'.', ':', '-', '=', '+',
                                   '*', '#', '%', '@'};
  static constexpr int kLevels = 9;
  if (points_.empty() || width == 0) return {};
  const std::size_t n = std::min(width, points_.size());
  const std::size_t skip = points_.size() - n;
  double lo = 0;
  double hi = 0;
  bool first = true;
  std::size_t i = 0;
  for (const Point& p : points_) {
    if (i++ < skip) continue;
    if (first) {
      lo = hi = p.value;
      first = false;
    } else {
      lo = std::min(lo, p.value);
      hi = std::max(hi, p.value);
    }
  }
  std::string out;
  out.reserve(n);
  const double span = hi - lo;
  i = 0;
  for (const Point& p : points_) {
    if (i++ < skip) continue;
    int level = kLevels / 2;
    if (span > 0) {
      level = static_cast<int>((p.value - lo) / span * (kLevels - 1) + 0.5);
      level = std::clamp(level, 0, kLevels - 1);
    }
    out.push_back(kRamp[level]);
  }
  return out;
}

GaugeSampler::GaugeSampler(sim::Engine* engine, Telemetry* telemetry,
                           std::size_t ring_capacity)
    : engine_(engine),
      telemetry_(telemetry),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

GaugeSampler::~GaugeSampler() { stop(); }

void GaugeSampler::add_probe(std::string name, std::string unit,
                             std::function<double()> probe) {
  for (Probe& p : probes_) {
    if (p.name == name) {
      p.unit = std::move(unit);
      p.fn = std::move(probe);
      return;
    }
  }
  Probe p;
  p.name = std::move(name);
  p.unit = std::move(unit);
  p.fn = std::move(probe);
  p.series = TimeSeries{ring_capacity_};
  probes_.push_back(std::move(p));
  if (telemetry_ != nullptr)
    telemetry_->metrics()
        .gauge("griphon_sampler_probes_registered",
               "Probes registered with the gauge sampler")
        ->set(static_cast<double>(probes_.size()));
}

void GaugeSampler::start(SimTime period) {
  stop();
  period_ = period.count() > 0 ? period : SimTime{1};
  running_ = true;
  sample_now();
  schedule_tick();
}

void GaugeSampler::stop() {
  if (!running_) return;
  running_ = false;
  engine_->cancel(pending_);
  pending_ = sim::EventHandle{};
}

void GaugeSampler::schedule_tick() {
  pending_ = engine_->schedule(period_, [this] {
    if (!running_) return;
    sample_now();
    schedule_tick();
  });
}

void GaugeSampler::sample_now() {
  const SimTime now = engine_->now();
  for (Probe& p : probes_) {
    const double v = p.fn ? p.fn() : 0.0;
    p.series.push(now, std::isfinite(v) ? v : 0.0);
  }
  ++ticks_;
  if (telemetry_ != nullptr)
    telemetry_->metrics()
        .counter("griphon_sampler_ticks_total",
                 "Sampling ticks taken by the gauge sampler")
        ->inc();
}

std::vector<std::string> GaugeSampler::names() const {
  std::vector<std::string> out;
  out.reserve(probes_.size());
  for (const Probe& p : probes_) out.push_back(p.name);
  return out;
}

const TimeSeries* GaugeSampler::series(const std::string& name) const {
  for (const Probe& p : probes_)
    if (p.name == name) return &p.series;
  return nullptr;
}

const std::string* GaugeSampler::unit_of(const std::string& name) const {
  for (const Probe& p : probes_)
    if (p.name == name) return &p.unit;
  return nullptr;
}

namespace {
void emit_rollup(std::ostream& os, const TimeSeries::Rollup& r) {
  os << "\"count\":" << r.count << ",\"min\":" << std::fixed
     << std::setprecision(6) << r.min << ",\"max\":" << r.max
     << ",\"mean\":" << r.mean << ",\"last\":" << r.last;
}
}  // namespace

std::string GaugeSampler::to_json() const {
  std::ostringstream os;
  os << "{\"period_s\":" << std::fixed << std::setprecision(6)
     << to_seconds(period_) << ",\"ticks\":" << ticks_ << ",\"series\":[";
  bool first = true;
  for (const Probe& p : probes_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":" << json_quote(p.name)
       << ",\"unit\":" << json_quote(p.unit) << ",";
    emit_rollup(os, p.series.rollup());
    os << ",\"dropped\":" << p.series.dropped_count() << ",\"points\":[";
    bool first_pt = true;
    for (const TimeSeries::Point& pt : p.series.points()) {
      if (!first_pt) os << ",";
      first_pt = false;
      os << "[" << std::fixed << std::setprecision(6) << to_seconds(pt.at)
         << "," << pt.value << "]";
    }
    os << "]}";
  }
  os << "\n]}";
  return os.str();
}

std::string GaugeSampler::to_csv() const {
  std::ostringstream os;
  os << "t_seconds";
  for (const Probe& p : probes_) os << "," << p.name;
  os << "\n";
  // Rings share capacity and cadence, so row i of every series carries
  // the same timestamp; the shortest ring bounds the exported rows.
  std::size_t rows = 0;
  bool any = false;
  for (const Probe& p : probes_) {
    const std::size_t n = p.series.points().size();
    rows = any ? std::min(rows, n) : n;
    any = true;
  }
  if (!any) return os.str();
  for (std::size_t i = 0; i < rows; ++i) {
    bool wrote_t = false;
    for (const Probe& p : probes_) {
      const std::size_t n = p.series.points().size();
      const TimeSeries::Point& pt = p.series.points()[n - rows + i];
      if (!wrote_t) {
        os << std::fixed << std::setprecision(6) << to_seconds(pt.at);
        wrote_t = true;
      }
      os << "," << std::fixed << std::setprecision(6) << pt.value;
    }
    os << "\n";
  }
  return os.str();
}

std::string GaugeSampler::rollups_json() const {
  std::ostringstream os;
  os << "{\"series\":[";
  bool first = true;
  for (const Probe& p : probes_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":" << json_quote(p.name)
       << ",\"unit\":" << json_quote(p.unit) << ",";
    emit_rollup(os, p.series.rollup());
    os << "}";
  }
  os << "\n]}";
  return os.str();
}

}  // namespace griphon::telemetry
