// Sim-clock gauge sampling into bounded time series.
//
// A GaugeSampler owns a set of named probes (std::function<double()>)
// and, once started, snapshots every probe on a fixed sim-time cadence
// into a per-probe TimeSeries ring. The rings are bounded (old points
// fall off; rollups stay cumulative over the whole run), so a week-long
// soak costs the same memory as a minute.
//
// Probes are registered by the layer that owns the state — pool
// occupancy and queue depths by core (see core::install_standard_probes),
// calendar occupancy by bod — keeping the telemetry layer free of
// upward dependencies. Export is JSON (points + rollups; the
// SERIES_*.json files consumed by tools/bench_diff.py --series) and CSV
// (one row per tick, one column per probe — rings share the cadence so
// rows stay aligned).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/engine.hpp"

namespace griphon::telemetry {

class Telemetry;

/// Bounded ring of (sim time, value) points with cumulative rollups.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = 512)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  struct Point {
    SimTime at{};
    double value = 0;
  };

  struct Rollup {
    std::uint64_t count = 0;  ///< samples ever pushed (not just retained)
    double min = 0;
    double max = 0;
    double mean = 0;
    double last = 0;
  };

  void push(SimTime at, double value);

  [[nodiscard]] const std::deque<Point>& points() const noexcept {
    return points_;
  }
  /// Cumulative over every sample ever pushed, ring eviction or not.
  [[nodiscard]] Rollup rollup() const noexcept;
  /// Retained values with `from <= at <= until`, oldest first.
  [[nodiscard]] std::vector<double> window(SimTime from, SimTime until) const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Points evicted by the ring bound.
  [[nodiscard]] std::uint64_t dropped_count() const noexcept {
    return dropped_;
  }

  /// ASCII sparkline of the newest `width` retained points, scaled to the
  /// retained min..max (flat series render as all-mid).
  [[nodiscard]] std::string spark(std::size_t width = 60) const;

 private:
  std::deque<Point> points_;
  std::size_t capacity_;
  std::uint64_t count_ = 0;
  std::uint64_t dropped_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
  double last_ = 0;
};

class GaugeSampler {
 public:
  /// `telemetry` (optional) receives griphon_sampler_* bookkeeping
  /// metrics; the sampler itself is usable without it.
  explicit GaugeSampler(sim::Engine* engine, Telemetry* telemetry = nullptr,
                        std::size_t ring_capacity = 512);

  GaugeSampler(const GaugeSampler&) = delete;
  GaugeSampler& operator=(const GaugeSampler&) = delete;
  ~GaugeSampler();

  /// Register a probe. Names must be unique; re-registering a name
  /// replaces the probe function but keeps the series.
  void add_probe(std::string name, std::string unit,
                 std::function<double()> probe);

  /// Begin periodic sampling every `period` (also samples immediately).
  void start(SimTime period);
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] SimTime period() const noexcept { return period_; }

  /// Snapshot every probe once at the current sim time.
  void sample_now();

  [[nodiscard]] std::size_t probe_count() const noexcept {
    return probes_.size();
  }
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] const TimeSeries* series(const std::string& name) const;
  [[nodiscard]] const std::string* unit_of(const std::string& name) const;
  [[nodiscard]] std::uint64_t tick_count() const noexcept { return ticks_; }

  /// {"period_s":..,"ticks":..,"series":[{name,unit,rollup,points},...]}
  [[nodiscard]] std::string to_json() const;
  /// Wide CSV: header "t_seconds,<probe>..." then one row per tick.
  [[nodiscard]] std::string to_csv() const;
  /// Rollups only (no points): the SERIES_*.json summary format that
  /// tools/bench_diff.py --series diffs between baselines.
  [[nodiscard]] std::string rollups_json() const;

 private:
  struct Probe {
    std::string name;
    std::string unit;
    std::function<double()> fn;
    TimeSeries series;
  };

  void schedule_tick();

  sim::Engine* engine_;
  Telemetry* telemetry_;
  std::size_t ring_capacity_;
  std::vector<Probe> probes_;  // registration order (stable export order)
  bool running_ = false;
  SimTime period_{};
  sim::EventHandle pending_{};
  std::uint64_t ticks_ = 0;
};

}  // namespace griphon::telemetry
