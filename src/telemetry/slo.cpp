#include "telemetry/slo.hpp"

#include <iomanip>
#include <sstream>

#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace griphon::telemetry {

void SloMonitor::add_objective(Objective objective) {
  State s;
  s.objective = std::move(objective);
  objectives_.push_back(std::move(s));
  if (telemetry_ != nullptr)
    telemetry_->metrics()
        .gauge("griphon_slo_alert_active",
               "1 while the objective's alert is firing",
               {{"objective", objectives_.back().objective.name}})
        ->set(0);
}

void SloMonitor::start(SimTime period) {
  stop();
  period_ = period.count() > 0 ? period : SimTime{1};
  running_ = true;
  schedule_tick();
}

void SloMonitor::stop() {
  if (!running_) return;
  running_ = false;
  engine_->cancel(pending_);
  pending_ = sim::EventHandle{};
}

void SloMonitor::schedule_tick() {
  pending_ = engine_->schedule(period_, [this] {
    if (!running_) return;
    evaluate_now();
    schedule_tick();
  });
}

std::size_t SloMonitor::evaluate_now() {
  for (State& s : objectives_) evaluate(s);
  if (telemetry_ != nullptr)
    telemetry_->metrics()
        .counter("griphon_slo_evaluations_total",
                 "SLO evaluation sweeps performed")
        ->inc();
  return active_alerts();
}

void SloMonitor::evaluate(State& s) {
  const double v = s.objective.value ? s.objective.value() : std::nan("");
  if (std::isnan(v)) return;  // no data: leave both streaks untouched
  s.last_value = v;
  s.has_value = true;
  const bool ok = v <= s.objective.bound;
  Telemetry* t = telemetry_;
  const Labels labels{{"objective", s.objective.name}};
  if (!ok) {
    s.good_streak = 0;
    ++s.bad_streak;
    if (t != nullptr)
      t->metrics()
          .counter("griphon_slo_violations_total",
                   "Evaluations that measured the objective out of bound",
                   labels)
          ->inc();
    if (!s.alerting && s.bad_streak >= s.objective.trip_after) {
      s.alerting = true;
      ++s.fired;
      if (t != nullptr) {
        t->metrics()
            .counter("griphon_slo_alerts_fired_total",
                     "Alerts fired after trip_after consecutive violations",
                     labels)
            ->inc();
        t->metrics()
            .gauge("griphon_slo_alert_active",
                   "1 while the objective's alert is firing", labels)
            ->set(1);
        std::ostringstream msg;
        msg << s.objective.name << " out of budget: " << std::fixed
            << std::setprecision(3) << v << " > " << s.objective.bound
            << " (" << s.objective.description << ")";
        t->event(Severity::kError, "slo", "slo-monitor", msg.str());
      }
    }
  } else {
    s.bad_streak = 0;
    ++s.good_streak;
    if (s.alerting && s.good_streak >= s.objective.clear_after) {
      s.alerting = false;
      if (t != nullptr) {
        t->metrics()
            .gauge("griphon_slo_alert_active",
                   "1 while the objective's alert is firing", labels)
            ->set(0);
        std::ostringstream msg;
        msg << s.objective.name << " back in budget: " << std::fixed
            << std::setprecision(3) << v << " <= " << s.objective.bound;
        t->event(Severity::kInfo, "slo", "slo-monitor", msg.str());
      }
    }
  }
}

std::vector<SloMonitor::StatusRow> SloMonitor::status() const {
  std::vector<StatusRow> out;
  out.reserve(objectives_.size());
  for (const State& s : objectives_) {
    StatusRow row;
    row.name = s.objective.name;
    row.description = s.objective.description;
    row.value = s.last_value;
    row.bound = s.objective.bound;
    row.alerting = s.alerting;
    row.fired_count = s.fired;
    out.push_back(std::move(row));
  }
  return out;
}

std::size_t SloMonitor::active_alerts() const noexcept {
  std::size_t n = 0;
  for (const State& s : objectives_)
    if (s.alerting) ++n;
  return n;
}

bool SloMonitor::alerting(const std::string& name) const {
  for (const State& s : objectives_)
    if (s.objective.name == name) return s.alerting;
  return false;
}

std::string SloMonitor::render() const {
  std::ostringstream os;
  os << "SLOs (" << active_alerts() << " alerting):\n";
  for (const State& s : objectives_) {
    os << "  [" << (s.alerting ? "ALERT" : "  ok ") << "] " << std::left
       << std::setw(24) << s.objective.name << std::right << " ";
    if (s.has_value)
      os << std::fixed << std::setprecision(3) << std::setw(10)
         << s.last_value;
    else
      os << std::setw(10) << "n/a";
    os << " / budget " << std::fixed << std::setprecision(3)
       << s.objective.bound;
    if (s.fired > 0) os << "  (fired " << s.fired << "x)";
    os << "\n";
  }
  return os.str();
}

// --- canonical objectives ---------------------------------------------------

namespace {
double histogram_p95(const MetricsRegistry& m, const std::string& name) {
  const Histogram* h = m.find_histogram(name);
  if (h == nullptr || h->count() == 0) return std::nan("");
  return h->quantile(0.95);
}

double counter_value(const MetricsRegistry& m, const std::string& name) {
  const Counter* c = m.find_counter(name);
  return c == nullptr ? 0.0 : static_cast<double>(c->value());
}
}  // namespace

Objective setup_latency_objective(const MetricsRegistry& m,
                                  double budget_seconds) {
  Objective o;
  o.name = "setup_latency_p95";
  o.description = "connection setup p95 within the paper's budget";
  o.bound = budget_seconds;
  o.value = [&m] {
    return histogram_p95(m, "griphon_controller_setup_seconds");
  };
  return o;
}

Objective restoration_time_objective(const MetricsRegistry& m,
                                     double budget_seconds) {
  Objective o;
  o.name = "restoration_time_p95";
  o.description = "restoration p95 within the paper's budget";
  o.bound = budget_seconds;
  o.value = [&m] {
    return histogram_p95(m, "griphon_controller_restore_seconds");
  };
  return o;
}

Objective blocking_rate_objective(const MetricsRegistry& m, double ceiling) {
  Objective o;
  o.name = "blocking_rate";
  o.description = "share of setups refused or failed";
  o.bound = ceiling;
  o.value = [&m] {
    const double ok = counter_value(m, "griphon_controller_setups_ok_total");
    const double bad =
        counter_value(m, "griphon_controller_setups_failed_total");
    const double total = ok + bad;
    return total == 0 ? std::nan("") : bad / total;
  };
  return o;
}

Objective bod_deadline_miss_objective(const MetricsRegistry& m,
                                      double ceiling) {
  Objective o;
  o.name = "bod_deadline_miss_rate";
  o.description = "share of bulk transfers missing their deadline";
  o.bound = ceiling;
  o.value = [&m] {
    // BoD counters are per-customer series only; each transfer increments
    // exactly one series, so the family sum is the fleet total.
    const double met =
        m.counter_family_sum("griphon_bod_deadlines_met_total");
    const double missed =
        m.counter_family_sum("griphon_bod_deadlines_missed_total");
    const double total = met + missed;
    return total == 0 ? std::nan("") : missed / total;
  };
  return o;
}

Objective restoration_backlog_objective(const MetricsRegistry& m,
                                        double ceiling) {
  Objective o;
  o.name = "restoration_backlog";
  o.description = "failed restorations parked on retry within bound";
  o.bound = ceiling;
  o.value = [&m] {
    const Gauge* g = m.find_gauge("griphon_restoration_backlog_depth");
    return g == nullptr ? std::nan("") : g->value();
  };
  return o;
}

}  // namespace griphon::telemetry
