// Declarative service-level objectives with hysteresis.
//
// An Objective is "this measured value must stay within bound": setup
// latency p95 under the paper's ~60 s budget, restoration under ~100 s,
// blocking rate under a ceiling, BoD deadline-miss rate under a ceiling.
// The monitor evaluates every objective on a sim-clock cadence (typically
// the sampler cadence) and applies hysteresis: an alert fires only after
// `trip_after` consecutive violating evaluations and clears only after
// `clear_after` consecutive healthy ones — a single noisy window neither
// pages nor silences.
//
// Firing/clearing writes an EventLog entry (category "slo") and updates
// griphon_slo_* metrics, so alerts appear in the trace export, the shell
// dashboard, and the Prometheus dump alike.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/engine.hpp"

namespace griphon::telemetry {

class MetricsRegistry;
class Telemetry;

struct Objective {
  std::string name;         ///< e.g. "setup_latency_p95"
  std::string description;  ///< shown on the dashboard and in alerts
  /// Current measurement. Return NaN for "no data yet" — such an
  /// evaluation leaves both hysteresis streaks untouched.
  std::function<double()> value;
  double bound = 0;     ///< objective holds while value <= bound
  int trip_after = 3;   ///< consecutive violations before the alert fires
  int clear_after = 3;  ///< consecutive healthy evals before it clears
};

class SloMonitor {
 public:
  /// `telemetry` receives alert events + griphon_slo_* metrics; it may be
  /// null (the monitor still tracks state, e.g. in unit tests).
  explicit SloMonitor(sim::Engine* engine, Telemetry* telemetry = nullptr)
      : engine_(engine), telemetry_(telemetry) {}

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;
  ~SloMonitor() { stop(); }

  void add_objective(Objective objective);
  [[nodiscard]] std::size_t objective_count() const noexcept {
    return objectives_.size();
  }

  /// Begin periodic evaluation every `period` (no immediate evaluation:
  /// the first window should contain data).
  void start(SimTime period);
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Evaluate every objective once, now. Returns the number of active
  /// alerts after evaluation.
  std::size_t evaluate_now();

  struct StatusRow {
    std::string name;
    std::string description;
    double value = std::nan("");  ///< last measured (NaN = no data yet)
    double bound = 0;
    bool alerting = false;
    std::uint64_t fired_count = 0;  ///< times this alert has fired
  };
  [[nodiscard]] std::vector<StatusRow> status() const;
  [[nodiscard]] std::size_t active_alerts() const noexcept;
  [[nodiscard]] bool alerting(const std::string& name) const;

  /// Dashboard block: one line per objective, OK/ALERT + value vs bound.
  [[nodiscard]] std::string render() const;

 private:
  struct State {
    Objective objective;
    double last_value = std::nan("");
    bool has_value = false;
    int bad_streak = 0;
    int good_streak = 0;
    bool alerting = false;
    std::uint64_t fired = 0;
  };

  void schedule_tick();
  void evaluate(State& s);

  sim::Engine* engine_;
  Telemetry* telemetry_;
  std::vector<State> objectives_;
  bool running_ = false;
  SimTime period_{};
  sim::EventHandle pending_{};
};

// --- canonical GRIPhoN objectives ------------------------------------------
// Helpers wiring the paper's operational budgets to the metric families
// the layers already export. They read the registry by family name only,
// so the telemetry layer stays free of upward dependencies.

/// p95 of griphon_controller_setup_seconds <= budget (paper: ~60 s).
[[nodiscard]] Objective setup_latency_objective(const MetricsRegistry& m,
                                                double budget_seconds);
/// p95 of griphon_controller_restore_seconds <= budget (paper: ~100 s).
[[nodiscard]] Objective restoration_time_objective(const MetricsRegistry& m,
                                                   double budget_seconds);
/// setups_failed / (setups_ok + setups_failed) <= ceiling.
[[nodiscard]] Objective blocking_rate_objective(const MetricsRegistry& m,
                                                double ceiling);
/// deadlines_missed / (met + missed) <= ceiling, over BoD transfers.
[[nodiscard]] Objective bod_deadline_miss_objective(const MetricsRegistry& m,
                                                    double ceiling);
/// griphon_restoration_backlog_depth <= ceiling — connections that failed
/// restoration and are parked on retry timers. A persistently deep
/// backlog is the degraded-mode signal of a restoration storm that the
/// plant cannot absorb. Reads NaN until the controller first publishes
/// the gauge (monitor streaks stay frozen on an idle plane).
[[nodiscard]] Objective restoration_backlog_objective(
    const MetricsRegistry& m, double ceiling);

}  // namespace griphon::telemetry
