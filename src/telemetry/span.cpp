#include "telemetry/span.hpp"

#include <iomanip>
#include <sstream>

#include "telemetry/json_util.hpp"

namespace griphon::telemetry {

SpanId SpanTracer::start(std::string name, std::string actor,
                         CorrelationTag tag, SpanId parent, SimTime now) {
  MutexLock lock(&mu_);
  Span s;
  s.id = next_++;
  s.parent = parent;
  s.tag = tag;
  if (s.tag == 0 && parent != 0) {
    if (const Span* p = find_locked(parent)) s.tag = p->tag;
  }
  s.name = std::move(name);
  s.actor = std::move(actor);
  s.start = now;
  s.end = now;
  index_[s.id] = spans_.size();
  spans_.push_back(std::move(s));
  ++open_;
  return spans_.back().id;
}

void SpanTracer::end(SpanId id, SimTime now, bool ok, std::string detail) {
  if (id == 0) return;
  MutexLock lock(&mu_);
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  Span& s = spans_[it->second];
  if (s.done) return;
  s.end = now;
  s.done = true;
  s.ok = ok;
  if (!detail.empty()) s.detail = std::move(detail);
  --open_;
}

SpanId SpanTracer::record(std::string name, std::string actor,
                          CorrelationTag tag, SpanId parent, SimTime start,
                          SimTime end, bool ok, std::string detail) {
  MutexLock lock(&mu_);
  Span s;
  s.id = next_++;
  s.parent = parent;
  s.tag = tag;
  if (s.tag == 0 && parent != 0) {
    if (const Span* p = find_locked(parent)) s.tag = p->tag;
  }
  s.name = std::move(name);
  s.actor = std::move(actor);
  s.detail = std::move(detail);
  s.start = start;
  s.end = end;
  s.done = true;
  s.ok = ok;
  index_[s.id] = spans_.size();
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

const Span* SpanTracer::find_locked(SpanId id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

const Span* SpanTracer::find(SpanId id) const {
  MutexLock lock(&mu_);
  return find_locked(id);
}

std::vector<const Span*> SpanTracer::for_tag(CorrelationTag tag) const {
  MutexLock lock(&mu_);
  std::vector<const Span*> out;
  for (const Span& s : spans_)
    if (s.tag == tag) out.push_back(&s);
  return out;
}

std::vector<const Span*> SpanTracer::children_of(SpanId id) const {
  MutexLock lock(&mu_);
  std::vector<const Span*> out;
  for (const Span& s : spans_)
    if (s.parent == id) out.push_back(&s);
  return out;
}

void SpanTracer::clear() {
  MutexLock lock(&mu_);
  spans_.clear();
  index_.clear();
  open_ = 0;
}

std::string SpanTracer::to_json(CorrelationTag tag) const {
  MutexLock lock(&mu_);
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const Span& s : spans_) {
    if (tag != 0 && s.tag != tag) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << s.id << ",\"parent\":" << s.parent
       << ",\"tag\":" << s.tag << ",\"name\":\"";
    json_escape(os, s.name);
    os << "\",\"actor\":\"";
    json_escape(os, s.actor);
    os << "\",\"start\":" << std::fixed << std::setprecision(6)
       << to_seconds(s.start) << ",\"end\":" << to_seconds(s.end)
       << ",\"done\":" << (s.done ? "true" : "false")
       << ",\"ok\":" << (s.ok ? "true" : "false") << ",\"detail\":\"";
    json_escape(os, s.detail);
    os << "\"}";
  }
  os << "]";
  return os.str();
}

}  // namespace griphon::telemetry
