// Phase-span tracing layered on simulated time.
//
// A Span is one timed phase of an operation (a path computation, one EMS
// command dialogue, a whole connection setup). Spans nest through parent
// links and carry a correlation tag — by convention
// core::telemetry_tag(ConnectionId), i.e. the connection id offset past
// the 0 = untagged sentinel
// — so every span of one connection's lifecycle can be pulled out as a
// timeline: setup decomposes into path_computation → per-EMS-command
// spans → setup done; restoration into detect → localize → replan →
// reprovision (paper Table 2 / §3.2 decompositions).
//
// The tracer is append-only and query-oriented; it does not sample and
// does not thread. Components that hold no Telemetry pointer never create
// spans (no-sink fast path).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"
#include "common/units.hpp"

namespace griphon::telemetry {

/// Span handle. 0 is the null span: end()/record() with parent 0 means
/// "root", end(0) is a no-op — instrumentation can pass handles around
/// unconditionally.
using SpanId = std::uint64_t;

/// Correlation tag grouping spans of one operation across components; by
/// convention core::telemetry_tag(ConnectionId) = id value + 1.
/// 0 = untagged (global/plant spans).
using CorrelationTag = std::uint64_t;

struct Span {
  SpanId id = 0;
  SpanId parent = 0;
  CorrelationTag tag = 0;
  std::string name;    ///< e.g. "connection_setup", "ot.tune", "replan"
  std::string actor;   ///< e.g. "controller", "failure-manager"
  std::string detail;  ///< free-form, filled at end()
  SimTime start{};
  SimTime end{};
  bool done = false;
  bool ok = true;

  [[nodiscard]] SimTime duration() const noexcept { return end - start; }
};

/// Concurrency (DESIGN.md §15): the span store is guarded by one mutex.
/// Accessors returning references/pointers into the store (spans(),
/// find(), for_tag(), children_of()) are for the owner thread's export
/// path: the returned views stay valid only while no other thread keeps
/// appending (spans_ may reallocate). Cross-thread consumers go through
/// the value-returning to_json().
class SpanTracer {
 public:
  /// Open a span at `now`. A zero tag inherits the parent's tag, so only
  /// the root of an operation needs explicit correlation.
  SpanId start(std::string name, std::string actor, CorrelationTag tag,
               SpanId parent, SimTime now) EXCLUDES(mu_);

  /// Close a span. No-op for id 0, unknown ids, or already-closed spans —
  /// instrumentation on error paths may double-close safely.
  void end(SpanId id, SimTime now, bool ok = true, std::string detail = {})
      EXCLUDES(mu_);

  /// Record a completed span retroactively (for phases whose start was
  /// only known in hindsight, e.g. detect = fiber-cut → first alarm).
  SpanId record(std::string name, std::string actor, CorrelationTag tag,
                SpanId parent, SimTime start, SimTime end, bool ok = true,
                std::string detail = {}) EXCLUDES(mu_);

  [[nodiscard]] const std::vector<Span>& spans() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return spans_;
  }
  [[nodiscard]] const Span* find(SpanId id) const EXCLUDES(mu_);
  [[nodiscard]] std::vector<const Span*> for_tag(CorrelationTag tag) const
      EXCLUDES(mu_);
  [[nodiscard]] std::vector<const Span*> children_of(SpanId id) const
      EXCLUDES(mu_);
  [[nodiscard]] std::size_t open_count() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return open_;
  }
  void clear() EXCLUDES(mu_);

  /// JSON array of spans (tag 0 = every span) for offline tooling; times
  /// in seconds.
  [[nodiscard]] std::string to_json(CorrelationTag tag = 0) const
      EXCLUDES(mu_);

 private:
  [[nodiscard]] const Span* find_locked(SpanId id) const REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<Span> spans_ GUARDED_BY(mu_);
  std::unordered_map<SpanId, std::size_t> index_ GUARDED_BY(mu_);
  SpanId next_ GUARDED_BY(mu_) = 1;
  std::size_t open_ GUARDED_BY(mu_) = 0;
};

}  // namespace griphon::telemetry
