// Telemetry facade: one MetricsRegistry + one SpanTracer + one EventLog
// per deployment, stamped with the deployment's simulated clock.
//
// Attach with NetworkModel::attach_telemetry(&t) before driving traffic;
// every instrumented component (GriphonController, EmsServer, RwaEngine,
// FailureManager, MeshRestorer, the plant itself) reaches it through the
// model and treats a null pointer as "telemetry off" — the no-sink fast
// path is a single pointer test, no allocation, no lookup.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>

#include "sim/engine.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace griphon::telemetry {

class Telemetry {
 public:
  explicit Telemetry(sim::Engine* engine) : engine_(engine) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] SpanTracer& spans() noexcept { return spans_; }
  [[nodiscard]] const SpanTracer& spans() const noexcept { return spans_; }
  [[nodiscard]] EventLog& events() noexcept { return events_; }
  [[nodiscard]] const EventLog& events() const noexcept { return events_; }
  [[nodiscard]] SimTime now() const noexcept { return engine_->now(); }

  // Convenience wrappers stamping the simulated clock.
  SpanId span_start(std::string name, std::string actor,
                    CorrelationTag tag = 0, SpanId parent = 0) {
    return spans_.start(std::move(name), std::move(actor), tag, parent,
                        engine_->now());
  }
  void span_end(SpanId id, bool ok = true, std::string detail = {}) {
    spans_.end(id, engine_->now(), ok, std::move(detail));
  }
  SpanId span_record(std::string name, std::string actor, CorrelationTag tag,
                     SpanId parent, SimTime start, SimTime end,
                     bool ok = true, std::string detail = {}) {
    return spans_.record(std::move(name), std::move(actor), tag, parent,
                         start, end, ok, std::move(detail));
  }
  /// Append a structured event stamped with the simulated clock.
  void event(Severity severity, std::string category, std::string actor,
             std::string message, CorrelationTag tag = 0) {
    events_.log(engine_->now(), severity, std::move(category),
                std::move(actor), std::move(message), tag);
  }

  // --- failure-detect bookkeeping -----------------------------------------
  // The plant knows when a fiber died; the failure manager only sees the
  // first alarm. note_link_failed() parks the cut instant so the manager
  // can retroactively record the `detect` span (cut → first alarm).
  void note_link_failed(std::uint64_t link) {
    pending_detect_[link] = engine_->now();
  }
  /// Record the `detect` span for `link` if a cut instant was noted;
  /// returns the span id (0 if no pending note).
  SpanId close_detect(std::uint64_t link) {
    const auto it = pending_detect_.find(link);
    if (it == pending_detect_.end()) return 0;
    const SimTime cut_at = it->second;
    pending_detect_.erase(it);
    return spans_.record("detect", "failure-manager", 0, 0, cut_at,
                         engine_->now(), true,
                         "link " + std::to_string(link));
  }

 private:
  sim::Engine* engine_;
  MetricsRegistry metrics_;
  SpanTracer spans_;
  EventLog events_;
  std::unordered_map<std::uint64_t, SimTime> pending_detect_;
};

}  // namespace griphon::telemetry
