#include "telemetry/timeline.hpp"

#include <algorithm>
#include <functional>
#include <iomanip>
#include <sstream>
#include <vector>

namespace griphon::telemetry {

namespace {

std::string fmt_secs(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

}  // namespace

std::string TimelineReport::render(CorrelationTag tag,
                                   std::size_t width) const {
  const std::vector<const Span*> tagged = tracer_->for_tag(tag);
  if (tagged.empty()) return {};

  SimTime t0 = tagged.front()->start;
  SimTime t1 = tagged.front()->end;
  for (const Span* s : tagged) {
    t0 = std::min(t0, s->start);
    t1 = std::max(t1, s->end);
  }
  const double total = std::max(to_seconds(t1 - t0), 1e-9);

  // Column widths for alignment: name (indented), offset, duration.
  std::vector<const Span*> roots;
  for (const Span* s : tagged) {
    const Span* p = tracer_->find(s->parent);
    if (s->parent == 0 || p == nullptr || p->tag != tag) roots.push_back(s);
  }
  std::stable_sort(roots.begin(), roots.end(),
                   [](const Span* a, const Span* b) {
                     return a->start < b->start;
                   });

  struct Row {
    const Span* span;
    std::size_t depth;
  };
  std::vector<Row> rows;
  const std::function<void(const Span*, std::size_t)> walk =
      [&](const Span* s, std::size_t depth) {
        rows.push_back({s, depth});
        auto kids = tracer_->children_of(s->id);
        std::stable_sort(kids.begin(), kids.end(),
                         [](const Span* a, const Span* b) {
                           return a->start < b->start;
                         });
        for (const Span* k : kids)
          if (k->tag == tag) walk(k, depth + 1);
      };
  for (const Span* r : roots) walk(r, 0);

  std::size_t name_w = 0;
  for (const Row& r : rows)
    name_w = std::max(name_w, 2 * r.depth + r.span->name.size());

  std::ostringstream os;
  os << "timeline tag=" << tag << "  total=" << fmt_secs(total) << "s\n";
  for (const Row& r : rows) {
    const Span* s = r.span;
    const double off = to_seconds(s->start - t0);
    const double dur = to_seconds(s->duration());
    const auto bar_off = static_cast<std::size_t>(
        off / total * static_cast<double>(width));
    auto bar_len = static_cast<std::size_t>(
        dur / total * static_cast<double>(width) + 0.5);
    bar_len = std::max<std::size_t>(bar_len, 1);
    if (bar_off + bar_len > width) bar_len = width - bar_off;

    std::string label(2 * r.depth, ' ');
    label += s->name;
    os << std::left << std::setw(static_cast<int>(name_w)) << label
       << "  " << std::right << std::setw(9) << fmt_secs(off) << "s"
       << "  " << std::setw(9) << fmt_secs(dur) << "s  |";
    os << std::string(bar_off, ' ')
       << std::string(bar_len, s->ok ? '#' : 'x')
       << std::string(width - bar_off - bar_len, ' ') << "|";
    if (!s->done) os << " (open)";
    if (!s->detail.empty()) os << " " << s->detail;
    os << "\n";
  }
  return os.str();
}

std::string TimelineReport::to_json(CorrelationTag tag) const {
  return tracer_->to_json(tag);
}

}  // namespace griphon::telemetry
