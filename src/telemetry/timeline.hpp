// Per-connection lifecycle timeline: renders the spans sharing one
// correlation tag as an ASCII waterfall (and as JSON for tooling).
//
// The waterfall is ordered root-first, children indented under their
// parent, each row showing offset-from-root, duration, and a bar scaled
// to the whole timeline — the Table 2 "what did those 60 s buy" view.
#pragma once

#include <string>

#include "telemetry/span.hpp"

namespace griphon::telemetry {

class TimelineReport {
 public:
  explicit TimelineReport(const SpanTracer* tracer) : tracer_(tracer) {}

  /// ASCII waterfall of every span tagged `tag`. `width` is the bar
  /// column width in characters. Empty string if no spans carry the tag.
  [[nodiscard]] std::string render(CorrelationTag tag,
                                   std::size_t width = 40) const;

  /// JSON array of the spans tagged `tag` (delegates to the tracer).
  [[nodiscard]] std::string to_json(CorrelationTag tag) const;

 private:
  const SpanTracer* tracer_;
};

}  // namespace griphon::telemetry
