#include "telemetry/trace_export.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "telemetry/json_util.hpp"
#include "telemetry/telemetry.hpp"

namespace griphon::telemetry {

namespace {

// One span prepared for emission: effective end resolved (open spans are
// cut at the export instant) and lane (tid) assigned.
struct Prepared {
  const Span* span = nullptr;
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
  bool incomplete = false;
  int pid = 0;
  int tid = -1;
};

// A lane is a Chrome "thread": a stack of currently open intervals. A
// span fits if it nests inside the innermost open interval or starts at
// or after the lane's last activity.
struct Lane {
  std::vector<const Prepared*> open;
};

void pop_closed(Lane& lane, std::int64_t at_us) {
  while (!lane.open.empty() && lane.open.back()->end_us <= at_us)
    lane.open.pop_back();
}

bool fits(Lane& lane, const Prepared& p) {
  pop_closed(lane, p.start_us);
  if (lane.open.empty()) return true;
  const Prepared* top = lane.open.back();
  return p.start_us >= top->start_us && p.end_us <= top->end_us;
}

void emit_common(std::ostream& os, const char* ph, std::int64_t ts_us,
                 int pid, int tid) {
  os << "\"ph\":\"" << ph << "\",\"ts\":" << ts_us << ",\"pid\":" << pid
     << ",\"tid\":" << tid;
}

void emit_span_args(std::ostream& os, const Span& s, bool closing,
                    bool incomplete) {
  os << ",\"args\":{";
  bool first = true;
  const auto field = [&](const char* key) -> std::ostream& {
    if (!first) os << ",";
    first = false;
    os << "\"" << key << "\":";
    return os;
  };
  if (s.tag != 0) {
    field("tag") << s.tag;
    field("connection") << (s.tag - 1);
  }
  if (closing) {
    field("ok") << (s.ok ? "true" : "false");
    if (!s.detail.empty()) field("detail") << json_quote(s.detail);
    if (incomplete) field("incomplete") << "true";
  }
  os << "}";
}

}  // namespace

std::string TraceExporter::to_json(const SpanTracer& tracer,
                                   SimTime export_now,
                                   const EventLog* events) const {
  const std::int64_t now_us = export_now.count();

  // --- actor → pid table, in first-appearance order (deterministic:
  // span/event insertion order is itself deterministic under the sim).
  std::vector<std::string> actors;
  std::unordered_map<std::string, int> pid_of;
  const auto pid_for = [&](const std::string& actor) {
    const auto it = pid_of.find(actor);
    if (it != pid_of.end()) return it->second;
    const int pid = static_cast<int>(actors.size()) + 1;
    actors.push_back(actor.empty() ? "(unknown)" : actor);
    pid_of.emplace(actor, pid);
    return pid;
  };

  std::vector<Prepared> prepared;
  prepared.reserve(tracer.spans().size());
  for (const Span& s : tracer.spans()) {
    Prepared p;
    p.span = &s;
    p.start_us = s.start.count();
    p.incomplete = !s.done;
    p.end_us = s.done ? s.end.count() : std::max(p.start_us, now_us);
    if (p.end_us < p.start_us) p.end_us = p.start_us;
    p.pid = pid_for(s.actor);
    prepared.push_back(p);
  }

  // --- lane (tid) assignment per pid. Sort by (start asc, end desc, id)
  // = pre-order of the nesting forest; prefer the parent's lane so a
  // connection's command chain stays visually together.
  std::vector<Prepared*> order;
  order.reserve(prepared.size());
  for (Prepared& p : prepared) order.push_back(&p);
  std::sort(order.begin(), order.end(),
            [](const Prepared* a, const Prepared* b) {
              if (a->start_us != b->start_us) return a->start_us < b->start_us;
              if (a->end_us != b->end_us) return a->end_us > b->end_us;
              return a->span->id < b->span->id;
            });
  std::map<int, std::vector<Lane>> lanes_of;  // pid → lanes
  std::unordered_map<SpanId, Prepared*> by_id;
  for (Prepared& p : prepared) by_id.emplace(p.span->id, &p);
  for (Prepared* p : order) {
    std::vector<Lane>& lanes = lanes_of[p->pid];
    int lane = -1;
    const auto parent = by_id.find(p->span->parent);
    if (parent != by_id.end() && parent->second->pid == p->pid &&
        parent->second->tid >= 0 &&
        fits(lanes[static_cast<std::size_t>(parent->second->tid)], *p)) {
      lane = parent->second->tid;
    }
    for (int i = 0; lane < 0 && i < static_cast<int>(lanes.size()); ++i)
      if (fits(lanes[static_cast<std::size_t>(i)], *p)) lane = i;
    if (lane < 0) {
      lanes.emplace_back();
      lane = static_cast<int>(lanes.size()) - 1;
    }
    p->tid = lane;
    lanes[static_cast<std::size_t>(lane)].open.push_back(p);
  }

  // Instant events ride a dedicated lane one past the span lanes of
  // their actor's pid, so timestamps stay monotonic per tid even though
  // instants are emitted after all span events. Register event actors
  // now so they get process_name metadata below.
  const bool with_instants =
      options_.include_instants && events != nullptr && events->size() > 0;
  if (with_instants)
    for (const Event& e : events->events()) pid_for(e.actor);
  const auto instant_tid = [&](int pid) {
    const auto it = lanes_of.find(pid);
    return it == lanes_of.end() ? 0 : static_cast<int>(it->second.size());
  };

  // --- emission. Per (pid, tid) replay the lane as a stack: B on span
  // entry after closing (E) every earlier span that ended by then; flush
  // E for whatever is still open at the end. ts is non-decreasing per
  // lane by construction.
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first_event = true;
  const auto sep = [&] {
    if (!first_event) os << ",";
    first_event = false;
    os << "\n";
  };

  if (options_.include_metadata) {
    for (std::size_t i = 0; i < actors.size(); ++i) {
      sep();
      os << "{\"name\":\"process_name\",";
      emit_common(os, "M", 0, static_cast<int>(i) + 1, 0);
      os << ",\"args\":{\"name\":" << json_quote(actors[i]) << "}}";
    }
    for (const auto& [pid, lanes] : lanes_of) {
      for (std::size_t t = 0; t < lanes.size(); ++t) {
        sep();
        os << "{\"name\":\"thread_name\",";
        emit_common(os, "M", 0, pid, static_cast<int>(t));
        os << ",\"args\":{\"name\":\"lane-" << t << "\"}}";
      }
    }
    if (with_instants) {
      std::map<int, bool> instant_pids;
      for (const Event& e : events->events())
        instant_pids[pid_for(e.actor)] = true;
      for (const auto& [pid, unused] : instant_pids) {
        (void)unused;
        sep();
        os << "{\"name\":\"thread_name\",";
        emit_common(os, "M", 0, pid, instant_tid(pid));
        os << ",\"args\":{\"name\":\"events\"}}";
      }
    }
  }

  const auto emit_begin = [&](const Prepared& p) {
    sep();
    os << "{\"name\":" << json_quote(p.span->name) << ",";
    emit_common(os, "B", p.start_us, p.pid, p.tid);
    emit_span_args(os, *p.span, /*closing=*/false, /*incomplete=*/false);
    os << "}";
  };
  const auto emit_end = [&](const Prepared& p) {
    sep();
    os << "{\"name\":" << json_quote(p.span->name) << ",";
    emit_common(os, "E", p.end_us, p.pid, p.tid);
    emit_span_args(os, *p.span, /*closing=*/true, p.incomplete);
    os << "}";
  };

  // Group the pre-ordered spans by (pid, tid), preserving pre-order.
  std::map<std::pair<int, int>, std::vector<const Prepared*>> per_lane;
  for (const Prepared* p : order) per_lane[{p->pid, p->tid}].push_back(p);
  for (const auto& [key, spans] : per_lane) {
    std::vector<const Prepared*> stack;
    for (const Prepared* p : spans) {
      while (!stack.empty() && stack.back()->end_us <= p->start_us) {
        emit_end(*stack.back());
        stack.pop_back();
      }
      emit_begin(*p);
      stack.push_back(p);
    }
    while (!stack.empty()) {
      emit_end(*stack.back());
      stack.pop_back();
    }
  }

  if (with_instants) {
    for (const Event& e : events->events()) {
      sep();
      const int pid = pid_for(e.actor);
      os << "{\"name\":" << json_quote(e.category + ": " + e.message) << ",";
      emit_common(os, "i", e.when.count(), pid, instant_tid(pid));
      os << ",\"s\":\"p\",\"args\":{\"severity\":\""
         << telemetry::to_string(e.severity) << "\"";
      if (e.tag != 0)
        os << ",\"tag\":" << e.tag << ",\"connection\":" << (e.tag - 1);
      os << "}}";
    }
  }

  os << "\n],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

std::string TraceExporter::to_json(const Telemetry& telemetry) const {
  return to_json(telemetry.spans(), telemetry.now(), &telemetry.events());
}

}  // namespace griphon::telemetry
