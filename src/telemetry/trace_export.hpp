// Chrome Trace Event JSON export for SpanTracer trees + EventLog events.
//
// The output loads directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. Mapping:
//
//  * pid  — one "process" per span actor (controller, roadm-ems, otn-ems,
//           failure-manager, ...), named with a process_name metadata
//           event, so each layer/EMS-domain gets its own swim-lane group.
//  * tid  — spans of one actor are packed into "threads" (lanes): a span
//           goes to the first lane where it either nests inside the
//           lane's innermost open span or starts at/after the lane's last
//           end. Lanes therefore always contain properly nested
//           intervals, which is exactly what B/E duration pairs require.
//  * B/E  — every span becomes a Begin/End pair (not "X" complete
//           events, so trace tooling can verify pairing). Spans still
//           open at export are closed at the export instant and flagged
//           with args {"incomplete": true}.
//  * i    — EventLog entries (faults, breaker trips, retries, SLO
//           alerts) become process-scoped instant events on the actor's
//           pid.
//  * args — correlation: "tag" (telemetry tag) and "connection"
//           (ConnectionId = tag - 1) ride on every tagged span so a
//           whole connection lifecycle can be found with one query.
//
// Timestamps are the span's SimTime in integer microseconds — SimTime's
// native resolution — so export is exact and byte-deterministic: two
// identical seeded runs produce byte-identical trace files.
#pragma once

#include <string>

#include "common/units.hpp"
#include "telemetry/event_log.hpp"
#include "telemetry/span.hpp"

namespace griphon::telemetry {

class Telemetry;

class TraceExporter {
 public:
  struct Options {
    bool include_metadata = true;  ///< process_name / thread_name events
    bool include_instants = true;  ///< EventLog entries as "i" events
  };

  TraceExporter() = default;
  explicit TraceExporter(Options options) : options_(options) {}

  /// Serialize `tracer` (and optionally `events`) to Chrome Trace Event
  /// JSON. `export_now` closes still-open spans (flagged incomplete).
  [[nodiscard]] std::string to_json(const SpanTracer& tracer,
                                    SimTime export_now,
                                    const EventLog* events = nullptr) const;

  /// Convenience: export a Telemetry facade's spans + event log at its
  /// current sim clock.
  [[nodiscard]] std::string to_json(const Telemetry& telemetry) const;

 private:
  Options options_;
};

}  // namespace griphon::telemetry
