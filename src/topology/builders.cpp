#include "topology/builders.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace griphon::topology {

Testbed paper_testbed() {
  Testbed t;
  t.i = t.graph.add_node("I");
  t.ii = t.graph.add_node("II");
  t.iii = t.graph.add_node("III");
  t.iv = t.graph.add_node("IV");
  // Degrees: I and III are 3-degree, II and IV are 2-degree, matching the
  // paper's "two 3-degree ROADMs and two 2-degree ROADMs". Lab distances
  // are short; we give them metro-scale lengths so reach never binds.
  t.i_iv = t.graph.add_link(t.i, t.iv, Distance::km(80));
  t.i_iii = t.graph.add_link(t.i, t.iii, Distance::km(60));
  t.iii_iv = t.graph.add_link(t.iii, t.iv, Distance::km(50));
  t.i_ii = t.graph.add_link(t.i, t.ii, Distance::km(40));
  t.ii_iii = t.graph.add_link(t.ii, t.iii, Distance::km(45));
  return t;
}

Graph us_backbone() {
  Graph g;
  // NSFNET-like 14-node continental topology. Long links are split into
  // ~100 km amplified spans (the unit of fiber cuts).
  const NodeId sea = g.add_node("Seattle");
  const NodeId paolo = g.add_node("PaloAlto");
  const NodeId sd = g.add_node("SanDiego");
  const NodeId slc = g.add_node("SaltLake");
  const NodeId bld = g.add_node("Boulder");
  const NodeId hou = g.add_node("Houston");
  const NodeId lnc = g.add_node("Lincoln");
  const NodeId chm = g.add_node("Champaign");
  const NodeId pit = g.add_node("Pittsburgh");
  const NodeId atl = g.add_node("Atlanta");
  const NodeId aa = g.add_node("AnnArbor");
  const NodeId ith = g.add_node("Ithaca");
  const NodeId cp = g.add_node("CollegePark");
  const NodeId pri = g.add_node("Princeton");

  auto spans = [](double total_km) {
    std::vector<Distance> out;
    auto remaining = total_km;
    while (remaining > 120) {
      out.push_back(Distance::km(100));
      remaining -= 100;
    }
    out.push_back(Distance::km(remaining));
    return out;
  };
  auto link = [&](NodeId a, NodeId b, double km) {
    g.add_link(a, b, spans(km));
  };

  link(sea, paolo, 1100);
  link(sea, slc, 1130);
  link(paolo, sd, 720);
  link(paolo, slc, 970);
  link(sd, hou, 1700);
  link(slc, bld, 600);
  link(bld, lnc, 780);
  link(bld, hou, 1450);
  link(hou, atl, 1140);
  link(lnc, chm, 740);
  link(chm, pit, 700);
  link(pit, atl, 850);
  link(pit, ith, 430);
  link(atl, cp, 1000);
  link(aa, chm, 420);
  link(aa, ith, 620);
  link(ith, pri, 330);
  link(cp, pri, 260);
  link(cp, ith, 450);
  link(paolo, bld, 1600);
  link(hou, chm, 1500);
  return g;
}

Graph ring(std::size_t n, Distance circumference) {
  if (n < 3) throw std::invalid_argument("ring: need >= 3 nodes");
  Graph g;
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    nodes.push_back(g.add_node("R" + std::to_string(i)));
  const Distance seg{circumference.in_km() / static_cast<double>(n)};
  for (std::size_t i = 0; i < n; ++i)
    g.add_link(nodes[i], nodes[(i + 1) % n], seg);
  return g;
}

Graph random_mesh(std::size_t n, double avg_degree, Rng& rng) {
  if (n < 2) throw std::invalid_argument("random_mesh: need >= 2 nodes");
  Graph g;
  std::vector<NodeId> nodes;
  std::vector<std::pair<double, double>> pos;  // on a 3000x1500 km plane
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(g.add_node("N" + std::to_string(i)));
    pos.emplace_back(rng.uniform(0, 3000), rng.uniform(0, 1500));
  }
  auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = pos[a].first - pos[b].first;
    const double dy = pos[a].second - pos[b].second;
    return std::max(30.0, std::hypot(dx, dy));
  };
  // Spanning tree: attach each node to a random earlier one.
  for (std::size_t i = 1; i < n; ++i) {
    const auto j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i) - 1));
    g.add_link(nodes[i], nodes[j], Distance::km(dist(i, j)));
  }
  // Extra chords, closest pairs first among missing links, with random skip
  // to avoid a fully regular structure.
  const std::size_t target_links =
      static_cast<std::size_t>(avg_degree * static_cast<double>(n) / 2.0);
  std::vector<std::pair<std::size_t, std::size_t>> missing;
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b)
      if (!g.find_link(nodes[a], nodes[b])) missing.emplace_back(a, b);
  std::sort(missing.begin(), missing.end(), [&](auto x, auto y) {
    return dist(x.first, x.second) < dist(y.first, y.second);
  });
  for (const auto& [a, b] : missing) {
    if (g.links().size() >= target_links) break;
    if (rng.chance(0.3)) continue;
    g.add_link(nodes[a], nodes[b], Distance::km(dist(a, b)));
  }
  return g;
}

}  // namespace griphon::topology
