// Ready-made topologies.
//
//  * paper_testbed(): the GRIPhoN lab testbed of the paper's Fig. 4 —
//    four ROADM nodes I..IV (two 3-degree, two 2-degree) wired so the
//    three measured paths exist: I-IV (1 hop), I-III-IV (2 hops),
//    I-II-III-IV (3 hops).
//  * us_backbone(): a 14-node NSFNET-like continental mesh with realistic
//    span lengths, used for restoration / blocking / grooming studies.
//  * ring(): n-node ring (SONET baseline studies).
//  * random_mesh(): seeded Waxman-ish random mesh for stress tests.
#pragma once

#include "common/rng.hpp"
#include "topology/graph.hpp"

namespace griphon::topology {

/// Node indices of the paper testbed, for readable tests.
struct Testbed {
  Graph graph;
  NodeId i, ii, iii, iv;
  LinkId i_iv, i_iii, iii_iv, i_ii, ii_iii;
};

[[nodiscard]] Testbed paper_testbed();

[[nodiscard]] Graph us_backbone();

[[nodiscard]] Graph ring(std::size_t n, Distance circumference);

/// Connected random mesh: spanning tree + extra chords until the average
/// degree target is met. Deterministic for a given rng state.
[[nodiscard]] Graph random_mesh(std::size_t n, double avg_degree, Rng& rng);

}  // namespace griphon::topology
