#include "topology/graph.hpp"

#include <stdexcept>

namespace griphon::topology {

NodeId Graph::add_node(std::string name, bool add_drop) {
  const NodeId id{nodes_.size()};
  nodes_.push_back(Node{id, std::move(name), add_drop});
  adjacency_.emplace_back();
  return id;
}

LinkId Graph::add_link(NodeId a, NodeId b, std::vector<Distance> span_lengths,
                       std::string name) {
  if (a.value() >= nodes_.size() || b.value() >= nodes_.size())
    throw std::out_of_range("Graph::add_link: unknown endpoint");
  if (a == b) throw std::invalid_argument("Graph::add_link: self-loop");
  if (span_lengths.empty())
    throw std::invalid_argument("Graph::add_link: link needs >=1 span");

  const LinkId id{links_.size()};
  Link link{id, a, b, {}, std::move(name)};
  if (link.name.empty())
    link.name = nodes_[a.value()].name + "-" + nodes_[b.value()].name;
  for (const Distance d : span_lengths) {
    // ~0.25 dB/km fiber + splice loss, pre-amplifier; only relative scale
    // matters for the reach model.
    link.spans.push_back(Span{span_ids_.next(), d, d.in_km() * 0.25});
  }
  links_.push_back(std::move(link));
  adjacency_[a.value()].push_back(id);
  adjacency_[b.value()].push_back(id);
  return id;
}

LinkId Graph::add_link(NodeId a, NodeId b, Distance length, std::string name) {
  return add_link(a, b, std::vector<Distance>{length}, std::move(name));
}

void Graph::set_srlg(LinkId link, int srlg) {
  if (link.value() >= links_.size())
    throw std::out_of_range("Graph::set_srlg: unknown link");
  links_[link.value()].srlg = srlg;
}

std::vector<LinkId> Graph::srlg_siblings(LinkId link) const {
  if (link.value() >= links_.size())
    throw std::out_of_range("Graph::srlg_siblings: unknown link");
  const int srlg = links_[link.value()].srlg;
  if (srlg < 0) return {link};
  std::vector<LinkId> out;
  for (const auto& l : links_)
    if (l.srlg == srlg) out.push_back(l.id);
  return out;
}

const Node& Graph::node(NodeId id) const {
  if (id.value() >= nodes_.size())
    throw std::out_of_range("Graph::node: unknown id");
  return nodes_[id.value()];
}

const Link& Graph::link(LinkId id) const {
  if (id.value() >= links_.size())
    throw std::out_of_range("Graph::link: unknown id");
  return links_[id.value()];
}

std::optional<NodeId> Graph::find_node(std::string_view name) const {
  for (const auto& n : nodes_)
    if (n.name == name) return n.id;
  return std::nullopt;
}

std::optional<LinkId> Graph::find_link(NodeId a, NodeId b) const {
  for (const LinkId id : links_at(a))
    if (links_[id.value()].touches(b)) return id;
  return std::nullopt;
}

std::optional<LinkId> Graph::link_of_span(SpanId span) const {
  for (const auto& l : links_)
    for (const auto& s : l.spans)
      if (s.id == span) return l.id;
  return std::nullopt;
}

const std::vector<LinkId>& Graph::links_at(NodeId n) const {
  if (n.value() >= adjacency_.size())
    throw std::out_of_range("Graph::links_at: unknown node");
  return adjacency_[n.value()];
}

}  // namespace griphon::topology
