// Physical-plant topology: nodes (ROADM/central-office sites) connected by
// bidirectional fiber links, each made of one or more amplified spans.
//
// The graph is the substrate every layer rides on: DWDM wavelengths occupy
// links; OTN and SONET circuits ride wavelengths; the controller routes
// over it. The graph itself is layer-agnostic.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace griphon::topology {

/// An amplified fiber span inside a link. Spans are the unit of failure
/// (a backhoe cuts a span) and of optical-impairment accounting.
struct Span {
  SpanId id;
  Distance length;
  double loss_db = 0;  ///< end-to-end span loss incl. amplifier compensation
};

/// A bidirectional fiber link between two nodes.
struct Link {
  LinkId id;
  NodeId a;
  NodeId b;
  std::vector<Span> spans;
  std::string name;
  /// Shared-risk link group: links in the same conduit/right-of-way share
  /// a fate (one backhoe cuts them all). -1 = no shared risk recorded.
  int srlg = -1;

  [[nodiscard]] Distance length() const {
    Distance d{};
    for (const auto& s : spans) d += s.length;
    return d;
  }
  /// The other endpoint, given one of them.
  [[nodiscard]] NodeId peer(NodeId n) const { return n == a ? b : a; }
  [[nodiscard]] bool touches(NodeId n) const { return n == a || n == b; }
};

struct Node {
  NodeId id;
  std::string name;
  /// True for sites with add/drop capability (core PoPs); pure amplifier
  /// huts would be false, but we model those as spans instead.
  bool add_drop = true;
};

class Graph {
 public:
  NodeId add_node(std::string name, bool add_drop = true);

  /// Add a link whose fiber consists of `span_lengths` consecutive spans.
  LinkId add_link(NodeId a, NodeId b, std::vector<Distance> span_lengths,
                  std::string name = {});
  /// Convenience: single-span link.
  LinkId add_link(NodeId a, NodeId b, Distance length, std::string name = {});

  /// Put a link into a shared-risk group (same conduit / bridge / duct).
  void set_srlg(LinkId link, int srlg);
  /// All links sharing `link`'s SRLG (including itself); just the link
  /// itself when it has no SRLG.
  [[nodiscard]] std::vector<LinkId> srlg_siblings(LinkId link) const;

  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] std::optional<NodeId> find_node(std::string_view name) const;
  /// Link between a and b if one exists (first match).
  [[nodiscard]] std::optional<LinkId> find_link(NodeId a, NodeId b) const;
  /// Which link owns this span.
  [[nodiscard]] std::optional<LinkId> link_of_span(SpanId span) const;

  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<Link>& links() const noexcept {
    return links_;
  }
  [[nodiscard]] const std::vector<LinkId>& links_at(NodeId n) const;

  [[nodiscard]] std::size_t degree(NodeId n) const {
    return links_at(n).size();
  }

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;  // indexed by NodeId value
  IdAllocator<SpanId> span_ids_;
};

}  // namespace griphon::topology
